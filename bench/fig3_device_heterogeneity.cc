/**
 * @file
 * Figure 3: Device heterogeneity across the fleet.
 *
 * Profiles the eight fleet SSD models (A-H) with the fio-equivalent
 * saturating workloads and reports, per device, the random and
 * sequential read/write IOPS (left axis of the paper's figure) and
 * the read/write latency (right axis).
 */

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "profile/device_profiler.hh"

int
main()
{
    using namespace iocost;

    bench::banner(
        "Figure 3: Device heterogeneity across the fleet",
        "Profiled sustainable peak performance of fleet SSD models "
        "A-H.\nExpected shape: H = high IOPS at low latency, G = "
        "low IOPS at relatively low\nlatency, A = moderate IOPS "
        "with higher latency; wide spread overall.");

    bench::Table table({"Device", "RandRd IOPS", "SeqRd IOPS",
                        "RandWr IOPS", "SeqWr IOPS", "Rd lat",
                        "Wr lat", "Rd BW", "Wr BW"});
    for (const auto &spec : device::fleetSsds()) {
        const auto &p = profile::DeviceProfiler::profileSsd(spec);
        table.row({spec.name, bench::fmtCount(p.randReadIops),
                   bench::fmtCount(p.seqReadIops),
                   bench::fmtCount(p.randWriteIops),
                   bench::fmtCount(p.seqWriteIops),
                   bench::fmtTime(p.readLatency),
                   bench::fmtTime(p.writeLatency),
                   bench::fmtBps(p.model.rbps),
                   bench::fmtBps(p.model.wbps)});
    }
    table.print();

    std::printf("Each profile doubles as the device's iocost model "
                "configuration\n(io.cost.model format: rbps/rseqiops/"
                "rrandiops/wbps/wseqiops/wrandiops).\n");
    return 0;
}
