/**
 * @file
 * Figure 15: Ramp-up time in an overcommitted environment.
 *
 * ResourceControlBench is collocated with `stress`, a synthetic
 * consumer that keeps its working set permanently hot. A load
 * controller raises RCB's offered load from 40% to 80% of its peak
 * while holding p95 latency under 75ms; as the load (and thus
 * memory heat) grows, stress's pages must be forced out — which is
 * pure swap IO whose charging policy decides everything. Reported
 * is the time to reach sustained 80% for:
 *
 *   - iocost (production debt mechanism, §3.5)
 *   - bfq
 *   - iocost-root-swap: swap charged to the root, never throttled
 *   - iocost-inversion: swap throttled in the owner's cgroup
 *   - no-stress baselines for iocost and bfq
 *
 * Paper's shape: baseline iocost ramps ~2x faster than baseline
 * bfq; with stress, iocost is ~5x faster than bfq; both broken
 * debt variants are worse than production iocost.
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

constexpr double kPeakRps = 1000.0;
constexpr double kStartRps = 0.40 * kPeakRps;
constexpr double kTargetRps = 0.80 * kPeakRps;
constexpr sim::Time kLatencyCeiling = 75 * sim::kMsec;
constexpr sim::Time kMaxRun = 300 * sim::kSec;

struct Variant
{
    const char *label;
    const char *mechanism;
    core::DebtMode debtMode;
    bool withStress;
};

sim::Time
run(const Variant &v)
{
    sim::Simulator sim(1515);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = v.mechanism;
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.writeLatTarget = 4 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 2.0;
    opts.controller.iocost.debtMode = v.debtMode;
    opts.enableMemory = true;
    opts.memoryConfig.totalBytes = 4ull << 30;
    opts.memoryConfig.swapBytes = 16ull << 30;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto rcb_cg = host.addWorkload("rcb", 100);
    const auto stress_cg = host.addWorkload("stress", 100);

    workload::LatencyServerConfig rcb_cfg;
    rcb_cfg.name = "rcb";
    rcb_cfg.offeredRps = kStartRps;
    rcb_cfg.workingSetBytes = 1ull << 30; // 1 GB at idle...
    // ...plus ~2 MB per offered RPS: ~2.6 GB at 80% load, forcing
    // stress's pages out as the ramp proceeds (the paper's dynamic).
    rcb_cfg.workingSetGrowthPerRps = 2ull << 20;
    rcb_cfg.touchPerRequest = 2ull << 20;
    rcb_cfg.allocPerRequest = 512 * 1024;
    rcb_cfg.readsPerRequest = 8;
    rcb_cfg.readSize = 64 * 1024;
    rcb_cfg.serialReads = true;
    rcb_cfg.logWriteSize = 4096;
    rcb_cfg.maxConcurrency = 128;
    workload::LatencyServer rcb(sim, host.layer(), host.mm(),
                                rcb_cg, rcb_cfg);
    // Production protects the latency-sensitive working set with
    // memory.low; the consumer's pages are the ones paged out.
    host.mm().setProtection(rcb_cg, 3ull << 30);

    workload::MemoryHogConfig stress_cfg;
    stress_cfg.mode = workload::HogMode::Stress;
    stress_cfg.workingSetBytes = 5ull << 29; // 2.5 GB, fights RCB
    stress_cfg.touchChunk = 64ull << 20;
    stress_cfg.touchInterval = 10 * sim::kMsec;
    workload::MemoryHog stress(sim, host.mm(), stress_cg,
                               stress_cfg);
    host.mm().setOomHandler([&](cgroup::CgroupId cg) {
        if (cg == stress_cg)
            stress.notifyOomKilled();
    });

    // Proportional load controller: raise the offered load while
    // the p95 stays under the ceiling, back off when it does not;
    // the ramp completes at the first window of sustained 80%.
    sim::Time ramp_done = kMaxRun;
    unsigned ok_windows = 0;
    rcb.setWindowObserver([&](double rps, sim::Time p95) {
        (void)rps;
        double offered = rcb.offeredRps();
        if (p95 <= kLatencyCeiling) {
            offered += 0.03 * kPeakRps;
        } else {
            offered -= 0.05 * kPeakRps;
        }
        offered = std::clamp(offered, kStartRps, kPeakRps);
        rcb.setOfferedRps(offered);

        if (offered >= kTargetRps && p95 <= kLatencyCeiling) {
            if (++ok_windows >= 3 && ramp_done == kMaxRun)
                ramp_done = sim.now();
        } else {
            ok_windows = 0;
        }
    });

    rcb.prepare([&] {
        if (v.withStress)
            stress.start();
        // Let stress allocate, then start serving and ramping.
        sim.after(2 * sim::kSec, [&] { rcb.start(); });
    });
    while (sim.now() < kMaxRun && ramp_done == kMaxRun)
        sim.runUntil(sim.now() + 1 * sim::kSec);
    return ramp_done;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 15: Ramp-up time 40% -> 80% load in an "
        "overcommitted environment",
        "RCB + `stress` under a p95 < 75ms load controller.\n"
        "Expected shape: iocost ramps fastest; both broken swap-"
        "charging variants and bfq\nare slower; no-stress baselines "
        "bound from below.");

    const Variant variants[] = {
        {"iocost (no stress)", "iocost",
         core::DebtMode::Production, false},
        {"bfq (no stress)", "bfq", core::DebtMode::Production,
         false},
        {"iocost", "iocost", core::DebtMode::Production, true},
        {"bfq", "bfq", core::DebtMode::Production, true},
        {"iocost-root-swap", "iocost", core::DebtMode::RootCharge,
         true},
        {"iocost-inversion", "iocost", core::DebtMode::Inversion,
         true},
    };

    bench::Table table({"Configuration", "Ramp-up time"});
    for (const Variant &v : variants) {
        const sim::Time t = run(v);
        table.row({v.label, t >= kMaxRun
                                ? std::string("did not complete")
                                : bench::fmtTime(t)});
    }
    table.print();
    return 0;
}
