/**
 * @file
 * Ablation: QoS tuning with ResourceControlBench (§3.4).
 *
 * Runs the two-scenario vrate sweep on the old-gen SSD and prints
 * the raw sweep plus the derived [vrateMin, vrateMax] bounds — the
 * procedure that produces the fleet's per-device QoS parameters.
 * The sweep points are paired CRN runs (QosTuner uses the same
 * seeds at every vrate) and spread across --jobs workers; the
 * output is byte-identical for any worker count.
 */

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "profile/qos_tuner.hh"

int
main(int argc, char **argv)
{
    using namespace iocost;

    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    bench::banner(
        "Ablation: QoS tuning sweep (ResourceControlBench, §3.4)",
        "Scenario 1: RCB alone, paging-bound (RPS should saturate "
        "with vrate).\nScenario 2: RCB + memory leak (p95 should "
        "stop improving below some vrate).");

    const auto result = profile::QosTuner::tune(
        device::oldGenSsd(), {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}, 6.0,
        7, args.jobs);

    bench::Table table({"Pinned vrate", "Alone RPS (paging-bound)",
                        "Stacked p95 (vs leaker)"});
    for (const auto &p : result.sweep) {
        table.row({bench::fmt("%.0f%%", 100.0 * p.vrate),
                   bench::fmt("%.0f", p.aloneRps),
                   bench::fmtTime(p.stackedP95)});
    }
    table.print();

    std::printf("Derived QoS for %s:\n",
                device::oldGenSsd().name.c_str());
    std::printf("  vrate bounds: [%.0f%%, %.0f%%]\n",
                100.0 * result.qos.vrateMin,
                100.0 * result.qos.vrateMax);
    std::printf("  read latency target: p%.0f < %s\n",
                100.0 * result.qos.readLatQuantile,
                bench::fmtTime(result.qos.readLatTarget).c_str());
    std::printf("  write latency target: p%.0f < %s\n",
                100.0 * result.qos.writeLatQuantile,
                bench::fmtTime(result.qos.writeLatTarget).c_str());
    return 0;
}
