/**
 * @file
 * Chaos benchmark: a device degrades mid-run (latency multiplier +
 * transient error burst via the fault injector) while a protected
 * latency-sensitive reader shares it with a saturating batch writer.
 *
 * iocost, driving vrate from its QoS latency target and from the
 * error-burst saturation signal, must keep the protected cgroup's
 * p99 read latency bounded through the degradation window.
 * blk-throttle — static limits tuned for the healthy device — keeps
 * admitting the batch scanner at its healthy-device rate into a
 * device running at a sixth of that capacity; the backlog swallows
 * the protected reader's tail.
 *
 * The bench is also a determinism gate for the fault path: the same
 * seeded run must serialize byte-identical telemetry twice, and a
 * degraded fleet must produce identical outcomes at --jobs 1 and 4.
 * Exits nonzero if any PASS condition fails.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "controllers/blk_throttle.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "stat/telemetry.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/** Degradation window [10s, 20s): 6x service time, 2% errors. */
constexpr const char *kFaults =
    "lat@10s+10s=6,err@10s+10s=0.02,retries=3,backoff=200us";
constexpr double kDegradeStart = 10.0;
constexpr double kDegradeEnd = 20.0;

struct RunMetrics
{
    sim::Time healthyP99 = 0;  ///< web p99 over [5s, 10s)
    sim::Time degradedP99 = 0; ///< web p99 over [10s, 20s)
    uint64_t healthyReads = 0;
    uint64_t degradedReads = 0;
    uint64_t errors = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;
    uint64_t failed = 0;
    std::string digest; ///< serialized telemetry (detail off)
};

/**
 * One 20-second run: web (protected, open-loop 4k random reads) vs
 * batch (a saturating 4k random-read scanner) through @p mechanism
 * on a new-gen SSD that degrades over [10s, 20s).
 */
RunMetrics
runOne(const std::string &mechanism)
{
    sim::Simulator sim(97);
    const device::SsdSpec spec = device::newGenSsd();
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);

    stat::RingSink ring;
    host::HostOptions opts;
    opts.controller = mechanism;
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatQuantile = 0.95;
    opts.controller.iocost.qos.readLatTarget = 300 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 5 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.1;
    opts.controller.iocost.qos.vrateMax = 1.0;
    opts.telemetrySink = &ring;
    opts.faults = kFaults;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto web = host.addWorkload("web", 200);
    const auto batch = host.addWorkload("batch", 100);

    if (mechanism == "blk-throttle") {
        // Static limits tuned for the HEALTHY device: the scanner
        // is capped at 80% of profiled random-read IOPS, which
        // leaves the protected reader comfortable headroom — while
        // the device is fine. During the degradation window the
        // token bucket keeps admitting that same rate into a device
        // with a sixth of the capacity.
        auto *thr = dynamic_cast<controllers::BlkThrottle *>(
            host.layer().controller());
        thr->setLimits(batch, {.riops = prof.randReadIops * 0.8});
    }

    workload::FioConfig rf;
    rf.name = "web";
    rf.arrival = workload::Arrival::Rate;
    rf.ratePerSec = 2000;
    workload::FioWorkload reads(sim, host.layer(), web, rf);

    workload::FioConfig wf;
    wf.name = "batch";
    wf.iodepth = 64;
    wf.offsetBase = 1ull << 40;
    workload::FioWorkload scanner(sim, host.layer(), batch, wf);

    reads.start();
    scanner.start();

    RunMetrics m;
    // Warmup [0,5s), healthy measurement [5s,10s), degraded
    // measurement [10s,20s) — stats reset at each boundary.
    sim.at(5 * sim::kSec, [&] { reads.resetStats(); });
    sim.at(10 * sim::kSec, [&] {
        m.healthyP99 = reads.latency().quantile(0.99);
        m.healthyReads = reads.latency().count();
        reads.resetStats();
    });
    sim.runUntil(20 * sim::kSec);

    m.degradedP99 = reads.latency().quantile(0.99);
    m.degradedReads = reads.latency().count();
    m.errors = host.layer().deviceErrors();
    m.retries = host.layer().retries();
    m.timeouts = host.layer().timeouts();
    m.failed = host.layer().failedBios();
    for (const stat::Record &r : ring.records())
        m.digest += stat::toJsonl(r);
    return m;
}

int
check(bool ok, const char *what)
{
    std::printf("%s  %s\n", ok ? "PASS" : "FAIL", what);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Uniform flag set; this chaos drill pins its own fault window
    // (the pass/fail checks depend on it), so --faults is ignored.
    (void)bench::parseArgs(argc, argv);

    bench::banner(
        "Chaos: degraded device vs IO control",
        "A new-gen SSD degrades over [10s, 20s) (6x latency, 2% "
        "transient\nerrors). Protected open-loop reader vs "
        "saturating batch scanner.\niocost must hold the reader's "
        "p99 through the window; blk-throttle's\nstatic "
        "healthy-device limits must not.");

    const RunMetrics ioc = runOne("iocost");
    const RunMetrics thr = runOne("blk-throttle");

    bench::Table table({"mechanism", "healthy p99", "degraded p99",
                        "degraded reads", "errors", "retries",
                        "failed"});
    table.row({"iocost", bench::fmtTime(ioc.healthyP99),
               bench::fmtTime(ioc.degradedP99),
               bench::fmtCount(double(ioc.degradedReads)),
               bench::fmt("%.0f", double(ioc.errors)),
               bench::fmt("%.0f", double(ioc.retries)),
               bench::fmt("%.0f", double(ioc.failed))});
    table.row({"blk-throttle",
               bench::fmtTime(thr.healthyP99),
               bench::fmtTime(thr.degradedP99),
               bench::fmtCount(double(thr.degradedReads)),
               bench::fmt("%.0f", double(thr.errors)),
               bench::fmt("%.0f", double(thr.retries)),
               bench::fmt("%.0f", double(thr.failed))});
    table.print();

    std::printf("\nDegradation window: [%.0fs, %.0fs)  faults: %s\n\n",
                kDegradeStart, kDegradeEnd, kFaults);

    int fails = 0;

    // Both stacks exercised the error path (window really fired).
    fails += check(ioc.errors > 0 && thr.errors > 0,
                   "fault window injected errors on both stacks");
    fails += check(ioc.retries > 0,
                   "transient errors were retried");

    // iocost holds the protected reader's tail: degraded p99 within
    // 4x its QoS read target (2ms) despite the 6x device slowdown.
    fails += check(ioc.degradedP99 <= 8 * sim::kMsec,
                   "iocost holds protected p99 <= 8ms while degraded");

    // The static-limit controller misses by a wide margin.
    fails += check(thr.degradedP99 >= 2 * ioc.degradedP99,
                   "blk-throttle degraded p99 >= 2x iocost's");

    // The reader kept completing IO under iocost.
    fails += check(ioc.degradedReads >=
                       uint64_t(2000 * (kDegradeEnd - kDegradeStart) *
                                0.8),
                   "iocost reader completed >= 80% of offered rate");

    // Determinism: an identical seeded run replays byte-identically.
    const RunMetrics ioc2 = runOne("iocost");
    fails += check(ioc.digest == ioc2.digest && !ioc.digest.empty(),
                   "repeated seeded run is byte-identical");

    // Degraded fleet: identical outcomes at --jobs 1 and 4.
    fleet::FleetConfig cfg;
    cfg.hosts = 4;
    cfg.days = 2;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 2;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.seed = 91;
    cfg.telemetry = true;
    cfg.faults = "lat@350ms+100ms=3,err@350ms+150ms=0.08";
    std::vector<fleet::HostDayOutcome> seq, par;
    fleet::FleetSim::run(cfg, 1, &seq);
    fleet::FleetSim::run(cfg, 4, &par);
    std::string dseq, dpar;
    for (const auto &o : seq)
        for (const stat::Record &r : o.records)
            dseq += stat::toJsonl(r);
    for (const auto &o : par)
        for (const stat::Record &r : o.records)
            dpar += stat::toJsonl(r);
    fails += check(dseq == dpar && !dseq.empty(),
                   "degraded fleet identical at --jobs 1 and 4");

    std::printf("\n%s (%d failing)\n", fails ? "FAIL" : "PASS",
                fails);
    return fails ? 1 : 0;
}
