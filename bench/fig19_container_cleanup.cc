/**
 * @file
 * Figure 19: Container-cleanup failures during the IOLatency ->
 * IOCost migration.
 *
 * Same fleet Monte-Carlo as Fig. 18, reporting the host-critical
 * container agent's cleanup walks that exceed the (scaled) stall
 * threshold. Expected shape: a roughly 3x reduction as the region
 * migrates, taking effect immediately per migrated host.
 */

#include "bench/common.hh"
#include "fleet/fleet_sim.hh"

int
main(int argc, char **argv)
{
    using namespace iocost;

    bench::banner(
        "Figure 19: Container cleanup failures during the "
        "IOLatency -> IOCost migration",
        "Scaled fleet Monte-Carlo (see DESIGN.md): cleanup walks "
        "over the stall\nthreshold per day. Expected shape: ~3x "
        "fewer after migration.");

    fleet::FleetConfig cfg;
    cfg.seed = 1919;
    // Results are byte-identical for any --jobs/--shards value; the
    // default uses every hardware thread.
    const bench::BenchArgs args = bench::parseArgs(argc, argv);
    fleet::RunOptions opts;
    opts.jobs = args.jobs;
    opts.shards = args.shards;
    fleet::FleetScenario sc = fleet::scenarioFromConfig(cfg);
    if (!args.faults.empty())
        sc.faults = args.faults;
    const fleet::FleetAggregate agg =
        fleet::FleetSim::runScenario(sc, opts);
    const auto &days = agg.days;

    bench::Table table({"Day", "Fleet on IOCost", "Cleanups",
                        "Failures", "Failure rate"});
    unsigned before_fail = 0, before_n = 0;
    unsigned after_fail = 0, after_n = 0;
    for (const auto &d : days) {
        table.row(
            {bench::fmt("%.0f", (double)d.day),
             bench::fmt("%.0f%%", 100.0 * d.fractionOnIoCost),
             bench::fmt("%.0f", (double)d.cleanupAttempts),
             bench::fmt("%.0f", (double)d.cleanupFailures),
             bench::fmt("%.1f%%", 100.0 * d.cleanupFailures /
                                      d.cleanupAttempts)});
        if (d.fractionOnIoCost < 0.05) {
            before_fail += d.cleanupFailures;
            before_n += d.cleanupAttempts;
        } else if (d.fractionOnIoCost > 0.95) {
            after_fail += d.cleanupFailures;
            after_n += d.cleanupAttempts;
        }
    }
    table.print();

    const double before =
        before_n ? 100.0 * before_fail / before_n : 0.0;
    const double after = after_n ? 100.0 * after_fail / after_n
                                 : 0.0;
    std::printf("Pre-migration failure rate:  %.1f%%\n", before);
    std::printf("Post-migration failure rate: %.1f%%\n", after);
    if (after > 0) {
        std::printf("Reduction: %.1fx (paper: ~3x)\n",
                    before / after);
    } else {
        std::printf("Reduction: complete (paper: ~3x)\n");
    }
    std::printf(
        "Completed-cleanup latency: iolatency p50=%s p99=%s | "
        "iocost p50=%s p99=%s\n",
        bench::fmtTime(
            agg.cleanupTime[fleet::kCtlIoLatency].quantile(0.50))
            .c_str(),
        bench::fmtTime(
            agg.cleanupTime[fleet::kCtlIoLatency].quantile(0.99))
            .c_str(),
        bench::fmtTime(
            agg.cleanupTime[fleet::kCtlIoCost].quantile(0.50))
            .c_str(),
        bench::fmtTime(
            agg.cleanupTime[fleet::kCtlIoCost].quantile(0.99))
            .c_str());
    return 0;
}
