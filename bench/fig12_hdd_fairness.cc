/**
 * @file
 * Figure 12: Fairness with random and sequential workloads on a
 * spinning disk.
 *
 * Two workloads with 2:1 weights issue 4k reads in three pairings:
 * rand/rand, rand/seq (high-weight random), seq/seq. Throughput is
 * normalized to the device's standalone peak for that access
 * pattern. The paper's result: mq-deadline has no notion of
 * fairness; bfq holds 2:1 for seq/seq but misallocates when random
 * IO is involved (sector accounting ignores seek occupancy); iocost
 * holds ~2:1 everywhere by pricing occupancy.
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/hdd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

double
standalonePeak(bool random)
{
    sim::Simulator sim(1212);
    device::HddModel device(sim, device::nearlineHdd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    workload::FioConfig cfg;
    cfg.randomFraction = random ? 1.0 : 0.0;
    cfg.iodepth = 12;
    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();
    sim.runUntil(30 * sim::kSec);
    return job.iops();
}

struct Outcome
{
    double hiNorm;
    double loNorm;
};

Outcome
run(const std::string &mechanism, bool hi_random, bool lo_random,
    double peak_rand, double peak_seq)
{
    sim::Simulator sim(1213);
    host::HostOptions opts;
    opts.controller = mechanism;
    const auto &prof =
        profile::DeviceProfiler::profileHdd(device::nearlineHdd());
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatTarget = 40 * sim::kMsec;
    opts.controller.iocost.qos.writeLatTarget = 80 * sim::kMsec;
    opts.controller.iocost.qos.period = 100 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 0.8; // tuned ceiling (§3.4): interleaved capacity < profiled single-stream peak

    host::Host host(
        sim,
        std::make_unique<device::HddModel>(sim,
                                           device::nearlineHdd()),
        opts);
    const auto hi = host.addWorkload("high-weight", 200);
    const auto lo = host.addWorkload("low-weight", 100);

    workload::FioConfig hi_cfg;
    hi_cfg.randomFraction = hi_random ? 1.0 : 0.0;
    hi_cfg.iodepth = 16;
    hi_cfg.offsetBase = 0;
    workload::FioConfig lo_cfg;
    lo_cfg.randomFraction = lo_random ? 1.0 : 0.0;
    lo_cfg.iodepth = 16;
    lo_cfg.offsetBase = 1ull << 40; // distinct file/partition
    workload::FioWorkload hij(sim, host.layer(), hi, hi_cfg);
    workload::FioWorkload loj(sim, host.layer(), lo, lo_cfg);
    hij.start();
    loj.start();
    sim.runUntil(10 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    sim.runUntil(70 * sim::kSec);

    return Outcome{
        hij.iops() / (hi_random ? peak_rand : peak_seq),
        loj.iops() / (lo_random ? peak_rand : peak_seq)};
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 12: Fairness on a spinning disk (weights 2:1)",
        "Throughput normalized to each access pattern's standalone "
        "peak.\nExpected shape: iocost ~2:1 in all pairings; bfq "
        "ok for seq/seq only;\nmq-deadline unfair throughout.");

    const double peak_rand = standalonePeak(true);
    const double peak_seq = standalonePeak(false);
    std::printf("Standalone peaks: random %s IOPS, sequential %s "
                "IOPS\n\n",
                bench::fmtCount(peak_rand).c_str(),
                bench::fmtCount(peak_seq).c_str());

    struct Scenario
    {
        const char *name;
        bool hiRandom;
        bool loRandom;
    };
    const Scenario scenarios[3] = {{"rand/rand", true, true},
                                   {"rand/seq", true, false},
                                   {"seq/seq", false, false}};

    bench::Table table({"Mechanism", "Scenario",
                        "Hi norm. tput", "Lo norm. tput",
                        "Norm. ratio (target 2.0)"});
    for (const std::string name :
         {"mq-deadline", "bfq", "iocost"}) {
        for (const Scenario &sc : scenarios) {
            const Outcome o = run(name, sc.hiRandom, sc.loRandom,
                                  peak_rand, peak_seq);
            table.row({name, sc.name,
                       bench::fmt("%.2f", o.hiNorm),
                       bench::fmt("%.2f", o.loNorm),
                       bench::fmt("%.1f",
                                  o.hiNorm /
                                      std::max(1e-9, o.loNorm))});
        }
    }
    table.print();
    return 0;
}
