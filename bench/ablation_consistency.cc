/**
 * @file
 * Ablation: the §5 lesson — "SSDs striving for steady throughput
 * and latency are better suited for datacenters".
 *
 * Two devices with the *same average* random-read capability share a
 * latency-sensitive workload and a bulk-writer neighbour: one device
 * is consistent, the other over-performs between firmware hiccups
 * that periodically freeze it (the "high but temporary and
 * unpredictable peak performance" the paper warns about). IOCost's
 * QoS holds the consistent device to tight tails; on the erratic
 * device the hiccups blow through any vrate setting, and the
 * latency-sensitive workload's p99 degrades by an order of
 * magnitude — which is why Meta recommends consistent devices.
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    double lsIops;
    sim::Time lsP50;
    sim::Time lsP99;
    uint64_t hiccups;
};

Outcome
run(bool erratic, const std::string &faults)
{
    sim::Simulator sim(2323);
    device::SsdSpec spec = device::newGenSsd();
    spec.name = erratic ? "erratic-ssd" : "consistent-ssd";
    if (erratic) {
        // ~17% faster when running, frozen 25ms every ~150ms on
        // average: the same mean service capacity, delivered
        // erratically.
        spec.readBaseRand = spec.readBaseRand * 5 / 6;
        spec.readBaseSeq = spec.readBaseSeq * 5 / 6;
        spec.writeBaseRand = spec.writeBaseRand * 5 / 6;
        spec.writeBaseSeq = spec.writeBaseSeq * 5 / 6;
        spec.hiccupMeanInterval = 150 * sim::kMsec;
        spec.hiccupDuration = 25 * sim::kMsec;
    }

    host::HostOptions opts;
    opts.controller = "iocost";
    opts.faults = faults;
    // Both devices run the *consistent* profile's model — the
    // operator cannot model the hiccups (that is the point).
    opts.controller.iocost.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(device::newGenSsd())
            .model);
    opts.controller.iocost.qos.readLatTarget = 500 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 1.0;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    auto *ssd = dynamic_cast<device::SsdModel *>(&host.device());

    const auto ls = host.addWorkload("latency-sensitive", 200);
    const auto bulk = host.addWorkload("bulk-writer", 100);

    workload::FioConfig ls_cfg;
    ls_cfg.arrival = workload::Arrival::Rate;
    ls_cfg.ratePerSec = 20000;
    workload::FioWorkload ls_job(sim, host.layer(), ls, ls_cfg);

    workload::FioConfig bulk_cfg;
    bulk_cfg.readFraction = 0.0;
    bulk_cfg.blockSize = 256 * 1024;
    bulk_cfg.iodepth = 16;
    workload::FioWorkload bulk_job(sim, host.layer(), bulk,
                                   bulk_cfg);

    ls_job.start();
    bulk_job.start();
    sim.runUntil(2 * sim::kSec);
    ls_job.resetStats();
    sim.runUntil(22 * sim::kSec);

    return Outcome{ls_job.iops(), ls_job.latency().quantile(0.5),
                   ls_job.latency().quantile(0.99),
                   ssd->hiccups()};
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    bench::banner(
        "Ablation: device consistency (§5 lesson)",
        "Same-average-capability devices, one erratic (firmware "
        "hiccups): latency-\nsensitive p99 under IOCost. Expected: "
        "the erratic device's tails blow up\ndespite identical "
        "control — consistent devices are better for datacenters.");

    // Warm the shared profiler cache before the paired pool.
    (void)profile::DeviceProfiler::profileSsd(device::newGenSsd());
    const auto outs = host::runPaired(
        2, args.jobs,
        [&](size_t c) { return run(c == 1, args.faults); });

    bench::Table table({"Device", "LS IOPS", "LS p50", "LS p99",
                        "Hiccups injected"});
    for (size_t c = 0; c < outs.size(); ++c) {
        const Outcome &o = outs[c];
        table.row({c == 1 ? "erratic-ssd" : "consistent-ssd",
                   bench::fmtCount(o.lsIops),
                   bench::fmtTime(o.lsP50),
                   bench::fmtTime(o.lsP99),
                   bench::fmt("%.0f", (double)o.hiccups)});
    }
    table.print();
    return 0;
}
