/**
 * @file
 * Ablation: journal priority inversion (§3.5, filesystem side).
 *
 * A shared write-ahead journal serializes metadata from every
 * cgroup. A budget-exhausted flooder keeps triggering commits; an
 * innocent service fsyncs small transactions. The debt mechanism
 * (journal IO issued immediately, charged as debt) keeps the
 * innocent fsync fast; the Inversion ablation (journal IO throttled
 * against the committing cgroup's budget) stalls the pipeline and
 * starves every fsync behind it. bfq is included as the
 * no-MM-integration baseline.
 */

#include <memory>

#include "bench/common.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fs/journal.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    uint64_t issued;
    uint64_t completed;
    sim::Time p50;
    sim::Time p99;
};

Outcome
run(const std::string &controller, core::DebtMode mode,
    const std::string &faults)
{
    sim::Simulator sim(2424);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = controller;
    opts.faults = faults;
    opts.controller.iocost.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(spec).model);
    opts.controller.iocost.qos.vrateMin = 1.0;
    opts.controller.iocost.qos.vrateMax = 1.0;
    opts.controller.iocost.qos.readLatTarget = 1 * sim::kSec;
    opts.controller.iocost.qos.writeLatTarget = 1 * sim::kSec;
    opts.controller.iocost.debtMode = mode;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    fs::JournalConfig jcfg;
    jcfg.maxTxnBytes = 1 << 20;
    fs::Journal journal(sim, host.layer(), jcfg);

    const auto flooder = host.addWorkload("flooder", 100);
    const auto innocent = host.addWorkload("innocent", 100);

    // Flooder: over-budget open-loop data writes plus a steady
    // metadata stream.
    workload::FioConfig flood;
    flood.readFraction = 0.0;
    flood.arrival = workload::Arrival::Rate;
    flood.ratePerSec = 80000;
    workload::FioWorkload flood_job(sim, host.layer(), flooder,
                                    flood);
    flood_job.start();
    sim::PeriodicTimer meta_flood(sim, 5 * sim::kMsec, [&] {
        journal.logMetadata(flooder, 256 << 10);
    });
    meta_flood.start();

    Outcome out{0, 0, 0, 0};
    stat::Histogram fsync_lat;
    sim::PeriodicTimer fsyncs(sim, 50 * sim::kMsec, [&] {
        journal.logMetadata(innocent, 4096);
        const sim::Time t0 = sim.now();
        ++out.issued;
        journal.fsync(innocent, [&, t0] {
            ++out.completed;
            fsync_lat.record(sim.now() - t0);
        });
    });
    fsyncs.start();

    sim.runUntil(20 * sim::kSec);
    out.p50 = fsync_lat.count() ? fsync_lat.quantile(0.5) : 0;
    out.p99 = fsync_lat.count() ? fsync_lat.quantile(0.99) : 0;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    bench::banner(
        "Ablation: journal commit priority inversion (§3.5)",
        "Innocent 4k fsyncs next to a budget-exhausted metadata "
        "flooder sharing the\njournal. Expected: production debt "
        "mode completes every fsync fast; the\ninversion ablation "
        "strands most of them behind throttled commit IO.");

    struct Config
    {
        const char *label;
        const char *controller;
        core::DebtMode mode;
    };
    const Config configs[] = {
        {"iocost (debt)", "iocost", core::DebtMode::Production},
        {"iocost-inversion", "iocost", core::DebtMode::Inversion},
        {"bfq", "bfq", core::DebtMode::Production},
        {"none", "none", core::DebtMode::Production},
    };

    // Warm the shared profiler cache, then run the four configs as
    // paired CRN runs (same seed each) across --jobs workers.
    (void)profile::DeviceProfiler::profileSsd(device::oldGenSsd());
    const size_t n = sizeof(configs) / sizeof(configs[0]);
    const auto outs = host::runPaired(
        n, args.jobs, [&](size_t c) {
            return run(configs[c].controller, configs[c].mode,
                       args.faults);
        });

    bench::Table table({"Configuration", "fsyncs issued",
                        "completed", "p50", "p99 (completed)"});
    for (size_t c = 0; c < n; ++c) {
        const Outcome &o = outs[c];
        table.row({configs[c].label,
                   bench::fmt("%.0f", (double)o.issued),
                   bench::fmt("%.0f", (double)o.completed),
                   bench::fmtTime(o.p50), bench::fmtTime(o.p99)});
    }
    table.print();
    return 0;
}
