/**
 * @file
 * Chaos benchmark: a buffered dirtier floods the page cache and the
 * flusher turns the backlog into a writeback storm, while a
 * protected latency-sensitive reader shares the device (the
 * Figs. 14/15 buffered-IO narrative).
 *
 * The attribution question decides the outcome. With cgroup
 * writeback (chargeWbToDirtier) the flusher's bios carry the
 * dirtying cgroup: iocost force-issues them (writeback must never
 * deadlock behind throttling), books the cost as absolute debt, and
 * collects the debt from the dirtier at return-to-userspace — the
 * write flood pays for itself and the reader's p99 holds.
 * blk-throttle with root-attributed writeback (the historical
 * pre-cgwb blind spot) caps the dirtier's *direct* IO, but every
 * flusher bio escapes the limit as root traffic and the storm
 * swallows the reader's tail.
 *
 * Also a determinism gate for the writeback path: the same seeded
 * run must serialize byte-identical telemetry twice, and a snapshot
 * taken mid-storm must restore and replay to the identical end
 * state. Exits nonzero if any PASS condition fails.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.hh"
#include "controllers/blk_throttle.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "mm/page_cache.hh"
#include "profile/device_profiler.hh"
#include "stat/telemetry.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/** Calm measurement [4s, 8s); the dirtier starts at 8s and the
 *  storm window is measured over [8s, 18s). */
constexpr double kStormStart = 8.0;
constexpr double kStormEnd = 18.0;

struct RunMetrics
{
    sim::Time calmP99 = 0;     ///< web p99 over [4s, 8s)
    sim::Time stormP99 = 0;    ///< web p99 over [8s, 18s)
    uint64_t stormReads = 0;   ///< web completions in the window
    uint64_t dirtied = 0;      ///< bytes buffered-written by batch
    uint64_t wbIssued = 0;     ///< writeback bytes issued for batch
    uint64_t wbToBatch = 0;    ///< wb bios charged to batch
    uint64_t wbToRoot = 0;     ///< wb bios charged to root
    uint64_t stalls = 0;       ///< dirty-wall stalls of the dirtier
    std::string digest;        ///< serialized telemetry
    std::string endState;      ///< snapshot of the final host state
};

/**
 * One 18-second run: web (protected, open-loop 4k random reads) vs
 * batch (a buffered 1M-write dirtier through a 256M page cache)
 * under @p mechanism on a new-gen SSD.
 *
 * @param chargeDirtier cgroup writeback on (wb bios carry the
 *        dirtying cgroup) or off (root attribution).
 * @param snapshotAt when nonzero, snapshot/restore the host at this
 *        time mid-run — the restored run must replay identically.
 */
RunMetrics
runOne(const std::string &mechanism, bool chargeDirtier,
       sim::Time snapshotAt = 0)
{
    sim::Simulator sim(131);
    const device::SsdSpec spec = device::newGenSsd();
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);

    stat::RingSink ring;
    host::HostOptions opts;
    opts.controller = mechanism;
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatQuantile = 0.95;
    opts.controller.iocost.qos.readLatTarget = 300 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 5 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.1;
    opts.controller.iocost.qos.vrateMax = 1.0;
    opts.telemetrySink = &ring;
    opts.enablePageCache = true;
    opts.pageCacheConfig.cacheBytes = 256ull << 20;
    opts.pageCacheConfig.chargeWbToDirtier = chargeDirtier;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto web = host.addWorkload("web", 200);
    const auto batch = host.addWorkload("batch", 100);

    if (mechanism == "blk-throttle") {
        // Static limits on the dirtier's cgroup, generous for its
        // DIRECT IO (it has none — buffered writes land in memory).
        // The flusher's bios are what actually hit the device, and
        // without cgroup writeback they are root traffic the limit
        // never sees.
        auto *thr = dynamic_cast<controllers::BlkThrottle *>(
            host.layer().controller());
        thr->setLimits(batch,
                       {.wiops = prof.seqWriteIops * 0.3});
    }

    workload::FioConfig rf;
    rf.name = "web";
    rf.arrival = workload::Arrival::Rate;
    rf.ratePerSec = 2000;
    workload::FioWorkload reads(sim, host.layer(), web, rf);

    workload::BufferedConfig bc;
    bc.name = "dirtier";
    bc.blockSize = 1 << 20;
    bc.spanBytes = 1ull << 30;
    bc.offsetBase = 1ull << 40;
    bc.thinkTime = 50 * sim::kUsec;
    bc.depth = 4;
    workload::BufferedWorkload dirtier(sim, host.pageCache(),
                                       batch, bc);

    reads.start();

    RunMetrics m;
    // Warmup [0,4s), calm measurement [4s,8s), then the dirtier
    // opens the flood and the storm window [8s,18s) is measured.
    sim.at(4 * sim::kSec, [&] { reads.resetStats(); });
    sim.at(static_cast<sim::Time>(kStormStart * sim::kSec), [&] {
        m.calmP99 = reads.latency().quantile(0.99);
        reads.resetStats();
        dirtier.start();
    });
    if (snapshotAt > 0) {
        sim.runUntil(snapshotAt);
        const host::HostSnapshot snap = host.snapshot();
        host.restore(snap);
    }
    sim.runUntil(
        static_cast<sim::Time>(kStormEnd * sim::kSec));

    m.stormP99 = reads.latency().quantile(0.99);
    m.stormReads = reads.latency().count();
    const mm::CacheCgroupStats &cs = host.pageCache().stats(batch);
    m.dirtied = cs.bufferedWriteBytes;
    m.wbIssued = cs.wbIssuedBytes;
    m.stalls = cs.throttleStalls;
    m.wbToBatch = host.layer().stats(batch).wbWrites;
    m.wbToRoot = host.layer().stats(cgroup::kRoot).wbWrites;
    for (const stat::Record &r : ring.records())
        m.digest += stat::toJsonl(r);
    const host::HostSnapshot end = host.snapshot();
    m.endState.assign(reinterpret_cast<const char *>(
                          end.image().bytes.data()),
                      end.image().bytes.size());
    return m;
}

int
check(bool ok, const char *what)
{
    std::printf("%s  %s\n", ok ? "PASS" : "FAIL", what);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Uniform flag set; this drill pins its own workload shape.
    (void)bench::parseArgs(argc, argv);

    bench::banner(
        "Chaos: dirty-writeback burst vs IO control",
        "A buffered dirtier floods a 256M page cache from t=8s; "
        "the flusher\nturns the backlog into a writeback storm. "
        "iocost with cgroup\nwriteback books the storm as the "
        "dirtier's debt and holds the\nprotected reader's p99; "
        "blk-throttle with root-attributed writeback\nnever sees "
        "the flusher's bios and the reader's tail collapses.");

    const RunMetrics ioc = runOne("iocost", true);
    const RunMetrics thr = runOne("blk-throttle", false);

    bench::Table table({"mechanism", "calm p99", "storm p99",
                        "storm reads", "dirtied", "wb issued",
                        "wb→cg", "wb→root"});
    table.row({"iocost+cgwb", bench::fmtTime(ioc.calmP99),
               bench::fmtTime(ioc.stormP99),
               bench::fmtCount(double(ioc.stormReads)),
               bench::fmtCount(double(ioc.dirtied)),
               bench::fmtCount(double(ioc.wbIssued)),
               bench::fmt("%.0f", double(ioc.wbToBatch)),
               bench::fmt("%.0f", double(ioc.wbToRoot))});
    table.row({"throttle+root", bench::fmtTime(thr.calmP99),
               bench::fmtTime(thr.stormP99),
               bench::fmtCount(double(thr.stormReads)),
               bench::fmtCount(double(thr.dirtied)),
               bench::fmtCount(double(thr.wbIssued)),
               bench::fmt("%.0f", double(thr.wbToBatch)),
               bench::fmt("%.0f", double(thr.wbToRoot))});
    table.print();

    std::printf("\nStorm window: [%.0fs, %.0fs)\n\n", kStormStart,
                kStormEnd);

    int fails = 0;

    // The storm actually happened on both stacks: the unpaced lane
    // laundered many times the cache size through the flusher, and
    // even the debt-paced dirtier cycled the whole cache.
    fails += check(thr.dirtied > (1ull << 30) &&
                       ioc.dirtied > (256ull << 20),
                   "dirtier cycled the cache (unpaced lane >1G)");
    fails += check(ioc.wbIssued > 0 && thr.wbIssued > 0,
                   "flusher issued writeback on both stacks");
    // Without debt pacing nothing slows the dirtier until the hard
    // dirty wall; with it, the wall should never be needed — the
    // debt delay throttles upstream of the wall.
    fails += check(thr.stalls > 0,
                   "dirty wall stalled the unpaced dirtier");
    fails += check(ioc.stalls == 0,
                   "debt pacing kept the cgwb dirtier off the "
                   "dirty wall");

    // Attribution is what differs: cgroup writeback charges the
    // dirtier, root attribution hides the storm from the limit.
    fails += check(ioc.wbToBatch > 0 && ioc.wbToRoot == 0,
                   "cgwb lane charged writeback to the dirtier");
    fails += check(thr.wbToRoot > 0 && thr.wbToBatch == 0,
                   "root lane attributed writeback to the root");

    // The protection story.
    fails += check(ioc.stormP99 <= 8 * sim::kMsec,
                   "iocost holds protected p99 <= 8ms through the "
                   "storm");
    fails += check(thr.stormP99 >= 2 * ioc.stormP99,
                   "blk-throttle storm p99 >= 2x iocost's");
    fails += check(
        ioc.stormReads >=
            uint64_t(2000 * (kStormEnd - kStormStart) * 0.8),
        "iocost reader completed >= 80% of offered rate");

    // Determinism: an identical seeded run replays byte-identically
    // (the digest includes the new wb telemetry source).
    const RunMetrics ioc2 = runOne("iocost", true);
    fails += check(ioc.digest == ioc2.digest && !ioc.digest.empty(),
                   "repeated seeded run is byte-identical");

    // Snapshot mid-storm: restoring the image and replaying to the
    // end must land on the identical host state, with writeback
    // in flight, parked throttled writers, and the flush timer all
    // crossing the snapshot boundary.
    const RunMetrics iocSnap = runOne(
        "iocost", true,
        static_cast<sim::Time>(12 * sim::kSec));
    fails += check(iocSnap.endState == ioc.endState &&
                       !ioc.endState.empty(),
                   "mid-storm snapshot/restore replays to the "
                   "identical end state");

    std::printf("\n%s (%d failing)\n", fails ? "FAIL" : "PASS",
                fails);
    return fails ? 1 : 0;
}
