/**
 * @file
 * Figure 11: Work conservation.
 *
 * Same stack as Fig. 10 but the high-priority workload now issues
 * 4k random reads with 100us think time after each completion, so
 * it cannot use the whole device. A work-conserving controller lets
 * the low-priority workload soak up the slack without wrecking the
 * high-priority latency. The paper's result: bfq gives the most
 * low-priority throughput but with ~250us average / ~1ms stddev
 * high-priority latency; blk-throttle controls latency but pins the
 * low-priority workload at its static cap; iolatency and iocost
 * both conserve work while holding latency.
 */

#include <memory>

#include "bench/common.hh"
#include "controllers/blk_throttle.hh"
#include "controllers/io_latency.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    double hiIops;
    double loIops;
    double hiLatMean;
    double hiLatStddev;
};

Outcome
run(const std::string &mechanism)
{
    sim::Simulator sim(1111);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = mechanism;
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatTarget = 250 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 1.0;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto hi = host.addWorkload("high-priority", 200);
    const auto lo = host.addWorkload("low-priority", 100);

    if (mechanism == "blk-throttle") {
        auto *thr = dynamic_cast<controllers::BlkThrottle *>(
            host.layer().controller());
        const double cap = prof.randReadIops * 0.7;
        thr->setLimits(hi, {.riops = cap * 2 / 3});
        thr->setLimits(lo, {.riops = cap * 1 / 3});
    } else if (mechanism == "iolatency") {
        auto *iolat = dynamic_cast<controllers::IoLatency *>(
            host.layer().controller());
        iolat->setTarget(hi, 200 * sim::kUsec);
        iolat->setTarget(lo, 400 * sim::kUsec);
    }

    // High priority: closed loop, 100us think time.
    workload::FioConfig hi_cfg;
    hi_cfg.arrival = workload::Arrival::ThinkTime;
    hi_cfg.thinkTime = 100 * sim::kUsec;
    hi_cfg.iodepth = 1;
    workload::FioWorkload hij(sim, host.layer(), hi, hi_cfg);

    // Low priority: the p50<200us load shedder from Fig. 10; it
    // should expand into all slack capacity.
    workload::FioConfig lo_cfg;
    lo_cfg.arrival = workload::Arrival::LatencyGoverned;
    lo_cfg.latencyTarget = 200 * sim::kUsec;
    lo_cfg.governMaxDepth = 16;
    workload::FioWorkload loj(sim, host.layer(), lo, lo_cfg);

    hij.start();
    loj.start();
    sim.runUntil(5 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    sim.runUntil(25 * sim::kSec);

    return Outcome{hij.iops(), loj.iops(), hij.latency().mean(),
                   hij.latency().stddev()};
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 11: Work conservation",
        "High-priority 100us-think-time reader + low-priority load "
        "shedder, weights 2:1.\nExpected shape: low-priority soaks "
        "up slack under bfq/iolatency/iocost but is\npinned by "
        "blk-throttle; bfq's high-priority latency is noisy (large "
        "stddev).");

    bench::Table table({"Mechanism", "Hi IOPS", "Lo IOPS",
                        "Hi lat mean", "Hi lat stddev"});
    for (const std::string name :
         {"bfq", "blk-throttle", "iolatency", "iocost"}) {
        const Outcome o = run(name);
        table.row({name, bench::fmtCount(o.hiIops),
                   bench::fmtCount(o.loIops),
                   bench::fmt("%.0fus", o.hiLatMean / 1000.0),
                   bench::fmt("%.0fus", o.hiLatStddev / 1000.0)});
    }
    table.print();
    return 0;
}
