/**
 * @file
 * Table 1: Linux IO control mechanisms and features.
 *
 * Regenerates the paper's capability matrix from the static
 * capability flags each implemented controller reports.
 */

#include "bench/common.hh"
#include "controllers/factory.hh"

int
main()
{
    using namespace iocost;

    bench::banner("Table 1: Linux IO control mechanisms and "
                  "features",
                  "Capability flags reported by each implemented "
                  "mechanism.");

    auto mark = [](bool b) { return b ? "yes" : "no"; };

    bench::Table table({"Mechanism", "Low Overhead",
                        "Work Conserving", "MM-aware",
                        "Proportional Fairness", "cgroup Control"});
    for (const auto &caps : controllers::allCapabilities()) {
        std::string work_conserving = mark(caps.workConserving);
        std::string low_overhead = mark(caps.lowOverhead);
        // The paper marks blk-throttle's overhead and IOLatency's
        // work conservation as "~" (qualified).
        if (caps.name == "blk-throttle")
            low_overhead = "~";
        if (caps.name == "iolatency")
            work_conserving = "~";
        table.row({caps.name, low_overhead, work_conserving,
                   mark(caps.memoryManagementAware),
                   mark(caps.proportionalFairness),
                   mark(caps.cgroupControl)});
    }
    table.print();

    std::printf("Paper Table 1 (for comparison):\n"
                "  kyber, mq-deadline: low-overhead, work-"
                "conserving, no cgroup control\n"
                "  blk-throttle: ~overhead, not work-conserving, "
                "cgroup control\n"
                "  bfq: high overhead, work-conserving, "
                "proportional, cgroup control\n"
                "  iolatency: low-overhead, ~work-conserving, "
                "MM-aware, cgroup control\n"
                "  iocost: all five\n");
    return 0;
}
