/**
 * @file
 * Extension (§6): occupancy pricing for virtual machine monitors.
 *
 * Two equal-share VMs on one hypervisor-scheduled device: a
 * small-random-IO guest (database-ish) and a large-sequential-IO
 * guest (analytics-ish). IOPS-denominated fairness (the
 * PARDA/mClock lineage) equalizes request counts and hands the
 * large-IO guest a multiple of the device time; pricing requests
 * with the IOCost cost model equalizes *device occupancy* — the
 * paper's closing suggestion, demonstrated.
 */

#include <memory>

#include "bench/common.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "vm/hypervisor.hh"

namespace {

using namespace iocost;

struct GuestResult
{
    double iops;
    double occupancyShare;
    sim::Time p99;
};

struct Outcome
{
    GuestResult smallIo;
    GuestResult largeIo;
};

struct Driver
{
    sim::Simulator &sim;
    vm::Hypervisor &hv;
    vm::VmId vm;
    uint32_t size;
    bool random;
    uint64_t cursor = 0;
    sim::Rng rng;
    uint64_t done = 0;
    stat::Histogram lat;

    Driver(sim::Simulator &s, vm::Hypervisor &h, vm::VmId id,
           uint32_t io_size, bool is_random)
        : sim(s), hv(h), vm(id), size(io_size), random(is_random),
          rng(id + 11)
    {}

    void
    issue()
    {
        uint64_t offset;
        if (random) {
            offset = rng.below(1 << 20) * 4096;
        } else {
            offset = (static_cast<uint64_t>(vm + 1) << 40) + cursor;
            cursor += size;
        }
        const sim::Time t0 = sim.now();
        hv.submit(vm, blk::Bio::make(
                          blk::Op::Read, offset, size,
                          cgroup::kRoot,
                          [this, t0](const blk::Bio &) {
                              ++done;
                              lat.record(sim.now() - t0);
                              issue();
                          }));
    }
};

Outcome
run(vm::HvPolicy policy)
{
    sim::Simulator sim(2525);
    device::SsdModel device(sim, device::oldGenSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    vm::Hypervisor hv(
        layer, policy,
        core::CostModel::fromConfig(
            profile::DeviceProfiler::profileSsd(
                device::oldGenSsd())
                .model),
        16);

    const auto small = hv.addVm({"db-vm", 100});
    const auto large = hv.addVm({"analytics-vm", 100});
    Driver ds(sim, hv, small, 4096, true);
    Driver dl(sim, hv, large, 262144, false);
    for (int i = 0; i < 16; ++i) {
        ds.issue();
        dl.issue();
    }
    sim.runUntil(20 * sim::kSec);

    const double total =
        hv.occupancy(small) + hv.occupancy(large);
    Outcome out;
    out.smallIo = GuestResult{ds.done / 20.0,
                              hv.occupancy(small) / total,
                              ds.lat.quantile(0.99)};
    out.largeIo = GuestResult{dl.done / 20.0,
                              hv.occupancy(large) / total,
                              dl.lat.quantile(0.99)};
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    // Uniform flag set; the hypervisor stack drives the device
    // directly (no host fault plumbing), so --faults is ignored.
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    bench::banner(
        "Extension (§6): device-occupancy pricing for VM monitors",
        "Equal-share VMs, 4k random vs 256k sequential reads, one "
        "shared device.\nExpected: IOPS pricing over-serves the "
        "large-IO guest; occupancy pricing\nsplits device time "
        "~50/50.");

    const vm::HvPolicy policies[] = {vm::HvPolicy::IopsShares,
                                     vm::HvPolicy::Occupancy};
    // Warm the shared profiler cache, then run both policies as
    // paired CRN runs (same seed) across --jobs workers.
    (void)profile::DeviceProfiler::profileSsd(device::oldGenSsd());
    const auto outs = host::runPaired(
        2, args.jobs, [&](size_t c) { return run(policies[c]); });

    bench::Table table({"Policy", "Guest", "IOPS",
                        "Occupancy share", "p99"});
    for (size_t c = 0; c < 2; ++c) {
        const Outcome &o = outs[c];
        const char *name = policies[c] == vm::HvPolicy::IopsShares
                               ? "iops-shares"
                               : "occupancy";
        table.row({name, "db-vm (4k rand)",
                   bench::fmtCount(o.smallIo.iops),
                   bench::fmt("%.0f%%",
                              100 * o.smallIo.occupancyShare),
                   bench::fmtTime(o.smallIo.p99)});
        table.row({name, "analytics-vm (256k seq)",
                   bench::fmtCount(o.largeIo.iops),
                   bench::fmt("%.0f%%",
                              100 * o.largeIo.occupancyShare),
                   bench::fmtTime(o.largeIo.p99)});
    }
    table.print();
    return 0;
}
