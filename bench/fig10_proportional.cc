/**
 * @file
 * Figure 10: Proportional control.
 *
 * Two latency-sensitive workloads continuously issue 4k random
 * reads while their observed p50 stays under 200us (load-shedding
 * online services). The high-priority workload is configured for
 * 2x the IO of the low-priority one, on the old-gen SSD. The paper's
 * result: bfq and iolatency skew to ~10:1 (weak latency control /
 * no proportional interface), blk-throttle and iocost hit 2:1.
 */

#include <memory>

#include "bench/common.hh"
#include "controllers/blk_throttle.hh"
#include "controllers/io_latency.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    double hiIops;
    double loIops;
    sim::Time hiP50;
    sim::Time loP50;
};

Outcome
run(const std::string &mechanism)
{
    sim::Simulator sim(1010);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = mechanism;
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatTarget = 250 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 1.0;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto hi = host.addWorkload("high-priority", 200);
    const auto lo = host.addWorkload("low-priority", 100);

    if (mechanism == "blk-throttle") {
        // Static limits preserving the 2:1 split of a conservative
        // share of device capacity (the paper's configuration).
        auto *thr = dynamic_cast<controllers::BlkThrottle *>(
            host.layer().controller());
        const double cap = prof.randReadIops * 0.7;
        thr->setLimits(hi, {.riops = cap * 2 / 3});
        thr->setLimits(lo, {.riops = cap * 1 / 3});
    } else if (mechanism == "iolatency") {
        // Best-effort attempt at a 2:1 distribution via latency
        // targets (no proportional interface exists).
        auto *iolat = dynamic_cast<controllers::IoLatency *>(
            host.layer().controller());
        iolat->setTarget(hi, 200 * sim::kUsec);
        iolat->setTarget(lo, 400 * sim::kUsec);
    }

    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::LatencyGoverned;
    cfg.latencyTarget = 200 * sim::kUsec;
    cfg.governMaxDepth = 16;
    workload::FioWorkload hij(sim, host.layer(), hi, cfg);
    workload::FioWorkload loj(sim, host.layer(), lo, cfg);
    hij.start();
    loj.start();
    sim.runUntil(5 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    sim.runUntil(25 * sim::kSec);

    return Outcome{hij.iops(), loj.iops(),
                   hij.latency().quantile(0.5),
                   loj.latency().quantile(0.5)};
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 10: Proportional control (target hi:lo = 2:1)",
        "Two p50<200us load-shedding 4k random readers on the "
        "old-gen SSD, weights 2:1.\nExpected shape: bfq and "
        "iolatency skew far above 2:1; blk-throttle and iocost\n"
        "hold 2:1.");

    bench::Table table({"Mechanism", "Hi IOPS", "Lo IOPS",
                        "Ratio (target 2.0)", "Hi p50", "Lo p50"});
    for (const std::string name :
         {"bfq", "blk-throttle", "iolatency", "iocost"}) {
        const Outcome o = run(name);
        table.row({name, bench::fmtCount(o.hiIops),
                   bench::fmtCount(o.loIops),
                   bench::fmt("%.1f", o.hiIops /
                                          std::max(1.0, o.loIops)),
                   bench::fmtTime(o.hiP50),
                   bench::fmtTime(o.loP50)});
    }
    table.print();
    return 0;
}
