/**
 * @file
 * Fleet-engine scaling benchmark.
 *
 * Measures the sharded fleet engine's throughput (host-days/sec) at
 * 1k / 10k / 100k hosts, sequential vs parallel, plus the peak RSS
 * of each scale — the tracked evidence for the engine's two claims:
 * linear multicore scaling and O(shards) memory independent of fleet
 * size. Results go to BENCH_fleet.json.
 *
 * The per-slice knobs are deliberately tiny (10ms slices, 64K
 * fetches): the quantity under test is engine overhead — slice
 * setup, streaming folds, shard scheduling — not simulated seconds,
 * and small slices maximize engine work per wall second.
 *
 * `--check-allocs` runs the allocation gate instead: a per-shard
 * steady state (fold + finalize + merge) must perform ZERO heap
 * allocations — the arenas are sized at construction and never
 * touch the allocator again. Exits nonzero on violation (wired into
 * ctest, including the sanitizer tree).
 *
 * Flags: --jobs N (parallel lane worker count, default 4),
 *        --shards N (override auto sharding),
 *        --max-hosts N (skip scales above N, default 100000).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "fleet/fleet_aggregate.hh"
#include "fleet/fleet_scenario.hh"
#include "fleet/fleet_sim.hh"

// ---------------------------------------------------------------
// Heap-allocation counter (same global replacement as perf_kernel):
// one relaxed atomic add per allocation, sampled around the gated
// window by --check-allocs.
// ---------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heapAllocs{0};
}

void *
operator new(std::size_t size)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    const std::size_t a = std::max(static_cast<std::size_t>(align),
                                   sizeof(void *));
    if (posix_memalign(&p, a, size) == 0)
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace iocost;

/** Read a VmXXX line (kB) from /proc/self/status; 0 on failure. */
uint64_t
procStatusKb(const char *key)
{
    FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    uint64_t kb = 0;
    const size_t klen = std::strlen(key);
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, key, klen) == 0 &&
            line[klen] == ':') {
            kb = std::strtoull(line + klen + 1, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return kb;
}

/**
 * Reset the VmHWM peak-RSS watermark to the current RSS. Returns
 * false where /proc/self/clear_refs is unavailable (the recorded
 * peak then covers the whole process lifetime — still an upper
 * bound, just a looser one).
 */
bool
resetPeakRss()
{
    FILE *f = std::fopen("/proc/self/clear_refs", "w");
    if (!f)
        return false;
    const bool ok = std::fputs("5", f) >= 0;
    std::fclose(f);
    return ok;
}

/** Benchmark scenario: small slices, device/workload mix, half the
 *  fleet on IOCost — engine overhead dominates simulated time. */
fleet::FleetScenario
benchScenario(unsigned hosts)
{
    fleet::FleetScenario sc = fleet::FleetScenario::parse(
        "hosts=" + std::to_string(hosts) +
        " days=1 seed=90"
        " migration=0..1:50"
        " devices=A:25,D:25,G:25,H:25"
        " workloads=mixed:50,writeheavy:30,readheavy:20"
        " slice=10ms warmup=10ms"
        " fetch=64K fetch_deadline=5ms"
        " cleanup=4 cleanup_io=4K cleanup_deadline=2ms");
    return sc;
}

struct ScaleResult
{
    unsigned hosts = 0;
    uint64_t hostDays = 0;
    double seqPerSec = 0;
    double parPerSec = 0;
    unsigned jobs = 0;
    unsigned seqShards = 0;
    unsigned parShards = 0;
    uint64_t peakRssKb = 0;
    bool rssIsProcessPeak = false;
};

ScaleResult
runScale(unsigned hosts, unsigned jobs, unsigned shards_flag)
{
    const fleet::FleetScenario sc = benchScenario(hosts);
    ScaleResult r;
    r.hosts = hosts;
    r.jobs = jobs;
    r.rssIsProcessPeak = !resetPeakRss();

    using clock = std::chrono::steady_clock;

    fleet::RunOptions seq;
    seq.jobs = 1;
    seq.shards = shards_flag;
    const auto t0 = clock::now();
    const fleet::FleetAggregate a1 =
        fleet::FleetSim::runScenario(sc, seq);
    const auto t1 = clock::now();
    r.hostDays = a1.hostDays;
    r.seqShards = a1.shards;
    r.seqPerSec =
        static_cast<double>(a1.hostDays) /
        std::chrono::duration<double>(t1 - t0).count();

    fleet::RunOptions par;
    par.jobs = jobs;
    par.shards = shards_flag;
    const auto t2 = clock::now();
    const fleet::FleetAggregate a2 =
        fleet::FleetSim::runScenario(sc, par);
    const auto t3 = clock::now();
    r.parShards = a2.shards;
    r.parPerSec =
        static_cast<double>(a2.hostDays) /
        std::chrono::duration<double>(t3 - t2).count();

    r.peakRssKb = procStatusKb("VmHWM");
    return r;
}

/**
 * --check-allocs: the per-shard steady state — folding host-day
 * outcomes, finalizing the failure series, merging shards — must
 * never touch the heap. All arena storage is sized in the
 * ShardAccumulator constructor; this lane proves the property holds
 * and keeps holding (it runs under ctest in both the Release and
 * sanitizer trees).
 */
int
runCheckAllocs()
{
    const unsigned days = 16;
    fleet::ShardAccumulator a(days);
    fleet::ShardAccumulator b(days);

    fleet::HostDayOutcome ok;
    fleet::HostDayOutcome failed;
    failed.fetchFailed = true;
    failed.cleanupFailed = true;
    failed.fetchTime = sim::kTimeNever;
    failed.cleanupTime = sim::kTimeNever;

    const uint64_t before =
        g_heapAllocs.load(std::memory_order_relaxed);

    for (unsigned d = 0; d < days; ++d) {
        for (unsigned i = 0; i < 256; ++i) {
            // Spread observations across histogram octaves.
            ok.fetchTime =
                static_cast<sim::Time>((i + 1) * 37ull << (i % 20));
            ok.cleanupTime =
                static_cast<sim::Time>((i + 3) * 11ull << (i % 16));
            a.fold(d, (i & 1) != 0, ok);
            b.fold(d, (i & 1) == 0, i % 7 != 0 ? ok : failed);
        }
    }
    a.finalizeSeries();
    b.finalizeSeries();
    a.mergeFrom(b);

    const uint64_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    const uint64_t delta = after - before;

    std::printf("fold+finalize+merge heap allocations: %llu\n",
                static_cast<unsigned long long>(delta));
    if (delta != 0) {
        std::printf("FAIL: per-shard steady state allocated\n");
        return 1;
    }
    // Sanity: the folds actually aggregated.
    const fleet::FleetAggregate agg = a.finish(512, 2, 1);
    if (agg.hostDays != 2ull * days * 256 ||
        agg.fetchTime[fleet::kCtlIoCost].count() == 0) {
        std::printf("FAIL: aggregate counters wrong\n");
        return 1;
    }
    std::printf("PASS: zero-allocation shard steady state\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(argc, argv);
    if (args.checkAllocs)
        return runCheckAllocs();

    bench::banner(
        "Fleet engine scaling: streaming aggregation over shards",
        "Host-days/sec at 1k/10k/100k hosts, sequential vs "
        "parallel, and peak RSS\nper scale (constant-memory "
        "streaming: RSS must not scale with hosts).");

    unsigned jobs = args.jobs;
    if (jobs <= 1)
        jobs = 4;
    const unsigned shards_flag = args.shards;
    const uint64_t max_hosts =
        args.maxHosts != 0 ? args.maxHosts : 100000;

    const unsigned hw = std::max(
        1u, std::thread::hardware_concurrency());

    // Untimed warmup: profiling the device mix is a one-time cost
    // (the engine's shared profile cache); without this it lands
    // inside the first timed sequential run and poisons both the
    // hd/s numbers and the speedup ratio.
    {
        fleet::RunOptions warm;
        warm.jobs = 1;
        (void)fleet::FleetSim::runScenario(benchScenario(32), warm);
    }

    std::vector<ScaleResult> results;
    for (unsigned hosts : {1000u, 10000u, 100000u}) {
        if (hosts > max_hosts)
            continue;
        std::fprintf(stderr, "running %u hosts...\n", hosts);
        results.push_back(runScale(hosts, jobs, shards_flag));
    }
    if (results.empty()) {
        std::fprintf(stderr, "no scales selected\n");
        return 1;
    }

    bench::Table table({"Hosts", "Host-days", "Seq hd/s",
                        "Parallel hd/s", "Jobs", "Speedup",
                        "Peak RSS"});
    for (const ScaleResult &r : results) {
        table.row(
            {bench::fmtCount(r.hosts),
             bench::fmtCount(static_cast<double>(r.hostDays)),
             bench::fmt("%.1f", r.seqPerSec),
             bench::fmt("%.1f", r.parPerSec),
             bench::fmt("%.0f", static_cast<double>(r.jobs)),
             hw > 1 ? bench::fmt("%.2fx", r.parPerSec / r.seqPerSec)
                    : std::string("n/a (1 hw thread)"),
             bench::fmt("%.1fMB",
                        static_cast<double>(r.peakRssKb) /
                            1024.0)});
    }
    table.print();
    std::printf("hardware threads: %u\n", hw);
    const double rss_ratio =
        static_cast<double>(results.back().peakRssKb) /
        static_cast<double>(results.front().peakRssKb);
    std::printf("peak RSS %s -> %s hosts: %.2fx (streaming "
                "aggregation: expected ~1x)\n",
                bench::fmtCount(results.front().hosts).c_str(),
                bench::fmtCount(results.back().hosts).c_str(),
                rss_ratio);

    FILE *json = std::fopen("BENCH_fleet.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"scales\": [\n",
                 hw);
    for (size_t i = 0; i < results.size(); ++i) {
        const ScaleResult &r = results[i];
        // A jobs/seq ratio on a single-hardware-thread box is
        // scheduling noise, not a speedup: emit null (same policy
        // as BENCH_kernel.json).
        char speedup[32];
        if (hw > 1) {
            std::snprintf(speedup, sizeof(speedup), "%.3f",
                          r.parPerSec / r.seqPerSec);
        } else {
            std::snprintf(speedup, sizeof(speedup), "null");
        }
        std::fprintf(
            json,
            "    {\n"
            "      \"hosts\": %u,\n"
            "      \"host_days\": %llu,\n"
            "      \"hostdays_per_sec_seq\": %.2f,\n"
            "      \"hostdays_per_sec_parallel\": %.2f,\n"
            "      \"jobs\": %u,\n"
            "      \"shards_seq\": %u,\n"
            "      \"shards_parallel\": %u,\n"
            "      \"parallel_speedup\": %s,\n"
            "      \"hardware_threads\": %u,\n"
            "      \"peak_rss_kb\": %llu,\n"
            "      \"rss_is_process_peak\": %s\n"
            "    }%s\n",
            r.hosts, static_cast<unsigned long long>(r.hostDays),
            r.seqPerSec, r.parPerSec, r.jobs, r.seqShards,
            r.parShards, speedup, hw,
            static_cast<unsigned long long>(r.peakRssKb),
            r.rssIsProcessPeak ? "true" : "false",
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"rss_ratio_largest_over_smallest\": %.3f\n"
                 "}\n",
                 rss_ratio);
    std::fclose(json);
    std::printf("wrote BENCH_fleet.json\n");
    return 0;
}
