/**
 * @file
 * Figure 9: IO control overhead.
 *
 * Two measurements:
 *
 *  1. Simulated maximum 4k random-read IOPS on the enterprise SSD
 *     with each mechanism installed and *no throttling configured*,
 *     with the submission-path CPU model enabled. Per-bio CPU costs
 *     are calibrated from the paper's kernel measurements (BFQ's
 *     lock-heavy path, mq-deadline's moderate cost, everything else
 *     negligible), so this reproduces the figure's shape: bfq
 *     collapses, mq-deadline loses some, the rest ride the device.
 *
 *  2. Real wall-clock nanoseconds per bio through *this
 *     implementation's* issue path (google-benchmark), documenting
 *     that IOCost's split issue/planning design keeps its fast path
 *     within noise of the trivial schedulers.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

core::IoCostConfig
permissiveIoCost()
{
    // Cost model from the device profile but a wide vrate range and
    // loose latency targets: the controller runs its full issue path
    // without actually throttling (the paper disables QoS here).
    core::IoCostConfig cfg;
    const auto &prof = profile::DeviceProfiler::profileSsd(
        device::enterpriseSsd());
    cfg.model = core::CostModel::fromConfig(prof.model);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 10.0;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    return cfg;
}

double
simulatedMaxIops(const std::string &mechanism)
{
    sim::Simulator sim(909);
    device::SsdSpec spec = device::enterpriseSsd();
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    layer.setSubmissionCpuEnabled(true);
    controllers::ControllerSpec spec_ctl(mechanism);
    spec_ctl.iocost = permissiveIoCost();
    layer.setController(controllers::makeController(spec_ctl));

    const auto cg = tree.create(cgroup::kRoot, "fio");
    workload::FioConfig cfg;
    cfg.iodepth = 512;
    workload::FioWorkload job(sim, layer, cg, cfg);
    job.start();
    sim.runUntil(1 * sim::kSec);
    job.resetStats();
    sim.runUntil(3 * sim::kSec);
    return job.iops();
}

/** Wall-clock cost of one bio through the issue path. */
void
issuePathBenchmark(benchmark::State &state,
                   const std::string &mechanism)
{
    sim::Simulator sim(910);
    device::SsdSpec spec = device::enterpriseSsd();
    spec.jitterSigma = 0.0;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    controllers::ControllerSpec spec_ctl(mechanism);
    spec_ctl.iocost = permissiveIoCost();
    layer.setController(controllers::makeController(spec_ctl));
    const auto cg = tree.create(cgroup::kRoot, "bench");

    uint64_t offset = 0;
    for (auto _ : state) {
        bool done = false;
        layer.submit(blk::Bio::make(
            blk::Op::Read, offset, 4096, cg,
            [&done](const blk::Bio &) { done = true; }));
        offset += 4096;
        // Step the simulation until this bio completes (periodic
        // controller timers keep the queue non-empty, so a full
        // drain would never terminate); completion processing is
        // part of the per-IO cost.
        while (!done)
            sim.events().step();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner(
        "Figure 9: IO control overhead",
        "Max 4k random-read IOPS with each mechanism installed, no "
        "throttling\nconfigured, on the enterprise SSD (device "
        "ceiling ~750k IOPS).\nExpected shape: none ~= kyber ~= "
        "blk-throttle ~= iolatency ~= iocost;\nmq-deadline "
        "moderately lower; bfq collapses to ~170k.");

    bench::Table table({"Mechanism", "Max IOPS", "vs none"});
    double none_iops = 0.0;
    for (const auto &name : controllers::allMechanisms()) {
        const double iops = simulatedMaxIops(name);
        if (name == "none")
            none_iops = iops;
        table.row({name, bench::fmtCount(iops),
                   bench::fmt("%.0f%%",
                              100.0 * iops /
                                  (none_iops > 0 ? none_iops
                                                 : iops))});
    }
    table.print();

    std::printf("Wall-clock cost of this implementation's issue "
                "path per bio follows\n(google-benchmark; "
                "demonstrates the O(1) fast path of the "
                "issue/planning split):\n\n");

    for (const auto &name : controllers::allMechanisms()) {
        benchmark::RegisterBenchmark(
            ("IssuePath/" + name).c_str(),
            [name](benchmark::State &st) {
                issuePathBenchmark(st, name);
            });
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
