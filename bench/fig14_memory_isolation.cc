/**
 * @file
 * Figure 14: Memory-management awareness.
 *
 * A latency-sensitive web server (workload slice, guaranteed
 * resources) is stacked with a leaking process in the system slice.
 * The leak drives reclaim: swap-out writes charged to the leaker,
 * page-in reads for the server's faulted pages, and eventually an
 * OOM kill. Reported is the server's requests-per-second retention
 * versus running alone, on the old-gen and new-gen SSDs. The
 * paper's result: bfq collapses (no latency control or MM
 * integration), mq-deadline isolates poorly, iolatency does
 * moderately well, and iocost keeps the server above ~80%.
 */

#include <memory>

#include "bench/common.hh"
#include "controllers/io_latency.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

double
run(const std::string &mechanism, const device::SsdSpec &spec,
    bool with_leaker)
{
    sim::Simulator sim(1414);

    host::HostOptions opts;
    opts.controller = mechanism;
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.writeLatTarget = 4 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 2.0;
    opts.enableMemory = true;
    opts.memoryConfig.totalBytes = 3ull << 30;
    opts.memoryConfig.swapBytes = 8ull << 30;
    // Only MM-integrated controllers get owner-charged swap IO
    // (cgroup writeback); the rest see root-attributed kswapd IO.
    opts.memoryConfig.chargeSwapToOwner =
        mechanism == "iocost" || mechanism == "iolatency";

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto web_cg = host.addWorkload("web", 100);
    const auto leak_cg = host.addSystemService("leaky-service");

    if (mechanism == "iolatency") {
        auto *iolat = dynamic_cast<controllers::IoLatency *>(
            host.layer().controller());
        iolat->setTarget(web_cg, 2 * sim::kMsec);
    }

    workload::LatencyServerConfig web_cfg;
    web_cfg.name = "web";
    web_cfg.offeredRps = 400;
    web_cfg.workingSetBytes = 2ull << 30; // 2 GB of 3 GB
    web_cfg.touchPerRequest = 2ull << 20;
    web_cfg.readsPerRequest = 3;
    web_cfg.readSize = 32 * 1024;
    web_cfg.logWriteSize = 8192;
    web_cfg.maxConcurrency = 48;
    workload::LatencyServer web(sim, host.layer(), host.mm(),
                                web_cg, web_cfg);

    workload::MemoryHogConfig leak_cfg;
    leak_cfg.mode = workload::HogMode::Leak;
    leak_cfg.leakBytesPerSec = 400e6;
    workload::MemoryHog leaker(sim, host.mm(), leak_cg, leak_cfg);
    host.mm().setOomHandler([&](cgroup::CgroupId cg) {
        if (cg == leak_cg)
            leaker.notifyOomKilled();
    });

    web.prepare([&] {
        web.start();
        if (with_leaker)
            leaker.start();
    });
    sim.runUntil(10 * sim::kSec);
    web.resetStats();
    sim.runUntil(70 * sim::kSec);
    return web.deliveredRps();
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 14: RPS of a latency-sensitive web server stacked "
        "with a memory leak",
        "Retention = stacked RPS / alone RPS per mechanism and "
        "device.\nExpected shape: bfq worst (near-total loss), "
        "mq-deadline poor, iolatency\nmoderate, iocost >= ~80%.");

    bench::Table table({"Device", "Mechanism", "Alone RPS",
                        "Stacked RPS", "Retention"});
    for (const device::SsdSpec &spec :
         {device::oldGenSsd(), device::newGenSsd()}) {
        for (const std::string name :
             {"mq-deadline", "bfq", "iolatency", "iocost"}) {
            const double alone = run(name, spec, false);
            const double stacked = run(name, spec, true);
            table.row({spec.name, name, bench::fmt("%.0f", alone),
                       bench::fmt("%.0f", stacked),
                       bench::fmt("%.0f%%",
                                  100.0 * stacked /
                                      std::max(1.0, alone))});
        }
    }
    table.print();
    return 0;
}
