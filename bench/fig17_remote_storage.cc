/**
 * @file
 * Figure 17: Remote (cloud) block storage protection.
 *
 * Repeats the Fig. 14 experiment inside "VMs" whose block devices
 * are remote volumes: AWS EBS gp3 (3000 IOPS) and io2 (64000 IOPS),
 * and Google Cloud Persistent Disk balanced and SSD. The
 * latency-sensitive workload is ResourceControlBench, stacked with
 * a high-speed memory leaker in a low-priority cgroup; reported is
 * the RPS retention with IOCost enabled in the guest versus no
 * controller. Expected shape: IOCost protects effectively on all
 * four volume types despite their different latency profiles.
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/remote_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

double
run(const device::RemoteSpec &spec, const std::string &mechanism,
    bool with_leaker)
{
    sim::Simulator sim(1717);
    const auto &prof = profile::DeviceProfiler::profileRemote(spec);

    host::HostOptions opts;
    opts.controller = mechanism;
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    // Remote volumes: latency targets scale with the RTT floor.
    opts.controller.iocost.qos.readLatTarget = 8 * spec.baseRtt;
    opts.controller.iocost.qos.writeLatTarget = 12 * spec.baseRtt;
    opts.controller.iocost.qos.period = 25 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 2.0;
    // Provisioned volumes are easily monopolized by a swap flood;
    // pace debtors aggressively at return-to-userspace.
    opts.controller.iocost.qos.debtThreshold = 5 * sim::kMsec;
    opts.controller.iocost.qos.maxUserspaceDelay = 2 * sim::kSec;
    opts.enableMemory = true;
    opts.memoryConfig.totalBytes = 3ull << 30;
    opts.memoryConfig.swapBytes = 8ull << 30;
    opts.memoryConfig.chargeSwapToOwner = mechanism == "iocost";

    host::Host host(
        sim, std::make_unique<device::RemoteModel>(sim, spec),
        opts);
    const auto rcb_cg = host.addWorkload("rcb", 100);
    const auto leak_cg = host.addSystemService("leaker");

    workload::LatencyServerConfig rcb_cfg;
    rcb_cfg.name = "rcb";
    rcb_cfg.offeredRps = 150;
    rcb_cfg.workingSetBytes = 2ull << 30;
    rcb_cfg.touchPerRequest = 1ull << 20;
    rcb_cfg.readsPerRequest = 2;
    rcb_cfg.readSize = 16 * 1024;
    rcb_cfg.logWriteSize = 4096;
    rcb_cfg.maxConcurrency = 64;
    workload::LatencyServer rcb(sim, host.layer(), host.mm(),
                                rcb_cg, rcb_cfg);

    workload::MemoryHogConfig leak_cfg;
    leak_cfg.mode = workload::HogMode::Leak;
    leak_cfg.leakBytesPerSec = 300e6; // high-speed leak
    workload::MemoryHog leaker(sim, host.mm(), leak_cg, leak_cfg);
    host.mm().setOomHandler([&](cgroup::CgroupId cg) {
        if (cg == leak_cg)
            leaker.notifyOomKilled();
    });

    rcb.prepare([&] {
        rcb.start();
        if (with_leaker)
            leaker.start();
    });
    sim.runUntil(10 * sim::kSec);
    rcb.resetStats();
    sim.runUntil(50 * sim::kSec);
    return rcb.deliveredRps();
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 17: Latency-sensitive RPS with a memory leak on "
        "cloud volumes",
        "Retention = stacked RPS / alone RPS; guests run IOCost vs "
        "no controller.\nExpected shape: iocost retains high RPS on "
        "all four volume types; without\ncontrol the leak's swap "
        "flood starves the workload.");

    bench::Table table({"Volume", "Mechanism", "Alone RPS",
                        "Stacked RPS", "Retention"});
    for (const auto &spec : device::cloudVolumes()) {
        for (const std::string name : {"none", "iocost"}) {
            const double alone = run(spec, name, false);
            const double stacked = run(spec, name, true);
            table.row({spec.name, name, bench::fmt("%.0f", alone),
                       bench::fmt("%.0f", stacked),
                       bench::fmt("%.0f%%",
                                  100.0 * stacked /
                                      std::max(1.0, alone))});
        }
    }
    table.print();
    return 0;
}
