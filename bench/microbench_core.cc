/**
 * @file
 * Microbenchmarks of the core data structures and algorithms
 * (google-benchmark, real wall-clock): the donation weight-tree
 * update as a function of hierarchy size, cached vs uncached
 * hweight lookups, histogram recording/quantiles, cost-model
 * evaluation, and event-queue throughput. These quantify the
 * "low overhead" claims of the issue/planning split at the
 * implementation level.
 */

#include <benchmark/benchmark.h>

#include "cgroup/cgroup_tree.hh"
#include "core/cost_model.hh"
#include "core/donation.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stat/histogram.hh"

namespace {

using namespace iocost;

/** Build a two-level tree with `leaves` active leaves. */
cgroup::CgroupTree
buildTree(int leaves, std::vector<cgroup::CgroupId> &out_leaves)
{
    cgroup::CgroupTree tree;
    const int groups = std::max(1, leaves / 8);
    std::vector<cgroup::CgroupId> mids;
    for (int g = 0; g < groups; ++g) {
        mids.push_back(tree.create(cgroup::kRoot,
                                   "g" + std::to_string(g),
                                   100 + g));
    }
    for (int l = 0; l < leaves; ++l) {
        const auto leaf = tree.create(
            mids[static_cast<size_t>(l) % mids.size()],
            "l" + std::to_string(l), 50 + l % 200);
        tree.setActive(leaf, true);
        out_leaves.push_back(leaf);
    }
    return tree;
}

void
BM_DonationPass(benchmark::State &state)
{
    const int leaves = static_cast<int>(state.range(0));
    std::vector<cgroup::CgroupId> leaf_ids;
    cgroup::CgroupTree tree = buildTree(leaves, leaf_ids);

    // A quarter of the leaves donate half their share.
    std::vector<core::DonorTarget> donors;
    for (size_t i = 0; i < leaf_ids.size(); i += 4) {
        donors.push_back(core::DonorTarget{
            leaf_ids[i], tree.hweightActive(leaf_ids[i]) * 0.5});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::applyDonation(tree, donors));
    }
    state.SetItemsProcessed(state.iterations() * leaves);
}

void
BM_HweightCached(benchmark::State &state)
{
    std::vector<cgroup::CgroupId> leaf_ids;
    cgroup::CgroupTree tree = buildTree(256, leaf_ids);
    tree.hweightInuse(leaf_ids[17]); // warm the cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.hweightInuse(leaf_ids[17]));
    }
}

void
BM_HweightRecompute(benchmark::State &state)
{
    std::vector<cgroup::CgroupId> leaf_ids;
    cgroup::CgroupTree tree = buildTree(256, leaf_ids);
    uint32_t w = 100;
    for (auto _ : state) {
        // Invalidate the tree-wide cache each round.
        tree.setWeight(leaf_ids[3], 100 + (w++ % 7));
        benchmark::DoNotOptimize(tree.hweightInuse(leaf_ids[17]));
    }
}

void
BM_CostModelEvaluate(benchmark::State &state)
{
    const core::CostModel model =
        core::CostModel::fromConfig(core::LinearModelConfig{});
    uint32_t size = 4096;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.cost(blk::Op::Read, (size & 1) == 0, size));
        size = (size % 262144) + 4096;
    }
}

void
BM_HistogramRecord(benchmark::State &state)
{
    stat::Histogram h;
    sim::Rng rng(5);
    for (auto _ : state) {
        h.record(static_cast<int64_t>(rng.below(10'000'000)));
    }
}

void
BM_HistogramQuantile(benchmark::State &state)
{
    stat::Histogram h;
    sim::Rng rng(6);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<int64_t>(rng.logNormal(100e3, 1.0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.quantile(0.99));
    }
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1024; ++i) {
            q.scheduleAt(i * 7 % 997, [&sink] { ++sink; });
        }
        q.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

BENCHMARK(BM_DonationPass)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_HweightCached);
BENCHMARK(BM_HweightRecompute);
BENCHMARK(BM_CostModelEvaluate);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_HistogramQuantile);
BENCHMARK(BM_EventQueueScheduleRun);

} // namespace

BENCHMARK_MAIN();
