/**
 * @file
 * Ablation: planning-period granularity (§3.1.2).
 *
 * IOCost's split design runs donation/vrate control on a periodic
 * slow path. This sweep runs the Fig. 10 proportional-control
 * scenario at different planning periods and reports how precisely
 * the 2:1 split holds and how the workloads' latency behaves:
 * too-long periods react slowly (stale donations, slow vrate
 * convergence), too-short periods churn weights on noisy usage
 * samples.
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    double ratio;
    double totalIops;
    sim::Time hiP95;
};

Outcome
run(sim::Time period)
{
    sim::Simulator sim(2121);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = "iocost";
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.readLatTarget = 250 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.period = period;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 1.0;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto hi = host.addWorkload("hi", 200);
    const auto lo = host.addWorkload("lo", 100);

    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::LatencyGoverned;
    cfg.latencyTarget = 200 * sim::kUsec;
    cfg.governMaxDepth = 16;
    workload::FioWorkload hij(sim, host.layer(), hi, cfg);
    workload::FioWorkload loj(sim, host.layer(), lo, cfg);
    hij.start();
    loj.start();
    sim.runUntil(3 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    sim.runUntil(18 * sim::kSec);
    return Outcome{hij.iops() / std::max(1.0, loj.iops()),
                   hij.iops() + loj.iops(),
                   hij.latency().quantile(0.95)};
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: planning period sweep",
        "Fig. 10 proportional scenario at different planning "
        "periods (target ratio 2.0).");

    bench::Table table({"Period", "Ratio (target 2.0)",
                        "Total IOPS", "Hi p95"});
    for (sim::Time period :
         {2 * sim::kMsec, 5 * sim::kMsec, 10 * sim::kMsec,
          25 * sim::kMsec, 50 * sim::kMsec, 100 * sim::kMsec,
          250 * sim::kMsec}) {
        const Outcome o = run(period);
        table.row({bench::fmtTime(period),
                   bench::fmt("%.2f", o.ratio),
                   bench::fmtCount(o.totalIops),
                   bench::fmtTime(o.hiP95)});
    }
    table.print();
    return 0;
}
