/**
 * @file
 * Ablation: planning-period granularity (§3.1.2).
 *
 * IOCost's split design runs donation/vrate control on a periodic
 * slow path, so its reaction time to load shifts is bounded by the
 * planning period. A latency-sensitive reader shares the device
 * with a bulk writer that bursts on/off every 500ms; every planning
 * period from 2ms to 250ms observes the *identical* submission and
 * device-outcome stream (common random numbers, host::runSweep), so
 * the per-period deltas isolate the planner alone: short periods
 * clamp vrate within a burst and protect the reader's tail, while
 * long periods steer with stale information for a large fraction of
 * each burst.
 *
 * Unlike the old per-period re-run loop, the offered load is drawn
 * once under the pass-through generator (not each config's own
 * closed loop), so config deltas carry no seed noise.
 */

#include <algorithm>
#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    double readerIops;
    sim::Time readerP95;
    sim::Time readerP99;
    double burstMbps;
};

constexpr double kMeasureSecs = 15.0;

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    bench::banner(
        "Ablation: planning period sweep",
        "Latency-sensitive reader vs a bulk writer bursting on/off "
        "every 500ms, one\nshared CRN stream (host::runSweep): every "
        "planning period sees identical\nsubmissions and device "
        "outcomes. Expected: short periods clamp vrate within\na "
        "burst and hold the reader's tail; long periods react "
        "stalely.");

    const sim::Time periods[] = {
        2 * sim::kMsec,  5 * sim::kMsec,   10 * sim::kMsec,
        25 * sim::kMsec, 50 * sim::kMsec,  100 * sim::kMsec,
        250 * sim::kMsec};

    host::SweepOptions sopts;
    for (sim::Time period : periods) {
        sopts.specs.push_back(bench::fmt(
            "iocost rlat=250 wlat=2000 min=25 max=100 period=%.0f",
            sim::toMicros(period)));
    }
    sopts.makeDevice = [](sim::Simulator &sim) {
        return std::make_unique<device::SsdModel>(
            sim, device::oldGenSsd());
    };
    sopts.faults = args.faults;

    // Profile once up front (the profiler cache is not built for
    // concurrent first use) and inject the model into every lane
    // spec; the specs themselves carry only qos + period keys.
    const core::CostModel model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(device::oldGenSsd())
            .model);
    sopts.tweakSpec = [&model](const std::string &,
                               controllers::ControllerSpec &spec) {
        spec.iocost.model = model;
    };

    auto body = [](sim::Simulator &sim, host::SweepRunner &runner) {
        runner.addWorkload("reader", 200);
        runner.addWorkload("burst", 100);
        const auto &cgs = runner.workloadCgroups();

        workload::FioConfig reader_cfg;
        reader_cfg.arrival = workload::Arrival::Rate;
        reader_cfg.ratePerSec = 15000;
        workload::FioWorkload reader(sim, runner.layer(),
                                     cgs[0].second, reader_cfg);

        workload::FioConfig burst_cfg;
        burst_cfg.readFraction = 0.0;
        burst_cfg.blockSize = 256 * 1024;
        burst_cfg.iodepth = 32;
        workload::FioWorkload burst(sim, runner.layer(),
                                    cgs[1].second, burst_cfg);

        reader.start();
        burst.start();
        bool burst_on = true;
        sim::PeriodicTimer toggle(sim, 500 * sim::kMsec, [&] {
            burst_on = !burst_on;
            if (burst_on)
                burst.start();
            else
                burst.stop();
        });
        toggle.start();

        sim.runUntil(3 * sim::kSec);
        runner.resetStats();
        sim.runUntil(18 * sim::kSec);
    };

    auto collect = [](host::SweepRunner &runner, size_t lane,
                      size_t) {
        const auto &cgs = runner.workloadCgroups();
        blk::BlockLayer &layer = runner.laneLayer(lane);
        const auto &rd = layer.stats(cgs[0].second);
        const auto &wr = layer.stats(cgs[1].second);
        return Outcome{
            (rd.reads + rd.writes) / kMeasureSecs,
            rd.totalLatency.quantile(0.95),
            rd.totalLatency.quantile(0.99),
            8.0 * (wr.readBytes + wr.writeBytes) /
                (kMeasureSecs * 8e6)};
    };

    const std::vector<Outcome> outcomes =
        host::runSweep(sopts, 2121, args.jobs, body, collect);

    bench::Table table({"Period", "Reader IOPS", "Reader p95",
                        "Reader p99", "Burst MB/s"});
    for (size_t i = 0; i < outcomes.size(); ++i) {
        table.row({bench::fmtTime(periods[i]),
                   bench::fmtCount(outcomes[i].readerIops),
                   bench::fmtTime(outcomes[i].readerP95),
                   bench::fmtTime(outcomes[i].readerP99),
                   bench::fmt("%.1f", outcomes[i].burstMbps)});
    }
    table.print();
    return 0;
}
