/**
 * @file
 * Simulation-kernel performance baseline.
 *
 * Measures the three hot paths every figure reproduction is built
 * on — sustained schedule+fire throughput, a cancel-heavy mix, and
 * fleet host-days/sec (sequential and `--jobs 4`) — and writes the
 * numbers to BENCH_kernel.json so subsequent PRs have a tracked perf
 * trajectory to beat.
 *
 * To keep the comparison honest across PRs, the seed kernel (the
 * pre-pooled-slot EventQueue: shared_ptr<bool> tombstone per event,
 * std::function callbacks, entry copy on pop) is replicated verbatim
 * in namespace `legacy` below and run against the identical
 * workload. That replica is a pinned baseline: do not "fix" it.
 *
 * Wall-clock numbers move with the machine; the speedup ratios are
 * the tracked quantities.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "host/device_factory.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "mm/page_cache.hh"
#include "stat/telemetry.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

// Sanitizer instrumentation costs ~10x on the bio path, so absolute
// throughput floors don't transfer from the Release-recorded
// baseline to an IOCOST_SANITIZE tree; build-relative checks (allocs
// per bio, pooled-vs-seed-lane ratio) remain meaningful everywhere.
#if defined(__SANITIZE_ADDRESS__)
#define IOCOST_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IOCOST_BENCH_SANITIZED 1
#endif
#endif

// ---------------------------------------------------------------
// Heap-allocation counter: global operator new/delete replacement.
// Every path through the allocator bumps one relaxed atomic, which
// the bio-path benchmark samples around its measured window to
// compute allocations per bio (the tracked "zero steady-state
// allocations" property). Counting costs one uncontended atomic
// add per allocation — noise for a benchmark whose entire point is
// that the hot path performs no allocations at all.
// ---------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heapAllocs{0};
}

void *
operator new(std::size_t size)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    // posix_memalign, not aligned_alloc: the latter demands
    // size % alignment == 0, which new-expressions don't guarantee.
    void *p = nullptr;
    const std::size_t a = std::max(static_cast<std::size_t>(align),
                                   sizeof(void *));
    if (posix_memalign(&p, a, size) == 0)
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace legacy {

using iocost::sim::Time;
using iocost::sim::kTimeNever;

/** The seed kernel, replicated as a pinned perf baseline. */
class EventQueue;

class EventHandle
{
  public:
    EventHandle() = default;
    void
    cancel()
    {
        if (alive_)
            *alive_ = false;
    }
    bool
    pending() const
    {
        return alive_ && *alive_;
    }

  private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive))
    {}
    std::shared_ptr<bool> alive_;
};

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventHandle
    scheduleAt(Time when, Callback cb)
    {
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{when, nextSeq_++, alive, std::move(cb)});
        return EventHandle(std::move(alive));
    }

    EventHandle
    scheduleAfter(Time delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    Time now() const { return now_; }

    bool
    step()
    {
        prune();
        if (heap_.empty())
            return false;
        Entry e = heap_.top(); // seed behavior: full copy on pop
        heap_.pop();
        *e.alive = false;
        now_ = e.when;
        e.cb();
        return true;
    }

    uint64_t
    runAll()
    {
        uint64_t executed = 0;
        while (step())
            ++executed;
        return executed;
    }

  private:
    struct Entry
    {
        Time when;
        uint64_t seq;
        std::shared_ptr<bool> alive;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    void
    prune()
    {
        while (!heap_.empty() && !*heap_.top().alive)
            heap_.pop();
    }
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Time now_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace legacy

namespace {

using namespace iocost;

/**
 * Events in flight per refill cycle, sized like a busy single-host
 * simulation: saturating read/write jobs at iodepth 32..96 plus
 * controller timers keep a few hundred events pending at once.
 */
constexpr int kBatch = 256;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Callback payload sized like the codebase's real call sites: an
 * object pointer plus a few values (Bio completion closures,
 * sim.after captures). Deliberately larger than std::function's
 * 16-byte inline buffer and within InlineCallback's 48 — the gap the
 * kernel rework targets.
 */
struct FireCb
{
    uint64_t *fired;
    uint64_t a, b, c;
    void
    operator()() const
    {
        *fired += 1 + ((a ^ b ^ c) & 0); // keep the payload live
    }
};

/**
 * Sustained schedule+fire: refill a kBatch-deep batch of events with
 * pseudo-random firing times, drain, repeat. Identical workload for
 * both kernels.
 */
template <typename Queue>
double
scheduleFireRate(uint64_t total)
{
    Queue q;
    uint64_t fired = 0;
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    const auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (int i = 0; i < kBatch; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            q.scheduleAfter(
                static_cast<sim::Time>((lcg >> 33) % 1000),
                FireCb{&fired, lcg, lcg >> 7, lcg >> 13});
        }
        q.runAll();
    }
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(fired) / seconds(t0, t1);
}

/**
 * FireCb plus a telemetry emit against a sinkless (disabled) bus —
 * what every publisher-instrumented hot path pays when nobody is
 * listening. The tracked ratio against the plain FireCb run must
 * stay ~1.0: disabled telemetry is one pointer test.
 */
struct TelFireCb
{
    uint64_t *fired;
    stat::Telemetry *tel;
    uint64_t a, b;
    void
    operator()() const
    {
        tel->emit(static_cast<sim::Time>(a), "bench",
                  stat::kNoCgroup, "fire", 1.0);
        *fired += 1 + ((a ^ b) & 0);
    }
};

/** scheduleFireRate with the disabled-telemetry callback. */
template <typename Queue>
double
scheduleFireTelemetryRate(uint64_t total)
{
    Queue q;
    stat::Telemetry tel; // no sink installed
    uint64_t fired = 0;
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    const auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (int i = 0; i < kBatch; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            q.scheduleAfter(
                static_cast<sim::Time>((lcg >> 33) % 1000),
                TelFireCb{&fired, &tel, lcg, lcg >> 7});
        }
        q.runAll();
    }
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(fired) / seconds(t0, t1);
}

/**
 * Cancel-heavy mix: schedule a batch, cancel every other event via
 * its handle, drain the survivors. Ops = schedules + cancels.
 */
template <typename Queue>
double
cancelHeavyRate(uint64_t total)
{
    Queue q;
    uint64_t fired = 0;
    uint64_t ops = 0;
    uint64_t lcg = 0x9E3779B97F4A7C15ull;
    std::vector<decltype(q.scheduleAfter(0, [] {}))> handles;
    handles.reserve(kBatch);
    const auto t0 = std::chrono::steady_clock::now();
    while (ops < total) {
        handles.clear();
        for (int i = 0; i < kBatch; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            handles.push_back(q.scheduleAfter(
                static_cast<sim::Time>((lcg >> 33) % 1000),
                FireCb{&fired, lcg, lcg >> 7, lcg >> 13}));
        }
        for (size_t i = 0; i < handles.size(); i += 2)
            handles[i].cancel();
        q.runAll();
        ops += kBatch + kBatch / 2;
    }
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(ops) / seconds(t0, t1);
}

struct Comparison
{
    double current;  ///< median rate, current kernel
    double legacy;   ///< median rate, seed replica
    double speedup;  ///< median of per-rep paired ratios
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Run current and legacy back-to-back within each rep and take the
 * median of the paired ratios: machine-load swings hit both sides of
 * a pair roughly equally, which makes the ratio far more stable than
 * comparing independently-timed blocks.
 */
template <typename CurFn, typename LegFn>
Comparison
compare(int reps, CurFn cur, LegFn leg)
{
    std::vector<double> c, l, ratio;
    for (int r = 0; r < reps; ++r) {
        c.push_back(cur());
        l.push_back(leg());
        ratio.push_back(c.back() / l.back());
    }
    return Comparison{median(c), median(l), median(ratio)};
}

/** Fleet config matching the determinism test's scale. */
fleet::FleetConfig
fleetConfig()
{
    fleet::FleetConfig cfg;
    cfg.hosts = 8;
    cfg.days = 6;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 5;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.seed = 2022;
    return cfg;
}

double
fleetRate(unsigned jobs)
{
    const fleet::FleetConfig cfg = fleetConfig();
    const auto t0 = std::chrono::steady_clock::now();
    const auto days = fleet::FleetSim::run(cfg, jobs);
    const auto t1 = std::chrono::steady_clock::now();
    if (days.size() != cfg.days)
        return 0.0; // should be impossible; poisons the JSON visibly
    return static_cast<double>(cfg.hosts) * cfg.days /
           seconds(t0, t1);
}

// ---------------------------------------------------------------
// Bio-path benchmark: the full submit → iocost throttle → dispatch
// → complete pipeline against the SSD model, closed-loop at fixed
// iodepth, with heap allocations counted per completed bio.
// ---------------------------------------------------------------

/** Fig. 9-shaped permissive IOCost: full issue path, no throttling. */
core::IoCostConfig
permissiveIoCost()
{
    core::IoCostConfig cfg;
    const auto &prof = profile::DeviceProfiler::profileSsd(
        device::enterpriseSsd());
    cfg.model = core::CostModel::fromConfig(prof.model);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 10.0;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    return cfg;
}

struct BioPathResult
{
    double biosPerSec;
    double allocsPerBio;
};

/**
 * Closed-loop random-read driver: each completion reissues, keeping
 * kDepth bios in flight through the full controller pipeline.
 *
 * In seed-shaped mode the run replicates the pre-pool tree's per-bio
 * allocator traffic: BioPool bypass (every Bio::make heap-allocates,
 * as make_unique did) plus two shared_ptr<BioPtr> trampolines whose
 * lifetime matches the ones the submit paths used to allocate — the
 * structural trampolines themselves are gone, so their cost is
 * replicated rather than re-created. Do not "fix" this lane; it is
 * the pinned baseline.
 */
class BioPathDriver
{
  public:
    static constexpr unsigned kDepth = 32;
    static constexpr uint32_t kBioBytes = 16 * 1024;

    BioPathDriver(sim::Simulator &sim, blk::BlockLayer &layer,
                  cgroup::CgroupId cg, bool seed_shaped)
        : sim_(sim), layer_(layer), cg_(cg),
          seedShaped_(seed_shaped)
    {}

    void
    runUntil(uint64_t target_completed)
    {
        while (completed_ < target_completed)
            sim_.events().step();
    }

    void
    prime(uint64_t total_issues)
    {
        toIssue_ = total_issues;
        for (unsigned i = 0; i < kDepth && toIssue_ > 0; ++i) {
            --toIssue_;
            issueOne();
        }
    }

    uint64_t completed() const { return completed_; }

  private:
    void
    issueOne()
    {
        lcg_ = lcg_ * 6364136223846793005ull +
               1442695040888963407ull;
        const uint64_t offset =
            ((lcg_ >> 24) % (1ull << 20)) * kBioBytes;
        blk::BioEndFn done;
        if (seedShaped_) {
            auto t1 = std::make_shared<blk::BioPtr>();
            auto t2 = std::make_shared<blk::BioPtr>();
            done = [this, t1 = std::move(t1),
                    t2 = std::move(t2)](const blk::Bio &) {
                onComplete();
            };
        } else {
            done = [this](const blk::Bio &) { onComplete(); };
        }
        layer_.submit(blk::Bio::make(blk::Op::Read, offset,
                                     kBioBytes, cg_,
                                     std::move(done)));
    }

    void
    onComplete()
    {
        ++completed_;
        if (toIssue_ > 0) {
            --toIssue_;
            issueOne();
        }
    }

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    cgroup::CgroupId cg_;
    bool seedShaped_;
    uint64_t lcg_ = 0x2545F4914F6CDD1Dull;
    uint64_t toIssue_ = 0;
    uint64_t completed_ = 0;
};

/**
 * Pinned pre-PR bio-path throughput: the identical closed-loop probe
 * (same stack, depth, LCG offsets and warmup) compiled against the
 * pre-pool tree, run interleaved A/B with the pooled build on the
 * recording machine; this is the median of 30 reps. The seed-shaped
 * lane below replays only the pre-PR *allocation* behaviour on
 * today's kernel, so its paired ratio isolates the allocation win;
 * this constant anchors the end-to-end claim (pool + inline
 * callbacks + channel heap + histogram inlining together).
 */
constexpr double kPrePrBiosPerSec = 3'818'116.0;

/**
 * One bio-path run: build the Fig. 9 stack (submission CPU model on,
 * permissive IOCost, jitter-free enterprise SSD), warm up until every
 * arena/vector/histogram reached capacity, then time a measured
 * window and report bios/sec plus heap allocations per bio.
 */
BioPathResult
bioPathRun(uint64_t measured_bios, bool seed_shaped)
{
    constexpr uint64_t kWarmupBios = 50'000;

    blk::BioPool::setBypass(seed_shaped);

    BioPathResult out{};
    {
        sim::Simulator sim(4242);
        device::SsdSpec spec = device::enterpriseSsd();
        spec.jitterSigma = 0.0;
        spec.hiccupMeanInterval = 0;
        device::SsdModel device(sim, spec);
        cgroup::CgroupTree tree;
        blk::BlockLayer layer(sim, device, tree);
        layer.setSubmissionCpuEnabled(true);
        controllers::ControllerSpec spec_ctl("iocost");
        spec_ctl.iocost = permissiveIoCost();
        layer.setController(controllers::makeController(spec_ctl));
        const auto cg = tree.create(cgroup::kRoot, "bench");

        BioPathDriver drv(sim, layer, cg, seed_shaped);
        drv.prime(kWarmupBios + measured_bios);
        drv.runUntil(kWarmupBios);

        const uint64_t a0 =
            g_heapAllocs.load(std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        drv.runUntil(kWarmupBios + measured_bios);
        const auto t1 = std::chrono::steady_clock::now();
        const uint64_t a1 =
            g_heapAllocs.load(std::memory_order_relaxed);

        out.biosPerSec =
            static_cast<double>(measured_bios) / seconds(t0, t1);
        out.allocsPerBio = static_cast<double>(a1 - a0) /
                           static_cast<double>(measured_bios);
    }
    blk::BioPool::setBypass(false);
    return out;
}

/**
 * Retry-path variant of the bio-path run: a FaultInjector fails 20%
 * of requests and the layer requeues them with backoff. The tracked
 * property is that the error path — status propagation, the backoff
 * reschedule (a BioPtr captured into the event's inline storage),
 * and the requeue re-dispatch — is as allocation-free as the happy
 * path.
 */
BioPathResult
retryPathRun(uint64_t measured_bios, uint64_t *retries_out)
{
    constexpr uint64_t kWarmupBios = 50'000;

    BioPathResult out{};
    {
        sim::Simulator sim(4242);
        device::SsdSpec spec = device::enterpriseSsd();
        spec.jitterSigma = 0.0;
        spec.hiccupMeanInterval = 0;
        device::SsdModel device(sim, spec);

        sim::FaultPlan plan;
        plan.windows.push_back(sim::FaultWindow{
            sim::FaultKind::ErrorRate, 0, 3600 * sim::kSec, 0.2});
        sim::FaultInjector faults(std::move(plan));
        device.setFaultInjector(&faults);

        cgroup::CgroupTree tree;
        blk::BlockLayer layer(sim, device, tree);
        layer.setSubmissionCpuEnabled(true);
        blk::BlockLayer::RetryPolicy retry;
        retry.maxRetries = 4;
        retry.backoffBase = 20 * sim::kUsec;
        layer.setRetryPolicy(retry);
        controllers::ControllerSpec spec_ctl("iocost");
        spec_ctl.iocost = permissiveIoCost();
        layer.setController(controllers::makeController(spec_ctl));
        const auto cg = tree.create(cgroup::kRoot, "bench");

        BioPathDriver drv(sim, layer, cg, false);
        drv.prime(kWarmupBios + measured_bios);
        drv.runUntil(kWarmupBios);

        const uint64_t r0 = layer.retries();
        const uint64_t a0 =
            g_heapAllocs.load(std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        drv.runUntil(kWarmupBios + measured_bios);
        const auto t1 = std::chrono::steady_clock::now();
        const uint64_t a1 =
            g_heapAllocs.load(std::memory_order_relaxed);

        out.biosPerSec =
            static_cast<double>(measured_bios) / seconds(t0, t1);
        out.allocsPerBio = static_cast<double>(a1 - a0) /
                           static_cast<double>(measured_bios);
        if (retries_out)
            *retries_out = layer.retries() - r0;
    }
    return out;
}

// ---------------------------------------------------------------
// Sweep benchmark: K-way common-random-numbers execution
// (host/sweep.hh). Tracked quantities: single-pass K=4 vs four
// sequential plain runs (wall-clock) on a divergent clamp ladder, a
// coherent K=8 QoS grid (the batch fast path's best case),
// config-delta variance under CRN vs independent seeds, and
// allocations per generator bio through the K-way clone → throttle
// → replay → complete loop.
// ---------------------------------------------------------------

/**
 * The divergent ladder: against the profiled enterprise-SSD cost
 * model, min=100/min=50 never bind, min=25 throttles the writer
 * hard and min=10 starves it — the lanes' dispatch schedules
 * genuinely diverge, which is the expensive case for single-pass
 * execution (a lane that dispatches after the generator recorded
 * the outcome resolves on its own submit path and cannot share the
 * batched completion event).
 */
const std::vector<std::string> kSweepSpecs = {
    "iocost min=100 max=100", "iocost min=50 max=50",
    "iocost min=25 max=25", "iocost min=10 max=10"};

/**
 * A coherent grid: 2 non-binding clamps x 4 planning periods, the
 * shape of a fig.13-style parameter exploration where most points
 * sit in the flat region. All lanes stay in submission lockstep, so
 * nearly every generator bio completes in all 8 lanes via one
 * batched event — the sweep's best case, reported separately from
 * the divergent ladder above precisely because the two differ.
 */
std::vector<std::string>
sweepGridSpecs()
{
    std::vector<std::string> grid;
    for (const char *clamp : {"min=100 max=100", "min=50 max=50"}) {
        for (const char *period :
             {"50000", "100000", "200000", "400000"}) {
            grid.push_back(std::string("iocost ") + clamp +
                           " period=" + period);
        }
    }
    return grid;
}

host::SweepOptions
sweepOptions(std::vector<std::string> specs)
{
    host::SweepOptions o;
    o.specs = std::move(specs);
    o.makeDevice = [](sim::Simulator &sim) {
        return std::make_unique<device::SsdModel>(
            sim, device::enterpriseSsd());
    };
    o.reserveBios = 400'000;
    // The submission-path CPU cost is host state, not controller
    // state: the single-pass sweep pays it once on the generator
    // where four sequential runs pay it four times.
    o.submissionCpu = true;
    // Profile once (cached) and inject the model; the spec lines
    // themselves carry only vrate clamps.
    const core::CostModel model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(device::enterpriseSsd())
            .model);
    o.tweakSpec = [model](const std::string &,
                          controllers::ControllerSpec &spec) {
        spec.iocost.model = model;
    };
    return o;
}

/**
 * Contended two-slice workload: a rate-arrival reader against a
 * rate-arrival bulk writer. Both slices are open loop on purpose —
 * the generator offers the *same* bio stream no matter how hard any
 * lane throttles, so single-pass and sequential runs execute
 * identical work and the wall-clock comparison is fair. (A
 * closed-loop writer collapses under a binding clamp and makes the
 * throttled sequential runs artificially cheap.)
 */
void
sweepBenchBody(sim::Simulator &sim, host::SweepRunner &runner,
               sim::Time run_for, double bulk_rate)
{
    runner.addWorkload("app", 200);
    runner.addWorkload("bulk", 100);
    const auto &cgs = runner.workloadCgroups();

    workload::FioConfig app_cfg;
    app_cfg.arrival = workload::Arrival::Rate;
    app_cfg.ratePerSec = 20000;
    workload::FioWorkload app(sim, runner.layer(), cgs[0].second,
                              app_cfg);

    workload::FioConfig bulk_cfg;
    bulk_cfg.readFraction = 0.0;
    bulk_cfg.blockSize = 64 * 1024;
    bulk_cfg.arrival = workload::Arrival::Rate;
    bulk_cfg.ratePerSec = bulk_rate;
    workload::FioWorkload bulk(sim, runner.layer(), cgs[1].second,
                               bulk_cfg);

    app.start();
    bulk.start();
    sim.runUntil(run_for);
}

/**
 * Bulk-writer mean latency on lane @p lane — the per-config sweep
 * metric. The bulk slice, not the reader: the reader is
 * weight-protected and sees near-identical latency under every
 * clamp, while the writer is exactly what the clamp ladder
 * throttles. The mean, not a quantile: bucketed quantiles snap to
 * bucket boundaries and can be bit-identical across seeds, which
 * would make the variance comparison below vacuous.
 */
double
sweepLaneMeanUs(host::SweepRunner &runner, size_t lane)
{
    const auto cg = runner.workloadCgroups()[1].second;
    return runner.laneLayer(lane).stats(cg).totalLatency.mean() /
           sim::kUsec;
}

struct SweepTiming
{
    double fusedWall;      ///< fused-observer single pass, seconds
    double fullWall;       ///< full-lane single pass (observer off)
    double sequentialWall; ///< K plain runs back to back
    double fusedSpeedup;   ///< median paired sequential/fused ratio
    double fullSpeedup;    ///< median paired sequential/full ratio
    double fusedFraction;  ///< fused share of lane submissions
    bool identical;        ///< fused lane metrics == full-lane ones
};

/**
 * Wall-clock, three ways per rep: the fused single pass (one K-wide
 * charge loop with fork-on-divergence), the full-lane single pass
 * (every lane runs its complete submit/complete stack — the shape
 * this bench tracked before the fused observer), and K sequential
 * plain runs, which is what every ablation bench did before
 * host::runSweep. The fused and full passes must agree on every
 * per-lane metric — the fused path is an execution strategy, not an
 * approximation — so the paired equality is checked here and
 * reported alongside the timings.
 */
SweepTiming
sweepTiming(const std::vector<std::string> &specs, int reps,
            sim::Time run_for)
{
    std::vector<double> fused_walls, full_walls, seqs;
    std::vector<double> fused_ratios, full_ratios, fractions;
    bool identical = true;
    for (int r = 0; r < reps; ++r) {
        auto body = [run_for](sim::Simulator &sim,
                              host::SweepRunner &runner) {
            sweepBenchBody(sim, runner, run_for, 3000);
        };
        double fraction = 0.0;
        auto collect_fused = [&fraction](host::SweepRunner &runner,
                                         size_t lane, size_t) {
            if (const host::FusedObserver *obs =
                    runner.fusedObserver())
                fraction = obs->fusedFraction();
            return sweepLaneMeanUs(runner, lane);
        };
        auto collect = [](host::SweepRunner &runner, size_t lane,
                          size_t) {
            return sweepLaneMeanUs(runner, lane);
        };

        const auto t0 = std::chrono::steady_clock::now();
        const auto fused = host::runSweep(sweepOptions(specs), 7331,
                                          1, body, collect_fused);
        const auto t1 = std::chrono::steady_clock::now();

        host::SweepOptions full_opts = sweepOptions(specs);
        full_opts.fusedObserver = false;
        const auto t2 = std::chrono::steady_clock::now();
        const auto full = host::runSweep(std::move(full_opts), 7331,
                                         1, body, collect);
        const auto t3 = std::chrono::steady_clock::now();

        const auto t4 = std::chrono::steady_clock::now();
        std::vector<double> sequential;
        for (const std::string &spec : specs) {
            sequential.push_back(host::runSweep(
                sweepOptions({spec}), 7331, 1, body, collect)[0]);
        }
        const auto t5 = std::chrono::steady_clock::now();
        if (fused.size() != sequential.size())
            continue; // impossible; keeps the medians honest

        for (size_t k = 0; k < fused.size(); ++k)
            identical = identical && fused[k] == full[k];

        fused_walls.push_back(seconds(t0, t1));
        full_walls.push_back(seconds(t2, t3));
        seqs.push_back(seconds(t4, t5));
        fused_ratios.push_back(seqs.back() / fused_walls.back());
        full_ratios.push_back(seqs.back() / full_walls.back());
        fractions.push_back(fraction);
    }
    return SweepTiming{median(fused_walls), median(full_walls),
                       median(seqs),        median(fused_ratios),
                       median(full_ratios), median(fractions),
                       identical};
}

struct SweepVariance
{
    double crnStddevUs;   ///< config-delta stddev, shared stream
    double indepStddevUs; ///< config-delta stddev, separate seeds
    double reduction;     ///< indep / crn
};

double
stddev(const std::vector<double> &v)
{
    double mean = 0.0;
    for (double x : v)
        mean += x;
    mean /= static_cast<double>(v.size());
    double ss = 0.0;
    for (double x : v)
        ss += (x - mean) * (x - mean);
    return std::sqrt(ss / static_cast<double>(v.size()));
}

/**
 * The CRN claim, measured: the bulk-writer mean-latency delta
 * between two planning periods of the *same* binding clamp,
 * estimated per seed. The scenario is deliberately different from
 * the timing ladder: CRN only cancels noise that is *common* to
 * both arms, so both configs must bind (a non-binding arm's
 * latency is insensitive to arrival burstiness and contributes
 * nothing to cancel) yet stay stationary (an overloaded arm's mean
 * is a queue-growth ramp, which is internal dynamics, not shared
 * noise — pairing cannot cancel it). min=15 at this load sits in
 * that band; the period contrast is then a genuinely small policy
 * effect (~3us) that independent seeding drowns in ~100x its size
 * of workload noise and the paired sweep resolves. The tracked
 * ratio is how many fewer seeds the paired design needs for the
 * same confidence interval (seed count scales with stddev^2).
 */
SweepVariance
sweepVariance(int seeds, sim::Time run_for)
{
    const std::vector<std::string> pair = {
        "iocost min=15 max=15 period=100000",
        "iocost min=15 max=15 period=50000"};
    auto body = [run_for](sim::Simulator &sim,
                          host::SweepRunner &runner) {
        sweepBenchBody(sim, runner, run_for, 1200);
    };
    auto collect = [](host::SweepRunner &runner, size_t lane,
                      size_t) { return sweepLaneMeanUs(runner, lane); };

    std::vector<double> crn, indep;
    for (int s = 0; s < seeds; ++s) {
        const uint64_t seed = 9000 + 17 * static_cast<uint64_t>(s);
        const auto shared =
            host::runSweep(sweepOptions(pair), seed, 1, body,
                           collect);
        crn.push_back(shared[1] - shared[0]);

        const double a = host::runSweep(sweepOptions({pair[0]}),
                                        seed, 1, body, collect)[0];
        const double b = host::runSweep(sweepOptions({pair[1]}),
                                        seed + 5000, 1, body,
                                        collect)[0];
        indep.push_back(b - a);
    }
    const double cs = stddev(crn);
    const double is = stddev(indep);
    return SweepVariance{cs, is, cs > 0.0 ? is / cs : 0.0};
}

/**
 * Allocations per generator bio through the steady-state K=4 loop:
 * clone into four lanes, per-lane throttle, replay completion,
 * stats update, batched planning passes. With the shared log
 * pre-sized this must stay ~zero, same discipline as the plain bio
 * path.
 */
double
sweepAllocsPerBio()
{
    double out = -1.0;
    host::runSweep(
        sweepOptions(kSweepSpecs), 4242, 1,
        [&out](sim::Simulator &sim, host::SweepRunner &runner) {
            runner.addWorkload("app", 200);
            runner.addWorkload("bulk", 100);
            const auto &cgs = runner.workloadCgroups();

            // Lighter than the timing body: the strictest lane
            // (min=10, a tenth of the device budget) must sustain
            // the offered load, or its queue — and the bio pool —
            // grows for the whole run and the "steady state" never
            // exists.
            workload::FioConfig app_cfg;
            app_cfg.arrival = workload::Arrival::Rate;
            app_cfg.ratePerSec = 10000;
            workload::FioWorkload app(sim, runner.layer(),
                                      cgs[0].second, app_cfg);
            workload::FioConfig bulk_cfg;
            bulk_cfg.readFraction = 0.0;
            bulk_cfg.blockSize = 64 * 1024;
            bulk_cfg.arrival = workload::Arrival::Rate;
            bulk_cfg.ratePerSec = 300;
            workload::FioWorkload bulk(sim, runner.layer(),
                                       cgs[1].second, bulk_cfg);
            app.start();
            bulk.start();

            auto completions = [&] {
                uint64_t n = 0;
                for (const auto &cg : cgs) {
                    const auto &st =
                        runner.layer().stats(cg.second);
                    n += st.reads + st.writes;
                }
                return n;
            };

            sim.runUntil(1 * sim::kSec); // arenas/pools to capacity
            const uint64_t c0 = completions();
            const uint64_t a0 =
                g_heapAllocs.load(std::memory_order_relaxed);
            sim.runUntil(3 * sim::kSec);
            const uint64_t a1 =
                g_heapAllocs.load(std::memory_order_relaxed);
            const uint64_t c1 = completions();
            out = static_cast<double>(a1 - a0) /
                  static_cast<double>(c1 - c0);
        },
        [](host::SweepRunner &, size_t, size_t) { return 0; });
    return out;
}

struct SnapshotResult
{
    double bytesPerHost;
    double boxesPerHost;
    double snapshotUs;
    double restoreUs;
    double branchesPerSec;
    double replayAllocsPerBio;
};

/**
 * Branchable-state cost: build the what-if service's host shape
 * (newgen SSD, iocost, two closed-loop jobs, fault injector
 * installed), run to a checkpoint, then measure snapshot size,
 * snapshot/restore latency, and the branch-replay loop the query
 * service lives on (restore to the checkpoint, replay 100 ms).
 * The replay window's heap allocations per completed bio are the
 * gated quantity: a branch must re-run on the same zero-alloc fast
 * path as the original timeline.
 */
SnapshotResult
snapshotRun()
{
    constexpr int kReps = 50;
    constexpr sim::Time kCheckpoint = 200 * sim::kMsec;
    constexpr sim::Time kReplay = 100 * sim::kMsec;

    SnapshotResult out{};
    sim::Simulator sim(4242);
    core::LinearModelConfig model;
    auto dev = host::makeNamedDevice("newgen", sim, &model);
    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost.model = core::CostModel::fromConfig(model);
    opts.installFaultInjector = true;
    host::Host host(sim, std::move(dev), opts);

    std::vector<std::unique_ptr<workload::FioWorkload>> jobs;
    for (int j = 0; j < 2; ++j) {
        workload::FioConfig cfg;
        cfg.iodepth = 32;
        cfg.offsetBase = static_cast<uint64_t>(j) << 40;
        const auto cg = host.addWorkload(j ? "batch" : "web",
                                         j ? 100u : 200u);
        jobs.push_back(std::make_unique<workload::FioWorkload>(
            sim, host.layer(), cg, cfg));
        host.track(*jobs.back());
        jobs.back()->start();
    }
    sim.runUntil(kCheckpoint);

    const host::HostSnapshot snap = host.snapshot();
    out.bytesPerHost = static_cast<double>(snap.byteSize());
    out.boxesPerHost = static_cast<double>(snap.boxCount());

    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i)
        host.snapshot();
    auto t1 = std::chrono::steady_clock::now();
    out.snapshotUs = 1e6 * seconds(t0, t1) / kReps;

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i)
        host.restore(snap);
    t1 = std::chrono::steady_clock::now();
    out.restoreUs = 1e6 * seconds(t0, t1) / kReps;

    auto completions = [&] {
        uint64_t n = 0;
        for (const auto &j : jobs)
            n += j->completed();
        return n;
    };

    // One unmeasured round brings every restored vector back to
    // capacity, so the measured replays see the steady state.
    host.restore(snap);
    sim.runUntil(kCheckpoint + kReplay);

    uint64_t replay_allocs = 0;
    uint64_t replay_bios = 0;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        host.restore(snap);
        const uint64_t c0 = completions();
        const uint64_t a0 =
            g_heapAllocs.load(std::memory_order_relaxed);
        sim.runUntil(kCheckpoint + kReplay);
        replay_allocs += g_heapAllocs.load(
                             std::memory_order_relaxed) -
                         a0;
        replay_bios += completions() - c0;
    }
    t1 = std::chrono::steady_clock::now();
    out.branchesPerSec = kReps / seconds(t0, t1);
    out.replayAllocsPerBio = static_cast<double>(replay_allocs) /
                             static_cast<double>(replay_bios);
    return out;
}

struct WritebackResult
{
    double opsPerSec;
    double allocsPerOp;
    double cleanedFraction;
    uint64_t wbBytesInWindow;
    uint64_t fsyncs;
};

/**
 * Buffered-IO steady state: a closed-loop dirtier with periodic
 * fsync barriers streams through a 256M page cache while the
 * flusher cleans behind it, writeback bios riding the forced-issue
 * debt path. The gated quantity is heap allocations per completed
 * buffered op once every arena (page LRU, writeback slots, parked
 * waiters, histograms) has reached capacity — the dirty/flush/debt
 * cycle must be as allocation-free as the direct bio path.
 */
WritebackResult
writebackRun(uint64_t measured_ops)
{
    constexpr uint64_t kWarmupOps = 20'000;

    WritebackResult out{};
    sim::Simulator sim(4242);
    device::SsdSpec spec = device::enterpriseSsd();
    spec.jitterSigma = 0.0;
    spec.hiccupMeanInterval = 0;

    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost = permissiveIoCost();
    opts.enablePageCache = true;
    opts.pageCacheConfig.cacheBytes = 256ull << 20;
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto cg = host.addWorkload("wb-bench", 100);

    workload::BufferedConfig cfg;
    cfg.name = "wb-bench";
    cfg.blockSize = 256 * 1024;
    cfg.spanBytes = 1ull << 30;
    cfg.fsyncEvery = 64;
    cfg.thinkTime = 10 * sim::kUsec;
    cfg.depth = 8;
    workload::BufferedWorkload job(sim, host.pageCache(), cg, cfg);
    job.start();

    while (job.completed() < kWarmupOps)
        sim.events().step();

    const mm::CacheCgroupStats &cs = host.pageCache().stats(cg);
    const uint64_t wb0 = cs.wbIssuedBytes;
    const uint64_t fs0 = job.fsyncsDone();
    const uint64_t a0 = g_heapAllocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    while (job.completed() < kWarmupOps + measured_ops)
        sim.events().step();
    const auto t1 = std::chrono::steady_clock::now();
    const uint64_t a1 = g_heapAllocs.load(std::memory_order_relaxed);

    out.opsPerSec =
        static_cast<double>(measured_ops) / seconds(t0, t1);
    out.allocsPerOp = static_cast<double>(a1 - a0) /
                      static_cast<double>(measured_ops);
    out.wbBytesInWindow = cs.wbIssuedBytes - wb0;
    out.fsyncs = job.fsyncsDone() - fs0;
    out.cleanedFraction =
        cs.bufferedWriteBytes
            ? static_cast<double>(cs.cleanedBytes) /
                  static_cast<double>(cs.bufferedWriteBytes)
            : 0.0;
    return out;
}

/**
 * `--check-allocs`: CI gate. Asserts the pooled bio path performs
 * (approximately) zero steady-state heap allocations per bio and
 * has not regressed against the seed-shaped lane or the pinned
 * bios/sec in BENCH_kernel.json. Exit code is the verdict.
 */
int
checkAllocs()
{
    constexpr uint64_t kMeasure = 200'000;
    // Conservative floors: well under the recorded ratios so machine
    // load cannot flake CI, far above any genuine regression to
    // per-bio allocation.
    constexpr double kMaxAllocsPerBio = 0.01;
    constexpr double kMinSpeedup = 1.2;
    constexpr double kMinVsRecorded = 0.5;

    // Alloc counts are deterministic, so the WORST of 3 gates; the
    // wall-clock measures are not (ctest -j runs this under heavy
    // machine load), so the BEST of 3 gates — a genuine throughput
    // regression is slow in every rep, while a load spike only
    // pollutes the reps it overlaps.
    std::vector<double> rates, ratios;
    double allocs_worst = 0.0;
    for (int r = 0; r < 3; ++r) {
        const BioPathResult cur = bioPathRun(kMeasure, false);
        const BioPathResult leg = bioPathRun(kMeasure, true);
        rates.push_back(cur.biosPerSec);
        ratios.push_back(cur.biosPerSec / leg.biosPerSec);
        allocs_worst = std::max(allocs_worst, cur.allocsPerBio);
    }
    const double rate =
        *std::max_element(rates.begin(), rates.end());
    const double speedup =
        *std::max_element(ratios.begin(), ratios.end());

    std::printf("bio path: %.0f bios/s (best of 3), %.4f allocs/bio "
                "(worst of 3), %.2fx vs seed-shaped lane\n",
                rate, allocs_worst, speedup);

    bool ok = true;
    if (allocs_worst > kMaxAllocsPerBio) {
        std::fprintf(stderr,
                     "FAIL: %.4f heap allocations per bio in steady "
                     "state (limit %.2f) — the pooled fast path is "
                     "allocating again\n",
                     allocs_worst, kMaxAllocsPerBio);
        ok = false;
    }
    if (speedup < kMinSpeedup) {
        std::fprintf(stderr,
                     "FAIL: only %.2fx over the seed-shaped "
                     "allocation lane (floor %.2fx)\n",
                     speedup, kMinSpeedup);
        ok = false;
    }

    // Retry lane: with a 20% transient-error injector installed, the
    // error/backoff/requeue machinery must be as allocation-free as
    // the happy path (each failed attempt re-captures the BioPtr
    // into an event's inline storage — no trampolines).
    uint64_t retries = 0;
    const BioPathResult rp = retryPathRun(kMeasure, &retries);
    std::printf("retry path: %.0f bios/s, %.4f allocs/bio, "
                "%llu retries in window\n",
                rp.biosPerSec, rp.allocsPerBio,
                static_cast<unsigned long long>(retries));
    if (rp.allocsPerBio > kMaxAllocsPerBio) {
        std::fprintf(stderr,
                     "FAIL: %.4f heap allocations per bio with "
                     "faults injected (limit %.2f) — the retry path "
                     "is allocating\n",
                     rp.allocsPerBio, kMaxAllocsPerBio);
        ok = false;
    }
    if (retries == 0) {
        std::fprintf(stderr,
                     "FAIL: the retry lane performed no retries — "
                     "the fault injector is not wired into the "
                     "measured window\n");
        ok = false;
    }

    // K-way sweep lane: one generator bio fans out into four shadow
    // lanes (fused charge loop or full clone/throttle/replay path,
    // stats, batched planning). The limit is per *generator* bio, so
    // it covers all five completions that bio causes. 0.001, not the
    // bio path's 0.01: the fused observer's deferred-merge windows
    // run hundreds of times a second, and a single stray per-window
    // allocation (a string built for an assertion message, say)
    // already shows up at the 0.04 level.
    constexpr double kMaxSweepAllocsPerBio = 0.001;
    const double sweep_allocs = sweepAllocsPerBio();
    std::printf("sweep path (K=4): %.4f allocs per generator bio\n",
                sweep_allocs);
    if (sweep_allocs < 0.0 || sweep_allocs > kMaxSweepAllocsPerBio) {
        std::fprintf(stderr,
                     "FAIL: %.4f heap allocations per generator bio "
                     "across the K=4 sweep loop (limit %.3f) — the "
                     "multi-lane hot path is allocating\n",
                     sweep_allocs, kMaxSweepAllocsPerBio);
        ok = false;
    }

    // Branch-replay lane: after a snapshot restore, the replayed
    // timeline must run on the same zero-alloc fast path as the
    // original (restores themselves allocate — heap bio clones,
    // restored vectors — and are excluded from the window).
    const SnapshotResult sr = snapshotRun();
    std::printf("branch replay: %.4f allocs/bio over %d replays "
                "(%.0f KiB, %.0f boxes per snapshot)\n",
                sr.replayAllocsPerBio, 50,
                sr.bytesPerHost / 1024.0, sr.boxesPerHost);
    if (sr.replayAllocsPerBio > kMaxAllocsPerBio) {
        std::fprintf(stderr,
                     "FAIL: %.4f heap allocations per bio while "
                     "replaying a restored branch (limit %.2f) — "
                     "restore is knocking the fast path off its "
                     "steady state\n",
                     sr.replayAllocsPerBio, kMaxAllocsPerBio);
        ok = false;
    }

    // Writeback lane: the buffered dirty/flush/fsync cycle — page
    // state transitions, flusher batching, debt collection at
    // op-return, parked throttled writers — must run as
    // allocation-free as the direct path once the cache arenas are
    // warm.
    const WritebackResult wr = writebackRun(kMeasure / 4);
    std::printf("writeback path: %.0f buffered ops/s, %.4f "
                "allocs/op, %llu wb bytes, %llu fsyncs in window\n",
                wr.opsPerSec, wr.allocsPerOp,
                static_cast<unsigned long long>(wr.wbBytesInWindow),
                static_cast<unsigned long long>(wr.fsyncs));
    if (wr.allocsPerOp > kMaxAllocsPerBio) {
        std::fprintf(stderr,
                     "FAIL: %.4f heap allocations per buffered op "
                     "in steady state (limit %.2f) — the page-cache "
                     "hot path is allocating\n",
                     wr.allocsPerOp, kMaxAllocsPerBio);
        ok = false;
    }
    if (wr.wbBytesInWindow == 0 || wr.fsyncs == 0) {
        std::fprintf(stderr,
                     "FAIL: the writeback lane moved no flusher "
                     "bytes (%llu) or fsync barriers (%llu) through "
                     "the measured window — the cycle under test "
                     "is not being exercised\n",
                     static_cast<unsigned long long>(
                         wr.wbBytesInWindow),
                     static_cast<unsigned long long>(wr.fsyncs));
        ok = false;
    }

    // Non-regression against the tracked baseline, when present.
    // Skipped in sanitized builds: the floor is an absolute rate
    // recorded from an optimized tree (see IOCOST_BENCH_SANITIZED).
#ifndef IOCOST_BENCH_SANITIZED
    if (FILE *f = std::fopen("BENCH_kernel.json", "r")) {
        char buf[8192];
        const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
        buf[n] = '\0';
        std::fclose(f);
        double recorded = 0.0;
        if (const char *p = std::strstr(buf, "\"bios_per_sec\":")) {
            recorded = std::strtod(p + std::strlen(
                                           "\"bios_per_sec\":"),
                                   nullptr);
        }
        if (recorded > 0.0 && rate < kMinVsRecorded * recorded) {
            std::fprintf(stderr,
                         "FAIL: %.0f bios/s is under %.0f%% of the "
                         "recorded %.0f — bio-path throughput "
                         "regressed\n",
                         rate, 100.0 * kMinVsRecorded, recorded);
            ok = false;
        }
    }
#endif
    std::printf("%s\n", ok ? "check-allocs: OK" : "check-allocs: "
                                                  "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(argc, argv);
    if (args.checkAllocs)
        return checkAllocs();

    bench::banner(
        "Kernel perf baseline (BENCH_kernel.json)",
        "Sustained DES throughput, cancel-heavy mix, bio fast path, "
        "and fleet\nhost-days/sec, current kernel vs the pinned "
        "seed-shaped baselines.\nRatios are the tracked quantities; "
        "absolute rates move with the machine.");

    const uint64_t kSchedFire = 4'000'000;
    const uint64_t kCancel = 3'000'000;
    const uint64_t kBioPath = 400'000;

    const Comparison sf = compare(
        7,
        [] { return scheduleFireRate<sim::EventQueue>(kSchedFire); },
        [] {
            return scheduleFireRate<legacy::EventQueue>(kSchedFire);
        });
    const Comparison ch = compare(
        7, [] { return cancelHeavyRate<sim::EventQueue>(kCancel); },
        [] { return cancelHeavyRate<legacy::EventQueue>(kCancel); });
    // Disabled-telemetry variant vs plain, both on the current
    // kernel: the paired ratio is the no-listener overhead.
    const Comparison tel = compare(
        7,
        [] {
            return scheduleFireTelemetryRate<sim::EventQueue>(
                kSchedFire);
        },
        [] { return scheduleFireRate<sim::EventQueue>(kSchedFire); });

    // Bio fast path: paired pooled vs seed-shaped runs, plus the
    // per-bio allocation counts that are this PR's tracked claim.
    double cur_allocs = 0.0, seed_allocs = 0.0;
    const Comparison bp = compare(
        7,
        [&] {
            const BioPathResult r = bioPathRun(kBioPath, false);
            cur_allocs = std::max(cur_allocs, r.allocsPerBio);
            return r.biosPerSec;
        },
        [&] {
            const BioPathResult r = bioPathRun(kBioPath, true);
            seed_allocs = std::max(seed_allocs, r.allocsPerBio);
            return r.biosPerSec;
        });

    const unsigned hw = std::max(
        1u, std::thread::hardware_concurrency());
    // Warm the device-profile cache so neither fleet timing pays the
    // one-time profiling cost — otherwise whichever runs first eats
    // it and the seq-vs-parallel ratio is fiction.
    profile::DeviceProfiler::profileSsd(device::oldGenSsd());
    profile::DeviceProfiler::profileSsd(device::newGenSsd());
    const double fleet_seq = fleetRate(1);
    const double fleet_j4 = fleetRate(4);

    // Multi-config sweep: fused and full-lane single passes vs
    // sequential plain runs on the divergent K=4 ladder and the
    // coherent K=8 grid, CRN variance reduction, and the K-way
    // alloc count. Median of 5 repetitions: the sweep walls are the
    // most machine-sensitive numbers in this file, and 3 reps left
    // the median hostage to a single noisy neighbor.
    // 6 simulated seconds per pass: at 2s the fixed setup cost
    // (arena construction, device profiling) still weighs ~10% of
    // the wall and drowns the fused-vs-full delta in noise.
    const std::vector<std::string> grid = sweepGridSpecs();
    const SweepTiming st = sweepTiming(kSweepSpecs, 5,
                                       6 * sim::kSec);
    const SweepTiming sg = sweepTiming(grid, 5, 6 * sim::kSec);
    const SweepVariance sv = sweepVariance(8, 2 * sim::kSec);
    const double sweep_allocs = sweepAllocsPerBio();

    // Branchable-state costs (what-if service economics).
    const SnapshotResult snap = snapshotRun();

    // Buffered-IO steady state through the page cache + flusher.
    const WritebackResult wb = writebackRun(100'000);

    bench::Table table({"Path", "Current", "Seed replica",
                        "Speedup"});
    table.row({"schedule+fire (events/s)",
               bench::fmtCount(sf.current),
               bench::fmtCount(sf.legacy),
               bench::fmt("%.2fx", sf.speedup)});
    table.row({"cancel-heavy (ops/s)", bench::fmtCount(ch.current),
               bench::fmtCount(ch.legacy),
               bench::fmt("%.2fx", ch.speedup)});
    table.row({"sched+fire, telemetry off (events/s)",
               bench::fmtCount(tel.current),
               bench::fmtCount(tel.legacy),
               bench::fmt("%.2fx", tel.speedup)});
    table.row({"bio path (bios/s)", bench::fmtCount(bp.current),
               bench::fmtCount(bp.legacy),
               bench::fmt("%.2fx", bp.speedup)});
    table.row({"bio path (allocs/bio)",
               bench::fmt("%.4f", cur_allocs),
               bench::fmt("%.2f", seed_allocs), "-"});
    table.row({"bio path vs pre-PR probe (pinned)",
               bench::fmtCount(bp.current),
               bench::fmtCount(kPrePrBiosPerSec),
               bench::fmt("%.2fx",
                          bp.current / kPrePrBiosPerSec)});
    table.row({"fleet seq (host-days/s)",
               bench::fmt("%.1f", fleet_seq), "-", "-"});
    table.row({"fleet --jobs 4 (host-days/s)",
               bench::fmt("%.1f", fleet_j4), "-",
               hw > 1 ? bench::fmt("%.2fx", fleet_j4 / fleet_seq)
                      : std::string("n/a (1 hw thread)")});
    table.row({"sweep K=4 divergent fused pass (s)",
               bench::fmt("%.2f", st.fusedWall),
               bench::fmt("%.2f", st.sequentialWall),
               bench::fmt("%.2fx", st.fusedSpeedup)});
    table.row({"sweep K=4 divergent full-lane pass (s)",
               bench::fmt("%.2f", st.fullWall),
               bench::fmt("%.2f", st.sequentialWall),
               bench::fmt("%.2fx", st.fullSpeedup)});
    table.row({"sweep K=4 fused share / identical",
               bench::fmt("%.3f", st.fusedFraction),
               st.identical ? "identical" : "MISMATCH", "-"});
    table.row({"sweep K=8 coherent grid fused pass (s)",
               bench::fmt("%.2f", sg.fusedWall),
               bench::fmt("%.2f", sg.sequentialWall),
               bench::fmt("%.2fx", sg.fusedSpeedup)});
    table.row({"sweep K=8 coherent grid full-lane pass (s)",
               bench::fmt("%.2f", sg.fullWall),
               bench::fmt("%.2f", sg.sequentialWall),
               bench::fmt("%.2fx", sg.fullSpeedup)});
    table.row({"sweep K=8 fused share / identical",
               bench::fmt("%.3f", sg.fusedFraction),
               sg.identical ? "identical" : "MISMATCH", "-"});
    table.row({"sweep config-delta stddev (us)",
               bench::fmt("%.1f", sv.crnStddevUs),
               bench::fmt("%.1f", sv.indepStddevUs),
               bench::fmt("%.1fx", sv.reduction)});
    table.row({"sweep K=4 (allocs/generator bio)",
               bench::fmt("%.4f", sweep_allocs), "-", "-"});
    table.row({"host snapshot (KiB / boxes)",
               bench::fmt("%.0f", snap.bytesPerHost / 1024.0),
               bench::fmt("%.0f", snap.boxesPerHost), "-"});
    table.row({"snapshot / restore (us)",
               bench::fmt("%.0f", snap.snapshotUs),
               bench::fmt("%.0f", snap.restoreUs), "-"});
    table.row({"branch replay 100ms (branches/s)",
               bench::fmt("%.1f", snap.branchesPerSec), "-", "-"});
    table.row({"branch replay (allocs/bio)",
               bench::fmt("%.4f", snap.replayAllocsPerBio), "-",
               "-"});
    table.row({"writeback (buffered ops/s)",
               bench::fmtCount(wb.opsPerSec), "-", "-"});
    table.row({"writeback (allocs/op)",
               bench::fmt("%.4f", wb.allocsPerOp), "-", "-"});
    table.row({"writeback cleaned fraction",
               bench::fmt("%.3f", wb.cleanedFraction), "-", "-"});
    table.print();
    std::printf("hardware threads: %u (parallel speedup is bounded "
                "by this)\n", hw);

    // On a single-hardware-thread box a jobs4/seq ratio is just
    // scheduling noise, not a speedup — emit null so downstream
    // tooling cannot mistake it for a measurement.
    char speedup_json[32];
    if (hw > 1) {
        std::snprintf(speedup_json, sizeof(speedup_json), "%.3f",
                      fleet_j4 / fleet_seq);
    } else {
        std::snprintf(speedup_json, sizeof(speedup_json), "null");
    }

    FILE *json = std::fopen("BENCH_kernel.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_kernel.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"schedule_fire\": {\n"
        "    \"current_events_per_sec\": %.0f,\n"
        "    \"seed_replica_events_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"cancel_heavy\": {\n"
        "    \"current_ops_per_sec\": %.0f,\n"
        "    \"seed_replica_ops_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"telemetry\": {\n"
        "    \"disabled_emit_events_per_sec\": %.0f,\n"
        "    \"plain_events_per_sec\": %.0f,\n"
        "    \"disabled_over_plain_ratio\": %.3f\n"
        "  },\n"
        "  \"bio_path\": {\n"
        "    \"bios_per_sec\": %.0f,\n"
        "    \"seed_replica_bios_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"pre_pr_bios_per_sec\": %.0f,\n"
        "    \"speedup_vs_pre_pr\": %.3f,\n"
        "    \"allocs_per_bio_steady_state\": %.4f,\n"
        "    \"seed_replica_allocs_per_bio\": %.2f\n"
        "  },\n"
        "  \"fleet\": {\n"
        "    \"hostdays_per_sec_seq\": %.2f,\n"
        "    \"hostdays_per_sec_jobs4\": %.2f,\n"
        "    \"parallel_speedup\": %s,\n"
        "    \"hardware_threads\": %u\n"
        "  },\n"
        "  \"sweep\": {\n"
        "    \"lanes\": %zu,\n"
        "    \"single_pass_wall_sec\": %.3f,\n"
        "    \"sequential_wall_sec\": %.3f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"fused_wall_sec\": %.3f,\n"
        "    \"fused_speedup\": %.3f,\n"
        "    \"fused_fraction\": %.4f,\n"
        "    \"grid_lanes\": %zu,\n"
        "    \"grid_single_pass_wall_sec\": %.3f,\n"
        "    \"grid_sequential_wall_sec\": %.3f,\n"
        "    \"grid_speedup\": %.3f,\n"
        "    \"grid_fused_wall_sec\": %.3f,\n"
        "    \"grid_fused_speedup\": %.3f,\n"
        "    \"grid_fused_fraction\": %.4f,\n"
        "    \"fused_identical\": %s,\n"
        "    \"crn_delta_stddev_us\": %.2f,\n"
        "    \"independent_delta_stddev_us\": %.2f,\n"
        "    \"variance_reduction\": %.2f,\n"
        "    \"allocs_per_generator_bio\": %.4f\n"
        "  },\n"
        "  \"snapshot\": {\n"
        "    \"bytes_per_host\": %.0f,\n"
        "    \"boxes_per_host\": %.0f,\n"
        "    \"snapshot_us\": %.1f,\n"
        "    \"restore_us\": %.1f,\n"
        "    \"branch_replays_100ms_per_sec\": %.2f,\n"
        "    \"replay_allocs_per_bio\": %.4f\n"
        "  },\n"
        "  \"writeback\": {\n"
        "    \"buffered_ops_per_sec\": %.0f,\n"
        "    \"allocs_per_op_steady_state\": %.4f,\n"
        "    \"wb_cleaned_fraction\": %.4f,\n"
        "    \"fsyncs_in_window\": %llu\n"
        "  }\n"
        "}\n",
        sf.current, sf.legacy, sf.speedup, ch.current, ch.legacy,
        ch.speedup, tel.current, tel.legacy, tel.speedup,
        bp.current, bp.legacy, bp.speedup, kPrePrBiosPerSec,
        bp.current / kPrePrBiosPerSec, cur_allocs, seed_allocs,
        fleet_seq, fleet_j4, speedup_json, hw, kSweepSpecs.size(),
        st.fullWall, st.sequentialWall, st.fullSpeedup,
        st.fusedWall, st.fusedSpeedup, st.fusedFraction,
        grid.size(), sg.fullWall, sg.sequentialWall, sg.fullSpeedup,
        sg.fusedWall, sg.fusedSpeedup, sg.fusedFraction,
        st.identical && sg.identical ? "true" : "false",
        sv.crnStddevUs, sv.indepStddevUs, sv.reduction,
        sweep_allocs, snap.bytesPerHost, snap.boxesPerHost,
        snap.snapshotUs, snap.restoreUs, snap.branchesPerSec,
        snap.replayAllocsPerBio, wb.opsPerSec, wb.allocsPerOp,
        wb.cleanedFraction,
        static_cast<unsigned long long>(wb.fsyncs));
    std::fclose(json);
    std::printf("wrote BENCH_kernel.json\n");
    return 0;
}
