/**
 * @file
 * Simulation-kernel performance baseline.
 *
 * Measures the three hot paths every figure reproduction is built
 * on — sustained schedule+fire throughput, a cancel-heavy mix, and
 * fleet host-days/sec (sequential and `--jobs 4`) — and writes the
 * numbers to BENCH_kernel.json so subsequent PRs have a tracked perf
 * trajectory to beat.
 *
 * To keep the comparison honest across PRs, the seed kernel (the
 * pre-pooled-slot EventQueue: shared_ptr<bool> tombstone per event,
 * std::function callbacks, entry copy on pop) is replicated verbatim
 * in namespace `legacy` below and run against the identical
 * workload. That replica is a pinned baseline: do not "fix" it.
 *
 * Wall-clock numbers move with the machine; the speedup ratios are
 * the tracked quantities.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "fleet/fleet_sim.hh"
#include "profile/device_profiler.hh"
#include "sim/event_queue.hh"
#include "stat/telemetry.hh"

namespace legacy {

using iocost::sim::Time;
using iocost::sim::kTimeNever;

/** The seed kernel, replicated as a pinned perf baseline. */
class EventQueue;

class EventHandle
{
  public:
    EventHandle() = default;
    void
    cancel()
    {
        if (alive_)
            *alive_ = false;
    }
    bool
    pending() const
    {
        return alive_ && *alive_;
    }

  private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive))
    {}
    std::shared_ptr<bool> alive_;
};

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventHandle
    scheduleAt(Time when, Callback cb)
    {
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{when, nextSeq_++, alive, std::move(cb)});
        return EventHandle(std::move(alive));
    }

    EventHandle
    scheduleAfter(Time delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    Time now() const { return now_; }

    bool
    step()
    {
        prune();
        if (heap_.empty())
            return false;
        Entry e = heap_.top(); // seed behavior: full copy on pop
        heap_.pop();
        *e.alive = false;
        now_ = e.when;
        e.cb();
        return true;
    }

    uint64_t
    runAll()
    {
        uint64_t executed = 0;
        while (step())
            ++executed;
        return executed;
    }

  private:
    struct Entry
    {
        Time when;
        uint64_t seq;
        std::shared_ptr<bool> alive;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    void
    prune()
    {
        while (!heap_.empty() && !*heap_.top().alive)
            heap_.pop();
    }
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Time now_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace legacy

namespace {

using namespace iocost;

/**
 * Events in flight per refill cycle, sized like a busy single-host
 * simulation: saturating read/write jobs at iodepth 32..96 plus
 * controller timers keep a few hundred events pending at once.
 */
constexpr int kBatch = 256;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Callback payload sized like the codebase's real call sites: an
 * object pointer plus a few values (Bio completion closures,
 * sim.after captures). Deliberately larger than std::function's
 * 16-byte inline buffer and within InlineCallback's 48 — the gap the
 * kernel rework targets.
 */
struct FireCb
{
    uint64_t *fired;
    uint64_t a, b, c;
    void
    operator()() const
    {
        *fired += 1 + ((a ^ b ^ c) & 0); // keep the payload live
    }
};

/**
 * Sustained schedule+fire: refill a kBatch-deep batch of events with
 * pseudo-random firing times, drain, repeat. Identical workload for
 * both kernels.
 */
template <typename Queue>
double
scheduleFireRate(uint64_t total)
{
    Queue q;
    uint64_t fired = 0;
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    const auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (int i = 0; i < kBatch; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            q.scheduleAfter(
                static_cast<sim::Time>((lcg >> 33) % 1000),
                FireCb{&fired, lcg, lcg >> 7, lcg >> 13});
        }
        q.runAll();
    }
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(fired) / seconds(t0, t1);
}

/**
 * FireCb plus a telemetry emit against a sinkless (disabled) bus —
 * what every publisher-instrumented hot path pays when nobody is
 * listening. The tracked ratio against the plain FireCb run must
 * stay ~1.0: disabled telemetry is one pointer test.
 */
struct TelFireCb
{
    uint64_t *fired;
    stat::Telemetry *tel;
    uint64_t a, b;
    void
    operator()() const
    {
        tel->emit(static_cast<sim::Time>(a), "bench",
                  stat::kNoCgroup, "fire", 1.0);
        *fired += 1 + ((a ^ b) & 0);
    }
};

/** scheduleFireRate with the disabled-telemetry callback. */
template <typename Queue>
double
scheduleFireTelemetryRate(uint64_t total)
{
    Queue q;
    stat::Telemetry tel; // no sink installed
    uint64_t fired = 0;
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    const auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (int i = 0; i < kBatch; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            q.scheduleAfter(
                static_cast<sim::Time>((lcg >> 33) % 1000),
                TelFireCb{&fired, &tel, lcg, lcg >> 7});
        }
        q.runAll();
    }
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(fired) / seconds(t0, t1);
}

/**
 * Cancel-heavy mix: schedule a batch, cancel every other event via
 * its handle, drain the survivors. Ops = schedules + cancels.
 */
template <typename Queue>
double
cancelHeavyRate(uint64_t total)
{
    Queue q;
    uint64_t fired = 0;
    uint64_t ops = 0;
    uint64_t lcg = 0x9E3779B97F4A7C15ull;
    std::vector<decltype(q.scheduleAfter(0, [] {}))> handles;
    handles.reserve(kBatch);
    const auto t0 = std::chrono::steady_clock::now();
    while (ops < total) {
        handles.clear();
        for (int i = 0; i < kBatch; ++i) {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            handles.push_back(q.scheduleAfter(
                static_cast<sim::Time>((lcg >> 33) % 1000),
                FireCb{&fired, lcg, lcg >> 7, lcg >> 13}));
        }
        for (size_t i = 0; i < handles.size(); i += 2)
            handles[i].cancel();
        q.runAll();
        ops += kBatch + kBatch / 2;
    }
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(ops) / seconds(t0, t1);
}

struct Comparison
{
    double current;  ///< median rate, current kernel
    double legacy;   ///< median rate, seed replica
    double speedup;  ///< median of per-rep paired ratios
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Run current and legacy back-to-back within each rep and take the
 * median of the paired ratios: machine-load swings hit both sides of
 * a pair roughly equally, which makes the ratio far more stable than
 * comparing independently-timed blocks.
 */
template <typename CurFn, typename LegFn>
Comparison
compare(int reps, CurFn cur, LegFn leg)
{
    std::vector<double> c, l, ratio;
    for (int r = 0; r < reps; ++r) {
        c.push_back(cur());
        l.push_back(leg());
        ratio.push_back(c.back() / l.back());
    }
    return Comparison{median(c), median(l), median(ratio)};
}

/** Fleet config matching the determinism test's scale. */
fleet::FleetConfig
fleetConfig()
{
    fleet::FleetConfig cfg;
    cfg.hosts = 8;
    cfg.days = 6;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 5;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.seed = 2022;
    return cfg;
}

double
fleetRate(unsigned jobs)
{
    const fleet::FleetConfig cfg = fleetConfig();
    const auto t0 = std::chrono::steady_clock::now();
    const auto days = fleet::FleetSim::run(cfg, jobs);
    const auto t1 = std::chrono::steady_clock::now();
    if (days.size() != cfg.days)
        return 0.0; // should be impossible; poisons the JSON visibly
    return static_cast<double>(cfg.hosts) * cfg.days /
           seconds(t0, t1);
}

} // namespace

int
main()
{
    bench::banner(
        "Kernel perf baseline (BENCH_kernel.json)",
        "Sustained DES throughput, cancel-heavy mix, and fleet "
        "host-days/sec,\ncurrent kernel vs the pinned seed-kernel "
        "replica. Ratios are the tracked\nquantities; absolute "
        "rates move with the machine.");

    const uint64_t kSchedFire = 4'000'000;
    const uint64_t kCancel = 3'000'000;

    const Comparison sf = compare(
        7,
        [] { return scheduleFireRate<sim::EventQueue>(kSchedFire); },
        [] {
            return scheduleFireRate<legacy::EventQueue>(kSchedFire);
        });
    const Comparison ch = compare(
        7, [] { return cancelHeavyRate<sim::EventQueue>(kCancel); },
        [] { return cancelHeavyRate<legacy::EventQueue>(kCancel); });
    // Disabled-telemetry variant vs plain, both on the current
    // kernel: the paired ratio is the no-listener overhead.
    const Comparison tel = compare(
        7,
        [] {
            return scheduleFireTelemetryRate<sim::EventQueue>(
                kSchedFire);
        },
        [] { return scheduleFireRate<sim::EventQueue>(kSchedFire); });

    const unsigned hw = std::max(
        1u, std::thread::hardware_concurrency());
    // Warm the device-profile cache so neither fleet timing pays the
    // one-time profiling cost — otherwise whichever runs first eats
    // it and the seq-vs-parallel ratio is fiction.
    profile::DeviceProfiler::profileSsd(device::oldGenSsd());
    profile::DeviceProfiler::profileSsd(device::newGenSsd());
    const double fleet_seq = fleetRate(1);
    const double fleet_j4 = fleetRate(4);

    bench::Table table({"Path", "Current", "Seed replica",
                        "Speedup"});
    table.row({"schedule+fire (events/s)",
               bench::fmtCount(sf.current),
               bench::fmtCount(sf.legacy),
               bench::fmt("%.2fx", sf.speedup)});
    table.row({"cancel-heavy (ops/s)", bench::fmtCount(ch.current),
               bench::fmtCount(ch.legacy),
               bench::fmt("%.2fx", ch.speedup)});
    table.row({"sched+fire, telemetry off (events/s)",
               bench::fmtCount(tel.current),
               bench::fmtCount(tel.legacy),
               bench::fmt("%.2fx", tel.speedup)});
    table.row({"fleet seq (host-days/s)",
               bench::fmt("%.1f", fleet_seq), "-", "-"});
    table.row({"fleet --jobs 4 (host-days/s)",
               bench::fmt("%.1f", fleet_j4), "-",
               bench::fmt("%.2fx", fleet_j4 / fleet_seq)});
    table.print();
    std::printf("hardware threads: %u (parallel speedup is bounded "
                "by this)\n", hw);

    FILE *json = std::fopen("BENCH_kernel.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_kernel.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"schedule_fire\": {\n"
        "    \"current_events_per_sec\": %.0f,\n"
        "    \"seed_replica_events_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"cancel_heavy\": {\n"
        "    \"current_ops_per_sec\": %.0f,\n"
        "    \"seed_replica_ops_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"telemetry\": {\n"
        "    \"disabled_emit_events_per_sec\": %.0f,\n"
        "    \"plain_events_per_sec\": %.0f,\n"
        "    \"disabled_over_plain_ratio\": %.3f\n"
        "  },\n"
        "  \"fleet\": {\n"
        "    \"hostdays_per_sec_seq\": %.2f,\n"
        "    \"hostdays_per_sec_jobs4\": %.2f,\n"
        "    \"parallel_speedup\": %.3f,\n"
        "    \"hardware_threads\": %u\n"
        "  }\n"
        "}\n",
        sf.current, sf.legacy, sf.speedup, ch.current, ch.legacy,
        ch.speedup, tel.current, tel.legacy, tel.speedup, fleet_seq,
        fleet_j4, fleet_j4 / fleet_seq, hw);
    std::fclose(json);
    std::printf("wrote BENCH_kernel.json\n");
    return 0;
}
