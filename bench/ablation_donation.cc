/**
 * @file
 * Ablation: the §3.6 budget-donation algorithm.
 *
 * A busy cgroup shares the device with a light sibling of equal
 * weight that uses a small fraction of its entitlement. With
 * donation enabled, the busy cgroup absorbs the unused share and
 * total device utilization stays high; with donation disabled, the
 * busy cgroup is pinned near its 50% entitlement whenever the light
 * sibling remains active. The light sibling's latency must not
 * degrade when it donates (rescind is cheap).
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Outcome
{
    double busyIops;
    double lightIops;
    sim::Time lightP95;
};

Outcome
run(bool donation, double light_rate, const std::string &faults)
{
    sim::Simulator sim(2020);
    const device::SsdSpec spec = device::newGenSsd();

    host::HostOptions opts;
    opts.controller = "iocost";
    opts.faults = faults;
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 1.0;
    opts.controller.iocost.qos.vrateMax = 1.0; // pinned: isolate donation
    opts.controller.iocost.donationEnabled = donation;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto busy = host.addWorkload("busy", 100);
    const auto light = host.addWorkload("light", 100);

    workload::FioConfig busy_cfg;
    busy_cfg.iodepth = 64;
    workload::FioWorkload busy_job(sim, host.layer(), busy,
                                   busy_cfg);
    workload::FioConfig light_cfg;
    light_cfg.arrival = workload::Arrival::Rate;
    light_cfg.ratePerSec = light_rate;
    workload::FioWorkload light_job(sim, host.layer(), light,
                                    light_cfg);

    busy_job.start();
    light_job.start();
    sim.runUntil(2 * sim::kSec);
    busy_job.resetStats();
    light_job.resetStats();
    sim.runUntil(12 * sim::kSec);
    return Outcome{busy_job.iops(), light_job.iops(),
                   light_job.latency().quantile(0.95)};
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    bench::banner(
        "Ablation: budget donation (§3.6)",
        "Busy cgroup + equal-weight light sibling at various light "
        "loads, vrate pinned.\nExpected: donation lets the busy "
        "cgroup absorb the light sibling's unused share\nwithout "
        "hurting the light sibling's latency; without donation the "
        "busy cgroup is\npinned near 50%.");

    struct Config
    {
        double rate;
        bool donation;
    };
    std::vector<Config> configs;
    for (double rate : {500.0, 2000.0, 8000.0}) {
        for (bool donation : {true, false})
            configs.push_back({rate, donation});
    }

    // Warm the shared profiler cache before the paired pool. Every
    // config runs with the same seed (paired CRN), so the on/off
    // deltas at each load level are seed-noise-free.
    (void)profile::DeviceProfiler::profileSsd(device::newGenSsd());
    const auto outs = host::runPaired(
        configs.size(), args.jobs, [&](size_t c) {
            return run(configs[c].donation, configs[c].rate,
                       args.faults);
        });

    bench::Table table({"Light load (IOPS)", "Donation",
                        "Busy IOPS", "Light IOPS", "Light p95"});
    for (size_t c = 0; c < configs.size(); ++c) {
        const Outcome &o = outs[c];
        table.row({bench::fmtCount(configs[c].rate),
                   configs[c].donation ? "on" : "off",
                   bench::fmtCount(o.busyIops),
                   bench::fmtCount(o.lightIops),
                   bench::fmtTime(o.lightP95)});
    }
    table.print();
    return 0;
}
