/**
 * @file
 * Figure 4: IO workload heterogeneity.
 *
 * Replays the IO-demand archetypes of Meta's workloads (webs,
 * serverless, in-memory caches with block backing, non-storage
 * services) and reports per-second read-vs-write and random-vs-
 * sequential bytes — the two axes of the paper's figure. Rates are
 * the archetypes' P50 demand signatures, not saturation tests.
 */

#include <array>

#include "bench/common.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/** Demand signature in MB/s for the four (dir x pattern) classes. */
struct Archetype
{
    const char *name;
    double randReadMBps;
    double seqReadMBps;
    double randWriteMBps;
    double seqWriteMBps;
    uint32_t blockSize;
};

constexpr std::array<Archetype, 7> kArchetypes = {{
    // Webs: moderate reads and writes, roughly even rand/seq mix.
    {"web-a", 18, 14, 12, 16, 16384},
    {"web-b", 10, 9, 8, 10, 16384},
    // Serverless: highly overcommitted, mixed reads and writes.
    {"serverless", 25, 10, 20, 12, 8192},
    // In-memory caches backed by fast block devices: heavily
    // sequential.
    {"cache-a", 6, 160, 2, 120, 262144},
    {"cache-b", 4, 90, 2, 210, 262144},
    // Non-storage services: little explicit IO (paging + periodic
    // software updates).
    {"nonstorage-a", 1.5, 0.7, 0.3, 1.2, 8192},
    {"nonstorage-b", 0.8, 0.4, 0.2, 0.8, 8192},
}};

} // namespace

int
main()
{
    bench::banner(
        "Figure 4: IO workload heterogeneity",
        "Measured per-second read/write and random/sequential "
        "bytes for each workload\narchetype (P50 demand "
        "signatures). Expected shape: webs mixed and moderate,\n"
        "caches sequential-heavy, non-storage tiny.");

    bench::Table table({"Workload", "Read B/s", "Write B/s",
                        "Random B/s", "Sequential B/s"});

    for (const Archetype &a : kArchetypes) {
        sim::Simulator sim(404);
        device::SsdModel device(sim, device::enterpriseSsd());
        cgroup::CgroupTree tree;
        blk::BlockLayer layer(sim, device, tree);
        const auto cg = tree.create(cgroup::kRoot, a.name);

        struct Dim
        {
            double mbps;
            double read_frac;
            double rand_frac;
        };
        const Dim dims[4] = {{a.randReadMBps, 1, 1},
                             {a.seqReadMBps, 1, 0},
                             {a.randWriteMBps, 0, 1},
                             {a.seqWriteMBps, 0, 0}};

        std::vector<std::unique_ptr<workload::FioWorkload>> jobs;
        std::vector<double> done_bytes(4, 0.0);
        for (const Dim &d : dims) {
            workload::FioConfig cfg;
            cfg.arrival = workload::Arrival::Rate;
            cfg.blockSize = a.blockSize;
            cfg.ratePerSec = d.mbps * 1e6 / a.blockSize;
            cfg.readFraction = d.read_frac;
            cfg.randomFraction = d.rand_frac;
            if (cfg.ratePerSec <= 0)
                continue;
            jobs.push_back(
                std::make_unique<workload::FioWorkload>(
                    sim, layer, cg, cfg));
        }
        for (auto &j : jobs)
            j->start();
        constexpr double kSeconds = 10.0;
        sim.runUntil(static_cast<sim::Time>(
            kSeconds * sim::kSec));

        double read = 0, write = 0, rand = 0, seq = 0;
        size_t ji = 0;
        for (const Dim &d : dims) {
            if (d.mbps <= 0)
                continue;
            const double bps =
                jobs[ji]->completed() * a.blockSize / kSeconds;
            ++ji;
            (d.read_frac > 0.5 ? read : write) += bps;
            (d.rand_frac > 0.5 ? rand : seq) += bps;
        }
        table.row({a.name, bench::fmtBps(read),
                   bench::fmtBps(write), bench::fmtBps(rand),
                   bench::fmtBps(seq)});
    }
    table.print();
    return 0;
}
