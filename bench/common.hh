/**
 * @file
 * Shared helpers for the figure/table reproduction benches: uniform
 * table printing and small formatting utilities so every bench
 * prints rows the way the paper reports them.
 */

#ifndef IOCOST_BENCH_COMMON_HH
#define IOCOST_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace iocost::bench {

/**
 * Uniform bench command line. Every bench parses the same flag set
 * through parseArgs() and reads the fields it cares about:
 *
 *   --jobs N         worker threads (0 = one per hardware thread;
 *                    results are byte-identical for any value)
 *   --shards N       fleet shard count (0 = auto: 8 per worker,
 *                    clamped to the host count)
 *   --faults SPEC    device fault plan (FaultPlan::parse grammar;
 *                    empty = healthy device)
 *   --check-allocs   run the CI allocation gate instead of / in
 *                    addition to the timed run
 *   --max-hosts N    cap the largest scaling step (perf_fleet)
 *
 * Unknown flags are ignored so wrappers can pass extras through.
 * Layout knobs (jobs/shards/faults) report to stderr so stdout
 * stays diffable across layouts.
 */
struct BenchArgs
{
    unsigned jobs = 0;
    unsigned shards = 0;
    std::string faults;
    bool checkAllocs = false;
    uint64_t maxHosts = 0;
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : "";
        if (std::strcmp(arg, "--jobs") == 0) {
            args.jobs = static_cast<unsigned>(
                std::strtoul(val, nullptr, 10));
            ++i;
        } else if (std::strcmp(arg, "--shards") == 0) {
            args.shards = static_cast<unsigned>(
                std::strtoul(val, nullptr, 10));
            ++i;
        } else if (std::strcmp(arg, "--faults") == 0) {
            args.faults = val;
            ++i;
        } else if (std::strcmp(arg, "--max-hosts") == 0) {
            args.maxHosts = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (std::strcmp(arg, "--check-allocs") == 0) {
            args.checkAllocs = true;
        }
    }
    std::fprintf(stderr, "jobs=%u%s\n", args.jobs,
                 args.jobs == 0 ? " (auto)" : "");
    if (args.shards != 0)
        std::fprintf(stderr, "shards=%u\n", args.shards);
    if (!args.faults.empty())
        std::fprintf(stderr, "faults=%s\n", args.faults.c_str());
    return args;
}

/** Print a banner naming the reproduced figure/table. */
inline void
banner(const std::string &title, const std::string &description)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("==============================================="
                "=============================\n");
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    Table &
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    void
    print() const
    {
        std::vector<size_t> width(headers_.size(), 0);
        for (size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_) {
            for (size_t c = 0; c < r.size() && c < width.size();
                 ++c) {
                width[c] = std::max(width[c], r[c].size());
            }
        }
        auto print_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < headers_.size(); ++c) {
                const std::string &cell =
                    c < r.size() ? r[c] : std::string();
                std::printf("%-*s  ",
                            static_cast<int>(width[c]),
                            cell.c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        size_t total = 0;
        for (size_t c = 0; c < headers_.size(); ++c)
            total += width[c] + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
        std::printf("\n");
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

/** Human-readable IOPS/ratios. */
inline std::string
fmtCount(double v)
{
    if (v >= 1e6)
        return fmt("%.2fM", v / 1e6);
    if (v >= 1e3)
        return fmt("%.1fk", v / 1e3);
    return fmt("%.0f", v);
}

/** Format simulated time as adaptive us/ms/s. */
inline std::string
fmtTime(sim::Time t)
{
    if (t >= sim::kSec)
        return fmt("%.2fs", sim::toSeconds(t));
    if (t >= sim::kMsec)
        return fmt("%.1fms", sim::toMillis(t));
    return fmt("%.0fus", sim::toMicros(t));
}

/** Format a byte rate. */
inline std::string
fmtBps(double bps)
{
    if (bps >= 1e9)
        return fmt("%.2fGB/s", bps / 1e9);
    if (bps >= 1e6)
        return fmt("%.1fMB/s", bps / 1e6);
    return fmt("%.0fkB/s", bps / 1e3);
}

} // namespace iocost::bench

#endif // IOCOST_BENCH_COMMON_HH
