/**
 * @file
 * Shared helpers for the figure/table reproduction benches: uniform
 * table printing and small formatting utilities so every bench
 * prints rows the way the paper reports them.
 */

#ifndef IOCOST_BENCH_COMMON_HH
#define IOCOST_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace iocost::bench {

/**
 * Parse `--jobs N` for the fleet benches. Default 0 = one worker per
 * hardware thread (fleet results are byte-identical for any value).
 * The worker count goes to stderr so stdout stays diffable across
 * job counts.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    unsigned jobs = 0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    std::fprintf(stderr, "jobs=%u%s\n", jobs,
                 jobs == 0 ? " (auto)" : "");
    return jobs;
}

/**
 * Parse `--shards N` for the fleet benches. Default 0 = auto (8 per
 * worker, clamped to the host count). Like --jobs, the shard count
 * only changes scheduling granularity — fleet aggregates are
 * byte-identical for any value — so it too reports to stderr.
 */
inline unsigned
shardsFromArgs(int argc, char **argv)
{
    unsigned shards = 0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0)
            shards = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (shards != 0)
        std::fprintf(stderr, "shards=%u\n", shards);
    return shards;
}

/** Print a banner naming the reproduced figure/table. */
inline void
banner(const std::string &title, const std::string &description)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("==============================================="
                "=============================\n");
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    Table &
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    void
    print() const
    {
        std::vector<size_t> width(headers_.size(), 0);
        for (size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_) {
            for (size_t c = 0; c < r.size() && c < width.size();
                 ++c) {
                width[c] = std::max(width[c], r[c].size());
            }
        }
        auto print_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < headers_.size(); ++c) {
                const std::string &cell =
                    c < r.size() ? r[c] : std::string();
                std::printf("%-*s  ",
                            static_cast<int>(width[c]),
                            cell.c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        size_t total = 0;
        for (size_t c = 0; c < headers_.size(); ++c)
            total += width[c] + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
        std::printf("\n");
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

/** Human-readable IOPS/ratios. */
inline std::string
fmtCount(double v)
{
    if (v >= 1e6)
        return fmt("%.2fM", v / 1e6);
    if (v >= 1e3)
        return fmt("%.1fk", v / 1e3);
    return fmt("%.0f", v);
}

/** Format simulated time as adaptive us/ms/s. */
inline std::string
fmtTime(sim::Time t)
{
    if (t >= sim::kSec)
        return fmt("%.2fs", sim::toSeconds(t));
    if (t >= sim::kMsec)
        return fmt("%.1fms", sim::toMillis(t));
    return fmt("%.0fus", sim::toMicros(t));
}

/** Format a byte rate. */
inline std::string
fmtBps(double bps)
{
    if (bps >= 1e9)
        return fmt("%.2fGB/s", bps / 1e9);
    if (bps >= 1e6)
        return fmt("%.1fMB/s", bps / 1e6);
    return fmt("%.0fkB/s", bps / 1e3);
}

} // namespace iocost::bench

#endif // IOCOST_BENCH_COMMON_HH
