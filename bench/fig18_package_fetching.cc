/**
 * @file
 * Figure 18: Package-fetching failures during the IOLatency ->
 * IOCost migration.
 *
 * Every simulated host-day, a system-slice package fetcher writes a
 * (scaled) package to disk under a deadline while the main workload
 * hammers the device; the host runs IOLatency before its staggered
 * migration day and IOCost after. Daily failure counts across the
 * fleet reproduce the paper's shape: the failure rate steps down
 * roughly 10x as the region migrates.
 */

#include "bench/common.hh"
#include "fleet/fleet_sim.hh"

int
main(int argc, char **argv)
{
    using namespace iocost;

    bench::banner(
        "Figure 18: Package fetching failures during the "
        "IOLatency -> IOCost migration",
        "Scaled fleet Monte-Carlo (see DESIGN.md): failures/day as "
        "hosts migrate.\nExpected shape: high plateau before, "
        "roughly 10x lower after.");

    fleet::FleetConfig cfg;
    cfg.seed = 1818;
    // Results are byte-identical for any --jobs/--shards value; the
    // default uses every hardware thread.
    const bench::BenchArgs args = bench::parseArgs(argc, argv);
    fleet::RunOptions opts;
    opts.jobs = args.jobs;
    opts.shards = args.shards;
    fleet::FleetScenario sc = fleet::scenarioFromConfig(cfg);
    if (!args.faults.empty())
        sc.faults = args.faults;
    const fleet::FleetAggregate agg =
        fleet::FleetSim::runScenario(sc, opts);
    const auto &days = agg.days;

    bench::Table table({"Day", "Fleet on IOCost", "Fetches",
                        "Failures", "Failure rate"});
    unsigned before_fail = 0, before_n = 0;
    unsigned after_fail = 0, after_n = 0;
    for (const auto &d : days) {
        table.row(
            {bench::fmt("%.0f", (double)d.day),
             bench::fmt("%.0f%%", 100.0 * d.fractionOnIoCost),
             bench::fmt("%.0f", (double)d.fetchAttempts),
             bench::fmt("%.0f", (double)d.fetchFailures),
             bench::fmt("%.1f%%", 100.0 * d.fetchFailures /
                                      d.fetchAttempts)});
        if (d.fractionOnIoCost < 0.05) {
            before_fail += d.fetchFailures;
            before_n += d.fetchAttempts;
        } else if (d.fractionOnIoCost > 0.95) {
            after_fail += d.fetchFailures;
            after_n += d.fetchAttempts;
        }
    }
    table.print();

    const double before =
        before_n ? 100.0 * before_fail / before_n : 0.0;
    const double after = after_n ? 100.0 * after_fail / after_n
                                 : 0.0;
    std::printf("Pre-migration failure rate:  %.1f%%\n", before);
    std::printf("Post-migration failure rate: %.1f%%\n", after);
    if (after > 0) {
        std::printf("Reduction: %.1fx (paper: ~10x)\n",
                    before / after);
    } else {
        std::printf("Reduction: complete (paper: ~10x)\n");
    }
    std::printf(
        "Completed-fetch latency: iolatency p50=%s p99=%s | "
        "iocost p50=%s p99=%s\n",
        bench::fmtTime(
            agg.fetchTime[fleet::kCtlIoLatency].quantile(0.50))
            .c_str(),
        bench::fmtTime(
            agg.fetchTime[fleet::kCtlIoLatency].quantile(0.99))
            .c_str(),
        bench::fmtTime(
            agg.fetchTime[fleet::kCtlIoCost].quantile(0.50))
            .c_str(),
        bench::fmtTime(
            agg.fetchTime[fleet::kCtlIoCost].quantile(0.99))
            .c_str());
    return 0;
}
