/**
 * @file
 * Figure 16: Stacked ZooKeeper-like ensembles and SLO violations.
 *
 * Twelve ensembles of five participants are spread over five hosts
 * with enterprise SSDs (no two participants of an ensemble share a
 * host). Eleven ensembles use 100 KB payloads; the twelfth is a
 * noisy neighbour with 300 KB payloads. Participants snapshot their
 * database after a fixed transaction count, creating write spikes.
 * Reported are the p99-latency SLO violations of the well-behaved
 * ensembles under each mechanism over the run. The paper (6h,
 * 3000 r/s + 100 w/s, 500k-txn snapshots): blk-throttle 78
 * violations, bfq 13, iolatency 31, iocost 2 marginal ones.
 *
 * Scaled for simulation: 10 minutes, 300 r/s + 10 w/s per ensemble,
 * snapshots every 1500 txns (preserving the snapshot frequency per
 * wall hour), SLO 1s unchanged.
 */

#include <memory>
#include <vector>

#include "bench/common.hh"
#include "controllers/blk_throttle.hh"
#include "controllers/io_latency.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/zookeeper.hh"

namespace {

using namespace iocost;

struct Outcome
{
    size_t violations;
    sim::Time longest;
    sim::Time p99Read;
    sim::Time p99Write;
    uint64_t snapshots;
};

Outcome
run(const std::string &mechanism)
{
    sim::Simulator sim(1616);
    // Enterprise-grade reads, but a realistic sustained-write path:
    // snapshot bursts overrun the write buffer and trigger GC
    // episodes, which is where the SLO violations come from.
    device::SsdSpec spec = device::enterpriseSsd();
    spec.name = "zk-enterprise-ssd";
    spec.writeBufferBytes = 256ull << 20;
    spec.sustainedWriteBps = 450e6;
    spec.gcWriteMult = 4.0;
    spec.gcReadMult = 2.5;
    spec.queueDepth = 128; // bound in-device GC backlog
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);

    constexpr unsigned kHosts = 5;
    std::vector<std::unique_ptr<host::Host>> hosts;
    std::vector<blk::BlockLayer *> layers;
    std::vector<cgroup::CgroupId> parents;
    for (unsigned h = 0; h < kHosts; ++h) {
        host::HostOptions opts;
        opts.controller = mechanism;
        opts.controller.iocost.model =
            core::CostModel::fromConfig(prof.model);
        opts.controller.iocost.qos.readLatTarget = 10 * sim::kMsec;
        opts.controller.iocost.qos.writeLatTarget = 30 * sim::kMsec;
        opts.controller.iocost.qos.period = 20 * sim::kMsec;
        opts.controller.iocost.qos.vrateMin = 0.5;
        opts.controller.iocost.qos.vrateMax = 1.0;
        hosts.push_back(std::make_unique<host::Host>(
            sim, std::make_unique<device::SsdModel>(sim, spec),
            opts));
        layers.push_back(&hosts.back()->layer());
        parents.push_back(hosts.back()->workload());
    }

    workload::ZkConfig cfg;
    cfg.ensembles = 12;
    cfg.participantsPerEnsemble = 5;
    cfg.readsPerSec = 300;
    cfg.writesPerSec = 25;
    cfg.payloadBytes = 100 * 1024;
    cfg.noisyEnsemble = 11;
    cfg.noisyPayloadBytes = 300 * 1024;
    cfg.snapshotEveryTxns = 1500;
    cfg.snapshotBytes = 2ull << 30;
    cfg.sloTarget = 1 * sim::kSec;
    cfg.window = 5 * sim::kSec;

    workload::ZkCluster cluster(sim, layers, parents, cfg);

    if (mechanism == "iolatency") {
        // Best-effort configuration: equal-priority participants all
        // get the same latency target (there is no proportional
        // interface), which in practice cannot throttle anyone.
        for (unsigned h = 0; h < kHosts; ++h) {
            auto *iolat = dynamic_cast<controllers::IoLatency *>(
                layers[h]->controller());
            for (cgroup::CgroupId cg :
                 layers[h]->cgroups().allIds()) {
                if (layers[h]->cgroups().name(cg).rfind("zk-", 0) ==
                    0) {
                    iolat->setTarget(cg, 25 * sim::kMsec);
                }
            }
        }
    }
    if (mechanism == "blk-throttle") {
        // Static per-participant caps preserving equal shares of a
        // conservative slice of each device.
        for (unsigned h = 0; h < kHosts; ++h) {
            auto *thr = dynamic_cast<controllers::BlkThrottle *>(
                layers[h]->controller());
            for (cgroup::CgroupId cg :
                 layers[h]->cgroups().allIds()) {
                if (layers[h]->cgroups().name(cg).rfind("zk-", 0) ==
                    0) {
                    thr->setLimits(
                        cg, {.wbps = prof.model.wbps / 16.0});
                }
            }
        }
    }

    cluster.start();
    sim.runUntil(600 * sim::kSec);
    cluster.stop();

    const auto agg = cluster.wellBehavedAggregate();
    Outcome out;
    out.violations = agg.violations.size();
    out.longest = 0;
    for (const auto &v : agg.violations)
        out.longest = std::max(out.longest, v.duration);
    out.p99Read = agg.readLatency.quantile(0.99);
    out.p99Write = agg.writeLatency.quantile(0.99);
    out.snapshots = agg.snapshots;
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 16: ZooKeeper-like stacked ensembles, 1s SLO "
        "violations (well-behaved ensembles)",
        "12 ensembles x 5 participants over 5 enterprise-SSD "
        "hosts, one noisy ensemble,\nperiodic snapshots; 10-minute "
        "scaled run. Expected shape: blk-throttle most\nviolations, "
        "iolatency and bfq fewer but significant, iocost none or "
        "marginal.");

    bench::Table table({"Mechanism", "SLO violations",
                        "Longest violation", "p99 read",
                        "p99 write", "Snapshots"});
    for (const std::string name :
         {"blk-throttle", "bfq", "iolatency", "iocost"}) {
        const Outcome o = run(name);
        table.row({name, bench::fmt("%.0f", (double)o.violations),
                   o.violations ? bench::fmtTime(o.longest) : "-",
                   bench::fmtTime(o.p99Read),
                   bench::fmtTime(o.p99Write),
                   bench::fmt("%.0f", (double)o.snapshots)});
    }
    table.print();
    return 0;
}
