/**
 * @file
 * Figure 13: Dynamic vrate adjustment under model inaccuracy.
 *
 * A saturating 4k random-read workload runs on the new-gen SSD with
 * QoS targeting p90 read latency of 250us. At t=20s the cost-model
 * parameters are halved online (claiming half the real occupancy);
 * vrate must climb to ~200% to restore the issue rate. At t=40s the
 * parameters are set to double the original; vrate must fall to
 * ~50%, after a momentary latency spike.
 */

#include <memory>

#include "bench/common.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "stat/time_series.hh"
#include "workload/fio_workload.hh"

int
main()
{
    using namespace iocost;

    bench::banner(
        "Figure 13: vrate adjustment due to model inaccuracy",
        "Online model updates at t=20s (half capability) and t=40s "
        "(double the\noriginal). Expected shape: vrate ~100 -> "
        "~200 -> ~50 while read IOPS recovers\nto the device rate "
        "each time and p90 latency returns to the 250us target.");

    sim::Simulator sim(1313);
    const device::SsdSpec spec = device::newGenSsd();

    host::HostOptions opts;
    opts.controller = "iocost";
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);
    const core::CostModel base_model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.model = base_model;
    opts.controller.iocost.qos.readLatQuantile = 0.90;
    opts.controller.iocost.qos.readLatTarget = 250 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 1 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 4.0;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto cg = host.addWorkload("fio", 100);

    workload::FioConfig cfg;
    cfg.iodepth = 64;
    workload::FioWorkload job(sim, host.layer(), cg, cfg);
    job.start();

    core::IoCost *ctl = host.iocost();

    // Online model updates (io.cost.model writes in production).
    sim.at(20 * sim::kSec, [&] {
        core::CostModel halved = base_model;
        halved.scaleCapability(0.5);
        ctl->setModel(halved);
    });
    sim.at(40 * sim::kSec, [&] {
        core::CostModel doubled = base_model;
        doubled.scaleCapability(2.0);
        ctl->setModel(doubled);
    });

    // Sample read rate and p90 latency once per second.
    stat::TimeSeries iops_series("read-iops");
    stat::TimeSeries p90_series("read-p90-us");
    uint64_t last_completed = 0;
    sim::PeriodicTimer sampler(sim, 1 * sim::kSec, [&] {
        const uint64_t now_completed = job.completed();
        iops_series.record(
            sim.now(),
            static_cast<double>(now_completed - last_completed));
        last_completed = now_completed;
        p90_series.record(
            sim.now(),
            sim::toMicros(host.layer()
                              .stats(cg)
                              .deviceLatency.quantile(0.9)));
    });
    sampler.start();
    sim.runUntil(60 * sim::kSec);

    bench::Table table(
        {"t (s)", "read IOPS", "vrate (%)", "event"});
    const auto &vrates = ctl->vrateSeries().points();
    for (size_t i = 0; i < iops_series.points().size(); ++i) {
        const auto &p = iops_series.points()[i];
        // Find the closest vrate sample.
        double vrate = 100.0;
        for (const auto &v : vrates) {
            if (v.when <= p.when)
                vrate = v.value;
            else
                break;
        }
        std::string event;
        const double t = sim::toSeconds(p.when);
        if (static_cast<int>(t) == 21)
            event = "<- model halved @20s";
        if (static_cast<int>(t) == 41)
            event = "<- model doubled (vs original) @40s";
        table.row({bench::fmt("%.0f", t),
                   bench::fmtCount(p.value),
                   bench::fmt("%.0f", vrate), event});
    }
    table.print();

    // Phase summary: average vrate within each model regime.
    auto mean_between = [&](const stat::TimeSeries &s,
                            double t0, double t1) {
        double sum = 0;
        int n = 0;
        for (const auto &p : s.points()) {
            const double t = sim::toSeconds(p.when);
            if (t >= t0 && t < t1) {
                sum += p.value;
                ++n;
            }
        }
        return n ? sum / n : 0.0;
    };
    bench::Table summary({"Phase", "Mean vrate (%)",
                          "Mean read IOPS"});
    summary.row({"accurate model (5-20s)",
                 bench::fmt("%.0f",
                            mean_between(ctl->vrateSeries(), 5,
                                         20)),
                 bench::fmtCount(mean_between(iops_series, 5, 20))});
    summary.row({"halved model (25-40s)",
                 bench::fmt("%.0f",
                            mean_between(ctl->vrateSeries(), 25,
                                         40)),
                 bench::fmtCount(
                     mean_between(iops_series, 25, 40))});
    summary.row({"doubled model (45-60s)",
                 bench::fmt("%.0f",
                            mean_between(ctl->vrateSeries(), 45,
                                         60)),
                 bench::fmtCount(
                     mean_between(iops_series, 45, 60))});
    summary.print();
    return 0;
}
