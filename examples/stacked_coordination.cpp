/**
 * @file
 * Example: stacking replicated coordination-service ensembles
 * (ZooKeeper-like) across hosts under IOCost (§4.6).
 *
 * Builds a three-host cluster, places four ensembles of three
 * participants so replicas never share a host, adds a noisy
 * ensemble with large payloads, and prints per-ensemble operation
 * latencies and SLO violations. Demonstrates the multi-host
 * simulation API: several Hosts sharing one Simulator.
 *
 * Build & run:  ./build/examples/stacked_coordination
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/zookeeper.hh"

int
main()
{
    using namespace iocost;

    sim::Simulator sim(11);
    device::SsdSpec spec = device::enterpriseSsd();
    spec.writeBufferBytes = 256ull << 20;
    spec.sustainedWriteBps = 450e6;
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);

    std::vector<std::unique_ptr<host::Host>> hosts;
    std::vector<blk::BlockLayer *> layers;
    std::vector<cgroup::CgroupId> parents;
    for (int h = 0; h < 3; ++h) {
        host::HostOptions opts;
        opts.controller = "iocost";
        opts.controller.iocost.model =
            core::CostModel::fromConfig(prof.model);
        opts.controller.iocost.qos.readLatTarget = 10 * sim::kMsec;
        opts.controller.iocost.qos.writeLatTarget = 30 * sim::kMsec;
        hosts.push_back(std::make_unique<host::Host>(
            sim, std::make_unique<device::SsdModel>(sim, spec),
            opts));
        layers.push_back(&hosts.back()->layer());
        parents.push_back(hosts.back()->workload());
    }

    workload::ZkConfig cfg;
    cfg.ensembles = 4;
    cfg.participantsPerEnsemble = 3;
    cfg.readsPerSec = 200;
    cfg.writesPerSec = 20;
    cfg.payloadBytes = 100 * 1024;
    cfg.noisyEnsemble = 3;
    cfg.noisyPayloadBytes = 300 * 1024;
    cfg.snapshotEveryTxns = 1000;
    cfg.snapshotBytes = 512ull << 20;

    workload::ZkCluster cluster(sim, layers, parents, cfg);
    cluster.start();
    sim.runUntil(120 * sim::kSec);
    cluster.stop();

    std::printf("%-12s %10s %10s %10s %6s\n", "Ensemble",
                "read p99", "write p99", "snapshots",
                "SLO viol");
    for (unsigned e = 0; e < cfg.ensembles; ++e) {
        const auto &st = cluster.ensembleStats(e);
        std::printf("%-12s %8.1fms %8.1fms %10llu %6zu%s\n",
                    st.name.c_str(),
                    sim::toMillis(st.readLatency.quantile(0.99)),
                    sim::toMillis(st.writeLatency.quantile(0.99)),
                    static_cast<unsigned long long>(st.snapshots),
                    st.violations.size(),
                    e == cfg.noisyEnsemble ? "  <- noisy" : "");
    }
    return 0;
}
