/**
 * @file
 * resctl-demo-style guided tour (after the paper's open-source
 * artifact of the same name): one host, four phases, a running
 * report of what IOCost does in each.
 *
 *   phase 1  web server alone               (baseline)
 *   phase 2  + batch container at weight 50 (proportional sharing)
 *   phase 3  + memory leak in system.slice  (debt mechanism)
 *   phase 4  leak OOM-killed                (recovery)
 *
 * The host is configured with a cgroupfs-style text block exactly as
 * a production machine would be.
 *
 * Build & run:  ./build/examples/resctl_demo
 */

#include <cstdio>
#include <memory>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/config.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

void
report(const char *phase, host::Host &host,
       workload::LatencyServer &web, workload::FioWorkload &batch,
       cgroup::CgroupId leak_cg)
{
    core::IoCost *ioc = host.iocost();
    std::printf("%-28s web %5.0f rps (p95 %8s)   batch %7.0f "
                "IOPS   vrate %3.0f%%   leak debt %6.1fms\n",
                phase, web.deliveredRps(),
                (std::to_string(
                     static_cast<long>(sim::toMicros(
                         web.latency().quantile(0.95)))) +
                 "us")
                    .c_str(),
                batch.iops(), 100.0 * ioc->vrate(),
                ioc->debt(leak_cg) / 1e6);
}

} // namespace

int
main()
{
    std::printf("resctl-demo: a guided tour of IOCost on one "
                "host\n\n");

    sim::Simulator sim(99);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(spec).model);
    opts.controller.iocost.qos.readLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.writeLatTarget = 4 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 1.25;
    opts.enableMemory = true;
    opts.memoryConfig.totalBytes = 3ull << 30;
    opts.memoryConfig.swapBytes = 2ull << 30; // small swap: the
                                              // leak eventually OOMs
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);

    // Production-style configuration, one echo per line.
    const auto cfg_result = host::applyConfig(host, R"(
        workload.slice              io.weight=500
        workload.slice/web          io.weight=200 memory.low=2G
        workload.slice/batch        io.weight=50
        system.slice                io.weight=50
        system.slice/leaky-daemon   io.weight=100
    )");
    if (!cfg_result) {
        std::fprintf(stderr, "config error: %s\n",
                     cfg_result.error.c_str());
        return 1;
    }
    std::printf("applied %u cgroup config lines\n\n",
                cfg_result.applied);

    const auto web_cg =
        host::findCgroup(host.tree(), "workload.slice/web");
    const auto batch_cg =
        host::findCgroup(host.tree(), "workload.slice/batch");
    const auto leak_cg = host::findCgroup(
        host.tree(), "system.slice/leaky-daemon");

    workload::LatencyServerConfig web_cfg;
    web_cfg.name = "web";
    web_cfg.offeredRps = 300;
    web_cfg.workingSetBytes = 2ull << 30;
    web_cfg.touchPerRequest = 1ull << 20;
    web_cfg.readsPerRequest = 2;
    web_cfg.readSize = 32 * 1024;
    web_cfg.logWriteSize = 8192;
    workload::LatencyServer web(sim, host.layer(), host.mm(),
                                web_cg, web_cfg);

    workload::FioConfig batch_cfg;
    batch_cfg.iodepth = 32;
    batch_cfg.readFraction = 0.5;
    batch_cfg.blockSize = 65536;
    batch_cfg.offsetBase = 1ull << 40;
    workload::FioWorkload batch(sim, host.layer(), batch_cg,
                                batch_cfg);

    workload::MemoryHogConfig leak_cfg;
    leak_cfg.mode = workload::HogMode::Leak;
    leak_cfg.leakBytesPerSec = 400e6;
    workload::MemoryHog leaker(sim, host.mm(), leak_cg, leak_cfg);
    unsigned kills = 0;
    host.mm().setOomHandler([&](cgroup::CgroupId cg) {
        if (cg == leak_cg) {
            ++kills;
            leaker.stop(); // demo: do not restart
            leaker.notifyOomKilled();
        }
    });

    auto run_phase = [&](const char *label, sim::Time seconds) {
        web.resetStats();
        batch.resetStats();
        sim.runUntil(sim.now() + seconds * sim::kSec);
        report(label, host, web, batch, leak_cg);
    };

    web.prepare([&] { web.start(); });
    sim.runUntil(2 * sim::kSec);

    run_phase("phase 1: web alone", 10);

    batch.start();
    run_phase("phase 2: + batch (w=50)", 10);

    leaker.start();
    run_phase("phase 3: + memory leak", 25);

    // By now swap has filled or the OOM killer fired.
    run_phase("phase 4: after the dust", 10);
    std::printf("\nleaky-daemon OOM kills: %u\n", kills);
    std::printf("io.stat (web):  %s\n",
                host.iocost()->statLine(web_cg).c_str());
    std::printf("io.stat (leak): %s\n",
                host.iocost()->statLine(leak_cg).c_str());
    return 0;
}
