/**
 * @file
 * Example: protecting a latency-sensitive service from a memory
 * leak with IOCost's memory-management integration (§3.5).
 *
 * A web server with a guaranteed working set shares a host with a
 * leaking auxiliary service. The leak drives reclaim; swap-out
 * writes are charged to the leaker as *debt* (issued immediately,
 * repaid from its future budget, with return-to-userspace pacing),
 * so the web server's IO and page faults keep flowing. The example
 * prints a side-by-side of the web server's delivered RPS with and
 * without the leaker, and the leaker's accumulated debt and OOM
 * kills.
 *
 * Build & run:  ./build/examples/memory_protection
 */

#include <cstdio>
#include <memory>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

double
run(bool with_leaker, double *debt_out, unsigned *kills_out)
{
    sim::Simulator sim(7);
    const device::SsdSpec spec = device::oldGenSsd();

    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(spec).model);
    opts.controller.iocost.qos.readLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.writeLatTarget = 4 * sim::kMsec;
    opts.enableMemory = true;
    opts.memoryConfig.totalBytes = 3ull << 30;
    opts.memoryConfig.swapBytes = 8ull << 30;

    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto web_cg = host.addWorkload("web", 100);
    const auto leak_cg = host.addSystemService("leaky-daemon");

    workload::LatencyServerConfig web_cfg;
    web_cfg.offeredRps = 300;
    web_cfg.workingSetBytes = 2ull << 30;
    web_cfg.touchPerRequest = 1ull << 20;
    web_cfg.readsPerRequest = 2;
    web_cfg.readSize = 32 * 1024;
    web_cfg.logWriteSize = 8192;
    workload::LatencyServer web(sim, host.layer(), host.mm(),
                                web_cg, web_cfg);

    workload::MemoryHogConfig leak_cfg;
    leak_cfg.mode = workload::HogMode::Leak;
    leak_cfg.leakBytesPerSec = 300e6;
    workload::MemoryHog leaker(sim, host.mm(), leak_cg, leak_cfg);
    host.mm().setOomHandler([&](cgroup::CgroupId cg) {
        if (cg == leak_cg)
            leaker.notifyOomKilled();
    });

    web.prepare([&] {
        web.start();
        if (with_leaker)
            leaker.start();
    });
    sim.runUntil(5 * sim::kSec);
    web.resetStats();
    sim.runUntil(35 * sim::kSec);

    if (debt_out)
        *debt_out = host.iocost()->debt(leak_cg);
    if (kills_out)
        *kills_out = leaker.kills();
    return web.deliveredRps();
}

} // namespace

int
main()
{
    double debt = 0;
    unsigned kills = 0;
    const double alone = run(false, nullptr, nullptr);
    const double stacked = run(true, &debt, &kills);

    std::printf("Web server on the old-gen SSD under IOCost:\n");
    std::printf("  alone:          %6.0f RPS\n", alone);
    std::printf("  next to leaker: %6.0f RPS  (%.0f%% retained)\n",
                stacked, 100.0 * stacked / alone);
    std::printf("  leaker swap-IO debt at end: %.1f ms of device "
                "occupancy\n",
                debt / 1e6);
    std::printf("  leaker OOM kills absorbed:  %u\n", kills);
    return 0;
}
