/**
 * @file
 * Example: the offline configuration pipeline — profile a device
 * (§3.2) and tune its QoS parameters with the
 * ResourceControlBench procedure (§3.4), then print the resulting
 * io.cost.model / io.cost.qos style configuration lines.
 *
 * This is what runs once per device model before fleet deployment;
 * workloads afterwards only need cgroup weights.
 *
 * Build & run:  ./build/examples/profile_and_tune
 */

#include <cstdio>

#include "device/device_profiles.hh"
#include "profile/device_profiler.hh"
#include "profile/qos_tuner.hh"

int
main()
{
    using namespace iocost;

    const device::SsdSpec spec = device::newGenSsd();
    std::printf("Profiling %s ...\n", spec.name.c_str());
    const auto &prof = profile::DeviceProfiler::profileSsd(spec);

    std::printf("\nMeasured envelope:\n");
    std::printf("  4k rand read  %8.0f IOPS  (p50 %.0f us)\n",
                prof.randReadIops,
                sim::toMicros(prof.readLatency));
    std::printf("  4k seq  read  %8.0f IOPS\n", prof.seqReadIops);
    std::printf("  4k rand write %8.0f IOPS  (p50 %.0f us)\n",
                prof.randWriteIops,
                sim::toMicros(prof.writeLatency));
    std::printf("  4k seq  write %8.0f IOPS\n", prof.seqWriteIops);

    std::printf("\nTuning QoS with ResourceControlBench (two "
                "scenarios, vrate sweep) ...\n");
    const auto tuned = profile::QosTuner::tune(spec);
    for (const auto &p : tuned.sweep) {
        std::printf("  vrate %3.0f%%: alone %4.0f rps, stacked "
                    "p95 %8.2f ms\n",
                    100 * p.vrate, p.aloneRps,
                    sim::toMillis(p.stackedP95));
    }

    std::printf("\nDeployable configuration:\n");
    std::printf("  io.cost.model: rbps=%.0f rseqiops=%.0f "
                "rrandiops=%.0f wbps=%.0f wseqiops=%.0f "
                "wrandiops=%.0f\n",
                prof.model.rbps, prof.model.rseqiops,
                prof.model.rrandiops, prof.model.wbps,
                prof.model.wseqiops, prof.model.wrandiops);
    std::printf("  io.cost.qos:   rpct=%.0f rlat=%.0fus "
                "wpct=%.0f wlat=%.0fus min=%.0f max=%.0f\n",
                100 * tuned.qos.readLatQuantile,
                sim::toMicros(tuned.qos.readLatTarget),
                100 * tuned.qos.writeLatQuantile,
                sim::toMicros(tuned.qos.writeLatTarget),
                100 * tuned.qos.vrateMin,
                100 * tuned.qos.vrateMax);
    return 0;
}
