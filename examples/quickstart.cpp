/**
 * @file
 * Quickstart: the full IOCost pipeline in ~80 lines.
 *
 *  1. Pick a device model and profile it offline (the fio-based
 *     methodology of §3.2) to obtain the linear cost model.
 *  2. Assemble a host: device + block layer + cgroup hierarchy +
 *     IOCost controller.
 *  3. Create two workload cgroups with 2:1 weights and run
 *     saturating random readers in both.
 *  4. Observe that IO is distributed 2:1 by device occupancy.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"

int
main()
{
    using namespace iocost;

    // --- 1. Offline device profiling --------------------------------
    const device::SsdSpec spec = device::newGenSsd();
    const auto &profile = profile::DeviceProfiler::profileSsd(spec);
    std::printf("Profiled %s:\n", spec.name.c_str());
    std::printf("  rbps=%.0f rseqiops=%.0f rrandiops=%.0f\n",
                profile.model.rbps, profile.model.rseqiops,
                profile.model.rrandiops);
    std::printf("  wbps=%.0f wseqiops=%.0f wrandiops=%.0f\n\n",
                profile.model.wbps, profile.model.wseqiops,
                profile.model.wrandiops);

    // --- 2. Assemble a host with IOCost -----------------------------
    sim::Simulator sim(/*seed=*/42);
    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost.model =
        core::CostModel::fromConfig(profile.model);
    opts.controller.iocost.qos.readLatTarget = 400 * sim::kUsec;
    // QoS bounds come from the tuning procedure in practice (see
    // examples/profile_and_tune); max 100% = never overdrive the
    // profiled peak, which is what makes the weights binding.
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 1.0;
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);

    // --- 3. Two containers, 2:1 io.weight ---------------------------
    const auto web = host.addWorkload("web", 200);
    const auto batch = host.addWorkload("batch", 100);

    workload::FioConfig cfg;
    cfg.iodepth = 32; // saturating 4k random reads
    workload::FioWorkload web_job(sim, host.layer(), web, cfg);
    workload::FioWorkload batch_job(sim, host.layer(), batch, cfg);
    web_job.start();
    batch_job.start();

    // --- 4. Run and report ------------------------------------------
    sim.runUntil(2 * sim::kSec); // warmup
    web_job.resetStats();
    batch_job.resetStats();
    sim.runUntil(12 * sim::kSec);

    std::printf("After 10 simulated seconds (weights 200:100):\n");
    std::printf("  web:   %8.0f IOPS  (p50 %.0f us)\n",
                web_job.iops(),
                sim::toMicros(web_job.latency().quantile(0.5)));
    std::printf("  batch: %8.0f IOPS  (p50 %.0f us)\n",
                batch_job.iops(),
                sim::toMicros(batch_job.latency().quantile(0.5)));
    std::printf("  ratio: %.2f (configured 2.0)\n",
                web_job.iops() / batch_job.iops());
    std::printf("  vrate: %.0f%%\n",
                100.0 * host.iocost()->vrate());
    return 0;
}
