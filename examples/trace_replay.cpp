/**
 * @file
 * Example: capture a workload's IO trace and replay it under
 * different controllers.
 *
 * The Fig. 4 methodology in miniature: a workload signature is
 * captured once (here from a mixed fio job; in practice from
 * blktrace on a production host), serialized, and then replayed —
 * open loop, identical arrival times and offsets — against stacks
 * with different IO control mechanisms, comparing the latency each
 * delivers to the *same* demand.
 *
 * Build & run:  ./build/examples/trace_replay
 */

#include <cstdio>
#include <memory>
#include <sstream>

#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"
#include "workload/trace.hh"

int
main()
{
    using namespace iocost;

    // --- capture ----------------------------------------------------
    workload::Trace trace;
    {
        sim::Simulator sim(5);
        device::SsdModel device(sim, device::oldGenSsd());
        cgroup::CgroupTree tree;
        blk::BlockLayer layer(sim, device, tree);
        const auto cg = tree.create(cgroup::kRoot, "captured-app");
        workload::TraceRecorder recorder(layer);

        workload::FioConfig cfg;
        cfg.arrival = workload::Arrival::Rate;
        cfg.ratePerSec = 5000;
        cfg.readFraction = 0.7;
        cfg.randomFraction = 0.6;
        cfg.blockSize = 16384;
        workload::FioWorkload job(sim, layer, cg, cfg);
        // Route the job's bios through the recorder by replaying
        // its submissions: simplest is to capture at the layer via
        // wrap() — here we submit a mirror stream explicitly.
        job.start();
        sim::PeriodicTimer mirror(sim, 200 * sim::kUsec, [&] {
            recorder.submit(blk::Bio::make(
                blk::Op::Read, (sim.now() % (1 << 30)), 16384,
                cg));
        });
        mirror.start();
        sim.runUntil(5 * sim::kSec);
        trace = recorder.take();
    }
    std::printf("captured %zu records, %.1f MB read, %.1f MB "
                "written, %.2fs span\n",
                trace.size(), trace.readBytes() / 1e6,
                trace.writeBytes() / 1e6,
                sim::toSeconds(trace.duration()));

    // Round-trip through the text format, as a file would.
    std::stringstream file;
    trace.save(file);
    trace = workload::Trace::load(file);

    // --- replay under each mechanism --------------------------------
    std::printf("\n%-14s %10s %12s %12s\n", "controller",
                "completed", "p50", "p99");
    for (const std::string name :
         {"none", "bfq", "iocost"}) {
        sim::Simulator sim(6);
        const device::SsdSpec spec = device::oldGenSsd();
        host::HostOptions opts;
        opts.controller = name;
        opts.controller.iocost.model = core::CostModel::fromConfig(
            profile::DeviceProfiler::profileSsd(spec).model);
        host::Host host(
            sim, std::make_unique<device::SsdModel>(sim, spec),
            opts);

        // An antagonist loads the device while the trace replays.
        const auto noisy = host.addWorkload("noisy", 100);
        workload::FioConfig antagonist;
        antagonist.readFraction = 0.0;
        antagonist.blockSize = 256 * 1024;
        antagonist.iodepth = 8;
        workload::FioWorkload noise(sim, host.layer(), noisy,
                                    antagonist);
        noise.start();

        workload::ReplayConfig rcfg;
        rcfg.fallbackParent = host.workload();
        workload::TraceReplayer replay(sim, host.layer(), trace,
                                       rcfg);

        // Measure replay latencies via a recorder on the same layer.
        stat::Histogram lat;
        sim::Time t0 = sim.now();
        (void)t0;
        replay.start();
        sim.runUntil(8 * sim::kSec);

        // Latency statistics come from the layer's per-cgroup
        // accounting of the replayed cgroup.
        cgroup::CgroupId replayed = cgroup::kNone;
        auto &tree = host.tree();
        for (cgroup::CgroupId id = 0; id < tree.size(); ++id) {
            if (tree.name(id) == "captured-app")
                replayed = id;
        }
        const auto &st = host.layer().stats(replayed);
        std::printf("%-14s %10llu %10.0fus %10.0fus\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        replay.completed()),
                    sim::toMicros(st.totalLatency.quantile(0.5)),
                    sim::toMicros(st.totalLatency.quantile(0.99)));
    }
    return 0;
}
