/**
 * @file
 * Unit tests for the linear cost model, anchored on the paper's
 * worked example (Fig. 6 / §3.2): the configuration
 *   rbps=488636629 rseqiops=8932 rrandiops=8518
 *   wbps=427891549 wseqiops=28755 wrandiops=21940
 * compiles to a 2.05 ns/B read size rate, a 104 us sequential read
 * base cost, and a 109 us random read base cost.
 *
 * Note: the paper's prose then prices a "32KB" random read at 352 us
 * via "109us + 32 * 4096 * 2.05ns"; 32*4096 bytes is 128KiB, and the
 * product evaluates to ~377 us, so the printed 352 us is internally
 * inconsistent arithmetic in the paper. We test the exact values
 * Eqs. 1-3 produce (see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace {

using namespace iocost::core;
using iocost::blk::Op;

LinearModelConfig
paperConfig()
{
    // Fig. 6 of the paper, verbatim.
    LinearModelConfig cfg;
    cfg.rbps = 488636629;
    cfg.rseqiops = 8932;
    cfg.rrandiops = 8518;
    cfg.wbps = 427891549;
    cfg.wseqiops = 28755;
    cfg.wrandiops = 21940;
    return cfg;
}

TEST(CostModel, PaperSizeCostRate)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    // "For reads, this translates to 2.05ns/B of size_rate".
    EXPECT_NEAR(m.readNsPerByte(), 2.05, 0.005);
}

TEST(CostModel, PaperBaseCosts)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    // "sequential base cost of 104us and random base cost of 109us".
    EXPECT_NEAR(m.readBaseSeq() / 1000.0, 104.0, 1.0);
    EXPECT_NEAR(m.readBaseRand() / 1000.0, 109.0, 1.0);
}

TEST(CostModel, FourKRandomReadCostMatchesIops)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    // By construction a 4k random read must cost 1s / rrandiops.
    const auto cost = m.cost(Op::Read, false, 4096);
    EXPECT_NEAR(static_cast<double>(cost), 1e9 / 8518.0, 2.0);
}

TEST(CostModel, FourKSeqWriteCostMatchesIops)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    const auto cost = m.cost(Op::Write, true, 4096);
    EXPECT_NEAR(static_cast<double>(cost), 1e9 / 28755.0, 2.0);
}

TEST(CostModel, LargeRandomReadCost)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    // 128KiB random read: base 109us + 131072 B * 2.0465 ns/B.
    const auto cost = m.cost(Op::Read, false, 131072);
    const double expected =
        m.readBaseRand() + 131072.0 * m.readNsPerByte();
    EXPECT_NEAR(static_cast<double>(cost), expected, 2.0);
    // ~377 us, i.e. the device can service ~2650 per second.
    EXPECT_NEAR(static_cast<double>(cost) / 1000.0, 377.0, 3.0);
}

TEST(CostModel, SequentialCheaperThanRandom)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    EXPECT_LT(m.cost(Op::Read, true, 4096),
              m.cost(Op::Read, false, 4096));
    EXPECT_LT(m.cost(Op::Write, true, 4096),
              m.cost(Op::Write, false, 4096));
}

TEST(CostModel, CostGrowsLinearlyWithSize)
{
    const CostModel m = CostModel::fromConfig(paperConfig());
    const auto c4k = m.cost(Op::Read, false, 4096);
    const auto c8k = m.cost(Op::Read, false, 8192);
    const auto c16k = m.cost(Op::Read, false, 16384);
    // Equal increments per doubling step of the same size delta.
    EXPECT_NEAR(static_cast<double>(c8k - c4k),
                4096.0 * m.readNsPerByte(), 2.0);
    EXPECT_NEAR(static_cast<double>(c16k - c8k),
                8192.0 * m.readNsPerByte(), 2.0);
}

TEST(CostModel, TransferBoundDeviceClampsBaseAtZero)
{
    // A device whose 4k IOPS equals bps/4096 exactly has zero fixed
    // cost; pushing IOPS higher must not yield negative bases.
    LinearModelConfig cfg;
    cfg.rbps = 400e6;
    cfg.rseqiops = 200000; // above bps/4k = 97k
    cfg.rrandiops = 200000;
    cfg.wbps = 400e6;
    cfg.wseqiops = 200000;
    cfg.wrandiops = 200000;
    const CostModel m = CostModel::fromConfig(cfg);
    EXPECT_GE(m.readBaseSeq(), 0.0);
    EXPECT_GE(m.readBaseRand(), 0.0);
    EXPECT_GE(m.writeBaseSeq(), 0.0);
    EXPECT_GT(m.cost(Op::Read, false, 4096), 0);
}

TEST(CostModel, ScaleCapabilityHalvesAndDoubles)
{
    CostModel m = CostModel::fromConfig(paperConfig());
    const auto base = m.cost(Op::Read, false, 4096);

    CostModel half = m;
    half.scaleCapability(0.5); // device claimed half as capable
    EXPECT_NEAR(static_cast<double>(half.cost(Op::Read, false, 4096)),
                2.0 * static_cast<double>(base), 4.0);

    CostModel twice = m;
    twice.scaleCapability(2.0);
    EXPECT_NEAR(
        static_cast<double>(twice.cost(Op::Read, false, 4096)),
        0.5 * static_cast<double>(base), 4.0);
}

TEST(CostModel, MinimumCostIsOneNanosecond)
{
    LinearModelConfig cfg;
    cfg.rbps = 1e18;
    cfg.rseqiops = 1e12;
    cfg.rrandiops = 1e12;
    cfg.wbps = 1e18;
    cfg.wseqiops = 1e12;
    cfg.wrandiops = 1e12;
    const CostModel m = CostModel::fromConfig(cfg);
    EXPECT_GE(m.cost(Op::Read, true, 1), 1);
}

} // namespace
