/**
 * @file
 * Determinism guard for the pooled bio hot path: recycling bios
 * through BioPool (and delivering completions via inline callbacks)
 * must be invisible to the simulation. Every observable — counters,
 * latency histograms, throughput, and the full telemetry record
 * stream — must be byte-identical between the pooled fast path and
 * the BioPool bypass lane (plain heap allocation, the pre-pool
 * behaviour), on both a Fig. 9-shaped single-host run and a
 * Fig. 18-shaped fleet run at any worker count.
 */

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "profile/device_profiler.hh"
#include "sim/simulator.hh"
#include "stat/telemetry.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/** Restores the process-wide bypass flag on scope exit. */
struct BypassGuard
{
    explicit BypassGuard(bool on) { blk::BioPool::setBypass(on); }
    ~BypassGuard() { blk::BioPool::setBypass(false); }
};

void
append(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
    out += '\n';
}

void
appendHistogram(std::string &out, const char *name,
                const stat::Histogram &h)
{
    append(out, "%s count=%llu total=%lld min=%lld max=%lld "
                "p50=%lld p99=%lld mean=%.17g stddev=%.17g",
           name, static_cast<unsigned long long>(h.count()),
           static_cast<long long>(h.total()),
           static_cast<long long>(h.minValue()),
           static_cast<long long>(h.maxValue()),
           static_cast<long long>(h.quantile(0.50)),
           static_cast<long long>(h.quantile(0.99)), h.mean(),
           h.stddev());
}

/**
 * Fig. 9-shaped run: IOCost installed with a permissive config (full
 * issue path, no effective throttling), submission CPU model on, a
 * saturating random-read job, per-completion telemetry captured.
 * Returns a fingerprint string covering every observable.
 */
std::string
fig9Fingerprint()
{
    core::IoCostConfig ioc;
    const auto &prof = profile::DeviceProfiler::profileSsd(
        device::enterpriseSsd());
    ioc.model = core::CostModel::fromConfig(prof.model);
    ioc.qos.vrateMin = 1.0;
    ioc.qos.vrateMax = 10.0;
    ioc.qos.readLatTarget = 1 * sim::kSec;
    ioc.qos.writeLatTarget = 1 * sim::kSec;

    sim::Simulator sim(4242);
    device::SsdModel device(sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    layer.setSubmissionCpuEnabled(true);
    controllers::ControllerSpec ctl("iocost");
    ctl.iocost = ioc;
    layer.setController(controllers::makeController(ctl));

    stat::RingSink sink;
    layer.setTelemetrySink(&sink);
    layer.telemetry().setDetail(true);

    const auto cg = tree.create(cgroup::kRoot, "fio");
    workload::FioConfig cfg;
    cfg.iodepth = 64;
    workload::FioWorkload job(sim, layer, cg, cfg);
    job.start();
    sim.runUntil(20 * sim::kMsec);

    std::string fp;
    append(fp, "submitted=%llu completed=%llu merged=%llu",
           static_cast<unsigned long long>(layer.submitted()),
           static_cast<unsigned long long>(layer.completed()),
           static_cast<unsigned long long>(layer.mergedBios()));
    append(fp, "job completed=%llu iops=%.17g",
           static_cast<unsigned long long>(job.completed()),
           job.iops());
    appendHistogram(fp, "job_latency", job.latency());
    const auto &st = layer.stats(cg);
    append(fp, "cg reads=%llu writes=%llu rbytes=%llu wbytes=%llu",
           static_cast<unsigned long long>(st.reads),
           static_cast<unsigned long long>(st.writes),
           static_cast<unsigned long long>(st.readBytes),
           static_cast<unsigned long long>(st.writeBytes));
    appendHistogram(fp, "cg_total", st.totalLatency);
    appendHistogram(fp, "cg_device", st.deviceLatency);
    append(fp, "records=%zu", sink.size());
    for (const stat::Record &r : sink.records())
        fp += stat::toJsonl(r);
    return fp;
}

/** Small-but-contended fleet config (mirrors the Fig. 18 bench). */
fleet::FleetConfig
tinyFleet()
{
    fleet::FleetConfig cfg;
    cfg.hosts = 6;
    cfg.days = 5;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 4;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.seed = 1818;
    cfg.telemetry = true;
    return cfg;
}

/**
 * Fig. 18-shaped run: the staged-migration fleet study with per-slice
 * telemetry capture, reduced to day results + the full outcome grid.
 */
std::string
fig18Fingerprint(unsigned jobs)
{
    const fleet::FleetConfig cfg = tinyFleet();
    std::vector<fleet::HostDayOutcome> outcomes;
    const auto days = fleet::FleetSim::run(cfg, jobs, &outcomes);

    std::string fp;
    for (const fleet::FleetDayResult &d : days) {
        append(fp,
               "day=%u frac=%.17g fa=%u ff=%u ca=%u cf=%u", d.day,
               d.fractionOnIoCost, d.fetchAttempts, d.fetchFailures,
               d.cleanupAttempts, d.cleanupFailures);
    }
    append(fp, "outcomes=%zu", outcomes.size());
    for (const fleet::HostDayOutcome &o : outcomes) {
        append(fp, "ff=%d cf=%d ft=%lld ct=%lld nrec=%zu",
               o.fetchFailed ? 1 : 0, o.cleanupFailed ? 1 : 0,
               static_cast<long long>(o.fetchTime),
               static_cast<long long>(o.cleanupTime),
               o.records.size());
        for (const stat::Record &r : o.records)
            fp += stat::toJsonl(r);
    }
    return fp;
}

TEST(BioPoolDeterminism, Fig9ShapedRunMatchesBypass)
{
    std::string pooled;
    std::string heap;
    {
        BypassGuard guard(false);
        pooled = fig9Fingerprint();
    }
    {
        BypassGuard guard(true);
        heap = fig9Fingerprint();
    }
    // Sanity: the run produced real work and real telemetry, so a
    // match is not vacuous.
    EXPECT_NE(pooled.find("records="), std::string::npos);
    EXPECT_GT(pooled.size(), 10'000u);
    EXPECT_EQ(pooled, heap);
}

TEST(BioPoolDeterminism, Fig18ShapedRunMatchesBypass)
{
    std::string pooled;
    std::string heap;
    {
        BypassGuard guard(false);
        pooled = fig18Fingerprint(1);
    }
    {
        BypassGuard guard(true);
        heap = fig18Fingerprint(1);
    }
    EXPECT_GT(pooled.size(), 1'000u);
    EXPECT_EQ(pooled, heap);
}

TEST(BioPoolDeterminism, Fig18ShapedRunMatchesAcrossJobs)
{
    // Each worker thread recycles through its own thread-local pool;
    // the fan-out must stay byte-identical to the sequential run.
    const std::string seq = fig18Fingerprint(1);
    const std::string par = fig18Fingerprint(3);
    EXPECT_EQ(seq, par);
}

} // namespace
