/**
 * @file
 * Tests for the telemetry bus: sink behaviour, JSONL encoding, the
 * unified window API, the iocost period publisher, and determinism
 * of fleet telemetry capture across worker counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "stat/histogram.hh"
#include "stat/meter.hh"
#include "stat/telemetry.hh"
#include "stat/time_series.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

TEST(TelemetrySink, NullSinkDisablesEmission)
{
    stat::Telemetry tel;
    EXPECT_FALSE(tel.enabled());

    stat::NullSink null_sink;
    tel.setSink(&null_sink);
    // A disabled sink is dropped entirely so the emit fast path
    // stays one pointer test.
    EXPECT_FALSE(tel.enabled());
    tel.emit(0, "x", stat::kNoCgroup, "k", 1.0); // must not crash

    stat::RingSink ring;
    tel.setSink(&ring);
    EXPECT_TRUE(tel.enabled());
    tel.emit(5, "x", 3, "k", 2.5);
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.records().front().time, 5);
    EXPECT_EQ(ring.records().front().cgroup, 3u);
    EXPECT_DOUBLE_EQ(ring.records().front().value, 2.5);

    tel.setSink(nullptr);
    EXPECT_FALSE(tel.enabled());
}

TEST(TelemetrySink, RingCapacityEvictsOldest)
{
    stat::RingSink ring(3);
    for (int i = 0; i < 5; ++i) {
        ring.emit(stat::Record{i, "s", stat::kNoCgroup, "k",
                               static_cast<double>(i)});
    }
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.records().front().time, 2);
    EXPECT_EQ(ring.records().back().time, 4);
}

TEST(TelemetrySink, JsonlEncodingEscapesAndRoundsTrips)
{
    stat::Record r;
    r.time = 1234567;
    r.source = "blk";
    r.cgroup = stat::kNoCgroup;
    r.key = "weird \"key\"\n";
    r.value = 0.5;
    const std::string line = stat::toJsonl(r);
    EXPECT_EQ(line,
              "{\"t\":1234567,\"src\":\"blk\",\"cg\":-1,"
              "\"key\":\"weird \\\"key\\\"\\n\",\"val\":0.5}\n");

    r.cgroup = 7;
    EXPECT_NE(stat::toJsonlFields(r).find("\"cg\":7"),
              std::string::npos);
}

TEST(TelemetrySink, SnapshotEmissionSkipsEmptyWindows)
{
    stat::RingSink ring;
    stat::Telemetry tel;
    tel.setSink(&ring);

    stat::WindowSnapshot empty;
    tel.emitSnapshot(10, "s", stat::kNoCgroup, "lat", empty);
    // Only the _count record for an empty window.
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.records().front().key, "lat_count");

    ring.clear();
    stat::WindowSnapshot full;
    full.count = 4;
    full.perSecond = 8.0;
    full.mean = 2.0;
    full.p50 = 2;
    full.p99 = 3;
    tel.emitSnapshot(10, "s", stat::kNoCgroup, "lat", full);
    EXPECT_EQ(ring.size(), 5u);
}

TEST(WindowApi, HistogramResetStartsNewWindow)
{
    stat::Histogram h;
    h.record(1000);
    h.record(3000);
    const auto s = h.snapshot(2 * sim::kSec);
    EXPECT_EQ(s.count, 2u);
    EXPECT_DOUBLE_EQ(s.perSecond, 1.0);
    EXPECT_GT(s.p99, 0);

    h.reset(2 * sim::kSec);
    const auto s2 = h.snapshot(3 * sim::kSec);
    EXPECT_EQ(s2.count, 0u);
    EXPECT_EQ(s2.windowStart, 2 * sim::kSec);
}

TEST(WindowApi, RateMeterSnapshotMatchesPerSecond)
{
    stat::RateMeter m;
    m.reset(1 * sim::kSec);
    m.add(10);
    m.add(10);
    const auto s = m.snapshot(2 * sim::kSec);
    EXPECT_EQ(s.count, 20u); // RateMeter counts accumulated units

    EXPECT_DOUBLE_EQ(s.perSecond, m.perSecond(2 * sim::kSec));
}

TEST(WindowApi, TimeSeriesWindowedSnapshotKeepsPoints)
{
    stat::TimeSeries ts;
    ts.record(1 * sim::kSec, 10.0);
    ts.record(2 * sim::kSec, 20.0);
    ts.reset(2 * sim::kSec);
    ts.record(3 * sim::kSec, 30.0);
    const auto s = ts.snapshot(4 * sim::kSec);
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 30.0);
    // Figure plotting depends on the full series surviving resets.
    EXPECT_EQ(ts.size(), 3u);
}

/** A short saturated iocost host run with a ring sink attached. */
struct IocostRun
{
    std::unique_ptr<host::Host> host;
    std::unique_ptr<workload::FioWorkload> job;
    std::vector<stat::Record> records;
};

IocostRun
iocostRun(sim::Simulator &sim, stat::RingSink &ring)
{
    const device::SsdSpec spec = device::newGenSsd();
    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(spec).model);
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 1.5;
    opts.telemetrySink = &ring;

    IocostRun run;
    run.host = std::make_unique<host::Host>(
        sim, std::make_unique<device::SsdModel>(sim, spec), opts);

    const auto cg = run.host->addWorkload("stress", 100);
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::Saturating;
    cfg.iodepth = 64;
    run.job = std::make_unique<workload::FioWorkload>(
        sim, run.host->layer(), cg, cfg);
    run.job->start();
    sim.runUntil(500 * sim::kMsec);
    run.job->stop();

    run.records.assign(ring.records().begin(),
                       ring.records().end());
    return run;
}

TEST(IocostTelemetry, PeriodRecordsMonotonicAndMatchVrateSeries)
{
    sim::Simulator sim(7);
    stat::RingSink ring;
    const IocostRun run = iocostRun(sim, ring);
    const auto &records = run.records;

    std::vector<stat::Record> vrates;
    sim::Time prev = -1;
    for (const auto &r : records) {
        if (r.source == "iocost" && r.key == "vrate_pct")
            vrates.push_back(r);
        // The stream as a whole is emitted in simulation order.
        EXPECT_GE(r.time, prev);
        prev = r.time;
    }
    ASSERT_GT(vrates.size(), 10u);

    // Period records must agree exactly with the controller's own
    // vrate series (same planning pass, same values).
    const auto &pts = run.host->iocost()->vrateSeries().points();
    ASSERT_EQ(pts.size(), vrates.size());
    for (size_t i = 0; i < vrates.size(); ++i) {
        EXPECT_EQ(vrates[i].time, pts[i].when);
        EXPECT_DOUBLE_EQ(vrates[i].value, pts[i].value);
    }

    // Period boundaries are one planning period apart once running.
    for (size_t i = 1; i < vrates.size(); ++i)
        EXPECT_EQ(vrates[i].time - vrates[i - 1].time,
                  10 * sim::kMsec);

    // Every period block carries the per-cgroup gauges.
    bool saw_usage = false, saw_hweight = false, saw_debt = false;
    for (const auto &r : records) {
        if (r.source != "iocost" || r.cgroup == stat::kNoCgroup)
            continue;
        saw_usage |= r.key == "usage_pct";
        saw_hweight |= r.key == "hweight_inuse_pct";
        saw_debt |= r.key == "debt_us";
    }
    EXPECT_TRUE(saw_usage);
    EXPECT_TRUE(saw_hweight);
    EXPECT_TRUE(saw_debt);
}

TEST(IocostTelemetry, DetailGatesPerCompletionRecords)
{
    sim::Simulator sim(8);
    stat::RingSink ring;
    const IocostRun run = iocostRun(sim, ring);
    for (const auto &r : run.records)
        EXPECT_NE(r.source, "blk");
}

/** Serialize one fleet outcome grid as prefixed JSONL. */
std::string
fleetJsonl(const fleet::FleetConfig &cfg, unsigned jobs)
{
    std::vector<fleet::HostDayOutcome> outcomes;
    fleet::FleetSim::run(cfg, jobs, &outcomes);
    std::string out;
    for (unsigned day = 0; day < cfg.days; ++day) {
        for (unsigned h = 0; h < cfg.hosts; ++h) {
            const auto &o =
                outcomes[static_cast<uint64_t>(day) * cfg.hosts +
                         h];
            for (const auto &r : o.records) {
                out += "{\"day\":" + std::to_string(day) +
                       ",\"host\":" + std::to_string(h) + "," +
                       stat::toJsonlFields(r) + "}\n";
            }
        }
    }
    return out;
}

TEST(FleetTelemetry, JsonlByteIdenticalAcrossWorkerCounts)
{
    fleet::FleetConfig cfg;
    cfg.hosts = 4;
    cfg.days = 3;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 2;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.telemetry = true;

    const std::string seq = fleetJsonl(cfg, 1);
    const std::string par = fleetJsonl(cfg, 4);
    EXPECT_FALSE(seq.empty());
    EXPECT_EQ(seq, par);
    // Both controller generations appear across the migration.
    EXPECT_NE(seq.find("\"src\":\"iolatency\""), std::string::npos);
    EXPECT_NE(seq.find("\"src\":\"iocost\""), std::string::npos);
}

TEST(FleetTelemetry, OffByDefaultCapturesNothing)
{
    fleet::FleetConfig cfg;
    cfg.hosts = 1;
    cfg.days = 1;
    cfg.warmup = 100 * sim::kMsec;
    cfg.slice = 100 * sim::kMsec;
    cfg.fetchBytes = 1 << 20;
    cfg.cleanupOps = 10;

    std::vector<fleet::HostDayOutcome> outcomes;
    fleet::FleetSim::run(cfg, 1, &outcomes);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].records.empty());
}

} // namespace
