/**
 * @file
 * Fused sweep observer: divergence/refusion byte-identity fuzz.
 *
 * The fused observer is an execution strategy, not a model change:
 * with the observer on, a sweep must produce byte-identical per-lane
 * results to the full-lane path for every K, every --jobs value, and
 * every config order; coherent (never-throttling) lanes must in turn
 * match an independently built plain Host on the same seed. The fuzz
 * body drives lanes off the fused path and back again — bulk-writer
 * bursts against hard clamps (throttle forks), swap writes (debt
 * forks), and --faults error windows (error forks) on a seeded
 * random schedule, separated by quiet stretches long enough for
 * refusion at a planning boundary — and the telemetry stream proves
 * both transitions actually happened, so the equalities are not
 * vacuously comparing two always-fused (or never-fused) runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "blk/bio.hh"
#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "stat/telemetry.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/**
 * Everything a lane exposes, flattened for exact comparison: the
 * per-cgroup counters and byte totals plus the integer moments and
 * quantiles of both latency histograms. The histogram fields are
 * all-integer, so equality here is bit-equality of the accounting —
 * a deferred-merge bug that reorders or double-counts even one
 * completion shows up.
 */
std::vector<int64_t>
laneSignature(host::SweepRunner &runner, size_t lane)
{
    std::vector<int64_t> sig;
    auto hist = [&sig](const stat::Histogram &h) {
        sig.push_back(static_cast<int64_t>(h.count()));
        sig.push_back(h.total());
        sig.push_back(h.minValue());
        sig.push_back(h.maxValue());
        sig.push_back(h.quantile(0.50));
        sig.push_back(h.quantile(0.99));
    };
    for (const auto &named : runner.workloadCgroups()) {
        const blk::CgroupIoStats &st =
            runner.laneLayer(lane).stats(named.second);
        sig.push_back(static_cast<int64_t>(st.reads));
        sig.push_back(static_cast<int64_t>(st.writes));
        sig.push_back(static_cast<int64_t>(st.readBytes));
        sig.push_back(static_cast<int64_t>(st.writeBytes));
        sig.push_back(static_cast<int64_t>(st.errors));
        sig.push_back(static_cast<int64_t>(st.retries));
        sig.push_back(static_cast<int64_t>(st.timeouts));
        sig.push_back(static_cast<int64_t>(st.failures));
        hist(st.totalLatency);
        hist(st.deviceLatency);
    }
    return sig;
}

/**
 * The divergence fuzz body. A steady reader keeps every lane
 * submitting; a bulk writer turns on and off on a seeded schedule
 * (hard-clamped lanes queue during bursts and drain during gaps);
 * swap writes land at seeded instants (forced issues build absDebt
 * in every iocost lane). Burst lengths stay short of the quiet gaps
 * so throttled lanes reconverge between bursts instead of queueing
 * for the whole run.
 */
void
fuzzBody(sim::Simulator &sim, host::SweepRunner &runner,
         uint64_t schedule_seed)
{
    const auto app = runner.addWorkload("app", 200);
    const auto bulk = runner.addWorkload("bulk", 100);

    workload::FioConfig app_cfg;
    app_cfg.arrival = workload::Arrival::Rate;
    app_cfg.ratePerSec = 4000;
    workload::FioWorkload reader(sim, runner.layer(), app, app_cfg);

    workload::FioConfig bulk_cfg;
    bulk_cfg.readFraction = 0.0;
    bulk_cfg.blockSize = 64 * 1024;
    bulk_cfg.arrival = workload::Arrival::Rate;
    bulk_cfg.ratePerSec = 600;
    workload::FioWorkload burst(sim, runner.layer(), bulk,
                                bulk_cfg);

    reader.start();

    std::mt19937_64 rng(schedule_seed);
    const sim::Time horizon = 2400 * sim::kMsec;
    sim::Time t = 200 * sim::kMsec;
    bool burst_on = false;
    while (t < horizon) {
        if (!burst_on) {
            sim.at(t, [&burst] { burst.start(); });
            t += (80 + rng() % 160) * sim::kMsec;
        } else {
            sim.at(t, [&burst] { burst.stop(); });
            t += (250 + rng() % 350) * sim::kMsec;
        }
        burst_on = !burst_on;
    }
    if (burst_on)
        sim.at(t, [&burst] { burst.stop(); });

    for (int i = 0; i < 24; ++i) {
        const sim::Time when = (200 + rng() % 2200) * sim::kMsec;
        const uint64_t offset = (rng() % (1u << 20)) * 4096;
        sim.at(when, [&runner, bulk, offset] {
            blk::BioPtr bio = blk::Bio::make(blk::Op::Write, offset,
                                             64 * 1024, bulk);
            bio->swap = true;
            runner.layer().submit(std::move(bio));
        });
    }

    sim.runUntil(t + 400 * sim::kMsec);
    reader.stop();
    // Far past the stop point: the hard-clamped lanes must fully
    // drain their queues or the per-lane counters cannot agree.
    sim.runUntil(20 * sim::kSec);
}

/** Clamp ladder + a foreign mechanism + a second planning period:
 *  throttle forks, a never-fusable lane, and two plan groups. */
const std::vector<std::string> kFuzzSpecs = {
    "iocost min=100 max=100",
    "iocost min=50 max=50",
    "iocost min=10 max=10",
    "iolatency",
    "iocost min=25 max=25 period=50000",
};

const char *kFuzzFaults = "err@400ms+300ms=0.25";

struct FuzzRun
{
    std::vector<std::vector<int64_t>> lanes;
    double fusedFraction = 0.0;
};

FuzzRun
runFuzz(std::vector<std::string> specs, unsigned jobs, bool fused,
        stat::TelemetrySink *sink = nullptr)
{
    host::SweepOptions opts;
    opts.specs = std::move(specs);
    opts.faults = kFuzzFaults;
    opts.fusedObserver = fused;
    opts.generatorSink = sink;
    opts.makeDevice = [](sim::Simulator &sim) {
        return std::make_unique<device::SsdModel>(
            sim, device::newGenSsd());
    };

    FuzzRun out;
    out.lanes = host::runSweep(
        std::move(opts), 1234, jobs,
        [](sim::Simulator &sim, host::SweepRunner &runner) {
            fuzzBody(sim, runner, 777);
        },
        [&out](host::SweepRunner &runner, size_t lane, size_t) {
            if (const host::FusedObserver *obs =
                    runner.fusedObserver())
                out.fusedFraction = obs->fusedFraction();
            return laneSignature(runner, lane);
        });
    return out;
}

TEST(SweepFused, FuzzDivergenceRefusionByteIdentity)
{
    stat::RingSink sink;
    const FuzzRun fused = runFuzz(kFuzzSpecs, 1, true, &sink);
    const FuzzRun full = runFuzz(kFuzzSpecs, 1, false);
    ASSERT_EQ(fused.lanes.size(), kFuzzSpecs.size());
    ASSERT_EQ(full.lanes.size(), kFuzzSpecs.size());

    for (size_t k = 0; k < fused.lanes.size(); ++k)
        EXPECT_EQ(fused.lanes[k], full.lanes[k]) << "lane " << k;

    // Non-vacuity: the run must have exercised both paths. A
    // fraction of 1 means nothing ever forked (the fuzz lost its
    // teeth); 0 means nothing ever fused (the identity above is
    // trivially the full path compared to itself).
    EXPECT_GT(fused.fusedFraction, 0.05);
    EXPECT_LT(fused.fusedFraction, 0.95);

    // The per-period telemetry must show a fork (count drops) and a
    // later refusion (count rises again) — divergence alone could
    // just mean lanes fell off the fast path at t=0 and never came
    // back.
    std::vector<double> series;
    for (const stat::Record &r : sink.records()) {
        if (r.source == "sweep" && r.key == "fused_lanes")
            series.push_back(r.value);
    }
    ASSERT_GT(series.size(), 10u);
    bool forked = false, refused = false;
    for (size_t i = 1; i < series.size(); ++i) {
        if (series[i] < series[i - 1])
            forked = true;
        else if (forked && series[i] > series[i - 1])
            refused = true;
    }
    EXPECT_TRUE(forked) << "no planning period ever lost a lane";
    EXPECT_TRUE(refused) << "no diverged lane ever re-fused";
}

TEST(SweepFused, EveryKMatchesFullLanePath)
{
    // Prefixes of the fuzz ladder: K = 2 (one clamp), K = 3 (hard
    // throttle), K = 4 (foreign mechanism), K = 5 (second plan
    // group). K = 1 is the degenerate plain path, covered by
    // test_sweep.
    for (size_t k = 2; k <= kFuzzSpecs.size(); ++k) {
        const std::vector<std::string> specs(
            kFuzzSpecs.begin(),
            kFuzzSpecs.begin() + static_cast<long>(k));
        const FuzzRun fused = runFuzz(specs, 1, true);
        const FuzzRun full = runFuzz(specs, 1, false);
        ASSERT_EQ(fused.lanes.size(), k);
        for (size_t c = 0; c < k; ++c)
            EXPECT_EQ(fused.lanes[c], full.lanes[c])
                << "K=" << k << " lane " << c;
    }
}

TEST(SweepFused, JobsPartitionInvariance)
{
    const FuzzRun one = runFuzz(kFuzzSpecs, 1, true);
    for (unsigned jobs : {2u, 3u, 5u}) {
        const FuzzRun part = runFuzz(kFuzzSpecs, jobs, true);
        ASSERT_EQ(part.lanes.size(), one.lanes.size());
        for (size_t c = 0; c < one.lanes.size(); ++c)
            EXPECT_EQ(part.lanes[c], one.lanes[c])
                << "jobs=" << jobs << " config " << c;
    }
}

TEST(SweepFused, ConfigOrderInvariance)
{
    std::vector<std::string> rev(kFuzzSpecs.rbegin(),
                                 kFuzzSpecs.rend());
    const FuzzRun fwd = runFuzz(kFuzzSpecs, 1, true);
    const FuzzRun bwd = runFuzz(std::move(rev), 1, true);
    ASSERT_EQ(fwd.lanes.size(), bwd.lanes.size());
    const size_t n = fwd.lanes.size();
    for (size_t c = 0; c < n; ++c)
        EXPECT_EQ(fwd.lanes[c], bwd.lanes[n - 1 - c])
            << "config " << c;
}

TEST(SweepFused, CoherentLanesMatchPlainHosts)
{
    // Never-binding clamps with distinct planning periods: every
    // lane stays in lockstep, so each must reproduce a plain Host
    // built from the same spec and seed — the sweep's shared device
    // stream is then exactly the stream each host would have drawn
    // on its own. Merging is forced off on the plain hosts because
    // shadow lanes never merge; everything else is the stock stack.
    const std::vector<std::string> specs = {
        "iocost min=100 max=100",
        "iocost min=100 max=100 period=50000",
        "iocost min=100 max=100 period=200000",
    };
    auto body = [](sim::Simulator &sim, host::SweepRunner &runner) {
        const auto app = runner.addWorkload("app", 200);
        workload::FioConfig cfg;
        cfg.arrival = workload::Arrival::Rate;
        cfg.ratePerSec = 5000;
        workload::FioWorkload job(sim, runner.layer(), app, cfg);
        job.start();
        sim.runUntil(600 * sim::kMsec);
        job.stop();
        sim.runUntil(1500 * sim::kMsec);
    };
    double fraction = 0.0;
    const auto lanes = host::runSweep(
        [&specs] {
            host::SweepOptions o;
            o.specs = specs;
            o.makeDevice = [](sim::Simulator &sim) {
                return std::make_unique<device::SsdModel>(
                    sim, device::newGenSsd());
            };
            return o;
        }(),
        99, 1, body,
        [&fraction](host::SweepRunner &runner, size_t lane, size_t) {
            if (const host::FusedObserver *obs =
                    runner.fusedObserver())
                fraction = obs->fusedFraction();
            return laneSignature(runner, lane);
        });
    ASSERT_EQ(lanes.size(), specs.size());
    // Coherent by construction — and proven, not assumed.
    EXPECT_EQ(fraction, 1.0);

    for (size_t c = 0; c < specs.size(); ++c) {
        sim::Simulator sim(99);
        host::HostOptions ho;
        ho.controller = *controllers::parseControllerSpec(specs[c]);
        host::Host host(sim,
                        std::make_unique<device::SsdModel>(
                            sim, device::newGenSsd()),
                        std::move(ho));
        const auto app = host.addWorkload("app", 200);
        host.layer().setMergeEnabled(false);
        {
            workload::FioConfig cfg;
            cfg.arrival = workload::Arrival::Rate;
            cfg.ratePerSec = 5000;
            workload::FioWorkload job(sim, host.layer(), app, cfg);
            job.start();
            sim.runUntil(600 * sim::kMsec);
            job.stop();
            sim.runUntil(1500 * sim::kMsec);
        }

        std::vector<int64_t> plain;
        const blk::CgroupIoStats &st = host.layer().stats(app);
        plain.push_back(static_cast<int64_t>(st.reads));
        plain.push_back(static_cast<int64_t>(st.writes));
        plain.push_back(static_cast<int64_t>(st.readBytes));
        plain.push_back(static_cast<int64_t>(st.writeBytes));
        plain.push_back(static_cast<int64_t>(st.errors));
        plain.push_back(static_cast<int64_t>(st.retries));
        plain.push_back(static_cast<int64_t>(st.timeouts));
        plain.push_back(static_cast<int64_t>(st.failures));
        for (const stat::Histogram *h :
             {&st.totalLatency, &st.deviceLatency}) {
            plain.push_back(static_cast<int64_t>(h->count()));
            plain.push_back(h->total());
            plain.push_back(h->minValue());
            plain.push_back(h->maxValue());
            plain.push_back(h->quantile(0.50));
            plain.push_back(h->quantile(0.99));
        }
        EXPECT_EQ(lanes[c], plain) << "config " << c;
    }
}

} // namespace
