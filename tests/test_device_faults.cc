/**
 * @file
 * Fault/irregularity injection tests: firmware hiccups in the SSD
 * model and the block layer's bounded back-merging under deep
 * backlogs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

TEST(Hiccups, DisabledByDefault)
{
    sim::Simulator sim(131);
    device::SsdModel device(sim, device::newGenSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    workload::FioConfig cfg;
    cfg.iodepth = 8;
    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();
    sim.runUntil(5 * sim::kSec);
    EXPECT_EQ(device.hiccups(), 0u);
}

TEST(Hiccups, InjectedAtConfiguredRate)
{
    sim::Simulator sim(132);
    device::SsdSpec spec = device::newGenSsd();
    spec.hiccupMeanInterval = 100 * sim::kMsec;
    spec.hiccupDuration = 5 * sim::kMsec;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    workload::FioConfig cfg;
    cfg.iodepth = 8;
    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();
    sim.runUntil(10 * sim::kSec);
    // ~10s / (100ms + 5ms) per cycle: expect roughly 95 hiccups.
    EXPECT_GT(device.hiccups(), 60u);
    EXPECT_LT(device.hiccups(), 140u);
}

TEST(Hiccups, InflateTailLatencyNotMedian)
{
    auto run = [](bool erratic) {
        sim::Simulator sim(133);
        device::SsdSpec spec = device::newGenSsd();
        spec.jitterSigma = 0.0;
        if (erratic) {
            spec.hiccupMeanInterval = 100 * sim::kMsec;
            spec.hiccupDuration = 10 * sim::kMsec;
        }
        device::SsdModel device(sim, spec);
        cgroup::CgroupTree tree;
        blk::BlockLayer layer(sim, device, tree);
        workload::FioConfig cfg;
        cfg.arrival = workload::Arrival::Rate;
        cfg.ratePerSec = 5000;
        workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
        job.start();
        sim.runUntil(20 * sim::kSec);
        return std::pair<sim::Time, sim::Time>(
            job.latency().quantile(0.5),
            job.latency().quantile(0.999));
    };
    const auto smooth = run(false);
    const auto erratic = run(true);
    // Medians comparable; extreme tail an order of magnitude worse.
    EXPECT_LT(erratic.first, 2 * smooth.first);
    EXPECT_GT(erratic.second, 10 * smooth.second);
}

TEST(Merging, ContiguousParkedBiosCoalesce)
{
    sim::Simulator sim(134);
    device::SsdSpec spec = device::oldGenSsd();
    spec.queueDepth = 1;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    int completions = 0;
    // One bio occupies the single slot; the next 8 contiguous ones
    // park and merge into a single request.
    for (int i = 0; i < 9; ++i) {
        layer.submit(blk::Bio::make(
            blk::Op::Write, static_cast<uint64_t>(i) * 4096, 4096,
            cgroup::kRoot,
            [&](const blk::Bio &) { ++completions; }));
    }
    EXPECT_EQ(layer.dispatchQueueDepth(), 1u)
        << "8 parked bios should have merged into one";
    EXPECT_EQ(layer.mergedBios(), 7u);
    sim.runAll();
    EXPECT_EQ(completions, 9) << "merged callbacks all fire";
}

TEST(Merging, DifferentCgroupsDoNotMerge)
{
    sim::Simulator sim(135);
    device::SsdSpec spec = device::oldGenSsd();
    spec.queueDepth = 1;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    const auto a = tree.create(cgroup::kRoot, "a");
    const auto b = tree.create(cgroup::kRoot, "b");

    layer.submit(blk::Bio::make(blk::Op::Write, 0, 4096, a));
    layer.submit(blk::Bio::make(blk::Op::Write, 4096, 4096, a));
    layer.submit(blk::Bio::make(blk::Op::Write, 8192, 4096, b));
    EXPECT_EQ(layer.mergedBios(), 0u)
        << "cross-cgroup merging would corrupt accounting";
    sim.runAll();
}

TEST(Merging, SizeCapRespected)
{
    sim::Simulator sim(136);
    device::SsdSpec spec = device::oldGenSsd();
    spec.queueDepth = 1;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    // Fill one slot, then park contiguous 256k bios: at most two can
    // merge into one 512k request.
    layer.submit(blk::Bio::make(blk::Op::Write, 1 << 30, 4096,
                                cgroup::kRoot));
    for (int i = 0; i < 4; ++i) {
        layer.submit(blk::Bio::make(
            blk::Op::Write, static_cast<uint64_t>(i) * 262144,
            262144, cgroup::kRoot));
    }
    EXPECT_EQ(layer.dispatchQueueDepth(), 2u);
    sim.runAll();
}

} // namespace
