/**
 * @file
 * Sharded fleet engine: byte-identical streaming aggregates for any
 * (jobs, shards) layout — including the legacy fig18/19 configs —
 * plus the per-shard exception boundary and the outcome-grid
 * consistency of the replay path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/fleet_aggregate.hh"
#include "fleet/fleet_scenario.hh"
#include "fleet/fleet_sim.hh"

namespace {

using namespace iocost;
using namespace iocost::fleet;

/** Serialize an aggregate to its JSON byte stream (the strongest
 *  equality available: every counter, percentile, and moment). */
std::string
aggBytes(const FleetAggregate &agg)
{
    char *buf = nullptr;
    size_t len = 0;
    FILE *f = open_memstream(&buf, &len);
    EXPECT_NE(f, nullptr);
    writeAggregateJson(AggregateView::from(agg), f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

/** The aggregate payload minus the execution-layout metadata
 *  (shards/jobs legitimately differ between runs being compared). */
std::string
aggPayload(const FleetAggregate &agg)
{
    const std::string bytes = aggBytes(agg);
    const size_t cut = bytes.find("\"summary\"");
    EXPECT_NE(cut, std::string::npos);
    return bytes.substr(cut == std::string::npos ? 0 : cut);
}

/** Mixed-everything scenario small enough for seconds-long tests:
 *  device mix, workload mix, partial staged migration, Mix seeds. */
FleetScenario
smallScenario()
{
    return FleetScenario::parse(
        "hosts=9 days=4 seed=321 migration=1..3:60 "
        "devices=A:40,D:30,H:30 "
        "workloads=mixed:40,writeheavy:30,bursty:30 "
        "slice=20ms warmup=20ms fetch=64K fetch_deadline=8ms "
        "cleanup=6 cleanup_io=4K cleanup_deadline=4ms");
}

FleetAggregate
runWith(const FleetScenario &sc, unsigned jobs, unsigned shards)
{
    RunOptions opts;
    opts.jobs = jobs;
    opts.shards = shards;
    return FleetSim::runScenario(sc, opts);
}

TEST(FleetShards, AggregateByteIdenticalAcrossLayouts)
{
    const FleetScenario sc = smallScenario();
    const std::string ref = aggPayload(runWith(sc, 1, 1));
    const unsigned combos[][2] = {
        {1, 4}, {2, 3}, {4, 9}, {3, 7}, {4, 1}};
    for (const auto &c : combos) {
        const FleetAggregate agg = runWith(sc, c[0], c[1]);
        EXPECT_EQ(agg.hostDays, 9u * 4u);
        EXPECT_EQ(aggPayload(agg), ref)
            << "layout jobs=" << c[0] << " shards=" << c[1];
    }
}

/** Buffered host-days (page cache + flusher + debt-paced dirtiers
 *  inside every slice) must stay byte-identical for any layout just
 *  like the direct-IO kinds. */
TEST(FleetShards, BufferedAggregateByteIdenticalAcrossLayouts)
{
    const FleetScenario sc = FleetScenario::parse(
        "hosts=6 days=3 seed=77 migration=1..2:50 "
        "devices=A:50,G:50 workloads=mixed:40,buffered:60 "
        "dirty_ratio=25 "
        "slice=20ms warmup=20ms fetch=64K fetch_deadline=8ms "
        "cleanup=6 cleanup_io=4K cleanup_deadline=4ms");
    ASSERT_EQ(sc.pagecacheBytes, 512ull << 20); // buffered default
    const std::string ref = aggPayload(runWith(sc, 1, 1));
    const unsigned combos[][2] = {{1, 5}, {4, 3}, {2, 6}};
    for (const auto &c : combos) {
        const FleetAggregate agg = runWith(sc, c[0], c[1]);
        EXPECT_EQ(agg.hostDays, 6u * 3u);
        EXPECT_EQ(aggPayload(agg), ref)
            << "layout jobs=" << c[0] << " shards=" << c[1];
    }
}

TEST(FleetShards, MomentsBitIdenticalAcrossLayouts)
{
    const FleetScenario sc = smallScenario();
    const FleetAggregate a = runWith(sc, 1, 1);
    const FleetAggregate b = runWith(sc, 4, 6);
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(a.fetchTime[c].count(), b.fetchTime[c].count());
        EXPECT_EQ(a.fetchTime[c].total(), b.fetchTime[c].total());
        // Doubles compared EXACTLY: both derive from integer state,
        // so any drift means the merge lost bit-determinism.
        EXPECT_EQ(a.fetchTime[c].mean(), b.fetchTime[c].mean());
        EXPECT_EQ(a.fetchTime[c].stddev(),
                  b.fetchTime[c].stddev());
        EXPECT_EQ(a.cleanupTime[c].stddev(),
                  b.cleanupTime[c].stddev());
        for (double q : {0.1, 0.5, 0.9, 0.99}) {
            EXPECT_EQ(a.fetchTime[c].quantile(q),
                      b.fetchTime[c].quantile(q));
            EXPECT_EQ(a.cleanupTime[c].quantile(q),
                      b.cleanupTime[c].quantile(q));
        }
    }
    ASSERT_EQ(a.fetchFailures.size(), b.fetchFailures.size());
    for (size_t i = 0; i < a.fetchFailures.size(); ++i) {
        EXPECT_EQ(a.fetchFailures.points()[i].when,
                  b.fetchFailures.points()[i].when);
        EXPECT_EQ(a.fetchFailures.points()[i].value,
                  b.fetchFailures.points()[i].value);
    }
}

TEST(FleetShards, LegacyFigConfigsByteIdenticalAcrossLayouts)
{
    // Scaled-down fig18/fig19 shapes (their seeds, their staged
    // window) through the legacy mapping: scenarioFromConfig keeps
    // the historical seeds and host parity, so these cover the
    // byte-compat path the real fig benches ride.
    for (const uint64_t seed : {1818ull, 1919ull}) {
        FleetConfig cfg;
        cfg.hosts = 6;
        cfg.days = 5;
        cfg.migrationStartDay = 1;
        cfg.migrationEndDay = 4;
        cfg.warmup = 50 * sim::kMsec;
        cfg.slice = 50 * sim::kMsec;
        cfg.fetchBytes = 1ull << 20;
        cfg.cleanupOps = 20;
        cfg.seed = seed;
        const FleetScenario sc = scenarioFromConfig(cfg);
        const std::string ref = aggPayload(runWith(sc, 1, 1));
        EXPECT_EQ(aggPayload(runWith(sc, 4, 6)), ref);
        EXPECT_EQ(aggPayload(runWith(sc, 2, 5)), ref);

        // And the wrapper's day results equal the engine's.
        const auto days = FleetSim::run(cfg, 3);
        const FleetAggregate agg = runWith(sc, 1, 2);
        ASSERT_EQ(days.size(), agg.days.size());
        for (size_t i = 0; i < days.size(); ++i) {
            EXPECT_EQ(days[i].fetchFailures,
                      agg.days[i].fetchFailures);
            EXPECT_EQ(days[i].cleanupFailures,
                      agg.days[i].cleanupFailures);
            EXPECT_EQ(days[i].fractionOnIoCost,
                      agg.days[i].fractionOnIoCost);
        }
    }
}

TEST(FleetShards, OutcomeGridConsistentWithStreamingAggregate)
{
    const FleetScenario sc = smallScenario();
    RunOptions opts;
    opts.jobs = 2;
    opts.shards = 5;
    std::vector<HostDayOutcome> grid;
    const FleetAggregate agg =
        FleetSim::runScenario(sc, opts, &grid);
    ASSERT_EQ(grid.size(),
              static_cast<size_t>(sc.hosts) * sc.days);

    for (unsigned day = 0; day < sc.days; ++day) {
        unsigned fetch_fail = 0, cleanup_fail = 0;
        for (unsigned h = 0; h < sc.hosts; ++h) {
            const HostDayOutcome &o = grid[day * sc.hosts + h];
            fetch_fail += o.fetchFailed ? 1 : 0;
            cleanup_fail += o.cleanupFailed ? 1 : 0;
        }
        EXPECT_EQ(fetch_fail, agg.days[day].fetchFailures);
        EXPECT_EQ(cleanup_fail, agg.days[day].cleanupFailures);
        EXPECT_EQ(agg.days[day].fetchAttempts, sc.hosts);
    }

    // Completed agents land in the histograms; failures do not.
    uint64_t completed_fetches = 0;
    for (const HostDayOutcome &o : grid)
        completed_fetches += o.fetchFailed ? 0 : 1;
    EXPECT_EQ(agg.fetchTime[kCtlIoLatency].count() +
                  agg.fetchTime[kCtlIoCost].count(),
              completed_fetches);
}

TEST(FleetShards, SliceExceptionDrainsAndRethrowsDeterministically)
{
    FleetScenario sc = smallScenario();
    sc.throwAtDay = 2;
    sc.throwAtHost = 4;

    std::string what_seq, what_par;
    try {
        runWith(sc, 1, 3);
        FAIL() << "sequential run should have thrown";
    } catch (const std::runtime_error &err) {
        what_seq = err.what();
    }
    try {
        runWith(sc, 4, 6);
        FAIL() << "parallel run should have thrown";
    } catch (const std::runtime_error &err) {
        what_par = err.what();
    }
    // Same exception regardless of worker layout (the lowest
    // failed shard wins the rethrow).
    EXPECT_EQ(what_seq, what_par);
    EXPECT_NE(what_seq.find("day 2"), std::string::npos);
    EXPECT_NE(what_seq.find("host 4"), std::string::npos);
}

TEST(FleetShards, AggregateJsonRoundTrips)
{
    const FleetScenario sc = smallScenario();
    const FleetAggregate agg = runWith(sc, 2, 4);
    const AggregateView view = AggregateView::from(agg);

    char *buf = nullptr;
    size_t len = 0;
    FILE *f = open_memstream(&buf, &len);
    ASSERT_NE(f, nullptr);
    writeAggregateJson(view, f);
    std::fclose(f);
    const std::string text(buf, len);
    std::free(buf);

    const auto back = readAggregateJson(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->hosts, view.hosts);
    EXPECT_EQ(back->days, view.days);
    EXPECT_EQ(back->hostDays, view.hostDays);
    ASSERT_EQ(back->perDay.size(), view.perDay.size());
    for (size_t i = 0; i < view.perDay.size(); ++i) {
        EXPECT_EQ(back->perDay[i].fetchFailures,
                  view.perDay[i].fetchFailures);
        EXPECT_NEAR(back->perDay[i].fractionOnIoCost,
                    view.perDay[i].fractionOnIoCost, 1e-9);
    }
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(back->ctl[c].fetchCount, view.ctl[c].fetchCount);
        EXPECT_NEAR(back->ctl[c].fetchP99Ms,
                    view.ctl[c].fetchP99Ms, 1e-6);
    }

    // Legacy JSONL is NOT an aggregate document.
    EXPECT_FALSE(
        readAggregateJson(
            "{\"day\":0,\"host\":1,\"t\":5,\"src\":\"x\"}\n")
            .has_value());
}

} // namespace
