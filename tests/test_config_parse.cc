/**
 * @file
 * Tests for the kernel-format io.cost.model / io.cost.qos parsing
 * and the programmable cost-model hook.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "core/config_parse.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost::core;
using namespace iocost;

TEST(ConfigParse, ModelLineFromThePaper)
{
    // Fig. 6's configuration, as the kernel file would show it.
    const auto cfg = parseModelLine(
        "8:0 ctrl=user model=linear rbps=488636629 rseqiops=8932 "
        "rrandiops=8518 wbps=427891549 wseqiops=28755 "
        "wrandiops=21940");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_DOUBLE_EQ(cfg->rbps, 488636629);
    EXPECT_DOUBLE_EQ(cfg->rseqiops, 8932);
    EXPECT_DOUBLE_EQ(cfg->rrandiops, 8518);
    EXPECT_DOUBLE_EQ(cfg->wbps, 427891549);
    EXPECT_DOUBLE_EQ(cfg->wseqiops, 28755);
    EXPECT_DOUBLE_EQ(cfg->wrandiops, 21940);
}

TEST(ConfigParse, ModelLineRoundTrips)
{
    LinearModelConfig cfg;
    cfg.rbps = 123456789;
    cfg.rseqiops = 11111;
    cfg.rrandiops = 22222;
    cfg.wbps = 987654321;
    cfg.wseqiops = 33333;
    cfg.wrandiops = 44444;
    const auto parsed = parseModelLine(formatModelLine(cfg));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->rbps, cfg.rbps);
    EXPECT_DOUBLE_EQ(parsed->wrandiops, cfg.wrandiops);
}

TEST(ConfigParse, ModelLineRejectsGarbage)
{
    EXPECT_FALSE(parseModelLine("rbps").has_value());
    EXPECT_FALSE(parseModelLine("rbps=").has_value());
    EXPECT_FALSE(parseModelLine("rbps=abc").has_value());
    EXPECT_FALSE(parseModelLine("rbps=-5").has_value());
    EXPECT_FALSE(parseModelLine("").has_value());
    EXPECT_FALSE(parseModelLine("8:0 ctrl=user").has_value())
        << "markers alone configure nothing";
}

TEST(ConfigParse, ModelLineIgnoresUnknownKeys)
{
    const auto cfg =
        parseModelLine("rbps=1000000 future_knob=7");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_DOUBLE_EQ(cfg->rbps, 1000000);
}

TEST(ConfigParse, QosLineKernelDefaults)
{
    const auto qos = parseQosLine(
        "8:16 enable=1 ctrl=user rpct=95.00 rlat=5000 wpct=95.00 "
        "wlat=5000 min=50.00 max=150.00");
    ASSERT_TRUE(qos.has_value());
    EXPECT_DOUBLE_EQ(qos->readLatQuantile, 0.95);
    EXPECT_EQ(qos->readLatTarget, 5 * sim::kMsec);
    EXPECT_DOUBLE_EQ(qos->writeLatQuantile, 0.95);
    EXPECT_EQ(qos->writeLatTarget, 5 * sim::kMsec);
    EXPECT_DOUBLE_EQ(qos->vrateMin, 0.5);
    EXPECT_DOUBLE_EQ(qos->vrateMax, 1.5);
}

TEST(ConfigParse, QosLineRejectsInvertedBounds)
{
    EXPECT_FALSE(
        parseQosLine("min=150 max=50").has_value());
}

TEST(ConfigParse, QosLineRoundTrips)
{
    QosParams qos;
    qos.readLatQuantile = 0.9;
    qos.readLatTarget = 250 * sim::kUsec;
    qos.writeLatQuantile = 0.95;
    qos.writeLatTarget = 2 * sim::kMsec;
    qos.vrateMin = 0.25;
    qos.vrateMax = 4.0;
    const auto parsed = parseQosLine(formatQosLine(qos));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->readLatQuantile, 0.9);
    EXPECT_EQ(parsed->readLatTarget, 250 * sim::kUsec);
    EXPECT_DOUBLE_EQ(parsed->vrateMin, 0.25);
    EXPECT_DOUBLE_EQ(parsed->vrateMax, 4.0);
}

TEST(CostProgram, OverridesLinearModel)
{
    // A flat-cost program claiming 2000 IOPS regardless of size or
    // direction must pin throughput at 2000.
    sim::Simulator sim(91);
    device::SsdModel device(sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    IoCostConfig cfg;
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    cfg.costProgram = [](const blk::Bio &, bool) {
        return 500 * sim::kUsec; // 2000/s flat
    };
    layer.setController(std::make_unique<IoCost>(cfg));

    const auto cg = tree.create(cgroup::kRoot, "a");
    workload::FioConfig job_cfg;
    job_cfg.iodepth = 32;
    workload::FioWorkload job(sim, layer, cg, job_cfg);
    job.start();
    sim.runUntil(1 * sim::kSec);
    job.resetStats();
    sim.runUntil(6 * sim::kSec);
    EXPECT_NEAR(job.iops(), 2000, 150);
}

TEST(CostProgram, ReceivesSequentialClassification)
{
    sim::Simulator sim(92);
    device::SsdModel device(sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    unsigned sequential_seen = 0, random_seen = 0;
    IoCostConfig cfg;
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.costProgram = [&](const blk::Bio &,
                          bool sequential) -> sim::Time {
        (sequential ? sequential_seen : random_seen) += 1;
        return 10 * sim::kUsec;
    };
    auto ctl = std::make_unique<IoCost>(cfg);
    IoCost *ptr = ctl.get();
    layer.setController(std::move(ctl));
    (void)ptr;

    const auto cg = tree.create(cgroup::kRoot, "a");
    workload::FioConfig seq_cfg;
    seq_cfg.randomFraction = 0.0;
    seq_cfg.iodepth = 1;
    workload::FioWorkload job(sim, layer, cg, seq_cfg);
    job.start();
    sim.runUntil(100 * sim::kMsec);
    EXPECT_GT(sequential_seen, 10u);
    // Only the very first IO of the stream classifies as random.
    EXPECT_LE(random_seen, 2u);
}

} // namespace
