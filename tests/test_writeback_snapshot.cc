/**
 * @file
 * Writeback snapshot coverage: snapshot/restore round-trip
 * byte-identity fuzzed *inside* the writeback machinery — dirty
 * extents queued, writeback bios in flight, writers parked at the
 * dirty wall, fsync barriers waiting — plus the what-if service's
 * determinism gate over buffered scenarios and the new scenario
 * grammar keys.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "host/device_factory.hh"
#include "host/host.hh"
#include "mm/page_cache.hh"
#include "sim/rng.hh"
#include "whatif/query.hh"
#include "whatif/scenario.hh"
#include "whatif/service.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/**
 * A storm rig: an iocost host with a deliberately small page cache
 * (64M — the dirty wall sits at 12.8M), a protected direct reader,
 * a flooding buffered dirtier, and an fsync-heavy mixed job. Within
 * a few tens of milliseconds this keeps dirty extents queued,
 * writeback in flight, writers parked and barriers pending more or
 * less continuously — exactly the state a snapshot must capture.
 */
struct WbRig
{
    sim::Simulator sim;
    std::unique_ptr<host::Host> host;
    std::unique_ptr<workload::FioWorkload> reader;
    std::vector<std::unique_ptr<workload::BufferedWorkload>>
        buffered;

    explicit WbRig(const std::string &controller = "iocost",
                   uint64_t seed = 7)
        : sim(seed)
    {
        core::LinearModelConfig model;
        auto dev = host::makeNamedDevice("newgen", sim, &model);
        host::HostOptions opts;
        opts.controller = controller;
        opts.controller.iocost.model =
            core::CostModel::fromConfig(model);
        opts.enablePageCache = true;
        opts.pageCacheConfig.cacheBytes = 64ull << 20;
        host = std::make_unique<host::Host>(sim, std::move(dev),
                                            opts);

        const auto web = host->addWorkload("web", 200);
        workload::FioConfig rf;
        rf.iodepth = 8;
        reader = std::make_unique<workload::FioWorkload>(
            sim, host->layer(), web, rf);
        host->track(*reader);
        reader->start();

        const auto batch = host->addWorkload("batch", 100);
        workload::BufferedConfig dc;
        dc.name = "dirtier";
        dc.blockSize = 1 << 20;
        dc.spanBytes = 256ull << 20;
        dc.offsetBase = 1ull << 40;
        dc.thinkTime = 20 * sim::kUsec;
        dc.depth = 4;
        buffered.push_back(
            std::make_unique<workload::BufferedWorkload>(
                sim, host->pageCache(), batch, dc));

        const auto db = host->addWorkload("db", 150);
        workload::BufferedConfig fc;
        fc.name = "db";
        fc.blockSize = 16 * 1024;
        fc.spanBytes = 32ull << 20;
        fc.offsetBase = 2ull << 40;
        fc.randomFraction = 1.0;
        fc.readFraction = 0.3;
        fc.fsyncEvery = 4;
        fc.thinkTime = 50 * sim::kUsec;
        buffered.push_back(
            std::make_unique<workload::BufferedWorkload>(
                sim, host->pageCache(), db, fc));

        for (auto &b : buffered) {
            host->track(*b);
            b->start();
        }
    }

    /** The byte tape of a fresh snapshot: the state signature. */
    std::vector<unsigned char>
    signature() const
    {
        return host->snapshot().image().bytes;
    }
};

/**
 * snapshot -> restore -> run(T) must be byte-identical to run(T)
 * without the round-trip, fuzzed over round-trip instants chosen to
 * land inside the storm, under both a debt-pacing controller
 * (iocost: the dirtier is held off the wall, fsync barriers park)
 * and an unpaced one (blk-throttle: the flood lives at the dirty
 * wall with writeback continuously in flight). The aggregate
 * assertions at the end prove the fuzz actually sampled live
 * writeback state rather than calm instants.
 */
TEST(WritebackSnapshot, RoundTripInsideTheStorm)
{
    sim::Rng fuzz(2026);
    int parked_seen = 0;
    int inflight_seen = 0;
    for (int iter = 0; iter < 6; ++iter) {
        const std::string ctl =
            iter % 2 ? "blk-throttle" : "iocost";
        const sim::Time t1 =
            20 * sim::kMsec +
            static_cast<sim::Time>(fuzz.below(400 * sim::kMsec));
        const sim::Time t2 = t1 + 150 * sim::kMsec;

        WbRig plain(ctl);
        plain.sim.runUntil(t1);
        plain.sim.runUntil(t2);

        WbRig tripped(ctl);
        tripped.sim.runUntil(t1);
        if (tripped.host->pageCache().pendingOps() > 0)
            ++parked_seen;
        if (tripped.host->pageCache().wbInflight() > 0)
            ++inflight_seen;
        const host::HostSnapshot snap = tripped.host->snapshot();
        tripped.host->restore(snap);
        tripped.sim.runUntil(t2);

        EXPECT_EQ(plain.signature(), tripped.signature())
            << "writeback state diverged after a round-trip at t="
            << t1;
    }
    EXPECT_GT(parked_seen, 0)
        << "no round-trip instant caught a parked operation — the "
           "fuzz is not exercising stalls/fsync barriers";
    EXPECT_GT(inflight_seen, 0)
        << "no round-trip instant caught writeback in flight";
}

/** One mid-storm snapshot restored twice must replay identically
 *  both times (parked-op slots and dirty extents clone out of the
 *  immutable image). */
TEST(WritebackSnapshot, MultiRestoreMidStall)
{
    WbRig rig;
    rig.sim.runUntil(100 * sim::kMsec);
    const host::HostSnapshot snap = rig.host->snapshot();

    rig.host->restore(snap);
    rig.sim.runUntil(300 * sim::kMsec);
    const auto first = rig.signature();

    rig.host->restore(snap);
    rig.sim.runUntil(300 * sim::kMsec);
    const auto second = rig.signature();

    EXPECT_EQ(first, second);
}

whatif::Scenario
bufferedScenario()
{
    return whatif::Scenario::parse(
        "device=newgen;seconds=0.4;marks=100ms,200ms;seed=11;"
        "pagecache=32M;dirty_ratio=30;"
        "job=web:weight=200:depth=16;"
        "job=batch:weight=100:buffered=1:bs=262144:span=67108864;"
        "job=db:weight=150:buffered=1:bs=16384:fsync=4:"
        "span=8388608");
}

/** Branch-from-checkpoint must equal a cold full re-run byte for
 *  byte when buffered jobs, the flusher and parked writers cross
 *  the checkpoint marks. */
TEST(WhatifBuffered, BranchEqualsCold)
{
    const whatif::Scenario sc = bufferedScenario();
    whatif::Service service(sc, 2);
    const char *const queries[] = {
        "{\"q\":\"weight\",\"cg\":\"batch\",\"value\":500,"
        "\"from\":\"150ms\"}",
        "{\"q\":\"device\",\"profile\":\"oldgen\","
        "\"from\":\"100ms\"}",
        "{\"q\":\"fault\",\"spec\":\"lat@250ms+100ms=6\","
        "\"from\":\"220ms\"}",
    };
    for (const char *line : queries) {
        const whatif::Query q = whatif::Query::parse(line);
        EXPECT_EQ(service.evaluate(q),
                  whatif::Service::evaluateCold(sc, q))
            << "buffered query " << line;
    }
}

/** The new scenario keys canonicalize stably, change the scenario
 *  hash, and stay entirely absent from page-cache-less scenarios
 *  (pre-existing canonical strings and cache keys must not move). */
TEST(WhatifBuffered, ScenarioGrammar)
{
    const whatif::Scenario sc = bufferedScenario();
    EXPECT_NE(sc.canonical().find("pagecache=33554432"),
              std::string::npos);
    EXPECT_NE(sc.canonical().find("dirty_ratio=30"),
              std::string::npos);
    const whatif::Scenario again = bufferedScenario();
    EXPECT_EQ(again.canonical(), sc.canonical());
    EXPECT_EQ(again.hash(), sc.hash());

    const whatif::Scenario plain = whatif::Scenario::parse(
        "device=newgen;seconds=0.4;marks=100ms,200ms;seed=11");
    EXPECT_EQ(plain.canonical().find("pagecache"),
              std::string::npos);
    EXPECT_EQ(plain.canonical().find("dirty_ratio"),
              std::string::npos);

    whatif::Scenario with_cache = plain;
    with_cache.pagecacheBytes = 32ull << 20;
    with_cache.normalize();
    EXPECT_NE(with_cache.hash(), plain.hash());

    EXPECT_THROW(whatif::Scenario::parse(
                     "device=newgen;seconds=0.1;dirty_ratio=180"),
                 std::invalid_argument);
}

/** A buffered job without pagecache= is a loud construction error,
 *  not a silent direct-IO fallback. */
TEST(WhatifBuffered, BufferedRequiresPagecache)
{
    const whatif::Scenario sc = whatif::Scenario::parse(
        "device=newgen;seconds=0.2;seed=1;"
        "job=b:weight=100:buffered=1");
    EXPECT_THROW(whatif::Replica replica(sc),
                 std::invalid_argument);
}

} // namespace
