/**
 * @file
 * Tests for the workload generators: fio arrival modes, the
 * latency-governed AIMD behaviour, the latency server's shedding
 * and memory coupling, and the memory hogs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "mm/memory_manager.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

struct Stack
{
    sim::Simulator sim{51};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;
    std::unique_ptr<mm::MemoryManager> mm;

    Stack()
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::newGenSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        mm::MemoryConfig mcfg;
        mcfg.totalBytes = 1ull << 30;
        mm = std::make_unique<mm::MemoryManager>(sim, *layer,
                                                 mcfg);
    }
};

TEST(FioWorkload, RateModeHitsConfiguredRate)
{
    Stack s;
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::Rate;
    cfg.ratePerSec = 2000;
    workload::FioWorkload job(s.sim, *s.layer, cgroup::kRoot, cfg);
    job.start();
    s.sim.runUntil(5 * sim::kSec);
    EXPECT_NEAR(job.iops(), 2000, 120);
}

TEST(FioWorkload, SaturatingKeepsDepth)
{
    Stack s;
    workload::FioConfig cfg;
    cfg.iodepth = 16;
    workload::FioWorkload job(s.sim, *s.layer, cgroup::kRoot, cfg);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    // Throughput ~= depth / latency; with ~16 IOs over ~100us
    // service on 24 channels the job must stay device-latency bound.
    EXPECT_GT(job.iops(), 50000);
    job.stop();
    const uint64_t done = job.completed();
    s.sim.runUntil(2 * sim::kSec);
    EXPECT_LE(job.completed(), done + 16) << "stop() halts issuing";
}

TEST(FioWorkload, ThinkTimeBoundsRate)
{
    Stack s;
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::ThinkTime;
    cfg.thinkTime = 1 * sim::kMsec;
    cfg.iodepth = 1;
    workload::FioWorkload job(s.sim, *s.layer, cgroup::kRoot, cfg);
    job.start();
    s.sim.runUntil(5 * sim::kSec);
    // Rate <= 1/(think + service).
    EXPECT_LT(job.iops(), 1000);
    EXPECT_GT(job.iops(), 500);
}

TEST(FioWorkload, WriteFractionRespected)
{
    Stack s;
    workload::FioConfig cfg;
    cfg.readFraction = 0.25;
    cfg.iodepth = 16;
    workload::FioWorkload job(s.sim, *s.layer, cgroup::kRoot, cfg);
    job.start();
    s.sim.runUntil(2 * sim::kSec);
    const auto &st = s.layer->stats(cgroup::kRoot);
    const double read_frac =
        static_cast<double>(st.reads) / (st.reads + st.writes);
    EXPECT_NEAR(read_frac, 0.25, 0.05);
}

TEST(FioWorkload, OffsetBaseSeparatesRegions)
{
    Stack s;
    workload::FioConfig cfg;
    cfg.randomFraction = 0.0;
    cfg.iodepth = 1;
    cfg.offsetBase = 1ull << 40;
    cfg.spanBytes = 1 << 20;
    bool checked = false;
    workload::FioWorkload job(s.sim, *s.layer, cgroup::kRoot, cfg);
    // Inspect offsets through the completion callback path.
    s.layer->submit(blk::Bio::make(
        blk::Op::Read, 0, 4096, cgroup::kRoot,
        [&](const blk::Bio &) { checked = true; }));
    job.start();
    s.sim.runUntil(100 * sim::kMsec);
    EXPECT_TRUE(checked);
    EXPECT_GT(job.completed(), 0u);
}

TEST(FioWorkload, LatencyGovernedBacksOffUnderSlowDevice)
{
    // On the slow HDD-like latency regime, the governor must keep
    // concurrency near 1 instead of queueing unboundedly.
    sim::Simulator sim(52);
    device::SsdSpec spec = device::oldGenSsd();
    spec.readBaseRand = 5 * sim::kMsec; // very slow
    spec.channels = 2;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::LatencyGoverned;
    cfg.latencyTarget = 200 * sim::kUsec;
    cfg.governMaxDepth = 32;
    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();
    sim.runUntil(10 * sim::kSec);
    // p50 far above target -> shed to depth ~1 -> rate ~= 1/svc.
    EXPECT_LT(job.iops(), 260);
}

TEST(FioWorkload, LatencyGovernedExpandsOnFastDevice)
{
    Stack s;
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::LatencyGoverned;
    cfg.latencyTarget = 2 * sim::kMsec; // generous
    cfg.governMaxDepth = 32;
    workload::FioWorkload job(s.sim, *s.layer, cgroup::kRoot, cfg);
    job.start();
    s.sim.runUntil(10 * sim::kSec);
    // Should grow to the depth cap and saturate accordingly.
    EXPECT_GT(job.iops(), 100000);
}

TEST(LatencyServer, DeliversOfferedLoadWhenHealthy)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "srv");
    workload::LatencyServerConfig cfg;
    cfg.offeredRps = 200;
    cfg.workingSetBytes = 64ull << 20;
    cfg.touchPerRequest = 1 << 20;
    workload::LatencyServer srv(s.sim, *s.layer, *s.mm, cg, cfg);
    bool ready = false;
    srv.prepare([&] {
        ready = true;
        srv.start();
    });
    s.sim.runUntil(10 * sim::kSec);
    EXPECT_TRUE(ready);
    EXPECT_NEAR(srv.deliveredRps(), 200, 25);
    EXPECT_EQ(srv.shed(), 0u);
}

TEST(LatencyServer, ShedsAboveConcurrencyCap)
{
    // A tiny concurrency cap with slow requests must shed.
    sim::Simulator sim(53);
    device::SsdSpec spec = device::oldGenSsd();
    spec.readBaseRand = 20 * sim::kMsec;
    spec.channels = 1;
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    mm::MemoryConfig mcfg;
    mcfg.totalBytes = 1ull << 30;
    mm::MemoryManager mm(sim, layer, mcfg);

    const auto cg = tree.create(cgroup::kRoot, "srv");
    workload::LatencyServerConfig cfg;
    cfg.offeredRps = 500;
    cfg.workingSetBytes = 16ull << 20;
    cfg.maxConcurrency = 2;
    cfg.readsPerRequest = 4;
    workload::LatencyServer srv(sim, layer, mm, cg, cfg);
    srv.prepare([&] { srv.start(); });
    sim.runUntil(5 * sim::kSec);
    EXPECT_GT(srv.shed(), 100u);
}

TEST(LatencyServer, WorkingSetGrowsWithLoad)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "srv");
    workload::LatencyServerConfig cfg;
    cfg.offeredRps = 100;
    cfg.workingSetBytes = 32ull << 20;
    cfg.workingSetGrowthPerRps = 1 << 20; // +100 MB at 100 rps
    workload::LatencyServer srv(s.sim, *s.layer, *s.mm, cg, cfg);
    srv.prepare([&] { srv.start(); });
    s.sim.runUntil(10 * sim::kSec);
    EXPECT_GT(s.mm->stats(cg).resident, 100ull << 20);
}

TEST(MemoryHog, LeakGrowsResident)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "leak");
    workload::MemoryHogConfig cfg;
    cfg.mode = workload::HogMode::Leak;
    cfg.leakBytesPerSec = 64e6;
    workload::MemoryHog hog(s.sim, *s.mm, cg, cfg);
    hog.start();
    s.sim.runUntil(5 * sim::kSec);
    EXPECT_NEAR(static_cast<double>(hog.allocated()), 320e6,
                40e6);
    hog.stop();
    const uint64_t at_stop = hog.allocated();
    s.sim.runUntil(10 * sim::kSec);
    EXPECT_LE(hog.allocated(), at_stop + (8ull << 20));
}

TEST(MemoryHog, LeakRestartsAfterOomKill)
{
    sim::Simulator sim(54);
    auto device = std::make_unique<device::SsdModel>(
        sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, *device, tree);
    mm::MemoryConfig mcfg;
    mcfg.totalBytes = 256ull << 20;
    mcfg.swapBytes = 256ull << 20;
    mm::MemoryManager mm(sim, layer, mcfg);

    const auto cg = tree.create(cgroup::kRoot, "leak");
    workload::MemoryHogConfig cfg;
    cfg.mode = workload::HogMode::Leak;
    cfg.leakBytesPerSec = 256e6;
    workload::MemoryHog hog(sim, mm, cg, cfg);
    mm.setOomHandler(
        [&](cgroup::CgroupId victim) {
            if (victim == cg)
                hog.notifyOomKilled();
        });
    hog.start();
    sim.runUntil(30 * sim::kSec);
    EXPECT_GE(hog.kills(), 2u) << "leak-kill-restart cycle";
}

TEST(MemoryHog, StressKeepsWorkingSetHot)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "stress");
    workload::MemoryHogConfig cfg;
    cfg.mode = workload::HogMode::Stress;
    cfg.workingSetBytes = 128ull << 20;
    cfg.touchChunk = 8ull << 20;
    cfg.touchInterval = 5 * sim::kMsec;
    workload::MemoryHog hog(s.sim, *s.mm, cg, cfg);
    hog.start();
    s.sim.runUntil(5 * sim::kSec);
    EXPECT_EQ(s.mm->stats(cg).resident, 128ull << 20);
    // lastTouch tracks recent activity.
    EXPECT_GT(s.mm->stats(cg).lastTouch,
              s.sim.now() - 100 * sim::kMsec);
}

} // namespace
