/**
 * @file
 * Scenario regression tests: miniature versions of the paper's
 * headline results, asserted as inequalities so refactors cannot
 * silently un-reproduce a figure. Each runs in well under a second
 * of wall time; the full-size versions live in bench/.
 */

#include <gtest/gtest.h>

#include <memory>

#include "controllers/blk_throttle.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "workload/fio_workload.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace {

using namespace iocost;

host::HostOptions
iocostOptions(const device::SsdSpec &spec)
{
    host::HostOptions opts;
    opts.controller = "iocost";
    opts.controller.iocost.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(spec).model);
    opts.controller.iocost.qos.readLatTarget = 250 * sim::kUsec;
    opts.controller.iocost.qos.writeLatTarget = 2 * sim::kMsec;
    opts.controller.iocost.qos.period = 10 * sim::kMsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 1.0;
    return opts;
}

/** Fig. 10 miniature: latency-governed pair at 2:1 under IOCost. */
TEST(Scenario, Fig10ProportionalHeadline)
{
    sim::Simulator sim(3001);
    const device::SsdSpec spec = device::oldGenSsd();
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    iocostOptions(spec));
    const auto hi = host.addWorkload("hi", 200);
    const auto lo = host.addWorkload("lo", 100);
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::LatencyGoverned;
    cfg.latencyTarget = 200 * sim::kUsec;
    workload::FioWorkload hij(sim, host.layer(), hi, cfg);
    workload::FioWorkload loj(sim, host.layer(), lo, cfg);
    hij.start();
    loj.start();
    sim.runUntil(3 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    sim.runUntil(10 * sim::kSec);
    EXPECT_NEAR(hij.iops() / loj.iops(), 2.0, 0.3);
}

/** Fig. 11 miniature: slack absorbed without hurting hi latency. */
TEST(Scenario, Fig11WorkConservationHeadline)
{
    sim::Simulator sim(3002);
    const device::SsdSpec spec = device::oldGenSsd();
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    iocostOptions(spec));
    const auto hi = host.addWorkload("hi", 200);
    const auto lo = host.addWorkload("lo", 100);

    workload::FioConfig hi_cfg;
    hi_cfg.arrival = workload::Arrival::ThinkTime;
    hi_cfg.thinkTime = 100 * sim::kUsec;
    hi_cfg.iodepth = 1;
    workload::FioWorkload hij(sim, host.layer(), hi, hi_cfg);
    workload::FioConfig lo_cfg;
    lo_cfg.arrival = workload::Arrival::LatencyGoverned;
    lo_cfg.latencyTarget = 200 * sim::kUsec;
    workload::FioWorkload loj(sim, host.layer(), lo, lo_cfg);
    hij.start();
    loj.start();
    sim.runUntil(3 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    sim.runUntil(10 * sim::kSec);

    // lo soaks up far more than hi uses; hi keeps tight latency.
    EXPECT_GT(loj.iops(), 4 * hij.iops());
    EXPECT_GT(loj.iops(), 20000);
    EXPECT_LT(hij.latency().mean(), 250e3);
    EXPECT_LT(hij.latency().stddev(), 100e3);
}

/** Fig. 13 miniature: vrate doubles when the model is halved. */
TEST(Scenario, Fig13VrateCompensatesModelError)
{
    sim::Simulator sim(3003);
    const device::SsdSpec spec = device::newGenSsd();
    host::HostOptions opts = iocostOptions(spec);
    opts.controller.iocost.qos.readLatTarget = 250 * sim::kUsec;
    opts.controller.iocost.qos.vrateMin = 0.25;
    opts.controller.iocost.qos.vrateMax = 4.0;
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);
    const auto cg = host.addWorkload("fio", 100);
    workload::FioConfig cfg;
    cfg.iodepth = 64;
    workload::FioWorkload job(sim, host.layer(), cg, cfg);
    job.start();
    sim.runUntil(8 * sim::kSec);
    const double vrate_before = host.iocost()->vrate();

    core::CostModel halved = host.iocost()->model();
    halved.scaleCapability(0.5);
    host.iocost()->setModel(halved);
    sim.runUntil(16 * sim::kSec);
    const double vrate_after = host.iocost()->vrate();
    EXPECT_NEAR(vrate_after / vrate_before, 2.0, 0.4);
}

/** Fig. 14 miniature: IOCost keeps a web server alive next to a
 *  leak; blk-throttle-style static caps are not even needed. */
TEST(Scenario, Fig14MemoryIsolationHeadline)
{
    auto run = [](const std::string &controller) {
        sim::Simulator sim(3004);
        const device::SsdSpec spec = device::oldGenSsd();
        host::HostOptions opts = iocostOptions(spec);
        opts.controller = controller;
        opts.controller.iocost.qos.readLatTarget = 2 * sim::kMsec;
        opts.controller.iocost.qos.vrateMin = 0.5;
        opts.enableMemory = true;
        opts.memoryConfig.totalBytes = 2ull << 30;
        opts.memoryConfig.swapBytes = 8ull << 30;
        opts.memoryConfig.chargeSwapToOwner =
            controller == "iocost";
        host::Host host(
            sim, std::make_unique<device::SsdModel>(sim, spec),
            opts);
        const auto web_cg = host.addWorkload("web", 100);
        const auto leak_cg = host.addSystemService("leak");

        workload::LatencyServerConfig web_cfg;
        web_cfg.offeredRps = 300;
        web_cfg.workingSetBytes = 5ull << 28; // 1.25 GB of 2 GB
        web_cfg.touchPerRequest = 1ull << 20;
        web_cfg.readsPerRequest = 3;
        web_cfg.readSize = 32 * 1024;
        web_cfg.maxConcurrency = 48;
        workload::LatencyServer web(sim, host.layer(), host.mm(),
                                    web_cg, web_cfg);
        workload::MemoryHogConfig leak_cfg;
        leak_cfg.mode = workload::HogMode::Leak;
        leak_cfg.leakBytesPerSec = 400e6;
        workload::MemoryHog leaker(sim, host.mm(), leak_cg,
                                   leak_cfg);
        host.mm().setOomHandler([&](cgroup::CgroupId cg) {
            if (cg == leak_cg)
                leaker.notifyOomKilled();
        });
        web.prepare([&] {
            web.start();
            leaker.start();
        });
        sim.runUntil(5 * sim::kSec);
        web.resetStats();
        sim.runUntil(25 * sim::kSec);
        return web.deliveredRps();
    };
    const double with_iocost = run("iocost");
    const double with_mq = run("mq-deadline");
    EXPECT_GT(with_iocost, 270) << "iocost retains the service";
    EXPECT_GT(with_iocost, 1.5 * with_mq)
        << "and beats an uncontrolled stack";
}

/** Fig. 16 miniature: blk-throttle melts under a snapshot burst
 *  where iocost's work-conserving shares absorb it. */
TEST(Scenario, Fig16SnapshotBurstHeadline)
{
    auto run = [](const std::string &controller) {
        sim::Simulator sim(3005);
        device::SsdSpec spec = device::enterpriseSsd();
        spec.writeBufferBytes = 128ull << 20;
        spec.sustainedWriteBps = 400e6;
        host::HostOptions opts;
        opts.controller = controller;
        opts.controller.iocost.model = core::CostModel::fromConfig(
            profile::DeviceProfiler::profileSsd(spec).model);
        opts.controller.iocost.qos.writeLatTarget = 30 * sim::kMsec;
        opts.controller.iocost.qos.vrateMax = 1.0;
        host::Host host(
            sim, std::make_unique<device::SsdModel>(sim, spec),
            opts);
        const auto svc = host.addWorkload("svc", 100);

        if (controller == "blk-throttle") {
            auto *thr = dynamic_cast<controllers::BlkThrottle *>(
                host.layer().controller());
            thr->setLimits(svc, {.wbps = 40e6});
        }

        // Steady small appends + one huge snapshot dump through the
        // same cgroup; measure append p99 during the dump.
        workload::FioConfig appends;
        appends.arrival = workload::Arrival::Rate;
        appends.ratePerSec = 50;
        appends.readFraction = 0.0;
        appends.randomFraction = 0.0;
        appends.blockSize = 100 * 1024;
        workload::FioWorkload append_job(sim, host.layer(), svc,
                                         appends);
        workload::FioConfig snapshot;
        snapshot.iodepth = 2;
        snapshot.readFraction = 0.0;
        snapshot.randomFraction = 0.0;
        snapshot.blockSize = 256 * 1024;
        snapshot.offsetBase = 1ull << 40;
        workload::FioWorkload snap_job(sim, host.layer(), svc,
                                       snapshot);
        append_job.start();
        sim.runUntil(2 * sim::kSec);
        append_job.resetStats();
        snap_job.start();
        sim.runUntil(12 * sim::kSec);
        return append_job.latency().quantile(0.99);
    };
    const sim::Time iocost_p99 = run("iocost");
    const sim::Time throttle_p99 = run("blk-throttle");
    EXPECT_GT(throttle_p99, 10 * iocost_p99)
        << "static caps strand the appends behind the dump";
    EXPECT_LT(iocost_p99, 1 * sim::kSec);
}

/** Fig. 17 miniature: provisioned volume + leak, IOCost protects. */
TEST(Scenario, Fig17RemoteProtectionHeadline)
{
    auto run = [](const std::string &controller) {
        sim::Simulator sim(3006);
        const device::RemoteSpec spec = device::awsGp3();
        host::HostOptions opts;
        opts.controller = controller;
        opts.controller.iocost.model = core::CostModel::fromConfig(
            profile::DeviceProfiler::profileRemote(spec).model);
        opts.controller.iocost.qos.readLatTarget = 8 * spec.baseRtt;
        opts.controller.iocost.qos.writeLatTarget = 12 * spec.baseRtt;
        opts.controller.iocost.qos.debtThreshold = 5 * sim::kMsec;
        opts.controller.iocost.qos.maxUserspaceDelay = 2 * sim::kSec;
        opts.controller.iocost.qos.vrateMax = 1.0;
        opts.enableMemory = true;
        opts.memoryConfig.totalBytes = 2ull << 30;
        opts.memoryConfig.chargeSwapToOwner =
            controller == "iocost";
        host::Host host(
            sim,
            std::make_unique<device::RemoteModel>(sim, spec),
            opts);
        const auto rcb_cg = host.addWorkload("rcb", 100);
        const auto leak_cg = host.addSystemService("leak");
        workload::LatencyServerConfig cfg;
        cfg.offeredRps = 120;
        cfg.workingSetBytes = 5ull << 28;
        cfg.touchPerRequest = 1 << 20;
        workload::LatencyServer rcb(sim, host.layer(), host.mm(),
                                    rcb_cg, cfg);
        workload::MemoryHogConfig leak_cfg;
        leak_cfg.mode = workload::HogMode::Leak;
        leak_cfg.leakBytesPerSec = 300e6;
        workload::MemoryHog leaker(sim, host.mm(), leak_cg,
                                   leak_cfg);
        host.mm().setOomHandler([&](cgroup::CgroupId cg) {
            if (cg == leak_cg)
                leaker.notifyOomKilled();
        });
        rcb.prepare([&] {
            rcb.start();
            leaker.start();
        });
        sim.runUntil(5 * sim::kSec);
        rcb.resetStats();
        sim.runUntil(25 * sim::kSec);
        return rcb.deliveredRps();
    };
    const double protected_rps = run("iocost");
    const double exposed_rps = run("none");
    EXPECT_GT(protected_rps, 100);
    EXPECT_GT(protected_rps, 1.5 * exposed_rps);
}

} // namespace
