/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, cancellation,
 * clock semantics, and the periodic timer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace {

using namespace iocost::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.scheduleAt(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Time fired_at = -1;
    q.scheduleAt(100, [&] {
        q.scheduleAfter(50, [&] { fired_at = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(fired_at, 150);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsInert)
{
    EventQueue q;
    int runs = 0;
    EventHandle h = q.scheduleAt(10, [&] { ++runs; });
    q.runAll();
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not crash or affect anything
    EXPECT_EQ(runs, 1);
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel();
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(10, [&] { ++count; });
    q.scheduleAt(20, [&] { ++count; });
    q.scheduleAt(21, [&] { ++count; });
    const uint64_t executed = q.runUntil(20);
    EXPECT_EQ(executed, 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20);
    q.runAll();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    EventHandle h = q.scheduleAt(5, [] {});
    q.scheduleAt(9, [] {});
    h.cancel();
    EXPECT_EQ(q.nextEventTime(), 9);
}

TEST(EventQueue, EventsScheduledDuringRunAllExecute)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(1, chain);
    };
    q.scheduleAt(0, chain);
    q.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 4);
}

TEST(EventQueue, PastScheduleTimeClampsToNow)
{
    EventQueue q;
    std::vector<Time> fired;
    q.scheduleAt(100, [&] {
        // Asks for the past; must run at now(), not rewind time.
        q.scheduleAt(40, [&] { fired.push_back(q.now()); });
        q.scheduleAfter(-60, [&] { fired.push_back(q.now()); });
    });
    q.scheduleAt(120, [&] { fired.push_back(q.now()); });
    q.runAll();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 100);
    EXPECT_EQ(fired[1], 100);
    EXPECT_EQ(fired[2], 120);
    EXPECT_EQ(q.now(), 120);
}

TEST(EventQueue, ClockIsMonotoneThroughClampedEvents)
{
    EventQueue q;
    Time last = -1;
    bool monotone = true;
    for (int i = 0; i < 64; ++i) {
        q.scheduleAt(i % 7, [&] {
            if (q.now() < last)
                monotone = false;
            last = q.now();
        });
        q.step();
    }
    EXPECT_TRUE(monotone);
}

TEST(EventQueue, StaleHandleDoesNotCancelRecycledSlot)
{
    EventQueue q;
    int fired = 0;
    EventHandle a = q.scheduleAt(1, [&] { ++fired; });
    q.runAll(); // a's slot is released and goes to the free list
    EventHandle b = q.scheduleAt(2, [&] { ++fired; });
    EXPECT_FALSE(a.pending());
    a.cancel(); // stale generation: must not touch b's slot
    EXPECT_TRUE(b.pending());
    q.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelledSlotReuseKeepsOldHandleDead)
{
    EventQueue q;
    int fired = 0;
    EventHandle a = q.scheduleAt(10, [&] { ++fired; });
    a.cancel();
    EventHandle b = q.scheduleAt(10, [&] { ++fired; });
    a.cancel(); // double cancel through a stale handle
    EXPECT_FALSE(a.pending());
    EXPECT_TRUE(b.pending());
    q.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StressScheduleCancelRunWithSlotReuse)
{
    // Randomized schedule/cancel/step mix with full bookkeeping:
    // every event must either fire exactly once or be cancelled
    // while pending, never both, across heavy slot recycling.
    EventQueue q;
    Rng rng(20260805);

    const int kEvents = 20000;
    std::vector<int> fired(kEvents, 0);
    std::vector<char> cancelled(kEvents, 0);
    std::vector<EventHandle> handles(kEvents);

    for (int i = 0; i < kEvents; ++i) {
        handles[i] = q.scheduleAfter(
            static_cast<Time>(rng.below(500)),
            [&fired, i] { ++fired[i]; });
        // Cancel a random earlier event a third of the time; it may
        // already have fired or been cancelled (both must be inert).
        if (i % 3 == 0) {
            const int victim =
                static_cast<int>(rng.below(static_cast<uint64_t>(i + 1)));
            if (handles[victim].pending()) {
                handles[victim].cancel();
                cancelled[victim] = 1;
            }
        }
        // Drain a little as we go so slots recycle continuously.
        if (i % 7 == 0)
            q.step();
    }
    q.runAll();

    for (int i = 0; i < kEvents; ++i) {
        if (cancelled[i])
            EXPECT_EQ(fired[i], 0) << "cancelled event " << i << " fired";
        else
            EXPECT_EQ(fired[i], 1) << "event " << i << " fired " << fired[i];
        EXPECT_FALSE(handles[i].pending());
        handles[i].cancel(); // stale cancels must all be no-ops
    }
    EXPECT_TRUE(q.empty());
}

TEST(Simulator, ForkedRngsDiffer)
{
    Simulator sim(7);
    Rng a = sim.forkRng();
    Rng b = sim.forkRng();
    EXPECT_NE(a(), b());
}

TEST(PeriodicTimer, FiresEveryPeriod)
{
    Simulator sim;
    std::vector<Time> fires;
    PeriodicTimer timer(sim, 100, [&] { fires.push_back(sim.now()); });
    timer.start();
    sim.runUntil(450);
    ASSERT_EQ(fires.size(), 4u);
    EXPECT_EQ(fires[0], 100);
    EXPECT_EQ(fires[3], 400);
}

TEST(PeriodicTimer, StopPreventsFurtherFires)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.runUntil(250);
    timer.stop();
    sim.runUntil(1000);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, StopFromWithinCallback)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] {
        if (++fires == 3)
            timer.stop();
    });
    timer.start();
    sim.runUntil(10000);
    EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, DestructionCancelsPending)
{
    Simulator sim;
    int fires = 0;
    {
        PeriodicTimer timer(sim, 100, [&] { ++fires; });
        timer.start();
        sim.runUntil(150);
    }
    sim.runUntil(1000);
    EXPECT_EQ(fires, 1);
}

} // namespace
