/**
 * @file
 * Tests for the memory-management substrate: accounting, reclaim and
 * swap IO attribution, page faults, OOM, and the debt-delay hook.
 */

#include <gtest/gtest.h>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "mm/memory_manager.hh"
#include "sim/simulator.hh"

namespace {

using namespace iocost;

struct Stack
{
    sim::Simulator sim{31};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;
    std::unique_ptr<mm::MemoryManager> mm;

    explicit Stack(uint64_t total = 1ull << 30,
                   uint64_t swap = 4ull << 30)
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::enterpriseSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        mm::MemoryConfig cfg;
        cfg.totalBytes = total;
        cfg.swapBytes = swap;
        mm = std::make_unique<mm::MemoryManager>(sim, *layer, cfg);
    }
};

TEST(MemoryManager, AllocateUnderWatermarkIsImmediate)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    bool done = false;
    s.mm->allocate(cg, 100 << 20, [&] { done = true; });
    EXPECT_TRUE(done) << "no reclaim needed, no stall";
    EXPECT_EQ(s.mm->stats(cg).resident, 100u << 20);
    EXPECT_EQ(s.mm->totalResident(), 100u << 20);
}

TEST(MemoryManager, FreeReleasesResidentThenSwap)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    s.mm->allocate(cg, 50 << 20, [] {});
    s.mm->free(cg, 20 << 20);
    EXPECT_EQ(s.mm->stats(cg).resident, 30u << 20);
    EXPECT_EQ(s.mm->totalResident(), 30u << 20);
}

TEST(MemoryManager, OvercommitTriggersSwapOutChargedToColdVictim)
{
    Stack s(1ull << 30);
    const auto cold = s.tree.create(cgroup::kRoot, "cold");
    const auto hot = s.tree.create(cgroup::kRoot, "hot");

    // cold fills 80% and goes idle (lastTouch in the past).
    s.mm->allocate(cold, 800ull << 20, [] {});
    s.sim.runUntil(5 * sim::kSec);
    // hot keeps touching a small set, then allocates past the
    // watermark.
    s.mm->allocate(hot, 100ull << 20, [] {});
    bool done = false;
    s.mm->touch(hot, 50ull << 20, [&] { done = true; });
    s.sim.runUntil(6 * sim::kSec);
    ASSERT_TRUE(done);

    s.mm->allocate(hot, 200ull << 20, [] {});
    s.sim.runUntil(8 * sim::kSec);

    // Reclaim must have swapped mostly cold pages and charged the
    // swap-out writes to the cold cgroup.
    EXPECT_GT(s.mm->stats(cold).swapped, 0u);
    EXPECT_GT(s.mm->stats(cold).swapOutBytes,
              s.mm->stats(hot).swapOutBytes);
    EXPECT_GT(s.layer->stats(cold).writeBytes, 0u);
    // Under the high watermark again.
    EXPECT_LE(s.mm->totalResident(),
              static_cast<uint64_t>(0.995 * (1ull << 30)));
}

TEST(MemoryManager, TouchFaultsSwappedPagesViaReads)
{
    Stack s(1ull << 30);
    const auto a = s.tree.create(cgroup::kRoot, "a");
    const auto b = s.tree.create(cgroup::kRoot, "b");
    s.mm->allocate(a, 900ull << 20, [] {});
    s.sim.runUntil(3 * sim::kSec);
    // b's allocation forces a's pages out.
    s.mm->allocate(b, 300ull << 20, [] {});
    s.sim.runUntil(6 * sim::kSec);
    ASSERT_GT(s.mm->stats(a).swapped, 0u);

    // a touches its memory: page-in reads charged to a.
    const uint64_t reads_before = s.layer->stats(a).readBytes;
    bool done = false;
    s.mm->touch(a, 400ull << 20, [&] { done = true; });
    s.sim.runUntil(9 * sim::kSec);
    EXPECT_TRUE(done);
    EXPECT_GT(s.layer->stats(a).readBytes, reads_before);
    EXPECT_GT(s.mm->stats(a).pageInBytes, 0u);
}

TEST(MemoryManager, SwapExhaustionTriggersOomKill)
{
    Stack s(256ull << 20, /*swap=*/128ull << 20);
    const auto hog = s.tree.create(cgroup::kRoot, "hog");
    const auto small = s.tree.create(cgroup::kRoot, "small");

    cgroup::CgroupId victim = cgroup::kNone;
    s.mm->setOomHandler([&](cgroup::CgroupId cg) { victim = cg; });

    s.mm->allocate(small, 10ull << 20, [] {});
    // Keep allocating until memory + swap are exhausted.
    for (int i = 0; i < 60; ++i) {
        s.mm->allocate(hog, 8ull << 20, [] {});
        s.sim.runUntil(s.sim.now() + 50 * sim::kMsec);
        if (victim != cgroup::kNone)
            break;
    }
    EXPECT_EQ(victim, hog) << "largest consumer gets killed";
    EXPECT_EQ(s.mm->stats(hog).oomKills, 1u);
    EXPECT_EQ(s.mm->stats(hog).resident, 0u);
    EXPECT_EQ(s.mm->stats(hog).swapped, 0u);
    // small survives (possibly partially swapped out, not killed).
    EXPECT_GT(s.mm->stats(small).resident +
                  s.mm->stats(small).swapped,
              0u);
    EXPECT_EQ(s.mm->stats(small).oomKills, 0u);
}

TEST(MemoryManager, KswapdReclaimsInBackground)
{
    Stack s(1ull << 30);
    const auto a = s.tree.create(cgroup::kRoot, "a");
    // Land between low (96%) and high (99%) watermarks: only kswapd
    // acts.
    bool stalled_done = false;
    s.mm->allocate(a, 1000ull << 20, [&] { stalled_done = true; });
    EXPECT_TRUE(stalled_done) << "no direct reclaim below high mark";
    const uint64_t resident0 = s.mm->totalResident();
    s.sim.runUntil(2 * sim::kSec);
    EXPECT_LT(s.mm->totalResident(), resident0)
        << "kswapd was expected to swap pages out";
}

TEST(MemoryManager, DebtDelayAppliedThroughController)
{
    // With IOCost installed and a large accumulated debt, an
    // allocation by the debtor stalls at return-to-userspace.
    sim::Simulator sim(32);
    auto device = std::make_unique<device::SsdModel>(
        sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, *device, tree);

    core::IoCostConfig cfg;
    core::LinearModelConfig slow;
    slow.rbps = 100e6;
    slow.rseqiops = 5000;
    slow.rrandiops = 5000;
    slow.wbps = 100e6;
    slow.wseqiops = 5000;
    slow.wrandiops = 5000;
    cfg.model = core::CostModel::fromConfig(slow);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.debtThreshold = 1 * sim::kMsec;
    layer.setController(std::make_unique<core::IoCost>(cfg));

    mm::MemoryConfig mcfg;
    mcfg.totalBytes = 1ull << 30;
    mm::MemoryManager mm(sim, layer, mcfg);

    const auto hog = tree.create(cgroup::kRoot, "hog");
    const auto peer = tree.create(cgroup::kRoot, "peer");
    (void)peer;

    // Fill memory so further allocations force swap-outs charged to
    // the hog (its own pages are the cold ones).
    mm.allocate(hog, 1000ull << 20, [] {});
    sim.runUntil(1 * sim::kSec);

    // This allocation triggers direct reclaim of the hog's pages ->
    // swap writes -> debt -> userspace delay.
    bool done = false;
    const sim::Time started = sim.now();
    mm.allocate(hog, 64ull << 20, [&] { done = true; });
    sim.runUntil(started + 1 * sim::kMsec);
    EXPECT_FALSE(done) << "allocation should stall on debt";
    sim.runUntil(started + 30 * sim::kSec);
    EXPECT_TRUE(done);
}

} // namespace
