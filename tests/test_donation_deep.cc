/**
 * @file
 * Deep-hierarchy property tests for the donation algorithm: random
 * trees of depth up to 4, nested donors, and repeated planning
 * passes (idempotence / recomputed-from-scratch semantics).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cgroup/cgroup_tree.hh"
#include "core/donation.hh"
#include "sim/rng.hh"

namespace {

using namespace iocost::cgroup;
using namespace iocost::core;

/** Build a random tree up to @p depth, returning its leaves. */
std::vector<CgroupId>
buildRandomTree(CgroupTree &tree, iocost::sim::Rng &rng,
                unsigned depth)
{
    std::vector<CgroupId> frontier{kRoot};
    std::vector<CgroupId> leaves;
    for (unsigned level = 0; level < depth; ++level) {
        std::vector<CgroupId> next;
        for (CgroupId node : frontier) {
            const int kids =
                1 + static_cast<int>(rng.below(3));
            for (int k = 0; k < kids; ++k) {
                const auto child = tree.create(
                    node,
                    "n" + std::to_string(level) + "_" +
                        std::to_string(next.size()),
                    10 + static_cast<uint32_t>(rng.below(300)));
                next.push_back(child);
            }
        }
        frontier = std::move(next);
    }
    for (CgroupId node : frontier)
        leaves.push_back(node);
    return leaves;
}

class DeepDonation : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DeepDonation, InvariantsHoldAtDepthFour)
{
    iocost::sim::Rng rng(GetParam() * 7919);
    CgroupTree tree;
    const auto leaves = buildRandomTree(tree, rng, 4);

    std::vector<CgroupId> active;
    for (CgroupId leaf : leaves) {
        if (rng.chance(0.7)) {
            tree.setActive(leaf, true);
            active.push_back(leaf);
        }
    }
    if (active.size() < 3)
        return;

    std::vector<double> before(tree.size(), 0.0);
    for (CgroupId leaf : active)
        before[leaf] = tree.hweightActive(leaf);

    std::vector<DonorTarget> donors;
    double d = 0, dp = 0;
    for (size_t i = 0; i + 1 < active.size(); i += 2) {
        const CgroupId leaf = active[i];
        const double target = before[leaf] * rng.uniform(0.1, 0.8);
        donors.push_back({leaf, target});
        d += before[leaf];
        dp += target;
    }

    applyDonation(tree, donors);

    for (const auto &don : donors) {
        EXPECT_NEAR(tree.hweightInuse(don.leaf), don.targetHweight,
                    1e-9);
    }
    const double scale = (1.0 - dp) / (1.0 - d);
    for (CgroupId leaf : active) {
        bool is_donor = false;
        for (const auto &don : donors)
            is_donor |= don.leaf == leaf;
        if (!is_donor) {
            EXPECT_NEAR(tree.hweightInuse(leaf),
                        before[leaf] * scale, 1e-9);
        }
    }
    double sum = 0;
    for (CgroupId leaf : active)
        sum += tree.hweightInuse(leaf);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(DeepDonation, RepeatedPassesAreIdempotent)
{
    iocost::sim::Rng rng(GetParam() * 104729);
    CgroupTree tree;
    const auto leaves = buildRandomTree(tree, rng, 3);
    for (CgroupId leaf : leaves)
        tree.setActive(leaf, true);
    if (leaves.size() < 2)
        return;

    std::vector<DonorTarget> donors{
        {leaves[0], tree.hweightActive(leaves[0]) * 0.3}};

    applyDonation(tree, donors);
    std::vector<double> after_one;
    for (CgroupId leaf : leaves)
        after_one.push_back(tree.hweightInuse(leaf));

    // A second pass with the same donor set must land on the same
    // hweights (donation is recomputed from configured weights, not
    // compounded).
    applyDonation(tree, donors);
    for (size_t i = 0; i < leaves.size(); ++i) {
        EXPECT_NEAR(tree.hweightInuse(leaves[i]), after_one[i],
                    1e-9);
    }
}

TEST_P(DeepDonation, DonationThenActivationChangeStaysConsistent)
{
    iocost::sim::Rng rng(GetParam() * 31337);
    CgroupTree tree;
    const auto leaves = buildRandomTree(tree, rng, 3);
    if (leaves.size() < 3)
        return;
    for (CgroupId leaf : leaves)
        tree.setActive(leaf, true);

    applyDonation(tree,
                  {{leaves[0], tree.hweightActive(leaves[0]) / 2}});

    // Deactivate a non-donor leaf; hweights must renormalize to 1
    // over the remaining active leaves without a new donation pass.
    tree.setActive(leaves[1], false);
    double sum = 0;
    for (size_t i = 0; i < leaves.size(); ++i) {
        if (i != 1)
            sum += tree.hweightInuse(leaves[i]);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepDonation,
                         ::testing::Range<uint64_t>(1, 17));

} // namespace
