/**
 * @file
 * Unit tests for the deterministic RNG: reproducibility, bounds, and
 * rough distribution sanity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace {

using iocost::sim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(6);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(8);
    bool seen[10] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(10)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(10);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(11);
    double sum = 0, sumsq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 3.0);
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LogNormalMedianMatches)
{
    Rng r(12);
    std::vector<double> vals;
    const int n = 50001;
    vals.reserve(n);
    for (int i = 0; i < n; ++i)
        vals.push_back(r.logNormal(100.0, 0.5));
    std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
    EXPECT_NEAR(vals[n / 2], 100.0, 3.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_FALSE(r.chance(0.0));
        ASSERT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkIsIndependentAndDeterministic)
{
    Rng a(42);
    Rng fork1 = a.fork();
    Rng b(42);
    Rng fork2 = b.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(fork1(), fork2());
}

} // namespace
