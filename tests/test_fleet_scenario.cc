/**
 * @file
 * FleetScenario: spec grammar, canonical round-trip, and the
 * deterministic per-host derivations (device/workload/migration/
 * seed) that the sharded engine's byte-identity rests on.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "fleet/fleet_scenario.hh"
#include "fleet/fleet_sim.hh"

namespace {

using namespace iocost;
using namespace iocost::fleet;

TEST(FleetScenario, DefaultsFromMinimalSpec)
{
    const FleetScenario sc = FleetScenario::parse("hosts=40 days=8");
    EXPECT_EQ(sc.hosts, 40u);
    EXPECT_EQ(sc.days, 8u);
    EXPECT_EQ(sc.seed, 2022u);
    // Default mixes: the full A..H device population, one mixed
    // workload, one migration stage across the middle half.
    EXPECT_EQ(sc.devices.size(), 8u);
    ASSERT_EQ(sc.workloads.size(), 1u);
    EXPECT_EQ(sc.workloads[0].kind, WorkloadKind::Mixed);
    ASSERT_EQ(sc.stages.size(), 1u);
    EXPECT_EQ(sc.stages[0].startDay, 2u);
    EXPECT_EQ(sc.stages[0].endDay, 6u);
}

TEST(FleetScenario, ParsesFullSpec)
{
    const FleetScenario sc = FleetScenario::parse(
        "hosts=10000 days=24 seed=7 shards=64 "
        "migration=4..10:30,12..20:70 "
        "devices=A:25,D:25,G:25,H:25 "
        "workloads=mixed:60,writeheavy:25,readheavy:15 "
        "faults=lat@1s+500ms=4 "
        "slice=100ms warmup=250ms fetch=1M fetch_deadline=50ms "
        "cleanup=20 cleanup_io=8K cleanup_deadline=25ms");
    EXPECT_EQ(sc.hosts, 10000u);
    EXPECT_EQ(sc.seed, 7u);
    EXPECT_EQ(sc.shards, 64u);
    ASSERT_EQ(sc.stages.size(), 2u);
    EXPECT_EQ(sc.stages[1].startDay, 12u);
    EXPECT_DOUBLE_EQ(sc.stages[0].fraction, 0.30);
    ASSERT_EQ(sc.devices.size(), 4u);
    EXPECT_EQ(sc.devices[1].spec.name, "fleet-ssd-D");
    ASSERT_EQ(sc.workloads.size(), 3u);
    EXPECT_EQ(sc.workloads[1].kind, WorkloadKind::WriteHeavy);
    EXPECT_EQ(sc.faults, "lat@1s+500ms=4");
    EXPECT_EQ(sc.slice, 100 * sim::kMsec);
    EXPECT_EQ(sc.warmup, 250 * sim::kMsec);
    EXPECT_EQ(sc.fetchBytes, 1ull << 20);
    EXPECT_EQ(sc.fetchDeadline, 50 * sim::kMsec);
    EXPECT_EQ(sc.cleanupOps, 20u);
    EXPECT_EQ(sc.cleanupIoBytes, 8u * 1024);
    EXPECT_EQ(sc.cleanupDeadline, 25 * sim::kMsec);
}

TEST(FleetScenario, CommentsAndNewlinesAreFileForm)
{
    const FleetScenario sc = FleetScenario::parse(
        "# a scenario file\n"
        "hosts=12 days=6   # trailing comment\n"
        "devices=A,B\n");
    EXPECT_EQ(sc.hosts, 12u);
    EXPECT_EQ(sc.days, 6u);
    EXPECT_EQ(sc.devices.size(), 2u);
}

TEST(FleetScenario, CanonicalRoundTrips)
{
    const FleetScenario sc = FleetScenario::parse(
        "hosts=500 days=12 seed=9 shards=16 "
        "migration=2..5:40,6..10:60 devices=A:70,H:30 "
        "workloads=bursty:50,mixed:50 faults=err@1s+100ms=0.5 "
        "slice=20ms warmup=30ms fetch=128K fetch_deadline=10ms "
        "cleanup=8 cleanup_io=4K cleanup_deadline=5ms");
    const FleetScenario re = FleetScenario::parse(sc.canonical());
    EXPECT_EQ(re.canonical(), sc.canonical());
    // Round-tripped derivations are identical too.
    for (unsigned h = 0; h < sc.hosts; h += 17) {
        EXPECT_EQ(re.migrationDay(h), sc.migrationDay(h));
        EXPECT_EQ(re.deviceIndexFor(h), sc.deviceIndexFor(h));
        EXPECT_EQ(re.workloadFor(h), sc.workloadFor(h));
        EXPECT_EQ(re.hostDaySeed(3, h), sc.hostDaySeed(3, h));
    }
}

TEST(FleetScenario, RejectsMalformedSpecs)
{
    EXPECT_THROW(FleetScenario::parse("hosts"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("hosts=abc"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("hosts=0 days=5"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("hosts=5 days=0"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("devices=Z"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("devices=A:,B"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("workloads=steady"),
                 std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("migration=5..2"),
                 std::invalid_argument);
    EXPECT_THROW(
        FleetScenario::parse("hosts=5 days=4 migration=1..9"),
        std::invalid_argument);
    EXPECT_THROW(FleetScenario::parse("slice=10parsecs"),
                 std::invalid_argument);
    // Stage coverage is absolute: together stages cannot exceed
    // the fleet.
    EXPECT_THROW(FleetScenario::parse(
                     "hosts=8 days=8 migration=0..2:60,3..5:60"),
                 std::invalid_argument);
    // Fault plans validate eagerly at parse time, not in a worker.
    EXPECT_THROW(FleetScenario::parse("faults=err@oops"),
                 std::invalid_argument);
}

TEST(FleetScenario, LegacyConfigMappingMatchesFleetSim)
{
    FleetConfig cfg;
    cfg.hosts = 61; // non-dividing: exercises the stagger rounding
    cfg.days = 24;
    cfg.migrationStartDay = 6;
    cfg.migrationEndDay = 18;
    cfg.seed = 1818;
    const FleetScenario sc = scenarioFromConfig(cfg);

    ASSERT_EQ(sc.devices.size(), 2u);
    EXPECT_EQ(sc.seedMode, FleetScenario::SeedMode::Legacy);
    for (unsigned h = 0; h < cfg.hosts; ++h) {
        EXPECT_EQ(sc.migrationDay(h),
                  FleetSim::migrationDay(h, cfg));
        // host%2 oldgen/newgen parity.
        EXPECT_EQ(sc.deviceIndexFor(h), h % 2);
    }
    for (unsigned day = 0; day < cfg.days; day += 5) {
        for (unsigned h = 0; h < cfg.hosts; h += 7) {
            EXPECT_EQ(sc.hostDaySeed(day, h),
                      cfg.seed * 1000003ull + day * 10007ull + h);
        }
    }
}

TEST(FleetScenario, MixSeedsCollisionFreeWhereLegacyCollides)
{
    FleetScenario sc = FleetScenario::parse("hosts=30000 days=4");
    // The legacy polynomial aliases (day, host) pairs once
    // host > 10007: (0, 10007) == (1, 0).
    sc.seedMode = FleetScenario::SeedMode::Legacy;
    EXPECT_EQ(sc.hostDaySeed(0, 10007), sc.hostDaySeed(1, 0));

    sc.seedMode = FleetScenario::SeedMode::Mix;
    std::set<uint64_t> seen;
    for (unsigned day = 0; day < sc.days; ++day) {
        for (unsigned h = 0; h < sc.hosts; h += 3)
            seen.insert(sc.hostDaySeed(day, h));
    }
    EXPECT_EQ(seen.size(),
              static_cast<size_t>(sc.days) * (sc.hosts / 3));
}

TEST(FleetScenario, ShareAssignmentTracksMixProportions)
{
    const FleetScenario sc = FleetScenario::parse(
        "hosts=20000 days=4 devices=A:50,H:50 "
        "workloads=mixed:75,bursty:25");
    unsigned dev_a = 0, wl_mixed = 0;
    for (unsigned h = 0; h < sc.hosts; ++h) {
        // Derivations are pure functions of (seed, host).
        ASSERT_EQ(sc.deviceIndexFor(h), sc.deviceIndexFor(h));
        dev_a += sc.deviceIndexFor(h) == 0 ? 1 : 0;
        wl_mixed +=
            sc.workloadFor(h) == WorkloadKind::Mixed ? 1 : 0;
    }
    // Binomial(20000, .5) is within 3% of its mean with huge
    // margin; same for .75.
    EXPECT_NEAR(static_cast<double>(dev_a) / sc.hosts, 0.50, 0.03);
    EXPECT_NEAR(static_cast<double>(wl_mixed) / sc.hosts, 0.75,
                0.03);
}

TEST(FleetScenario, StagedMigrationCoversStagesInHostOrder)
{
    const FleetScenario sc = FleetScenario::parse(
        "hosts=100 days=20 migration=2..6:30,10..18:70");
    // First 30 hosts ride stage 1, remaining 70 stage 2; within a
    // stage days are staggered and non-decreasing in host index.
    for (unsigned h = 0; h < 30; ++h) {
        EXPECT_GE(sc.migrationDay(h), 2u);
        EXPECT_LT(sc.migrationDay(h), 6u);
    }
    for (unsigned h = 30; h < 100; ++h) {
        EXPECT_GE(sc.migrationDay(h), 10u);
        EXPECT_LT(sc.migrationDay(h), 18u);
    }
    for (unsigned h = 1; h < 30; ++h)
        EXPECT_GE(sc.migrationDay(h), sc.migrationDay(h - 1));
}

TEST(FleetScenario, PartialMigrationLeavesRestOnIoLatency)
{
    const FleetScenario sc = FleetScenario::parse(
        "hosts=10 days=8 migration=1..4:50");
    unsigned never = 0;
    for (unsigned h = 0; h < sc.hosts; ++h)
        never += sc.migrationDay(h) >= sc.days ? 1 : 0;
    EXPECT_EQ(never, 5u);
}

} // namespace
