/**
 * @file
 * Deterministic-merge fuzz: randomized partitions of the same
 * observations across randomized shard counts and merge orders must
 * reproduce the reference Histogram / TimeSeries bit-for-bit. This
 * is the property the sharded fleet engine's byte-identical
 * aggregates rest on, checked directly at the stat layer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "stat/histogram.hh"
#include "stat/time_series.hh"

namespace {

using iocost::stat::Histogram;
using iocost::stat::SeriesPoint;
using iocost::stat::TimeSeries;

/** Compare every observable statistic bit-exactly (doubles with ==:
 *  all of them derive from integer state, so equality is exact). */
void
expectHistogramsIdentical(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.minValue(), b.minValue());
    EXPECT_EQ(a.maxValue(), b.maxValue());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.stddev(), b.stddev());
    for (double q :
         {0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0})
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
}

TEST(FleetMergeFuzz, HistogramPartitionAndOrderInvariant)
{
    std::mt19937_64 rng(0xF1EE7u);
    for (unsigned trial = 0; trial < 40; ++trial) {
        const unsigned values = 1 + rng() % 2000;
        const unsigned shards = 1 + rng() % 17;

        Histogram reference;
        std::vector<Histogram> parts(shards, Histogram());
        for (unsigned i = 0; i < values; ++i) {
            // Magnitudes span sub-microsecond to ~18 minutes in ns,
            // i.e. every octave the latency histograms see.
            const auto v = static_cast<int64_t>(
                rng() % (1ull << (1 + rng() % 40)));
            reference.record(v);
            parts[rng() % shards].record(v);
        }

        // Merge the shards in a random order into an empty
        // accumulator (the engine's fold) ...
        std::vector<unsigned> order(shards);
        std::iota(order.begin(), order.end(), 0u);
        std::shuffle(order.begin(), order.end(), rng);
        Histogram folded;
        for (unsigned s : order)
            folded.merge(parts[s]);
        expectHistogramsIdentical(folded, reference);

        // ... and in deterministic binary-tree order (the engine's
        // cross-shard reduction). Same bits either way.
        std::vector<Histogram> tree = parts;
        for (unsigned stride = 1; stride < shards; stride *= 2) {
            for (unsigned s = 0; s + stride < shards;
                 s += 2 * stride)
                tree[s].merge(tree[s + stride]);
        }
        expectHistogramsIdentical(tree[0], reference);
    }
}

TEST(FleetMergeFuzz, HistogramTwoPartitionsAgree)
{
    // Two *different* random partitions of the same multiset must
    // land on identical merged state: partition independence, not
    // just order independence.
    std::mt19937_64 rng(0xBADC0FFEu);
    for (unsigned trial = 0; trial < 20; ++trial) {
        std::vector<int64_t> values(500 + rng() % 1500);
        for (auto &v : values)
            v = static_cast<int64_t>(rng() % (1ull << 38));

        auto partitionMerge = [&](unsigned shards,
                                  uint64_t salt) {
            std::mt19937_64 part_rng(salt);
            std::vector<Histogram> parts(shards, Histogram());
            for (int64_t v : values)
                parts[part_rng() % shards].record(v);
            Histogram out;
            for (const auto &p : parts)
                out.merge(p);
            return out;
        };
        expectHistogramsIdentical(partitionMerge(3, 11),
                                  partitionMerge(13, 77));
    }
}

TEST(FleetMergeFuzz, HistogramMixedSubBucketResolutionMoments)
{
    // Shards built at different resolutions cannot share buckets,
    // but the integer moments still merge exactly.
    Histogram coarse(3), fine(7), merged(3);
    std::mt19937_64 rng(42);
    int64_t total = 0;
    for (unsigned i = 0; i < 300; ++i) {
        const auto v =
            static_cast<int64_t>(rng() % (1ull << 30));
        (i % 2 ? coarse : fine).record(v);
        total += v;
    }
    merged.merge(coarse);
    merged.merge(fine);
    EXPECT_EQ(merged.count(), 300u);
    EXPECT_EQ(merged.total(), total);
    EXPECT_EQ(merged.minValue(),
              std::min(coarse.minValue(), fine.minValue()));
    EXPECT_EQ(merged.maxValue(),
              std::max(coarse.maxValue(), fine.maxValue()));
}

TEST(FleetMergeFuzz, TimeSeriesShardSumsAreExact)
{
    std::mt19937_64 rng(0x5E1E5u);
    std::vector<SeriesPoint> scratch;
    for (unsigned trial = 0; trial < 30; ++trial) {
        const unsigned days = 1 + rng() % 64;
        const unsigned shards = 1 + rng() % 17;

        // Integer per-day counts, split randomly across shards that
        // each emit one point per day (zeros included) — exactly
        // the shape ShardAccumulator::finalizeSeries() produces.
        std::vector<uint64_t> per_day(days);
        std::vector<TimeSeries> parts(shards);
        for (unsigned d = 0; d < days; ++d) {
            std::vector<uint64_t> split(shards, 0);
            per_day[d] = rng() % 5000;
            for (uint64_t i = 0; i < per_day[d]; ++i)
                ++split[rng() % shards];
            for (unsigned s = 0; s < shards; ++s)
                parts[s].record(d,
                                static_cast<double>(split[s]));
        }

        std::vector<unsigned> order(shards);
        std::iota(order.begin(), order.end(), 0u);
        std::shuffle(order.begin(), order.end(), rng);
        TimeSeries merged;
        for (unsigned s : order)
            merged.mergeSum(parts[s], scratch);

        ASSERT_EQ(merged.size(), days);
        for (unsigned d = 0; d < days; ++d) {
            EXPECT_EQ(merged.points()[d].when, d);
            EXPECT_EQ(merged.points()[d].value,
                      static_cast<double>(per_day[d]));
        }
    }
}

TEST(FleetMergeFuzz, TimeSeriesInterleavesDisjointTimestamps)
{
    // Shards covering disjoint day ranges interleave in time order
    // with values untouched (host-partitioned shards where only
    // some shards saw a given event kind).
    TimeSeries evens, odds;
    for (unsigned d = 0; d < 10; d += 2)
        evens.record(d, static_cast<double>(d * 100));
    for (unsigned d = 1; d < 10; d += 2)
        odds.record(d, static_cast<double>(d * 100));

    std::vector<SeriesPoint> scratch;
    TimeSeries merged;
    merged.mergeSum(odds, scratch);
    merged.mergeSum(evens, scratch);
    ASSERT_EQ(merged.size(), 10u);
    for (unsigned d = 0; d < 10; ++d) {
        EXPECT_EQ(merged.points()[d].when, d);
        EXPECT_EQ(merged.points()[d].value,
                  static_cast<double>(d * 100));
    }

    // Merging an empty series is a no-op.
    merged.mergeSum(TimeSeries(), scratch);
    EXPECT_EQ(merged.size(), 10u);
}

} // namespace
