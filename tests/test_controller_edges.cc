/**
 * @file
 * Edge-case coverage for the baseline controllers and a global
 * conservation property for IOCost's vtime accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/bfq.hh"
#include "controllers/mq_deadline.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

TEST(MqDeadlineEdge, ExpiredWritesJumpTheReadStream)
{
    // Saturate with reads; a single write must still complete within
    // its (shortened) expiry rather than starving forever.
    sim::Simulator sim(161);
    device::SsdSpec spec = device::oldGenSsd();
    spec.queueDepth = 2; // force queueing in the scheduler
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    controllers::MqDeadlineConfig cfg;
    cfg.writeExpire = 50 * sim::kMsec;
    cfg.fifoBatch = 1u << 30; // never yield voluntarily
    layer.setController(
        std::make_unique<controllers::MqDeadline>(cfg));

    workload::FioConfig reads;
    reads.iodepth = 64;
    workload::FioWorkload read_job(sim, layer, cgroup::kRoot,
                                   reads);
    read_job.start();
    sim.runUntil(100 * sim::kMsec);

    bool write_done = false;
    layer.submit(blk::Bio::make(
        blk::Op::Write, 1ull << 30, 4096, cgroup::kRoot,
        [&](const blk::Bio &) { write_done = true; }));
    sim.runUntil(300 * sim::kMsec);
    EXPECT_TRUE(write_done)
        << "write expiry must preempt the read preference";
}

TEST(BfqEdge, InjectionKeepsDeviceBusyAcrossThinkTime)
{
    // One think-time guest holds the service turn; a saturating
    // neighbour must still make progress through injection.
    sim::Simulator sim(162);
    device::SsdModel device(sim, device::oldGenSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    controllers::BfqConfig cfg;
    cfg.idleWait = 5 * sim::kMsec; // generous idling
    layer.setController(std::make_unique<controllers::Bfq>(cfg));

    const auto thinker = tree.create(cgroup::kRoot, "thinker");
    const auto busy = tree.create(cgroup::kRoot, "busy");
    workload::FioConfig tc;
    tc.arrival = workload::Arrival::ThinkTime;
    tc.thinkTime = 1 * sim::kMsec;
    tc.iodepth = 1;
    workload::FioWorkload think_job(sim, layer, thinker, tc);
    workload::FioConfig bc;
    bc.iodepth = 8;
    workload::FioWorkload busy_job(sim, layer, busy, bc);
    think_job.start();
    busy_job.start();
    sim.runUntil(5 * sim::kSec);
    // Without injection the busy job would be limited to budget
    // scraps between 5ms idle waits (~hundreds of IOPS).
    EXPECT_GT(busy_job.iops(), 5000);
    EXPECT_GT(think_job.iops(), 400);
}

TEST(IoCostEdge, ChargedUsageNeverExceedsGrantedBudget)
{
    // Conservation: with vrate pinned at 1.0, the total absolute
    // cost charged across cgroups cannot exceed wall time plus the
    // activation grants (0.25 periods each).
    sim::Simulator sim(163);
    device::SsdModel device(sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    core::LinearModelConfig m;
    m.rbps = 4e9;
    m.rseqiops = 20000;
    m.rrandiops = 10000;
    m.wbps = 4e9;
    m.wseqiops = 20000;
    m.wrandiops = 10000;
    core::IoCostConfig cfg;
    cfg.model = core::CostModel::fromConfig(m);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.period = 10 * sim::kMsec;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    auto ctl_owned = std::make_unique<core::IoCost>(cfg);
    core::IoCost *ctl = ctl_owned.get();
    layer.setController(std::move(ctl_owned));

    std::vector<cgroup::CgroupId> cgs;
    std::vector<std::unique_ptr<workload::FioWorkload>> jobs;
    for (int i = 0; i < 5; ++i) {
        cgs.push_back(tree.create(cgroup::kRoot,
                                  "c" + std::to_string(i),
                                  50 + 50 * i));
        workload::FioConfig jc;
        jc.iodepth = 24;
        jobs.push_back(std::make_unique<workload::FioWorkload>(
            sim, layer, cgs.back(), jc));
        jobs.back()->start();
    }
    const double seconds = 10.0;
    sim.runUntil(static_cast<sim::Time>(seconds * sim::kSec));

    double total_usage_us = 0;
    for (auto cg : cgs)
        total_usage_us += static_cast<double>(ctl->stat(cg).usageUs);
    const double granted_us =
        seconds * 1e6 +
        cgs.size() * 0.25 * sim::toMicros(ctl->period());
    EXPECT_LE(total_usage_us, granted_us * 1.02);
    // And the device was actually driven near the model rate.
    EXPECT_GE(total_usage_us, granted_us * 0.9);
}

TEST(IoCostEdge, ManyCgroupsChurningActivation)
{
    // 64 cgroups alternating activity; hweight caching and
    // active-set maintenance must stay consistent (no crashes, all
    // IO completes, IOPS near the model rate).
    sim::Simulator sim(164);
    device::SsdModel device(sim, device::enterpriseSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    core::LinearModelConfig m;
    m.rbps = 4e9;
    m.rseqiops = 50000;
    m.rrandiops = 50000;
    m.wbps = 4e9;
    m.wseqiops = 50000;
    m.wrandiops = 50000;
    core::IoCostConfig cfg;
    cfg.model = core::CostModel::fromConfig(m);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.period = 5 * sim::kMsec;
    layer.setController(std::make_unique<core::IoCost>(cfg));

    sim::Rng rng(9);
    uint64_t completed = 0;
    std::vector<cgroup::CgroupId> cgs;
    for (int i = 0; i < 64; ++i) {
        cgs.push_back(
            tree.create(cgroup::kRoot, "c" + std::to_string(i)));
    }
    // Bursts of 20 IOs from random cgroups every 2ms.
    sim::PeriodicTimer bursts(sim, 2 * sim::kMsec, [&] {
        const auto cg = cgs[rng.below(cgs.size())];
        for (int k = 0; k < 20; ++k) {
            layer.submit(blk::Bio::make(
                blk::Op::Read, rng.below(1 << 24) * 4096, 4096,
                cg, [&](const blk::Bio &) { ++completed; }));
        }
    });
    bursts.start();
    sim.runUntil(5 * sim::kSec);
    bursts.stop();
    sim.runUntil(8 * sim::kSec);
    // 2500 bursts x 20 IOs, demand 10k/s < model 50k: all done.
    EXPECT_EQ(completed, 2500u * 20u);
}

} // namespace
