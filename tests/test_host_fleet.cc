/**
 * @file
 * Tests for the Host assembly helper and the fleet Monte-Carlo:
 * hierarchy shape, controller installation, migration stagger, and
 * host-day determinism + directional outcomes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "host/host.hh"

namespace {

using namespace iocost;

TEST(Host, BuildsMetaHierarchy)
{
    sim::Simulator sim(71);
    host::HostOptions opts;
    opts.controller = "none";
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(
                        sim, device::newGenSsd()),
                    opts);
    auto &tree = host.tree();
    EXPECT_EQ(tree.path(host.system()), "/system.slice");
    EXPECT_EQ(tree.path(host.hostCritical()),
              "/hostcritical.slice");
    EXPECT_EQ(tree.path(host.workload()), "/workload.slice");
    EXPECT_EQ(tree.weight(host.workload()), 500u);
    EXPECT_EQ(tree.weight(host.hostCritical()), 100u);
    EXPECT_EQ(tree.weight(host.system()), 50u);

    const auto web = host.addWorkload("web", 123);
    EXPECT_EQ(tree.path(web), "/workload.slice/web");
    EXPECT_EQ(tree.weight(web), 123u);
    const auto svc = host.addSystemService("chef");
    EXPECT_EQ(tree.path(svc), "/system.slice/chef");
}

TEST(Host, InstallsRequestedController)
{
    sim::Simulator sim(72);
    for (const std::string name : {"none", "bfq", "iocost"}) {
        host::HostOptions opts;
        opts.controller = name;
        host::Host host(sim,
                        std::make_unique<device::SsdModel>(
                            sim, device::newGenSsd()),
                        opts);
        ASSERT_NE(host.layer().controller(), nullptr);
        EXPECT_EQ(host.layer().controller()->caps().name, name);
        EXPECT_EQ(host.iocost() != nullptr, name == "iocost");
    }
}

TEST(Host, MemoryManagerOptional)
{
    sim::Simulator sim(73);
    host::HostOptions opts;
    opts.controller = "none";
    host::Host no_mm(sim,
                     std::make_unique<device::SsdModel>(
                         sim, device::newGenSsd()),
                     opts);
    EXPECT_FALSE(no_mm.hasMemory());

    opts.enableMemory = true;
    host::Host with_mm(sim,
                       std::make_unique<device::SsdModel>(
                           sim, device::newGenSsd()),
                       opts);
    EXPECT_TRUE(with_mm.hasMemory());
    EXPECT_EQ(with_mm.mm().totalResident(), 0u);
}

TEST(FleetSim, MigrationDayStaggersAcrossWindow)
{
    fleet::FleetConfig cfg;
    cfg.hosts = 10;
    cfg.migrationStartDay = 4;
    cfg.migrationEndDay = 14;
    EXPECT_EQ(fleet::FleetSim::migrationDay(0, cfg), 4u);
    EXPECT_EQ(fleet::FleetSim::migrationDay(9, cfg), 13u);
    for (unsigned h = 1; h < 10; ++h) {
        EXPECT_GE(fleet::FleetSim::migrationDay(h, cfg),
                  fleet::FleetSim::migrationDay(h - 1, cfg));
    }
}

TEST(FleetSim, HostDayIsDeterministic)
{
    fleet::FleetConfig cfg;
    const auto a =
        fleet::FleetSim::runHostDay("iocost", 0, 999, cfg);
    const auto b =
        fleet::FleetSim::runHostDay("iocost", 0, 999, cfg);
    EXPECT_EQ(a.fetchTime, b.fetchTime);
    EXPECT_EQ(a.cleanupTime, b.cleanupTime);
}

TEST(FleetSim, IoCostProtectsAgentsBetterThanIoLatency)
{
    // Aggregate over a handful of host-days: iocost's cleanup times
    // must be far better; fetch times must meet the deadline.
    fleet::FleetConfig cfg;
    double iolat_cleanup = 0, iocost_cleanup = 0;
    int iocost_fetch_fail = 0;
    const int n = 6;
    for (int i = 0; i < n; ++i) {
        const auto a = fleet::FleetSim::runHostDay(
            "iolatency", i % 2, 13 + i * 71, cfg);
        const auto b = fleet::FleetSim::runHostDay(
            "iocost", i % 2, 13 + i * 71, cfg);
        iolat_cleanup += a.cleanupTime == sim::kTimeNever
                             ? sim::toSeconds(cfg.slice)
                             : sim::toSeconds(a.cleanupTime);
        iocost_cleanup += sim::toSeconds(b.cleanupTime);
        iocost_fetch_fail += b.fetchFailed ? 1 : 0;
    }
    EXPECT_LT(iocost_cleanup * 3, iolat_cleanup);
    EXPECT_EQ(iocost_fetch_fail, 0);
}

} // namespace
