/**
 * @file
 * Tests for the budget-donation weight-tree update (paper §3.6,
 * Eqs. 4-5): hand-checked small cases plus randomized property
 * tests of the two invariants the algorithm is built on:
 *
 *  P1. every donor leaf's post-donation hweightInuse equals its
 *      target;
 *  P2. every non-donating active leaf's hweightInuse scales by
 *      exactly (1 - d'_root) / (1 - d_root) — i.e. the freed share
 *      is redistributed proportionally to original hweights (the
 *      property the paper's Fig. 8 example demonstrates with its
 *      0.07 / 0.02 / 0.16 split);
 *  P3. active leaf hweights still sum to 1.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cgroup/cgroup_tree.hh"
#include "core/donation.hh"
#include "sim/rng.hh"

namespace {

using namespace iocost::cgroup;
using namespace iocost::core;

TEST(Donation, TwoLeavesSimple)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 200);
    t.setActive(a, true);
    t.setActive(b, true);
    // B (hweight 2/3) donates down to 1/3.
    applyDonation(t, {{b, 1.0 / 3.0}});
    EXPECT_NEAR(t.hweightInuse(b), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(t.hweightInuse(a), 2.0 / 3.0, 1e-9);
    // Configured weights untouched.
    EXPECT_EQ(t.weight(b), 200u);
}

TEST(Donation, NestedDonorPath)
{
    // root -> P(1), C(1); P -> A(1), B(1). B donates 1/4 -> 1/8.
    // Hand-derived: w'_P = 5/7, w'_B = 3/7 (see donation.cc math).
    CgroupTree t;
    const CgroupId p = t.create(kRoot, "p", 100);
    const CgroupId c = t.create(kRoot, "c", 100);
    const CgroupId a = t.create(p, "a", 100);
    const CgroupId b = t.create(p, "b", 100);
    t.setActive(a, true);
    t.setActive(b, true);
    t.setActive(c, true);
    applyDonation(t, {{b, 1.0 / 8.0}});

    EXPECT_NEAR(t.hweightInuse(b), 1.0 / 8.0, 1e-9);
    // Freed 1/8 splits between A (1/4) and C (1/2) in 1:2 ratio:
    // scale factor (1 - 1/8) / (1 - 1/4) = 7/6.
    EXPECT_NEAR(t.hweightInuse(a), (1.0 / 4.0) * 7.0 / 6.0, 1e-9);
    EXPECT_NEAR(t.hweightInuse(c), (1.0 / 2.0) * 7.0 / 6.0, 1e-9);
    // Lowered weights match the hand derivation.
    EXPECT_NEAR(t.inuse(p), 100.0 * 5.0 / 7.0, 1e-6);
    EXPECT_NEAR(t.inuse(b), 100.0 * 3.0 / 7.0, 1e-6);
    // Non-donor-path weights untouched.
    EXPECT_NEAR(t.inuse(a), 100.0, 1e-9);
    EXPECT_NEAR(t.inuse(c), 100.0, 1e-9);
}

TEST(Donation, MultipleDonorsAcrossSubtrees)
{
    // Mirrors the Fig. 8 structure: two donors in different
    // subtrees, three non-donating receivers.
    CgroupTree t;
    const CgroupId l = t.create(kRoot, "L", 100);
    const CgroupId r = t.create(kRoot, "R", 100);
    const CgroupId b = t.create(l, "B", 100);  // donor
    const CgroupId e = t.create(l, "E", 100);
    const CgroupId h = t.create(r, "H", 100);  // donor
    const CgroupId g = t.create(r, "G", 100);
    for (CgroupId cg : {b, e, h, g})
        t.setActive(cg, true);

    // Each leaf starts at 1/4; B and H donate to 1/8 apiece.
    applyDonation(t, {{b, 1.0 / 8.0}, {h, 1.0 / 8.0}});
    EXPECT_NEAR(t.hweightInuse(b), 1.0 / 8.0, 1e-9);
    EXPECT_NEAR(t.hweightInuse(h), 1.0 / 8.0, 1e-9);
    // Freed 1/4 splits evenly between E and G (equal hweights).
    EXPECT_NEAR(t.hweightInuse(e), 3.0 / 8.0, 1e-9);
    EXPECT_NEAR(t.hweightInuse(g), 3.0 / 8.0, 1e-9);
}

TEST(Donation, IgnoredWhenTargetNotBelowCurrent)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    t.setActive(b, true);
    const size_t applied = applyDonation(t, {{b, 0.9}});
    EXPECT_EQ(applied, 0u);
    EXPECT_NEAR(t.hweightInuse(b), 0.5, 1e-9);
}

TEST(Donation, EmptyDonorSetResetsPriorDonations)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    t.setActive(b, true);
    applyDonation(t, {{b, 0.1}});
    EXPECT_NEAR(t.hweightInuse(b), 0.1, 1e-9);
    applyDonation(t, {});
    EXPECT_NEAR(t.hweightInuse(b), 0.5, 1e-9);
    EXPECT_NEAR(t.inuse(b), 100.0, 1e-9);
}

TEST(Donation, InactiveDonorIgnored)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    const size_t applied = applyDonation(t, {{b, 0.05}});
    EXPECT_EQ(applied, 0u);
    EXPECT_NEAR(t.hweightInuse(a), 1.0, 1e-9);
}

TEST(Donation, AllLeavesDonate)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    t.setActive(b, true);
    applyDonation(t, {{a, 0.25}, {b, 0.25}});
    // With everyone donating, the shares renormalize to the targets'
    // ratio (1:1).
    EXPECT_NEAR(t.hweightInuse(a), t.hweightInuse(b), 1e-9);
}

/**
 * Randomized property test: build a random 3-level hierarchy,
 * activate a random subset of leaves, pick random donors with
 * random targets, and check P1-P3.
 */
class DonationProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DonationProperty, InvariantsHold)
{
    iocost::sim::Rng rng(GetParam());
    CgroupTree t;

    std::vector<CgroupId> leaves;
    const int n_groups = 2 + static_cast<int>(rng.below(4));
    for (int g = 0; g < n_groups; ++g) {
        const CgroupId mid = t.create(
            kRoot, "g" + std::to_string(g),
            50 + static_cast<uint32_t>(rng.below(200)));
        const int n_leaves = 1 + static_cast<int>(rng.below(4));
        for (int l = 0; l < n_leaves; ++l) {
            leaves.push_back(t.create(
                mid, "l" + std::to_string(l),
                10 + static_cast<uint32_t>(rng.below(400))));
        }
    }

    std::vector<CgroupId> active;
    for (CgroupId leaf : leaves) {
        if (rng.chance(0.8)) {
            t.setActive(leaf, true);
            active.push_back(leaf);
        }
    }
    if (active.size() < 2)
        return; // degenerate; nothing to check

    // Snapshot pre-donation hweights.
    std::vector<double> before(t.size(), 0.0);
    for (CgroupId leaf : active)
        before[leaf] = t.hweightActive(leaf);

    // Random donors (at most all but one leaf).
    std::vector<DonorTarget> donors;
    double d_root = 0.0, dp_root = 0.0;
    for (size_t i = 0; i + 1 < active.size(); ++i) {
        if (!rng.chance(0.5))
            continue;
        const CgroupId leaf = active[i];
        const double target =
            before[leaf] * rng.uniform(0.05, 0.85);
        donors.push_back({leaf, target});
        d_root += before[leaf];
        dp_root += target;
    }
    if (donors.empty())
        return;

    applyDonation(t, donors);

    // P1: donors land exactly on target.
    for (const auto &don : donors) {
        EXPECT_NEAR(t.hweightInuse(don.leaf), don.targetHweight,
                    1e-9);
    }

    // P2: non-donors scale by (1 - d') / (1 - d).
    const double scale = (1.0 - dp_root) / (1.0 - d_root);
    for (CgroupId leaf : active) {
        bool is_donor = false;
        for (const auto &don : donors)
            is_donor |= don.leaf == leaf;
        if (!is_donor) {
            EXPECT_NEAR(t.hweightInuse(leaf),
                        before[leaf] * scale, 1e-9)
                << "leaf " << t.path(leaf);
        }
    }

    // P3: active-leaf hweights still partition the device.
    double sum = 0.0;
    for (CgroupId leaf : active)
        sum += t.hweightInuse(leaf);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DonationProperty,
                         ::testing::Range<uint64_t>(1, 33));

} // namespace
