/**
 * @file
 * Unit tests for the log-linear histogram, including the relative-
 * error bound property that makes it usable for latency percentiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hh"
#include "stat/histogram.hh"

namespace {

using iocost::stat::Histogram;

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.maxValue(), 0);
}

TEST(Histogram, SmallValuesExact)
{
    Histogram h;
    for (int v = 0; v <= 20; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 21u);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.maxValue(), 20);
    EXPECT_EQ(h.quantile(0.0), 0);
    // Small values land in exact unit buckets.
    EXPECT_EQ(h.quantile(0.5), 10);
    EXPECT_EQ(h.quantile(1.0), 20);
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.record(123456);
    EXPECT_EQ(h.count(), 1u);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        const double rel =
            std::abs(static_cast<double>(h.quantile(q)) - 123456.0) /
            123456.0;
        EXPECT_LE(rel, 1.0 / 32.0) << "q=" << q;
    }
}

TEST(Histogram, MeanAndStddev)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_NEAR(h.stddev(), 8.1649658, 1e-5);
}

TEST(Histogram, NegativeClampsToZero)
{
    Histogram h;
    h.record(-50);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.minValue(), 0);
}

TEST(Histogram, QuantileNeverExceedsMax)
{
    Histogram h;
    h.record(1000000007);
    h.record(3);
    EXPECT_LE(h.quantile(1.0), 1000000007);
}

TEST(Histogram, BulkRecordMatchesRepeated)
{
    Histogram a, b;
    a.record(777, 1000);
    for (int i = 0; i < 1000; ++i)
        b.record(777);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
    EXPECT_EQ(a.total(), b.total());
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(42, 100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0);
    h.record(7);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a, b;
    a.record(100, 50);
    b.record(10000, 50);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    // Median sits between the two populations.
    EXPECT_GE(a.quantile(0.75), 9000);
    EXPECT_LE(a.quantile(0.25), 110);
}

/**
 * Property: for any population, every quantile estimate is within
 * the structural relative error bound (one sub-bucket width).
 */
class HistogramErrorBound : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(HistogramErrorBound, QuantilesWithinRelativeError)
{
    iocost::sim::Rng rng(GetParam());
    Histogram h;
    std::vector<int64_t> values;
    const int n = 5000;
    values.reserve(n);
    for (int i = 0; i < n; ++i) {
        // Latency-like values spanning several decades.
        const auto v = static_cast<int64_t>(
            rng.logNormal(100e3, 1.5));
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999}) {
        const auto rank = static_cast<size_t>(
            std::min<double>(n - 1, std::ceil(q * n)));
        const double exact =
            static_cast<double>(values[rank > 0 ? rank - 1 : 0]);
        const double est = static_cast<double>(h.quantile(q));
        if (exact < 64)
            continue; // exact region
        EXPECT_NEAR(est, exact, exact * (2.0 / 32.0) + 1)
            << "q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramErrorBound,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
