/**
 * @file
 * Unit tests for the log-linear histogram, including the relative-
 * error bound property that makes it usable for latency percentiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hh"
#include "stat/histogram.hh"

namespace {

using iocost::stat::Histogram;

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.maxValue(), 0);
}

TEST(Histogram, SmallValuesExact)
{
    Histogram h;
    for (int v = 0; v <= 20; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 21u);
    EXPECT_EQ(h.minValue(), 0);
    EXPECT_EQ(h.maxValue(), 20);
    EXPECT_EQ(h.quantile(0.0), 0);
    // Small values land in exact unit buckets.
    EXPECT_EQ(h.quantile(0.5), 10);
    EXPECT_EQ(h.quantile(1.0), 20);
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.record(123456);
    EXPECT_EQ(h.count(), 1u);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        const double rel =
            std::abs(static_cast<double>(h.quantile(q)) - 123456.0) /
            123456.0;
        EXPECT_LE(rel, 1.0 / 32.0) << "q=" << q;
    }
}

TEST(Histogram, MeanAndStddev)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_NEAR(h.stddev(), 8.1649658, 1e-5);
}

TEST(Histogram, NegativeClampsToZero)
{
    Histogram h;
    h.record(-50);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.minValue(), 0);
}

TEST(Histogram, QuantileNeverExceedsMax)
{
    Histogram h;
    h.record(1000000007);
    h.record(3);
    EXPECT_LE(h.quantile(1.0), 1000000007);
}

TEST(Histogram, BulkRecordMatchesRepeated)
{
    Histogram a, b;
    a.record(777, 1000);
    for (int i = 0; i < 1000; ++i)
        b.record(777);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
    EXPECT_EQ(a.total(), b.total());
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(42, 100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0);
    h.record(7);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a, b;
    a.record(100, 50);
    b.record(10000, 50);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    // Median sits between the two populations.
    EXPECT_GE(a.quantile(0.75), 9000);
    EXPECT_LE(a.quantile(0.25), 110);
}

TEST(Histogram, MergeResolutionMismatchPreservesExactMoments)
{
    // Split one population across histograms of different
    // resolutions, merge both into a third, and compare against
    // recording everything directly: counts and moments must be
    // exact (they are carried as running sums, not recomputed from
    // re-bucketed counts — re-bucketing through coarse bucket edges
    // would inflate total and sumSquares).
    iocost::sim::Rng rng(42);
    Histogram direct(5);
    Histogram coarse(3);
    Histogram fine(7);
    for (int i = 0; i < 4000; ++i) {
        const auto v =
            static_cast<int64_t>(rng.logNormal(250e3, 1.8));
        direct.record(v);
        (i % 2 ? coarse : fine).record(v);
    }

    Histogram merged(5);
    merged.merge(coarse);
    merged.merge(fine);

    EXPECT_EQ(merged.count(), direct.count());
    EXPECT_EQ(merged.total(), direct.total());
    EXPECT_DOUBLE_EQ(merged.mean(), direct.mean());
    // sumSquares accumulates in a different order; allow only
    // floating-point reassociation noise, no systematic inflation.
    EXPECT_NEAR(merged.stddev(), direct.stddev(),
                1e-9 * direct.stddev());
    EXPECT_EQ(merged.minValue(), direct.minValue());
    EXPECT_EQ(merged.maxValue(), direct.maxValue());

    // Quantiles go through re-bucketing and are approximate, but
    // must stay within the coarsest participant's error bound.
    for (double q : {0.5, 0.9, 0.99}) {
        const double exact =
            static_cast<double>(direct.quantile(q));
        const double est =
            static_cast<double>(merged.quantile(q));
        EXPECT_NEAR(est, exact, exact * 0.30 + 1) << "q=" << q;
    }
}

TEST(Histogram, MergeAcrossResolutionsBothDirections)
{
    Histogram source(6);
    for (int i = 1; i <= 1000; ++i)
        source.record(i * 997);

    for (unsigned bits : {3u, 5u, 7u}) {
        Histogram dst(bits);
        dst.merge(source);
        EXPECT_EQ(dst.count(), source.count()) << bits;
        EXPECT_EQ(dst.total(), source.total()) << bits;
        EXPECT_DOUBLE_EQ(dst.mean(), source.mean()) << bits;
        EXPECT_NEAR(dst.stddev(), source.stddev(),
                    1e-9 * source.stddev())
            << bits;
        EXPECT_EQ(dst.minValue(), source.minValue()) << bits;
        EXPECT_EQ(dst.maxValue(), source.maxValue()) << bits;
    }
}

TEST(Histogram, MergeEmptyIsNoOp)
{
    Histogram a(5);
    a.record(123, 7);
    const uint64_t count = a.count();
    const int64_t total = a.total();
    Histogram empty(3);
    a.merge(empty);
    EXPECT_EQ(a.count(), count);
    EXPECT_EQ(a.total(), total);

    // And merging into an empty histogram adopts min/max.
    Histogram b(3);
    b.merge(a);
    EXPECT_EQ(b.minValue(), a.minValue());
    EXPECT_EQ(b.maxValue(), a.maxValue());
    EXPECT_EQ(b.count(), a.count());
}

/**
 * Property: for any population, every quantile estimate is within
 * the structural relative error bound (one sub-bucket width).
 */
class HistogramErrorBound : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(HistogramErrorBound, QuantilesWithinRelativeError)
{
    iocost::sim::Rng rng(GetParam());
    Histogram h;
    std::vector<int64_t> values;
    const int n = 5000;
    values.reserve(n);
    for (int i = 0; i < n; ++i) {
        // Latency-like values spanning several decades.
        const auto v = static_cast<int64_t>(
            rng.logNormal(100e3, 1.5));
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999}) {
        const auto rank = static_cast<size_t>(
            std::min<double>(n - 1, std::ceil(q * n)));
        const double exact =
            static_cast<double>(values[rank > 0 ? rank - 1 : 0]);
        const double est = static_cast<double>(h.quantile(q));
        if (exact < 64)
            continue; // exact region
        EXPECT_NEAR(est, exact, exact * (2.0 / 32.0) + 1)
            << "q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramErrorBound,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
