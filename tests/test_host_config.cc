/**
 * @file
 * Tests for the cgroupfs-style host configuration applier.
 */

#include <gtest/gtest.h>

#include <memory>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/config.hh"
#include "host/host.hh"

namespace {

using namespace iocost;

std::unique_ptr<host::Host>
makeHost(sim::Simulator &sim, bool memory = false)
{
    host::HostOptions opts;
    opts.controller = "none";
    opts.enableMemory = memory;
    return std::make_unique<host::Host>(
        sim,
        std::make_unique<device::SsdModel>(sim,
                                           device::newGenSsd()),
        opts);
}

TEST(HostConfig, ParseSize)
{
    EXPECT_EQ(host::parseSize("100"), 100u);
    EXPECT_EQ(host::parseSize("2K"), 2048u);
    EXPECT_EQ(host::parseSize("3M"), 3ull << 20);
    EXPECT_EQ(host::parseSize("2G"), 2ull << 30);
    EXPECT_EQ(host::parseSize("1.5G"),
              static_cast<uint64_t>(1.5 * (1ull << 30)));
    EXPECT_FALSE(host::parseSize("abc").has_value());
    EXPECT_FALSE(host::parseSize("5X").has_value());
    EXPECT_FALSE(host::parseSize("").has_value());
    EXPECT_FALSE(host::parseSize("2Gb").has_value());
}

TEST(HostConfig, FindAndEnsure)
{
    sim::Simulator sim(141);
    auto hp = makeHost(sim);
    host::Host &h = *hp;
    EXPECT_EQ(host::findCgroup(h.tree(), "workload.slice"),
              h.workload());
    EXPECT_EQ(host::findCgroup(h.tree(), "nope/nothing"),
              cgroup::kNone);
    const auto web =
        host::ensureCgroup(h.tree(), "workload.slice/web");
    EXPECT_EQ(h.tree().path(web), "/workload.slice/web");
    // Idempotent.
    EXPECT_EQ(host::ensureCgroup(h.tree(), "workload.slice/web"),
              web);
}

TEST(HostConfig, AppliesWeightsAndCreatesGroups)
{
    sim::Simulator sim(142);
    auto hp = makeHost(sim);
    host::Host &h = *hp;
    const auto result = host::applyConfig(h, R"(
        # production-style host config
        workload.slice           io.weight=500
        workload.slice/web       io.weight=200
        workload.slice/batch     io.weight=50
        system.slice/chef        io.weight=25
    )");
    ASSERT_TRUE(result) << result.error;
    EXPECT_EQ(result.applied, 4u);
    EXPECT_EQ(h.tree().weight(h.workload()), 500u);
    const auto web =
        host::findCgroup(h.tree(), "workload.slice/web");
    ASSERT_NE(web, cgroup::kNone);
    EXPECT_EQ(h.tree().weight(web), 200u);
    const auto chef =
        host::findCgroup(h.tree(), "system.slice/chef");
    ASSERT_NE(chef, cgroup::kNone);
    EXPECT_EQ(h.tree().weight(chef), 25u);
}

TEST(HostConfig, MemoryLowNeedsMemoryManager)
{
    sim::Simulator sim(143);
    auto no_mm_p = makeHost(sim, false);
    host::Host &no_mm = *no_mm_p;
    const auto bad = host::applyConfig(
        no_mm, "workload.slice/web memory.low=1G");
    EXPECT_FALSE(bad);
    EXPECT_NE(bad.error.find("enableMemory"), std::string::npos);

    auto with_mm_p = makeHost(sim, true);
    host::Host &with_mm = *with_mm_p;
    const auto ok = host::applyConfig(
        with_mm, "workload.slice/web memory.low=1G");
    ASSERT_TRUE(ok) << ok.error;
    const auto web =
        host::findCgroup(with_mm.tree(), "workload.slice/web");
    EXPECT_EQ(with_mm.mm().stats(web).protectedBytes, 1ull << 30);
}

TEST(HostConfig, RejectsMalformedLines)
{
    sim::Simulator sim(144);
    auto hp = makeHost(sim);
    host::Host &h = *hp;
    EXPECT_FALSE(host::applyConfig(h, "a/b io.weight"));
    EXPECT_FALSE(host::applyConfig(h, "a/b io.weight=0"));
    EXPECT_FALSE(host::applyConfig(h, "a/b io.weight=999999"));
    EXPECT_FALSE(host::applyConfig(h, "a/b future.key=1"));
    // Earlier lines stay applied.
    const auto partial = host::applyConfig(
        h, "workload.slice io.weight=400\nx bogus=1");
    EXPECT_FALSE(partial);
    EXPECT_EQ(partial.applied, 1u);
    EXPECT_EQ(h.tree().weight(h.workload()), 400u);
}

TEST(HostConfig, BlankAndCommentLinesIgnored)
{
    sim::Simulator sim(145);
    auto hp = makeHost(sim);
    host::Host &h = *hp;
    const auto result = host::applyConfig(h, R"(

        # just a comment
        workload.slice io.weight=300  # trailing comment
    )");
    ASSERT_TRUE(result) << result.error;
    EXPECT_EQ(result.applied, 1u);
    EXPECT_EQ(h.tree().weight(h.workload()), 300u);
}

} // namespace
