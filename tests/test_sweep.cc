/**
 * @file
 * Multi-config (sweep) execution: common-random-numbers semantics.
 *
 * Covers the single-pass shadow-lane runner (host::SweepRunner /
 * runSweep), the paired-CRN pool (host::runPaired), the fleet sweep
 * (FleetSim::runScenarioSweep), the period=/spec plumbing, scenario
 * sweep= parsing, and the sweep JSON round trip. The invariants:
 *
 *  - a K = 1 top-level sweep is byte-identical to a plain Host;
 *  - per-config results are identical for any config order and any
 *    --jobs/--shards partitioning;
 *  - the shared device/fault stream fires identically in every lane
 *    (same error/failure counts) while controller-induced queueing
 *    stays per-lane (latency differs between configs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_aggregate.hh"
#include "fleet/fleet_scenario.hh"
#include "fleet/fleet_sim.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "sim/fifo_ring.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

// ------------------------------------------------------------------
// Spec grammar extensions.
// ------------------------------------------------------------------

TEST(SweepSpec, PeriodExtensionParses)
{
    const auto spec = controllers::parseControllerSpec(
        "iocost rlat=250 wlat=2000 min=25 max=100 period=50000");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->iocost.qos.period, 50 * sim::kMsec);
    // The qos payload landed too (period did not eat it).
    EXPECT_EQ(spec->iocost.qos.readLatTarget, 250 * sim::kUsec);
    EXPECT_DOUBLE_EQ(spec->iocost.qos.vrateMin, 0.25);

    // period= alone leaves the default qos otherwise untouched.
    const auto bare =
        controllers::parseControllerSpec("iocost period=2000");
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->iocost.qos.period, 2 * sim::kMsec);

    EXPECT_FALSE(controllers::parseControllerSpec("iocost period=x")
                     .has_value());
    EXPECT_FALSE(
        controllers::parseControllerSpec("iocost period=-5")
            .has_value());
}

TEST(SweepSpec, IocostPayloadStripsExtensions)
{
    EXPECT_EQ(controllers::iocostPayload(
                  "iocost min=25 donation=0 debt=production "
                  "period=2000 max=100"),
              "min=25 max=100");
    EXPECT_EQ(controllers::iocostPayload("iocost period=2000"), "");
    EXPECT_EQ(controllers::iocostPayload("iolatency window=5"), "");
}

// ------------------------------------------------------------------
// Shadow-lane sweep: CRN semantics on the host stack.
// ------------------------------------------------------------------

struct LaneCounters
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t errors = 0;
    uint64_t retries = 0;
    uint64_t failures = 0;
    sim::Time p50 = 0;
    sim::Time p99 = 0;

    bool
    operator==(const LaneCounters &o) const
    {
        return reads == o.reads && writes == o.writes &&
               errors == o.errors && retries == o.retries &&
               failures == o.failures && p50 == o.p50 &&
               p99 == o.p99;
    }
};

host::SweepOptions
baseOptions(std::vector<std::string> specs,
            const std::string &faults = "")
{
    host::SweepOptions opts;
    opts.specs = std::move(specs);
    opts.faults = faults;
    opts.makeDevice = [](sim::Simulator &sim) {
        return std::make_unique<device::SsdModel>(
            sim, device::newGenSsd());
    };
    return opts;
}

/** Rate-arrival reader, stopped early so every lane drains. */
void
sweepBody(sim::Simulator &sim, host::SweepRunner &runner)
{
    runner.addWorkload("app", 200);
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::Rate;
    cfg.ratePerSec = 5000;
    workload::FioWorkload job(sim, runner.layer(),
                              runner.workloadCgroups()[0].second,
                              cfg);
    job.start();
    sim.runUntil(600 * sim::kMsec);
    job.stop();
    sim.runUntil(1500 * sim::kMsec);
}

LaneCounters
collectLane(host::SweepRunner &runner, size_t lane)
{
    const auto cg = runner.workloadCgroups()[0].second;
    const blk::CgroupIoStats &st = runner.laneLayer(lane).stats(cg);
    LaneCounters out;
    out.reads = st.reads;
    out.writes = st.writes;
    out.errors = st.errors;
    out.retries = st.retries;
    out.failures = st.failures;
    if (st.totalLatency.count() > 0) {
        out.p50 = st.totalLatency.quantile(0.50);
        out.p99 = st.totalLatency.quantile(0.99);
    }
    return out;
}

std::vector<LaneCounters>
runSpecs(std::vector<std::string> specs, unsigned jobs,
         const std::string &faults = "")
{
    return host::runSweep(
        baseOptions(std::move(specs), faults), 99, jobs, sweepBody,
        [](host::SweepRunner &runner, size_t lane, size_t) {
            return collectLane(runner, lane);
        });
}

const char *kSpecA = "iocost min=100 max=100";
const char *kSpecB = "iocost min=5 max=5";
const char *kSpecC = "iolatency";

TEST(SweepRunner, K1TopLevelDelegatesToPlainHost)
{
    // The degenerate sweep must be the plain stack, byte for byte.
    sim::Simulator plain_sim(99);
    host::HostOptions ho;
    ho.controller =
        *controllers::parseControllerSpec(kSpecA);
    host::Host host(plain_sim,
                    std::make_unique<device::SsdModel>(
                        plain_sim, device::newGenSsd()),
                    std::move(ho));
    const auto cg = host.addWorkload("app", 200);
    {
        workload::FioConfig cfg;
        cfg.arrival = workload::Arrival::Rate;
        cfg.ratePerSec = 5000;
        workload::FioWorkload job(plain_sim, host.layer(), cg, cfg);
        job.start();
        plain_sim.runUntil(600 * sim::kMsec);
        job.stop();
        plain_sim.runUntil(1500 * sim::kMsec);
    }
    const blk::CgroupIoStats &st = host.layer().stats(cg);

    sim::Simulator sweep_sim(99);
    host::SweepRunner runner(sweep_sim, baseOptions({kSpecA}));
    EXPECT_FALSE(runner.shadow());
    sweepBody(sweep_sim, runner);
    const LaneCounters lane = collectLane(runner, 0);

    EXPECT_EQ(lane.reads, st.reads);
    EXPECT_EQ(lane.writes, st.writes);
    EXPECT_EQ(lane.failures, st.failures);
    EXPECT_EQ(lane.p50, st.totalLatency.quantile(0.50));
    EXPECT_EQ(lane.p99, st.totalLatency.quantile(0.99));
}

TEST(SweepRunner, SingletonGroupKeepsShadowSemantics)
{
    host::SweepOptions opts = baseOptions({kSpecA});
    opts.forceShadow = true;
    sim::Simulator sim(7);
    host::SweepRunner runner(sim, std::move(opts));
    EXPECT_TRUE(runner.shadow());
}

TEST(SweepRunner, ConfigOrderInvariance)
{
    const auto fwd = runSpecs({kSpecA, kSpecB, kSpecC}, 1);
    const auto rev = runSpecs({kSpecC, kSpecB, kSpecA}, 1);
    ASSERT_EQ(fwd.size(), 3u);
    ASSERT_EQ(rev.size(), 3u);
    EXPECT_TRUE(fwd[0] == rev[2]);
    EXPECT_TRUE(fwd[1] == rev[1]);
    EXPECT_TRUE(fwd[2] == rev[0]);
}

TEST(SweepRunner, JobsPartitionInvariance)
{
    const auto one = runSpecs({kSpecA, kSpecB, kSpecC}, 1);
    const auto three = runSpecs({kSpecA, kSpecB, kSpecC}, 3);
    const auto two = runSpecs({kSpecA, kSpecB, kSpecC}, 2);
    ASSERT_EQ(one.size(), 3u);
    for (size_t c = 0; c < 3; ++c) {
        EXPECT_TRUE(one[c] == three[c]) << "config " << c;
        EXPECT_TRUE(one[c] == two[c]) << "config " << c;
    }
}

TEST(SweepRunner, SharedFaultStreamDivergentQueueing)
{
    // Error window over the shared stream: every lane must observe
    // the identical device randomness — same error draws, same
    // final failures — while throttling-induced queueing diverges.
    // The min=5 lane queues deeply, so drain far past the stop
    // point: equality of the counters only holds once both lanes
    // have completed the whole shared submission set.
    const std::string faults = "err@100ms+300ms=0.2";
    const auto res = host::runSweep(
        baseOptions({kSpecA, kSpecB}, faults), 99, 1,
        [](sim::Simulator &sim, host::SweepRunner &runner) {
            runner.addWorkload("app", 200);
            workload::FioConfig cfg;
            cfg.arrival = workload::Arrival::Rate;
            cfg.ratePerSec = 5000;
            workload::FioWorkload job(
                sim, runner.layer(),
                runner.workloadCgroups()[0].second, cfg);
            job.start();
            sim.runUntil(600 * sim::kMsec);
            job.stop();
            sim.runUntil(30 * sim::kSec);
        },
        [](host::SweepRunner &runner, size_t lane, size_t) {
            return collectLane(runner, lane);
        });
    ASSERT_EQ(res.size(), 2u);

    EXPECT_GT(res[0].errors, 0u);
    // Shared stream: fault draws and outcomes identical per lane.
    EXPECT_EQ(res[0].errors, res[1].errors);
    EXPECT_EQ(res[0].retries, res[1].retries);
    EXPECT_EQ(res[0].failures, res[1].failures);
    EXPECT_EQ(res[0].reads, res[1].reads);
    // Divergent queueing: a 20x vrate gap must show up in latency.
    EXPECT_NE(res[0].p99, res[1].p99);
}

TEST(SweepRunner, ConstructionErrors)
{
    sim::Simulator sim(1);
    EXPECT_THROW(host::SweepRunner(sim, baseOptions({})),
                 std::invalid_argument);
    EXPECT_THROW(host::SweepRunner(sim, baseOptions({"nonsense"})),
                 std::invalid_argument);
    host::SweepOptions bad_sinks = baseOptions({kSpecA, kSpecB});
    bad_sinks.laneSinks.resize(1, nullptr);
    EXPECT_THROW(host::SweepRunner(sim, std::move(bad_sinks)),
                 std::invalid_argument);
}

// ------------------------------------------------------------------
// runPaired: the paired-CRN pool for closed-loop sweeps.
// ------------------------------------------------------------------

TEST(RunPaired, ResultsInConfigOrderAnyJobs)
{
    for (unsigned jobs : {0u, 1u, 3u, 16u}) {
        const auto out = host::runPaired(
            5, jobs, [](size_t c) { return 10 * c + 1; });
        ASSERT_EQ(out.size(), 5u);
        for (size_t c = 0; c < 5; ++c)
            EXPECT_EQ(out[c], 10 * c + 1);
    }
    EXPECT_TRUE(
        host::runPaired(0, 4, [](size_t) { return 0; }).empty());
}

TEST(RunPaired, LowestConfigErrorWins)
{
    try {
        host::runPaired(4, 2, [](size_t c) -> int {
            if (c == 1)
                throw std::runtime_error("config-1");
            if (c == 3)
                throw std::runtime_error("config-3");
            return 0;
        });
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "config-1");
    }
}

// ------------------------------------------------------------------
// Fleet sweep: paired CRN across full host-day runs.
// ------------------------------------------------------------------

std::string
aggBytes(const fleet::FleetAggregate &agg)
{
    char *buf = nullptr;
    size_t len = 0;
    FILE *f = open_memstream(&buf, &len);
    EXPECT_NE(f, nullptr);
    fleet::writeAggregateJson(fleet::AggregateView::from(agg), f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

/** Aggregate bytes minus the execution-layout metadata. */
std::string
aggPayload(const fleet::FleetAggregate &agg)
{
    const std::string bytes = aggBytes(agg);
    const size_t cut = bytes.find("\"summary\"");
    EXPECT_NE(cut, std::string::npos);
    return bytes.substr(cut == std::string::npos ? 0 : cut);
}

const char *kFleetBase =
    "hosts=6 days=3 seed=77 devices=A:50,H:50 "
    "workloads=mixed:60,bursty:40 "
    "slice=20ms warmup=20ms fetch=64K fetch_deadline=8ms "
    "cleanup=6 cleanup_io=4K cleanup_deadline=4ms";

TEST(FleetSweep, LayoutInvariantPerConfig)
{
    fleet::FleetScenario sc = fleet::FleetScenario::parse(
        std::string(kFleetBase) +
        " sweep=iolatency;iocost,min=25,max=100");
    fleet::RunOptions ref_opts;
    ref_opts.jobs = 1;
    ref_opts.shards = 1;
    const auto ref = fleet::FleetSim::runScenarioSweep(sc, ref_opts);
    ASSERT_EQ(ref.size(), 2u);

    const unsigned combos[][2] = {{2, 3}, {3, 2}, {1, 4}};
    for (const auto &combo : combos) {
        fleet::RunOptions opts;
        opts.jobs = combo[0];
        opts.shards = combo[1];
        const auto got =
            fleet::FleetSim::runScenarioSweep(sc, opts);
        ASSERT_EQ(got.size(), 2u);
        for (size_t c = 0; c < 2; ++c) {
            EXPECT_EQ(aggPayload(got[c]), aggPayload(ref[c]))
                << "config " << c << " jobs=" << combo[0]
                << " shards=" << combo[1];
        }
    }
}

TEST(FleetSweep, MatchesEquivalentPlainRuns)
{
    // A sweep config must reproduce the plain engine bit for bit:
    // "iolatency" == the never-migrating fleet, "iocost" == the
    // fleet that migrated before day 0.
    fleet::FleetScenario sweep_sc = fleet::FleetScenario::parse(
        std::string(kFleetBase) + " sweep=iolatency;iocost");
    fleet::RunOptions opts;
    opts.jobs = 2;
    const auto sweep =
        fleet::FleetSim::runScenarioSweep(sweep_sc, opts);
    ASSERT_EQ(sweep.size(), 2u);

    // parse() installs a default staggered-migration stage, so the
    // plain baselines are built programmatically: no stages = no
    // host ever migrates; a zero-span day-0 stage over the whole
    // fleet = every host migrated before its first day.
    fleet::FleetScenario never =
        fleet::FleetScenario::parse(kFleetBase);
    never.stages.clear();
    fleet::FleetScenario always =
        fleet::FleetScenario::parse(kFleetBase);
    always.stages = {fleet::MigrationStage{0, 0, 1.0}};
    EXPECT_EQ(aggPayload(sweep[0]),
              aggPayload(fleet::FleetSim::runScenario(never, opts)));
    EXPECT_EQ(
        aggPayload(sweep[1]),
        aggPayload(fleet::FleetSim::runScenario(always, opts)));
}

TEST(FleetSweep, RejectsBadConfigs)
{
    fleet::FleetScenario sc =
        fleet::FleetScenario::parse(kFleetBase);
    EXPECT_THROW(fleet::FleetSim::runScenarioSweep(sc),
                 std::invalid_argument);
    sc.sweep = {"iocost", "not-a-mechanism"};
    EXPECT_THROW(fleet::FleetSim::runScenarioSweep(sc),
                 std::invalid_argument);
    sc.sweep = {"iocost"};
    sc.telemetry = true;
    EXPECT_THROW(fleet::FleetSim::runScenarioSweep(sc),
                 std::invalid_argument);
}

// ------------------------------------------------------------------
// Scenario grammar + sweep JSON document.
// ------------------------------------------------------------------

TEST(FleetSweep, ScenarioParseAndCanonicalRoundTrip)
{
    const fleet::FleetScenario sc = fleet::FleetScenario::parse(
        "hosts=4 days=2 seed=5 "
        "sweep=iocost,min=25,period=2000;iolatency");
    ASSERT_EQ(sc.sweep.size(), 2u);
    EXPECT_EQ(sc.sweep[0], "iocost min=25 period=2000");
    EXPECT_EQ(sc.sweep[1], "iolatency");

    const fleet::FleetScenario rt =
        fleet::FleetScenario::parse(sc.canonical());
    EXPECT_EQ(rt.sweep, sc.sweep);

    EXPECT_THROW(
        fleet::FleetScenario::parse("hosts=4 sweep=garbage-mech"),
        std::invalid_argument);
    EXPECT_THROW(fleet::FleetScenario::parse("hosts=4 sweep=;"),
                 std::invalid_argument);
}

TEST(FleetSweep, SweepJsonRoundTrip)
{
    fleet::FleetScenario sc = fleet::FleetScenario::parse(
        std::string(kFleetBase) + " sweep=iolatency;iocost,min=25");
    const auto aggs = fleet::FleetSim::runScenarioSweep(sc);
    ASSERT_EQ(aggs.size(), 2u);

    fleet::SweepView view;
    for (size_t c = 0; c < aggs.size(); ++c) {
        view.labels.push_back(sc.sweep[c]);
        view.entries.push_back(
            fleet::AggregateView::from(aggs[c]));
    }

    char *buf = nullptr;
    size_t len = 0;
    FILE *f = open_memstream(&buf, &len);
    ASSERT_NE(f, nullptr);
    fleet::writeSweepJson(view, f);
    std::fclose(f);
    std::string text(buf, len);
    std::free(buf);

    const auto parsed = fleet::readSweepJson(text);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->labels.size(), 2u);
    ASSERT_EQ(parsed->entries.size(), 2u);
    EXPECT_EQ(parsed->labels[0], "iolatency");
    EXPECT_EQ(parsed->labels[1], "iocost min=25");
    for (size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(parsed->entries[c].hosts, view.entries[c].hosts);
        EXPECT_EQ(parsed->entries[c].hostDays,
                  view.entries[c].hostDays);
        EXPECT_EQ(parsed->entries[c].perDay.size(),
                  view.entries[c].perDay.size());
    }

    // A plain aggregate document is not a sweep document.
    EXPECT_FALSE(fleet::readSweepJson(aggBytes(aggs[0])));
}

// ------------------------------------------------------------------
// FifoRing: the allocation-stable queue under the throttle waitq.
// ------------------------------------------------------------------

TEST(FifoRing, FifoOrderAcrossGrowthAndWrap)
{
    sim::FifoRing<int> q;
    EXPECT_TRUE(q.empty());

    // Interleave pushes and pops so head_ walks the ring and the
    // buffer both wraps and regrows with live wrapped contents.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 7; ++i)
            q.push_back(next_in++);
        for (int i = 0; i < 5; ++i) {
            ASSERT_FALSE(q.empty());
            EXPECT_EQ(q.front(), next_out++);
            q.pop_front();
        }
    }
    EXPECT_EQ(q.size(), 400u);
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(FifoRing, PopReleasesOwningElements)
{
    // pop_front must drop the element's resource immediately — a
    // BioPtr-holding ring that kept popped bios alive would starve
    // the pool.
    auto counter = std::make_shared<int>(0);
    sim::FifoRing<std::shared_ptr<int>> q;
    q.push_back(counter);
    q.push_back(counter);
    EXPECT_EQ(counter.use_count(), 3);
    q.pop_front();
    EXPECT_EQ(counter.use_count(), 2);
    q.pop_front();
    EXPECT_EQ(counter.use_count(), 1);
    EXPECT_TRUE(q.empty());
}

} // namespace
