/**
 * @file
 * Page-cache and dirty-writeback unit tests: per-cgroup dirty
 * accounting, the background flusher (pressure and age triggers),
 * dirty-limit stalls (global and per-cgroup), fsync barriers,
 * buffered read hit/miss, writeback attribution, and the buffered
 * workload shapes built on top of all of it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "mm/page_cache.hh"
#include "workload/buffered_io.hh"

namespace {

using namespace iocost;

/** A host with the page cache enabled and two empty cgroups. */
struct Rig
{
    sim::Simulator sim;
    std::unique_ptr<host::Host> host;
    cgroup::CgroupId web = 0;
    cgroup::CgroupId batch = 0;

    explicit Rig(uint64_t cache_bytes = 512ull << 20,
                 bool charge_dirtier = true)
        : sim(11)
    {
        host::HostOptions opts;
        opts.controller = "none";
        opts.enablePageCache = true;
        opts.pageCacheConfig.cacheBytes = cache_bytes;
        opts.pageCacheConfig.chargeWbToDirtier = charge_dirtier;
        host = std::make_unique<host::Host>(
            sim,
            std::make_unique<device::SsdModel>(sim,
                                               device::newGenSsd()),
            opts);
        web = host->addWorkload("web", 200);
        batch = host->addWorkload("batch", 100);
    }

    mm::PageCache &pc() { return host->pageCache(); }
};

/** Closed-loop buffered writer: reissues from each completion, so
 *  it keeps pressing on the dirty wall however often it stalls. */
struct Pump
{
    mm::PageCache *pc;
    cgroup::CgroupId cg;
    uint64_t chunk;
    uint64_t remaining;
    uint64_t offset = 0;
    uint64_t completed = 0;

    void
    run()
    {
        if (remaining == 0)
            return;
        const uint64_t n = std::min(chunk, remaining);
        remaining -= n;
        pc->write(cg, offset, n, [this] {
            ++completed;
            run();
        });
        offset += n;
    }
};

TEST(PageCache, BufferedWriteDirtiesAtMemorySpeed)
{
    Rig rig;
    int done = 0;
    for (int i = 0; i < 4; ++i) {
        rig.pc().write(rig.batch, uint64_t(i) * (2ull << 20),
                       2ull << 20, [&done] { ++done; });
    }
    rig.sim.runUntil(sim::kMsec);

    EXPECT_EQ(done, 4);
    const mm::CacheCgroupStats &st = rig.pc().stats(rig.batch);
    EXPECT_EQ(st.dirty, 8ull << 20);
    EXPECT_EQ(st.bufferedWriteBytes, 8ull << 20);
    EXPECT_EQ(rig.pc().totalDirty(), 8ull << 20);
    EXPECT_EQ(rig.pc().totalCached(), 8ull << 20);
    // Below the background ratio and younger than dirty_expire:
    // nothing reaches the device.
    EXPECT_EQ(st.wbIssuedBytes, 0u);
    EXPECT_EQ(rig.host->layer().submitted(), 0u);
}

TEST(PageCache, BackgroundWritebackDrainsAboveRatio)
{
    Rig rig; // background kicks in at 51.2M of the 512M cache
    int done = 0;
    for (int i = 0; i < 60; ++i) {
        rig.pc().write(rig.batch, uint64_t(i) << 20, 1ull << 20,
                       [&done] { ++done; });
    }
    rig.sim.runUntil(4 * sim::kSec);

    EXPECT_EQ(done, 60); // never near the hard wall (102M)
    const mm::CacheCgroupStats &st = rig.pc().stats(rig.batch);
    EXPECT_GT(st.wbIssuedBytes, 0u);
    EXPECT_GT(st.cleanedBytes, 0u);
    // The flusher drains to the background ratio and stops.
    const uint64_t background =
        uint64_t(0.10 * double(512ull << 20));
    EXPECT_LE(rig.pc().totalDirty(), background + (1ull << 20));
    // Cleaned pages stay cached (clean), they don't vanish.
    EXPECT_GT(st.cachedClean, 0u);
    EXPECT_EQ(st.cachedClean + st.dirty + st.writeback,
              60ull << 20);
}

TEST(PageCache, ExpiredExtentsFlushWithoutPressure)
{
    Rig rig;
    rig.pc().write(rig.batch, 0, 8ull << 20, [] {});
    // 8M is far below the background ratio; only dirty_expire (5s)
    // can move it.
    rig.sim.runUntil(2 * sim::kSec);
    EXPECT_EQ(rig.pc().stats(rig.batch).wbIssuedBytes, 0u);

    rig.sim.runUntil(8 * sim::kSec);
    const mm::CacheCgroupStats &st = rig.pc().stats(rig.batch);
    EXPECT_EQ(st.cleanedBytes, 8ull << 20);
    EXPECT_EQ(st.dirty, 0u);
    EXPECT_EQ(st.cachedClean, 8ull << 20);
    EXPECT_EQ(rig.pc().wbInflight(), 0u);
}

TEST(PageCache, DirtyWallStallsAndReleasesWriters)
{
    Rig rig(64ull << 20); // hard wall at 12.8M dirty
    Pump pump{&rig.pc(), rig.batch, 2ull << 20, 64ull << 20};
    pump.run();
    rig.sim.runUntil(200 * sim::kMsec);
    const mm::CacheCgroupStats &st = rig.pc().stats(rig.batch);
    EXPECT_GT(st.throttleStalls, 0u);
    EXPECT_GT(st.throttleTime, 0);

    // The flusher keeps releasing the wall: the closed loop pushes
    // its full 64M through a cache a fraction of that size.
    rig.sim.runUntil(30 * sim::kSec);
    EXPECT_EQ(pump.completed, 32u);
    EXPECT_EQ(rig.pc().stats(rig.batch).bufferedWriteBytes,
              64ull << 20);
    EXPECT_EQ(rig.pc().pendingOps(), 0u);
    // The cache never exceeded its capacity: eviction made room.
    EXPECT_LE(rig.pc().totalCached(), 64ull << 20);
}

TEST(PageCache, PerCgroupLimitStallsOnlyThatCgroup)
{
    Rig rig; // 512M cache: the global walls never come into play
    rig.pc().setDirtyLimit(rig.batch, 4ull << 20);

    Pump pump{&rig.pc(), rig.batch, 2ull << 20, 16ull << 20};
    pump.run();
    int web_done = 0;
    rig.pc().write(rig.web, 1ull << 30, 8ull << 20,
                   [&web_done] { ++web_done; });
    rig.sim.runUntil(100 * sim::kMsec);

    EXPECT_EQ(web_done, 1); // the other cgroup is unaffected
    EXPECT_EQ(rig.pc().stats(rig.web).throttleStalls, 0u);
    EXPECT_GT(rig.pc().stats(rig.batch).throttleStalls, 0u);

    rig.sim.runUntil(20 * sim::kSec);
    EXPECT_EQ(pump.completed, 8u);
}

TEST(PageCache, FsyncFlushesAndWaitsForClean)
{
    Rig rig;
    rig.pc().write(rig.batch, 0, 16ull << 20, [] {});
    rig.sim.runUntil(sim::kMsec);

    bool synced = false;
    rig.pc().fsync(rig.batch, [&synced] { synced = true; });
    // fsync bypasses the flush interval, the expiry age, and the
    // congestion window: writeback is on the wire immediately.
    rig.sim.runUntil(2 * sim::kMsec);
    EXPECT_GT(rig.pc().stats(rig.batch).wbIssuedBytes, 0u);

    rig.sim.runUntil(2 * sim::kSec); // far before dirty_expire
    EXPECT_TRUE(synced);
    const mm::CacheCgroupStats &st = rig.pc().stats(rig.batch);
    EXPECT_EQ(st.fsyncs, 1u);
    EXPECT_GE(st.cleanedBytes, 16ull << 20);
    EXPECT_EQ(st.dirty, 0u);
    EXPECT_EQ(rig.pc().pendingOps(), 0u);
}

TEST(PageCache, ReadMissFillsAndHitServesFromCache)
{
    Rig rig;
    const uint64_t span = 16ull << 20;
    rig.pc().addSpan(rig.web, span);
    EXPECT_EQ(rig.pc().stats(rig.web).span, span);

    int done = 0;
    // Cold cache: footprint/span == 0, a guaranteed miss that goes
    // to the device as a throttleable read charged to the reader.
    rig.pc().read(rig.web, 0, 1ull << 20, [&done] { ++done; });
    rig.sim.runUntil(sim::kSec);
    EXPECT_EQ(done, 1);
    const mm::CacheCgroupStats &st = rig.pc().stats(rig.web);
    EXPECT_EQ(st.readMissBytes, 1ull << 20);
    EXPECT_EQ(st.readHitBytes, 0u);
    EXPECT_EQ(st.cachedClean, 1ull << 20); // the fill populated it
    EXPECT_GT(rig.host->layer().stats(rig.web).reads, 0u);

    // Populate the whole span: footprint/span >= 1, guaranteed
    // hits at memory speed, nothing new at the device.
    rig.pc().write(rig.web, 0, span, [] {});
    rig.sim.runUntil(sim::kSec + sim::kMsec);
    const uint64_t device_reads =
        rig.host->layer().stats(rig.web).reads;
    for (int i = 0; i < 8; ++i) {
        rig.pc().read(rig.web, uint64_t(i) << 20, 64 * 1024,
                      [&done] { ++done; });
    }
    rig.sim.runUntil(sim::kSec + 10 * sim::kMsec);
    EXPECT_EQ(done, 9);
    EXPECT_EQ(st.readHitBytes, 8ull * 64 * 1024);
    EXPECT_EQ(st.readMissBytes, 1ull << 20);
    EXPECT_EQ(rig.host->layer().stats(rig.web).reads, device_reads);
}

TEST(PageCache, WritebackAttribution)
{
    for (const bool charge : {true, false}) {
        Rig rig(512ull << 20, charge);
        rig.pc().write(rig.batch, 0, 8ull << 20, [] {});
        rig.sim.runUntil(sim::kMsec);
        bool synced = false;
        rig.pc().fsync(rig.batch, [&synced] { synced = true; });
        rig.sim.runUntil(4 * sim::kSec);
        ASSERT_TRUE(synced);

        const blk::CgroupIoStats &to_batch =
            rig.host->layer().stats(rig.batch);
        const blk::CgroupIoStats &to_root =
            rig.host->layer().stats(cgroup::kRoot);
        if (charge) {
            // Cgroup writeback: flusher bios carry the dirtier.
            EXPECT_GT(to_batch.wbWrites, 0u);
            EXPECT_EQ(to_batch.wbBytes, 8ull << 20);
            EXPECT_EQ(to_root.wbWrites, 0u);
        } else {
            // Historical root attribution: the dirtier's flood is
            // invisible to any per-cgroup control.
            EXPECT_GT(to_root.wbWrites, 0u);
            EXPECT_EQ(to_batch.wbWrites, 0u);
        }
    }
}

TEST(BufferedWorkload, DirtierAndFsyncShapesRun)
{
    Rig rig(256ull << 20);

    workload::BufferedConfig dc;
    dc.name = "dirtier";
    dc.blockSize = 1 << 20;
    dc.spanBytes = 1ull << 30;
    dc.thinkTime = 100 * sim::kUsec;
    dc.depth = 2;
    workload::BufferedWorkload dirtier(rig.sim, rig.pc(),
                                       rig.batch, dc);
    EXPECT_EQ(rig.pc().stats(rig.batch).span, 1ull << 30);

    workload::BufferedConfig fc;
    fc.name = "fsyncer";
    fc.blockSize = 16 * 1024;
    fc.spanBytes = 64ull << 20;
    fc.offsetBase = 2ull << 40;
    fc.randomFraction = 1.0;
    fc.fsyncEvery = 8;
    workload::BufferedWorkload fsyncer(rig.sim, rig.pc(), rig.web,
                                       fc);

    dirtier.start();
    fsyncer.start();
    rig.sim.runUntil(2 * sim::kSec);
    dirtier.stop();
    fsyncer.stop();
    rig.sim.runUntil(4 * sim::kSec);

    EXPECT_GT(dirtier.completed(), 0u);
    EXPECT_GT(dirtier.iops(), 0.0);
    EXPECT_GT(fsyncer.fsyncsDone(), 0u);
    EXPECT_GT(fsyncer.latency().count(), 0u);
    EXPECT_GT(rig.pc().stats(rig.batch).bufferedWriteBytes, 0u);
    // stop() lets parked operations finish; nothing leaks a slot.
    EXPECT_EQ(rig.pc().pendingOps(), 0u);
}

} // namespace
