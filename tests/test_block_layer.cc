/**
 * @file
 * Tests for the block layer glue: accounting, dispatch-FIFO behavior
 * under device saturation, completion fan-out, and the submission
 * CPU model.
 */

#include <gtest/gtest.h>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/noop.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"

namespace {

using namespace iocost;

struct Stack
{
    sim::Simulator sim{11};
    device::SsdSpec spec;
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;

    explicit Stack(uint32_t queue_depth = 8)
    {
        spec = device::oldGenSsd();
        spec.queueDepth = queue_depth;
        spec.jitterSigma = 0.0;
        device = std::make_unique<device::SsdModel>(sim, spec);
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
    }
};

TEST(BlockLayer, CompletionCallbackFires)
{
    Stack s;
    bool done = false;
    s.layer->submit(blk::Bio::make(
        blk::Op::Read, 0, 4096, cgroup::kRoot,
        [&](const blk::Bio &bio) {
            done = true;
            EXPECT_GT(bio.id, 0u);
        }));
    s.sim.runAll();
    EXPECT_TRUE(done);
    EXPECT_EQ(s.layer->submitted(), 1u);
    EXPECT_EQ(s.layer->completed(), 1u);
}

TEST(BlockLayer, PerCgroupAccounting)
{
    Stack s;
    const cgroup::CgroupId a = s.tree.create(cgroup::kRoot, "a");
    const cgroup::CgroupId b = s.tree.create(cgroup::kRoot, "b");
    s.layer->submit(blk::Bio::make(blk::Op::Read, 0, 4096, a));
    s.layer->submit(blk::Bio::make(blk::Op::Read, 8192, 8192, a));
    s.layer->submit(blk::Bio::make(blk::Op::Write, 0, 4096, b));
    s.sim.runAll();

    const auto &sa = s.layer->stats(a);
    EXPECT_EQ(sa.reads, 2u);
    EXPECT_EQ(sa.readBytes, 12288u);
    EXPECT_EQ(sa.writes, 0u);
    const auto &sb = s.layer->stats(b);
    EXPECT_EQ(sb.writes, 1u);
    EXPECT_EQ(sb.writeBytes, 4096u);
    EXPECT_EQ(sb.totalLatency.count(), 1u);
}

TEST(BlockLayer, OverflowParksInDispatchQueue)
{
    Stack s(4);
    for (int i = 0; i < 10; ++i) {
        s.layer->submit(blk::Bio::make(
            blk::Op::Read, static_cast<uint64_t>(i) << 20, 4096,
            cgroup::kRoot));
    }
    // Device takes 4; six wait in the FIFO.
    EXPECT_EQ(s.device->inFlight(), 4u);
    EXPECT_EQ(s.layer->dispatchQueueDepth(), 6u);
    EXPECT_GT(s.layer->readAndResetQueueFullEvents(), 0u);
    s.sim.runAll();
    EXPECT_EQ(s.layer->completed(), 10u);
    EXPECT_EQ(s.layer->dispatchQueueDepth(), 0u);
}

TEST(BlockLayer, QueueFullCounterResets)
{
    Stack s(1);
    s.layer->submit(
        blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot));
    s.layer->submit(
        blk::Bio::make(blk::Op::Read, 1 << 20, 4096, cgroup::kRoot));
    EXPECT_EQ(s.layer->readAndResetQueueFullEvents(), 1u);
    EXPECT_EQ(s.layer->readAndResetQueueFullEvents(), 0u);
    s.sim.runAll();
}

TEST(BlockLayer, FifoOrderPreservedUnderOverflow)
{
    Stack s(1);
    std::vector<int> completions;
    for (int i = 0; i < 5; ++i) {
        s.layer->submit(blk::Bio::make(
            blk::Op::Read, static_cast<uint64_t>(i) << 20, 4096,
            cgroup::kRoot, [&completions, i](const blk::Bio &) {
                completions.push_back(i);
            }));
    }
    s.sim.runAll();
    EXPECT_EQ(completions, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BlockLayer, SubmissionCpuSerializesDelivery)
{
    Stack s;
    s.layer->setController(
        std::make_unique<controllers::NoopScheduler>());
    s.layer->setSubmissionCpuEnabled(true);

    // 100 bios burst-submitted at t=0 serialize on the CPU at
    // issueCpuCost() each; the last completion cannot beat the CPU
    // draining plus one service time.
    sim::Time last_done = 0;
    for (int i = 0; i < 100; ++i) {
        s.layer->submit(blk::Bio::make(
            blk::Op::Read, static_cast<uint64_t>(i) << 20, 4096,
            cgroup::kRoot, [&](const blk::Bio &) {
                last_done = s.sim.now();
            }));
    }
    s.sim.runAll();
    const sim::Time cpu_cost =
        controllers::NoopScheduler().issueCpuCost();
    EXPECT_GE(last_done, 100 * cpu_cost);
}

TEST(BlockLayer, ResetStatsClears)
{
    Stack s;
    s.layer->submit(
        blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot));
    s.sim.runAll();
    EXPECT_EQ(s.layer->stats(cgroup::kRoot).reads, 1u);
    s.layer->resetStats();
    EXPECT_EQ(s.layer->stats(cgroup::kRoot).reads, 0u);
}

} // namespace
