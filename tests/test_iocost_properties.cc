/**
 * @file
 * Property-style parameterized sweeps over the IOCost controller:
 *
 *  - weight-ratio sweep: for weights w:1 the measured IOPS ratio of
 *    two saturating equals must track w across an order of
 *    magnitude;
 *  - active-set sweep: N equal saturating cgroups each receive
 *    ~1/N of the model rate and the total stays pinned;
 *  - model-scale sweep: halving/doubling the claimed capability
 *    scales the admitted IOPS accordingly (vrate pinned).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

core::IoCostConfig
pinnedConfig(double scale = 1.0)
{
    core::LinearModelConfig m;
    m.rbps = 4e9;
    m.rseqiops = 20000;
    m.rrandiops = 10000;
    m.wbps = 4e9;
    m.wseqiops = 20000;
    m.wrandiops = 10000;
    core::IoCostConfig cfg;
    cfg.model = core::CostModel::fromConfig(m);
    cfg.model.scaleCapability(scale);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    cfg.qos.period = 10 * sim::kMsec;
    return cfg;
}

struct Stack
{
    sim::Simulator sim{81};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;

    explicit Stack(const core::IoCostConfig &cfg)
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::enterpriseSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        layer->setController(std::make_unique<core::IoCost>(cfg));
    }
};

class WeightRatio : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(WeightRatio, IopsTracksWeights)
{
    const uint32_t w = GetParam();
    Stack s(pinnedConfig());
    const auto hi = s.tree.create(cgroup::kRoot, "hi", 100 * w);
    const auto lo = s.tree.create(cgroup::kRoot, "lo", 100);

    workload::FioConfig cfg;
    cfg.iodepth = 64;
    workload::FioWorkload hij(s.sim, *s.layer, hi, cfg);
    workload::FioWorkload loj(s.sim, *s.layer, lo, cfg);
    hij.start();
    loj.start();
    s.sim.runUntil(2 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    s.sim.runUntil(12 * sim::kSec);

    const double ratio = hij.iops() / loj.iops();
    EXPECT_NEAR(ratio, static_cast<double>(w), 0.15 * w)
        << "weights " << 100 * w << ":100";
    EXPECT_NEAR(hij.iops() + loj.iops(), 10000, 900);
}

INSTANTIATE_TEST_SUITE_P(Ratios, WeightRatio,
                         ::testing::Values(1, 2, 3, 5, 8));

class ActiveSet : public ::testing::TestWithParam<int>
{};

TEST_P(ActiveSet, EqualsSplitEvenly)
{
    const int n = GetParam();
    Stack s(pinnedConfig());
    std::vector<std::unique_ptr<workload::FioWorkload>> jobs;
    for (int i = 0; i < n; ++i) {
        const auto cg = s.tree.create(
            cgroup::kRoot, "c" + std::to_string(i), 100);
        workload::FioConfig cfg;
        cfg.iodepth = 32;
        jobs.push_back(std::make_unique<workload::FioWorkload>(
            s.sim, *s.layer, cg, cfg));
        jobs.back()->start();
    }
    s.sim.runUntil(2 * sim::kSec);
    for (auto &j : jobs)
        j->resetStats();
    s.sim.runUntil(10 * sim::kSec);

    double total = 0;
    for (auto &j : jobs)
        total += j->iops();
    EXPECT_NEAR(total, 10000, 1000);
    for (auto &j : jobs) {
        EXPECT_NEAR(j->iops(), 10000.0 / n, 10000.0 / n * 0.2);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ActiveSet,
                         ::testing::Values(2, 4, 8, 16));

class ModelScale : public ::testing::TestWithParam<double>
{};

TEST_P(ModelScale, AdmittedRateScalesWithClaimedCapability)
{
    const double scale = GetParam();
    Stack s(pinnedConfig(scale));
    const auto cg = s.tree.create(cgroup::kRoot, "a", 100);
    workload::FioConfig cfg;
    cfg.iodepth = 64;
    workload::FioWorkload job(s.sim, *s.layer, cg, cfg);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    job.resetStats();
    s.sim.runUntil(6 * sim::kSec);
    const double expect = 10000 * scale;
    EXPECT_NEAR(job.iops(), expect, expect * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Scales, ModelScale,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

} // namespace
