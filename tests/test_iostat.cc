/**
 * @file
 * Tests for the io.stat-style cumulative counters: usage accrues
 * with charged cost, wait accrues under throttling, indebt tracks
 * debt episodes, indelay sums return-to-userspace throttles.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

core::IoCostConfig
pinned(double iops = 10000)
{
    core::LinearModelConfig m;
    m.rbps = 4e9;
    m.rseqiops = iops;
    m.rrandiops = iops;
    m.wbps = 4e9;
    m.wseqiops = iops;
    m.wrandiops = iops;
    core::IoCostConfig cfg;
    cfg.model = core::CostModel::fromConfig(m);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    cfg.qos.period = 10 * sim::kMsec;
    return cfg;
}

struct Stack
{
    sim::Simulator sim{121};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;
    core::IoCost *ctl;

    explicit Stack(core::IoCostConfig cfg = pinned())
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::enterpriseSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        auto owned = std::make_unique<core::IoCost>(cfg);
        ctl = owned.get();
        layer->setController(std::move(owned));
    }
};

TEST(IoStat, UsageTracksChargedOccupancy)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    workload::FioConfig cfg;
    cfg.iodepth = 8;
    workload::FioWorkload job(s.sim, *s.layer, cg, cfg);
    job.start();
    s.sim.runUntil(2 * sim::kSec);
    // Saturating a 10k-IOPS model: ~1 second of occupancy charged
    // per second of wall time.
    const auto st = s.ctl->stat(cg);
    EXPECT_NEAR(static_cast<double>(st.usageUs), 2e6, 0.3e6);
}

TEST(IoStat, WaitAccruesUnderThrottle)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    workload::FioConfig cfg;
    cfg.iodepth = 32; // heavily over budget
    workload::FioWorkload job(s.sim, *s.layer, cg, cfg);
    job.start();
    s.sim.runUntil(2 * sim::kSec);
    const auto st = s.ctl->stat(cg);
    // 32 bios queued behind a 10k IOPS budget wait ~3ms each.
    EXPECT_GT(st.waitUs, 1'000'000u);
}

TEST(IoStat, NoWaitWhenUnderBudget)
{
    Stack s(pinned(1e6));
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    workload::FioConfig cfg;
    cfg.arrival = workload::Arrival::Rate;
    cfg.ratePerSec = 1000;
    workload::FioWorkload job(s.sim, *s.layer, cg, cfg);
    job.start();
    s.sim.runUntil(2 * sim::kSec);
    const auto st = s.ctl->stat(cg);
    EXPECT_LT(st.waitUs, 1000u);
    EXPECT_EQ(st.indebtUs, 0u);
}

TEST(IoStat, IndebtTracksDebtEpisodes)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a");
    const auto b = s.tree.create(cgroup::kRoot, "b");
    // Saturate both so a's debt cannot be paid instantly.
    workload::FioConfig cfg;
    cfg.iodepth = 16;
    workload::FioWorkload ja(s.sim, *s.layer, a, cfg);
    workload::FioWorkload jb(s.sim, *s.layer, b, cfg);
    ja.start();
    jb.start();
    s.sim.runUntil(1 * sim::kSec);

    for (int i = 0; i < 30; ++i) {
        auto bio = blk::Bio::make(blk::Op::Write,
                                  (1ull << 40) + i * (1 << 20),
                                  1 << 20, a);
        bio->swap = true;
        s.layer->submit(std::move(bio));
    }
    s.sim.runUntil(1 * sim::kSec + 500 * sim::kMsec);
    const auto st = s.ctl->stat(a);
    EXPECT_GT(st.indebtUs, 10'000u);
    EXPECT_EQ(s.ctl->stat(b).indebtUs, 0u);
}

TEST(IoStat, IndelaySumsUserspaceThrottles)
{
    core::IoCostConfig cfg = pinned();
    cfg.qos.debtThreshold = 1 * sim::kMsec;
    Stack s(cfg);
    const auto a = s.tree.create(cgroup::kRoot, "a");
    const auto b = s.tree.create(cgroup::kRoot, "b");
    workload::FioConfig job_cfg;
    job_cfg.iodepth = 16;
    workload::FioWorkload jb(s.sim, *s.layer, b, job_cfg);
    jb.start();
    s.sim.runUntil(500 * sim::kMsec);

    for (int i = 0; i < 20; ++i) {
        auto bio = blk::Bio::make(blk::Op::Write,
                                  (1ull << 40) + i * (1 << 20),
                                  1 << 20, a);
        bio->swap = true;
        s.layer->submit(std::move(bio));
    }
    EXPECT_GT(s.ctl->userspaceDelay(a), 0);
    EXPECT_GT(s.ctl->stat(a).indelayUs, 0u);
}

TEST(IoStat, StatLineFormat)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    workload::FioConfig cfg;
    cfg.iodepth = 4;
    workload::FioWorkload job(s.sim, *s.layer, cg, cfg);
    job.start();
    s.sim.runUntil(200 * sim::kMsec);
    const std::string line = s.ctl->statLine(cg);
    EXPECT_NE(line.find("cost.vrate=100.00"), std::string::npos)
        << line;
    EXPECT_NE(line.find("cost.usage="), std::string::npos);
    EXPECT_NE(line.find("cost.wait="), std::string::npos);
    EXPECT_NE(line.find("cost.indebt="), std::string::npos);
    EXPECT_NE(line.find("cost.indelay="), std::string::npos);
}

} // namespace
