/**
 * @file
 * Determinism of the parallel fleet runner: FleetSim::run must
 * produce byte-identical results for any worker count, because every
 * host-day slice owns a private Simulator seeded only from
 * (cfg.seed, day, host) and the reduction runs in (day, host) order.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fleet/fleet_sim.hh"

namespace {

using namespace iocost;
using namespace iocost::fleet;

/** Small-but-contended config so the test runs in ~a second. */
FleetConfig
tinyFleet()
{
    FleetConfig cfg;
    cfg.hosts = 6;
    cfg.days = 5;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 4;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.seed = 77;
    return cfg;
}

void
expectIdentical(const std::vector<FleetDayResult> &a,
                const std::vector<FleetDayResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].day, b[i].day);
        EXPECT_EQ(a[i].fractionOnIoCost, b[i].fractionOnIoCost);
        EXPECT_EQ(a[i].fetchAttempts, b[i].fetchAttempts);
        EXPECT_EQ(a[i].fetchFailures, b[i].fetchFailures);
        EXPECT_EQ(a[i].cleanupAttempts, b[i].cleanupAttempts);
        EXPECT_EQ(a[i].cleanupFailures, b[i].cleanupFailures);
    }
}

TEST(FleetParallel, FourJobsMatchSequential)
{
    const FleetConfig cfg = tinyFleet();
    const auto seq = FleetSim::run(cfg, 1);
    const auto par = FleetSim::run(cfg, 4);
    expectIdentical(seq, par);
}

TEST(FleetParallel, NonDividingJobCountMatchesSequential)
{
    const FleetConfig cfg = tinyFleet();
    const auto seq = FleetSim::run(cfg, 1);
    const auto par = FleetSim::run(cfg, 3); // 30 slices, 3 workers
    expectIdentical(seq, par);
}

TEST(FleetParallel, MoreJobsThanSlicesIsSafe)
{
    FleetConfig cfg = tinyFleet();
    cfg.hosts = 2;
    cfg.days = 2;
    const auto seq = FleetSim::run(cfg, 1);
    const auto par = FleetSim::run(cfg, 64); // clamped to 4 slices
    expectIdentical(seq, par);
}

TEST(FleetParallel, RunsProduceWork)
{
    // Guard against the determinism tests passing vacuously on an
    // empty result.
    const FleetConfig cfg = tinyFleet();
    const auto days = FleetSim::run(cfg, 2);
    ASSERT_EQ(days.size(), cfg.days);
    EXPECT_EQ(days.front().fetchAttempts, cfg.hosts);
    EXPECT_EQ(days.back().fractionOnIoCost, 1.0);
}

} // namespace
