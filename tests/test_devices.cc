/**
 * @file
 * Tests for the device models: throughput/latency envelopes, queue
 * slot enforcement, write-buffer GC dynamics, seek asymmetry, and
 * provisioned remote ceilings.
 */

#include <gtest/gtest.h>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/hdd_model.hh"
#include "device/remote_model.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/** Run one saturating job against a device, return (IOPS, p50). */
struct RunResult
{
    double iops;
    sim::Time p50;
};

template <typename Device, typename Spec>
RunResult
saturate(const Spec &spec, blk::Op op, bool random,
         uint32_t block_size, unsigned iodepth,
         double seconds = 2.0, uint64_t seed = 99)
{
    sim::Simulator sim(seed);
    Device device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    workload::FioConfig cfg;
    cfg.readFraction = op == blk::Op::Read ? 1.0 : 0.0;
    cfg.randomFraction = random ? 1.0 : 0.0;
    cfg.blockSize = block_size;
    cfg.iodepth = iodepth;
    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();
    sim.runUntil(static_cast<sim::Time>(seconds * sim::kSec));
    return RunResult{job.iops(), job.latency().quantile(0.5)};
}

TEST(SsdModel, RandomReadIopsNearChannelBound)
{
    device::SsdSpec spec = device::newGenSsd();
    spec.jitterSigma = 0.0;
    const auto r = saturate<device::SsdModel>(
        spec, blk::Op::Read, true, 4096, 128);
    const double bound =
        spec.channels *
        (1e9 / (static_cast<double>(spec.readBaseRand) +
                4096.0 * spec.readNsPerByte));
    EXPECT_NEAR(r.iops, bound, bound * 0.05);
}

TEST(SsdModel, DepthOneLatencyNearBase)
{
    device::SsdSpec spec = device::newGenSsd();
    spec.jitterSigma = 0.0;
    const auto r = saturate<device::SsdModel>(
        spec, blk::Op::Read, true, 4096, 1);
    const double expect = static_cast<double>(spec.readBaseRand) +
                          4096.0 * spec.readNsPerByte;
    EXPECT_NEAR(static_cast<double>(r.p50), expect, expect * 0.1);
}

TEST(SsdModel, SequentialReadsFasterThanRandom)
{
    device::SsdSpec spec = device::oldGenSsd();
    const auto rand = saturate<device::SsdModel>(
        spec, blk::Op::Read, true, 4096, 64);
    const auto seq = saturate<device::SsdModel>(
        spec, blk::Op::Read, false, 4096, 64);
    EXPECT_GT(seq.iops, rand.iops);
}

TEST(SsdModel, WriteBurstThenGcSlowdown)
{
    device::SsdSpec spec = device::oldGenSsd();
    spec.jitterSigma = 0.0;
    // Short run rides the buffer; long run drains it into GC.
    const auto burst = saturate<device::SsdModel>(
        spec, blk::Op::Write, true, 65536, 64, 0.05);
    const auto sustained = saturate<device::SsdModel>(
        spec, blk::Op::Write, true, 65536, 64, 20.0);
    EXPECT_GT(burst.iops, sustained.iops * 1.5)
        << "burst should comfortably exceed sustained";
    // Sustained rate is governed by the buffer drain rate.
    const double sustained_bps = sustained.iops * 65536;
    EXPECT_NEAR(sustained_bps, spec.sustainedWriteBps,
                spec.sustainedWriteBps * 0.35);
}

TEST(SsdModel, GcStateRecoversAfterIdle)
{
    sim::Simulator sim(3);
    device::SsdSpec spec = device::oldGenSsd();
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);

    workload::FioConfig cfg;
    cfg.readFraction = 0.0;
    cfg.blockSize = 256 * 1024;
    cfg.iodepth = 64;
    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();
    sim.runUntil(10 * sim::kSec);
    job.stop();
    EXPECT_TRUE(device.gcActive());
    // Idle long enough for the buffer credit to refill.
    sim.runUntil(10 * sim::kSec +
                 static_cast<sim::Time>(
                     static_cast<double>(spec.writeBufferBytes) /
                     spec.sustainedWriteBps * 1.2e9));
    EXPECT_FALSE(device.gcActive());
}

TEST(SsdModel, QueueDepthEnforced)
{
    sim::Simulator sim(4);
    device::SsdSpec spec = device::oldGenSsd();
    spec.queueDepth = 4;
    device::SsdModel device(sim, spec);

    device.setCompletionFn([](blk::BioPtr, sim::Time) {});
    for (int i = 0; i < 4; ++i) {
        blk::BioPtr bio =
            blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot);
        EXPECT_TRUE(device.submit(bio));
    }
    blk::BioPtr overflow =
        blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot);
    EXPECT_FALSE(device.submit(overflow));
    EXPECT_NE(overflow, nullptr) << "rejected bio stays with caller";
    EXPECT_EQ(device.inFlight(), 4u);
}

TEST(HddModel, SequentialMuchFasterThanRandom)
{
    const device::HddSpec spec = device::nearlineHdd();
    const auto rand = saturate<device::HddModel>(
        spec, blk::Op::Read, true, 4096, 8);
    const auto seq = saturate<device::HddModel>(
        spec, blk::Op::Read, false, 4096, 8);
    // Seeks dominate: sequential should be >20x random on 4k.
    EXPECT_GT(seq.iops, rand.iops * 20);
    // Random 4k on a 7200rpm disk: O(100) IOPS.
    EXPECT_GT(rand.iops, 40);
    EXPECT_LT(rand.iops, 400);
}

TEST(HddModel, SingleHeadSerializesService)
{
    // Throughput at depth 8 cannot meaningfully exceed depth 1
    // (one head), unlike the SSD.
    const device::HddSpec spec = device::nearlineHdd();
    const auto d1 = saturate<device::HddModel>(
        spec, blk::Op::Read, true, 4096, 1);
    const auto d8 = saturate<device::HddModel>(
        spec, blk::Op::Read, true, 4096, 8);
    EXPECT_LT(d8.iops, d1.iops * 3.0);
}

TEST(RemoteModel, IopsCapEnforced)
{
    const device::RemoteSpec spec = device::awsGp3();
    const auto r = saturate<device::RemoteModel>(
        spec, blk::Op::Read, true, 4096, 128, 4.0);
    EXPECT_LT(r.iops, spec.iopsCap * 1.05);
    EXPECT_GT(r.iops, spec.iopsCap * 0.8);
}

TEST(RemoteModel, LatencyFloorIsRtt)
{
    const device::RemoteSpec spec = device::awsIo2();
    const auto r = saturate<device::RemoteModel>(
        spec, blk::Op::Read, true, 4096, 1);
    EXPECT_GE(r.p50, spec.baseRtt / 2);
}

TEST(RemoteModel, ThroughputCapEnforced)
{
    const device::RemoteSpec spec = device::awsGp3();
    const auto r = saturate<device::RemoteModel>(
        spec, blk::Op::Read, false, 1 << 20, 64, 4.0);
    const double bps = r.iops * (1 << 20);
    EXPECT_LT(bps, spec.bpsCap * 1.1);
    EXPECT_GT(bps, spec.bpsCap * 0.7);
}

TEST(DeviceProfiles, FleetSsdsAreDistinct)
{
    const auto specs = device::fleetSsds();
    ASSERT_EQ(specs.size(), 8u);
    // H is the high-IOPS outlier; G the small device.
    EXPECT_GT(specs[7].channels, specs[6].channels * 4);
    for (const auto &s : specs)
        EXPECT_FALSE(s.name.empty());
}

TEST(DeviceProfiles, CloudVolumeOrdering)
{
    EXPECT_LT(device::awsGp3().iopsCap, device::awsIo2().iopsCap);
    EXPECT_LT(device::gcpBalanced().iopsCap,
              device::gcpSsd().iopsCap);
}

} // namespace
