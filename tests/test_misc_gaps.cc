/**
 * @file
 * Coverage for small paths not exercised elsewhere: histogram
 * merging across resolutions, periodic-timer reconfiguration,
 * cost-model formatting edge cases, and block-device name plumbing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/config_parse.hh"
#include "device/device_profiles.hh"
#include "device/hdd_model.hh"
#include "device/remote_model.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"

namespace {

using namespace iocost;

TEST(HistogramMerge, DifferentResolutionsReRecord)
{
    stat::Histogram coarse(3); // 8 sub-buckets
    stat::Histogram fine(6);   // 64 sub-buckets
    for (int i = 0; i < 1000; ++i)
        fine.record(100000 + i * 17);
    coarse.merge(fine);
    EXPECT_EQ(coarse.count(), 1000u);
    // Representative values land within the coarse resolution.
    EXPECT_NEAR(static_cast<double>(coarse.quantile(0.5)), 108500,
                108500 * 0.25);
}

TEST(HistogramMerge, EmptySourceIsNoOp)
{
    stat::Histogram a, b;
    a.record(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.minValue(), 5);
}

TEST(PeriodicTimerEdge, SetPeriodTakesEffectOnRearm)
{
    sim::Simulator sim;
    std::vector<sim::Time> fires;
    sim::PeriodicTimer timer(sim, 100, [&] {
        fires.push_back(sim.now());
    });
    timer.start();
    sim.runUntil(150);
    timer.setPeriod(300);
    EXPECT_EQ(timer.period(), 300);
    sim.runUntil(1000);
    ASSERT_GE(fires.size(), 3u);
    EXPECT_EQ(fires[0], 100);
    EXPECT_EQ(fires[1], 200); // already armed at the old period
    EXPECT_EQ(fires[2], 500); // new period from there on
}

TEST(PeriodicTimerEdge, RestartAfterStop)
{
    sim::Simulator sim;
    int fires = 0;
    sim::PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.runUntil(250);
    timer.stop();
    EXPECT_FALSE(timer.running());
    timer.start();
    EXPECT_TRUE(timer.running());
    sim.runUntil(600);
    EXPECT_EQ(fires, 5); // 100,200 then 350,450,550
}

TEST(ConfigFormat, QosLineMatchesKernelShape)
{
    core::QosParams qos;
    const std::string line = core::formatQosLine(qos);
    // Kernel shape: enable=1 ctrl=user rpct=.. rlat=.. ...
    EXPECT_EQ(line.rfind("enable=1 ctrl=user rpct=", 0), 0u)
        << line;
}

TEST(Devices, ModelNamesPropagate)
{
    sim::Simulator sim(171);
    device::SsdModel ssd(sim, device::fleetSsd('C'));
    EXPECT_EQ(ssd.modelName(), "fleet-ssd-C");
    device::HddModel hdd(sim, device::nearlineHdd());
    EXPECT_EQ(hdd.modelName(), "nearline-hdd-7200rpm");
    device::RemoteModel remote(sim, device::gcpBalanced());
    EXPECT_EQ(remote.modelName(), "gcp-pd-balanced");
}

TEST(Devices, RemoteInFlightAccounting)
{
    sim::Simulator sim(172);
    device::RemoteSpec spec = device::awsIo2();
    spec.queueDepth = 3;
    device::RemoteModel remote(sim, spec);
    remote.setCompletionFn([](blk::BioPtr, sim::Time) {});
    for (int i = 0; i < 3; ++i) {
        blk::BioPtr bio =
            blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot);
        EXPECT_TRUE(remote.submit(bio));
    }
    blk::BioPtr overflow =
        blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot);
    EXPECT_FALSE(remote.submit(overflow));
    EXPECT_EQ(remote.inFlight(), 3u);
    sim.runAll();
    EXPECT_EQ(remote.inFlight(), 0u);
}

} // namespace
