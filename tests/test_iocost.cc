/**
 * @file
 * Integration tests for the IOCost controller: vtime budget
 * throttling, proportional sharing, work conservation via donation,
 * issue-path rescind, the debt mechanism, and dynamic vrate
 * adjustment.
 *
 * Setup pattern: a device far faster than the configured cost model,
 * so the model (not the hardware) is the binding constraint and
 * throughput expectations are analytic: a cgroup with hierarchical
 * weight h sustains h * model_iops.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;
using core::DebtMode;
using core::IoCost;
using core::IoCostConfig;

/** Model claiming 10k random / 20k sequential read IOPS. */
core::LinearModelConfig
slowModel()
{
    core::LinearModelConfig m;
    m.rbps = 400e6;
    m.rseqiops = 20000;
    m.rrandiops = 10000;
    m.wbps = 400e6;
    m.wseqiops = 20000;
    m.wrandiops = 10000;
    return m;
}

struct Stack
{
    sim::Simulator sim{21};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;
    IoCost *ctl = nullptr;

    Stack() : Stack(makeConfig()) {}

    explicit Stack(const IoCostConfig &cfg)
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::enterpriseSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        auto iocost = std::make_unique<IoCost>(cfg);
        ctl = iocost.get();
        layer->setController(std::move(iocost));
    }

    static IoCostConfig
    makeConfig(double vrate_min = 1.0, double vrate_max = 1.0)
    {
        IoCostConfig cfg;
        cfg.model = core::CostModel::fromConfig(slowModel());
        cfg.qos.vrateMin = vrate_min;
        cfg.qos.vrateMax = vrate_max;
        cfg.qos.readLatTarget = 100 * sim::kMsec; // effectively off
        cfg.qos.writeLatTarget = 100 * sim::kMsec;
        cfg.qos.period = 10 * sim::kMsec;
        return cfg;
    }

    workload::FioWorkload
    reader(cgroup::CgroupId cg, bool random = true,
           unsigned iodepth = 32)
    {
        workload::FioConfig fc;
        fc.randomFraction = random ? 1.0 : 0.0;
        fc.iodepth = iodepth;
        return workload::FioWorkload(sim, *layer, cg, fc);
    }
};

TEST(IoCost, SingleCgroupThrottledToModelRate)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    auto job = s.reader(cg);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    job.resetStats();
    s.sim.runUntil(6 * sim::kSec);
    // hweight 1.0 at vrate 100% against a 10k IOPS model.
    EXPECT_NEAR(job.iops(), 10000, 600);
}

TEST(IoCost, SequentialStreamsGetSequentialRate)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    auto job = s.reader(cg, /*random=*/false);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    job.resetStats();
    s.sim.runUntil(6 * sim::kSec);
    EXPECT_NEAR(job.iops(), 20000, 1200);
}

TEST(IoCost, ProportionalSharing2to1)
{
    Stack s;
    const auto hi = s.tree.create(cgroup::kRoot, "hi", 200);
    const auto lo = s.tree.create(cgroup::kRoot, "lo", 100);
    auto hij = s.reader(hi);
    auto loj = s.reader(lo);
    hij.start();
    loj.start();
    s.sim.runUntil(1 * sim::kSec);
    hij.resetStats();
    loj.resetStats();
    s.sim.runUntil(11 * sim::kSec);
    const double ratio = hij.iops() / loj.iops();
    EXPECT_NEAR(ratio, 2.0, 0.2);
    // Total still pinned by the model.
    EXPECT_NEAR(hij.iops() + loj.iops(), 10000, 800);
}

TEST(IoCost, HierarchicalProportions)
{
    Stack s;
    const auto p = s.tree.create(cgroup::kRoot, "p", 300);
    const auto q = s.tree.create(cgroup::kRoot, "q", 100);
    const auto p1 = s.tree.create(p, "p1", 100);
    const auto p2 = s.tree.create(p, "p2", 100);
    auto j1 = s.reader(p1);
    auto j2 = s.reader(p2);
    auto j3 = s.reader(q);
    j1.start();
    j2.start();
    j3.start();
    s.sim.runUntil(1 * sim::kSec);
    j1.resetStats();
    j2.resetStats();
    j3.resetStats();
    s.sim.runUntil(11 * sim::kSec);
    // p gets 3/4, split evenly; q gets 1/4.
    EXPECT_NEAR(j1.iops(), 3750, 400);
    EXPECT_NEAR(j2.iops(), 3750, 400);
    EXPECT_NEAR(j3.iops(), 2500, 300);
}

TEST(IoCost, IdleCgroupBudgetFlowsToActive)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    s.tree.create(cgroup::kRoot, "b", 100); // never issues IO
    auto job = s.reader(a);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    job.resetStats();
    s.sim.runUntil(6 * sim::kSec);
    // b inactive: a owns the device despite equal weights.
    EXPECT_NEAR(job.iops(), 10000, 600);
}

TEST(IoCost, DonationGivesUnusedShareToBusySibling)
{
    Stack s;
    const auto busy = s.tree.create(cgroup::kRoot, "busy", 100);
    const auto light = s.tree.create(cgroup::kRoot, "light", 100);

    auto busy_job = s.reader(busy);
    workload::FioConfig light_cfg;
    light_cfg.arrival = workload::Arrival::Rate;
    light_cfg.ratePerSec = 500; // 5% of the device
    workload::FioWorkload light_job(s.sim, *s.layer, light,
                                    light_cfg);
    busy_job.start();
    light_job.start();
    s.sim.runUntil(2 * sim::kSec);
    busy_job.resetStats();
    light_job.resetStats();
    s.sim.runUntil(12 * sim::kSec);

    // Without donation busy would be pinned at 5000; with donation
    // it absorbs most of light's unused half.
    EXPECT_GT(busy_job.iops(), 8500);
    EXPECT_NEAR(light_job.iops(), 500, 60);
}

TEST(IoCost, DonationDisabledAblation)
{
    Stack s(Stack::makeConfig());
    IoCostConfig cfg = Stack::makeConfig();
    cfg.donationEnabled = false;
    Stack s2(cfg);

    const auto busy = s2.tree.create(cgroup::kRoot, "busy", 100);
    const auto light = s2.tree.create(cgroup::kRoot, "light", 100);
    auto busy_job = s2.reader(busy);
    workload::FioConfig light_cfg;
    light_cfg.arrival = workload::Arrival::Rate;
    light_cfg.ratePerSec = 500;
    workload::FioWorkload light_job(s2.sim, *s2.layer, light,
                                    light_cfg);
    busy_job.start();
    light_job.start();
    s2.sim.runUntil(2 * sim::kSec);
    busy_job.resetStats();
    s2.sim.runUntil(12 * sim::kSec);

    // Donation off: busy stays near its 50% entitlement (the light
    // sibling remains active, so no deactivation either).
    EXPECT_LT(busy_job.iops(), 6500);
    EXPECT_GT(busy_job.iops(), 4000);
}

TEST(IoCost, RescindRestoresShareWithinPeriods)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    const auto b = s.tree.create(cgroup::kRoot, "b", 100);

    auto a_job = s.reader(a);
    a_job.start();

    // b idles at a trickle long enough to become a donor...
    workload::FioConfig trickle;
    trickle.arrival = workload::Arrival::Rate;
    trickle.ratePerSec = 100;
    workload::FioWorkload b_trickle(s.sim, *s.layer, b, trickle);
    b_trickle.start();
    s.sim.runUntil(3 * sim::kSec);
    EXPECT_LT(s.tree.inuse(b), 100.0) << "b should be donating";
    b_trickle.stop();

    // ...then bursts; the rescind path must restore ~half within a
    // couple of planning periods.
    auto b_burst = s.reader(b);
    b_burst.start();
    s.sim.runUntil(3 * sim::kSec + 100 * sim::kMsec);
    b_burst.resetStats();
    s.sim.runUntil(8 * sim::kSec);
    EXPECT_NEAR(b_burst.iops(), 5000, 600);
}

TEST(IoCost, SwapBioBypassesThrottlingAndAccruesDebt)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    const auto b = s.tree.create(cgroup::kRoot, "b", 100);

    // Saturate both so no spare budget exists.
    auto a_job = s.reader(a);
    auto b_job = s.reader(b);
    a_job.start();
    b_job.start();
    s.sim.runUntil(2 * sim::kSec);

    // A burst of swap writes for a completes promptly despite a
    // having no budget; the debt is visible immediately at issue.
    int done = 0;
    for (int i = 0; i < 10; ++i) {
        auto bio = blk::Bio::make(
            blk::Op::Write, (1ull << 40) + i * 65536, 65536, a,
            [&](const blk::Bio &) { ++done; });
        bio->swap = true;
        s.layer->submit(std::move(bio));
    }
    EXPECT_GT(s.ctl->debt(a), 0.0);
    EXPECT_EQ(s.ctl->debt(b), 0.0);
    s.sim.runUntil(2 * sim::kSec + 20 * sim::kMsec);
    EXPECT_EQ(done, 10);
}

TEST(IoCost, DebtRepaidFromFutureBudget)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    const auto b = s.tree.create(cgroup::kRoot, "b", 100);
    auto a_job = s.reader(a);
    auto b_job = s.reader(b);
    a_job.start();
    b_job.start();
    s.sim.runUntil(2 * sim::kSec);

    for (int i = 0; i < 50; ++i) {
        auto bio = blk::Bio::make(
            blk::Op::Write, (1ull << 40) + i * 65536, 65536, a);
        bio->swap = true;
        s.layer->submit(std::move(bio));
    }
    s.sim.runUntil(2 * sim::kSec + 10 * sim::kMsec);
    const double debt0 = s.ctl->debt(a);
    EXPECT_GT(debt0, 0.0);

    // a's normal IO keeps flowing (paying the debt down), so the
    // debt must shrink and a must have received less than b.
    a_job.resetStats();
    b_job.resetStats();
    s.sim.runUntil(6 * sim::kSec);
    EXPECT_LT(s.ctl->debt(a), debt0);
    EXPECT_LT(a_job.iops(), b_job.iops());
}

TEST(IoCost, UserspaceDelayKicksInAboveThreshold)
{
    IoCostConfig cfg = Stack::makeConfig();
    cfg.qos.debtThreshold = 1 * sim::kMsec;
    Stack s(cfg);
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    const auto b = s.tree.create(cgroup::kRoot, "b", 100);
    auto b_job = s.reader(b);
    b_job.start();
    s.sim.runUntil(1 * sim::kSec);

    EXPECT_EQ(s.ctl->userspaceDelay(a), 0);
    // Pile on enough swap cost to cross the threshold. a issues no
    // normal IO ("free" swap IO), exactly the §3.5 scenario.
    for (int i = 0; i < 100; ++i) {
        auto bio = blk::Bio::make(
            blk::Op::Write, (1ull << 40) + i * 262144, 262144, a);
        bio->swap = true;
        s.layer->submit(std::move(bio));
    }
    EXPECT_GT(s.ctl->userspaceDelay(a), 0);
}

TEST(IoCost, RootChargeModeAccruesNoDebt)
{
    IoCostConfig cfg = Stack::makeConfig();
    cfg.debtMode = DebtMode::RootCharge;
    Stack s(cfg);
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    auto bio = blk::Bio::make(blk::Op::Write, 1ull << 40, 65536, a);
    bio->swap = true;
    s.layer->submit(std::move(bio));
    s.sim.runUntil(100 * sim::kMsec);
    EXPECT_EQ(s.ctl->debt(a), 0.0);
}

TEST(IoCost, InversionModeThrottlesSwap)
{
    IoCostConfig cfg = Stack::makeConfig();
    cfg.debtMode = DebtMode::Inversion;
    Stack s(cfg);
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    const auto b = s.tree.create(cgroup::kRoot, "b", 100);
    auto a_job = s.reader(a);
    auto b_job = s.reader(b);
    a_job.start();
    b_job.start();
    s.sim.runUntil(2 * sim::kSec);

    // With both saturated, a swap write for a must wait in line
    // (the priority inversion this mode demonstrates).
    bool done = false;
    auto bio = blk::Bio::make(blk::Op::Write, 1ull << 40, 262144, a,
                              [&](const blk::Bio &) { done = true; });
    bio->swap = true;
    s.layer->submit(std::move(bio));
    EXPECT_GT(s.ctl->waitingCount(a), 0u);
    s.sim.runUntil(2 * sim::kSec + 2 * sim::kMsec);
    EXPECT_FALSE(done);
    s.sim.runUntil(4 * sim::kSec);
    EXPECT_TRUE(done);
    EXPECT_EQ(s.ctl->debt(a), 0.0);
}

TEST(IoCost, IdleCgroupDeactivates)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    auto job = s.reader(a);
    job.start();
    s.sim.runUntil(500 * sim::kMsec);
    job.stop();
    EXPECT_TRUE(s.tree.activeSelf(a));
    // Let in-flight drain and several periods pass.
    s.sim.runUntil(2 * sim::kSec);
    EXPECT_FALSE(s.tree.activeSelf(a));
}

TEST(IoCost, VrateRisesWhenDeviceOutpacesModel)
{
    // Device is far faster than the model and latencies are far
    // below target: with waiters present, vrate must climb to its
    // ceiling.
    IoCostConfig cfg = Stack::makeConfig(0.25, 4.0);
    cfg.qos.readLatTarget = 50 * sim::kMsec;
    Stack s(cfg);
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    auto job = s.reader(a);
    job.start();
    s.sim.runUntil(10 * sim::kSec);
    EXPECT_GT(s.ctl->vrate(), 3.0);
    EXPECT_GT(job.iops(), 20000);
}

TEST(IoCost, VrateDropsOnLatencyViolations)
{
    // Model claims 10x the device's actual capability; saturating it
    // floods the device and violates a tight latency target, so
    // vrate must fall.
    core::LinearModelConfig lies = slowModel();
    lies.rrandiops = 400000;
    lies.rseqiops = 400000;
    lies.rbps = 4e9; // keep the 4k byte cost from dominating
    IoCostConfig cfg;
    cfg.model = core::CostModel::fromConfig(lies);
    cfg.qos.vrateMin = 0.1;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.readLatTarget = 300 * sim::kUsec;
    cfg.qos.period = 10 * sim::kMsec;

    sim::Simulator sim(22);
    device::SsdSpec spec = device::oldGenSsd(); // ~84k IOPS device
    device::SsdModel device(sim, spec);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    auto ctl_owned = std::make_unique<IoCost>(cfg);
    IoCost *ctl = ctl_owned.get();
    layer.setController(std::move(ctl_owned));

    const auto a = tree.create(cgroup::kRoot, "a", 100);
    workload::FioConfig fc;
    fc.iodepth = 256;
    workload::FioWorkload job(sim, layer, a, fc);
    job.start();
    sim.runUntil(10 * sim::kSec);
    EXPECT_LT(ctl->vrate(), 0.5);
}

TEST(IoCost, VrateSeriesRecorded)
{
    Stack s;
    const auto a = s.tree.create(cgroup::kRoot, "a", 100);
    auto job = s.reader(a);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    EXPECT_GT(s.ctl->vrateSeries().size(), 50u);
}

TEST(IoCost, CapsMatchTableOne)
{
    IoCost ctl(Stack::makeConfig());
    const auto caps = ctl.caps();
    EXPECT_TRUE(caps.lowOverhead);
    EXPECT_TRUE(caps.workConserving);
    EXPECT_TRUE(caps.memoryManagementAware);
    EXPECT_TRUE(caps.proportionalFairness);
    EXPECT_TRUE(caps.cgroupControl);
}

} // namespace
