/**
 * @file
 * Tests for the §6 extension: hypervisor IO scheduling with IOPS
 * vs occupancy pricing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "profile/device_profiler.hh"
#include "sim/simulator.hh"
#include "vm/hypervisor.hh"

namespace {

using namespace iocost;

struct Stack
{
    sim::Simulator sim{151};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;
    std::unique_ptr<vm::Hypervisor> hv;

    explicit Stack(vm::HvPolicy policy, unsigned window = 16)
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::oldGenSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        hv = std::make_unique<vm::Hypervisor>(
            *layer, policy,
            core::CostModel::fromConfig(
                profile::DeviceProfiler::profileSsd(
                    device::oldGenSsd())
                    .model),
            window);
    }
};

/** Closed-loop driver: keeps `depth` requests pending per VM. */
struct VmDriver
{
    Stack &s;
    vm::VmId vm;
    uint32_t size;
    bool random;
    uint64_t cursor = 0;
    sim::Rng rng;

    VmDriver(Stack &stack, vm::VmId id, uint32_t io_size,
             bool is_random)
        : s(stack), vm(id), size(io_size), random(is_random),
          rng(id + 7)
    {}

    void
    issue()
    {
        uint64_t offset;
        if (random) {
            offset = rng.below(1 << 20) * 4096;
        } else {
            offset = (static_cast<uint64_t>(vm) << 40) + cursor;
            cursor += size;
        }
        s.hv->submit(vm, blk::Bio::make(
                             blk::Op::Read, offset, size,
                             cgroup::kRoot,
                             [this](const blk::Bio &) { issue(); }));
    }

    void
    start(unsigned depth)
    {
        for (unsigned i = 0; i < depth; ++i)
            issue();
    }
};

TEST(Hypervisor, EqualGuestsSplitEvenly)
{
    Stack s(vm::HvPolicy::Occupancy);
    const auto a = s.hv->addVm({"a", 100});
    const auto b = s.hv->addVm({"b", 100});
    VmDriver da(s, a, 4096, true), db(s, b, 4096, true);
    da.start(16);
    db.start(16);
    s.sim.runUntil(5 * sim::kSec);
    const double ratio =
        static_cast<double>(s.hv->completed(a)) /
        static_cast<double>(s.hv->completed(b));
    EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Hypervisor, SharesAreProportional)
{
    Stack s(vm::HvPolicy::Occupancy);
    const auto a = s.hv->addVm({"a", 300});
    const auto b = s.hv->addVm({"b", 100});
    VmDriver da(s, a, 4096, true), db(s, b, 4096, true);
    da.start(16);
    db.start(16);
    s.sim.runUntil(5 * sim::kSec);
    const double ratio =
        static_cast<double>(s.hv->completed(a)) /
        static_cast<double>(s.hv->completed(b));
    EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(Hypervisor, IopsPolicyOverservesLargeIo)
{
    // Equal shares, one VM issues 4k, the other 256k: IOPS pricing
    // equalizes request counts, handing the large-IO guest several
    // times the device occupancy.
    Stack s(vm::HvPolicy::IopsShares);
    const auto small = s.hv->addVm({"small", 100});
    const auto large = s.hv->addVm({"large", 100});
    VmDriver ds(s, small, 4096, true);
    VmDriver dl(s, large, 262144, false);
    ds.start(16);
    dl.start(16);
    s.sim.runUntil(10 * sim::kSec);
    EXPECT_GT(s.hv->occupancy(large),
              2.5 * s.hv->occupancy(small));
}

TEST(Hypervisor, OccupancyPolicyEqualizesDeviceTime)
{
    Stack s(vm::HvPolicy::Occupancy);
    const auto small = s.hv->addVm({"small", 100});
    const auto large = s.hv->addVm({"large", 100});
    VmDriver ds(s, small, 4096, true);
    VmDriver dl(s, large, 262144, false);
    ds.start(16);
    dl.start(16);
    s.sim.runUntil(10 * sim::kSec);
    const double ratio =
        s.hv->occupancy(large) / s.hv->occupancy(small);
    EXPECT_NEAR(ratio, 1.0, 0.25);
}

TEST(Hypervisor, IdleGuestCannotBankService)
{
    Stack s(vm::HvPolicy::Occupancy);
    const auto busy = s.hv->addVm({"busy", 100});
    const auto late = s.hv->addVm({"late", 100});
    VmDriver db(s, busy, 4096, true);
    db.start(16);
    s.sim.runUntil(3 * sim::kSec);

    // `late` joins after 3 idle seconds; it must share from *now*,
    // not replay its unused history and starve `busy`.
    VmDriver dl(s, late, 4096, true);
    dl.start(16);
    const uint64_t busy_before = s.hv->completed(busy);
    s.sim.runUntil(4 * sim::kSec);
    EXPECT_GT(s.hv->completed(busy) - busy_before, 1000u);
}

TEST(Hypervisor, WindowBoundsInFlight)
{
    Stack s(vm::HvPolicy::Occupancy, /*window=*/4);
    const auto a = s.hv->addVm({"a", 100});
    for (int i = 0; i < 32; ++i) {
        s.hv->submit(a, blk::Bio::make(blk::Op::Read,
                                       static_cast<uint64_t>(i)
                                           << 20,
                                       4096, cgroup::kRoot));
    }
    EXPECT_EQ(s.hv->queued(a), 28u);
    s.sim.runAll();
    EXPECT_EQ(s.hv->completed(a), 32u);
    EXPECT_EQ(s.hv->queued(a), 0u);
}

} // namespace
