/**
 * @file
 * Unit tests for the deterministic fault-injection subsystem: the
 * --faults spec grammar, the window queries the device models rely
 * on, and the determinism contract of the error-draw stream.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/fault.hh"

namespace {

using namespace iocost;
using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultWindow;

TEST(FaultPlanParse, FullSpecRoundTrips)
{
    const FaultPlan plan = FaultPlan::parse(
        "lat@2s+1s=6,err@2500ms+250ms=0.02,stall@3s+50ms,"
        "cliff@1s+4s,seed=99,retries=7,backoff=250us,timeout=80ms");
    ASSERT_EQ(plan.windows.size(), 4u);

    EXPECT_EQ(plan.windows[0].kind, FaultKind::LatencyMult);
    EXPECT_EQ(plan.windows[0].start, 2 * sim::kSec);
    EXPECT_EQ(plan.windows[0].duration, 1 * sim::kSec);
    EXPECT_DOUBLE_EQ(plan.windows[0].param, 6.0);

    EXPECT_EQ(plan.windows[1].kind, FaultKind::ErrorRate);
    EXPECT_EQ(plan.windows[1].start, 2500 * sim::kMsec);
    EXPECT_EQ(plan.windows[1].duration, 250 * sim::kMsec);
    EXPECT_DOUBLE_EQ(plan.windows[1].param, 0.02);

    EXPECT_EQ(plan.windows[2].kind, FaultKind::Stall);
    EXPECT_EQ(plan.windows[3].kind, FaultKind::WriteCliff);

    EXPECT_EQ(plan.seed, 99u);
    EXPECT_EQ(plan.maxRetries, 7u);
    EXPECT_EQ(plan.retryBackoffBase, 250 * sim::kUsec);
    EXPECT_EQ(plan.bioTimeout, 80 * sim::kMsec);
}

TEST(FaultPlanParse, DefaultUnitIsMilliseconds)
{
    const FaultPlan plan = FaultPlan::parse("stall@100+5,timeout=3");
    ASSERT_EQ(plan.windows.size(), 1u);
    EXPECT_EQ(plan.windows[0].start, 100 * sim::kMsec);
    EXPECT_EQ(plan.windows[0].duration, 5 * sim::kMsec);
    EXPECT_EQ(plan.bioTimeout, 3 * sim::kMsec);
}

TEST(FaultPlanParse, EmptySpecIsEmptyPlan)
{
    const FaultPlan plan = FaultPlan::parse("");
    EXPECT_TRUE(plan.empty());
    // Retry-policy defaults survive an empty spec.
    EXPECT_EQ(plan.maxRetries, 4u);
    EXPECT_EQ(plan.bioTimeout, 0u);
}

TEST(FaultPlanParse, MalformedSpecsThrow)
{
    const char *bad[] = {
        "err@1s+1s=1.5",    // rate out of [0, 1]
        "err@1s+1s=-0.1",   //
        "err@1s+1s=abc",    // unparsable rate
        "lat@1s+1s",        // missing multiplier
        "lat@1s+1s=0",      // non-positive multiplier
        "stall@1s+1s=3",    // stall takes no parameter
        "cliff@1s+1s=3",    //
        "lat@1s+0=2",       // zero-length window
        "lat@1s",           // no '+DUR'
        "wobble@1s+1s",     // unknown fault kind
        "bogus",            // neither window nor KEY=VALUE
        "retries=99",       // above the [0, 32] bound
        "backoff=0",        // non-positive backoff
        "backoff=-1ms",     //
        "timeout=5parsecs", // unknown time unit
        "seed=",            // empty value
        "knob=1",           // unknown key
        ",,lat@1s+1s=2",    // empty leading token
    };
    for (const char *spec : bad) {
        EXPECT_THROW((void)FaultPlan::parse(spec),
                     std::invalid_argument)
            << spec;
    }
}

TEST(FaultPlanParse, ErrorNamesTheOffendingToken)
{
    try {
        (void)FaultPlan::parse("lat@1s+1s=3,err@2s+1s=7");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &err) {
        EXPECT_NE(std::string(err.what()).find("err@2s+1s=7"),
                  std::string::npos)
            << err.what();
    }
}

TEST(FaultWindowT, ActiveIsStartInclusiveEndExclusive)
{
    const FaultWindow w{FaultKind::Stall, 100, 50, 0.0};
    EXPECT_FALSE(w.active(99));
    EXPECT_TRUE(w.active(100));
    EXPECT_TRUE(w.active(149));
    EXPECT_FALSE(w.active(150));
    EXPECT_EQ(w.end(), 150);
}

TEST(FaultInjectorT, LatencyMultIsProductOfActiveWindows)
{
    FaultPlan plan;
    plan.windows.push_back(
        {FaultKind::LatencyMult, 0, 100, 2.0});
    plan.windows.push_back(
        {FaultKind::LatencyMult, 50, 100, 3.0});
    const FaultInjector inj(std::move(plan));
    EXPECT_DOUBLE_EQ(inj.latencyMult(10), 2.0);
    EXPECT_DOUBLE_EQ(inj.latencyMult(60), 6.0);  // overlap
    EXPECT_DOUBLE_EQ(inj.latencyMult(120), 3.0);
    EXPECT_DOUBLE_EQ(inj.latencyMult(200), 1.0); // outside
}

TEST(FaultInjectorT, StallUntilIsMaxActiveEnd)
{
    FaultPlan plan;
    plan.windows.push_back({FaultKind::Stall, 0, 100, 0.0});
    plan.windows.push_back({FaultKind::Stall, 50, 200, 0.0});
    const FaultInjector inj(std::move(plan));
    EXPECT_EQ(inj.stallUntil(10), 100);
    EXPECT_EQ(inj.stallUntil(60), 250);
    EXPECT_EQ(inj.stallUntil(150), 250);
    EXPECT_EQ(inj.stallUntil(300), 0u);
}

TEST(FaultInjectorT, WriteCliffOnlyDuringWindow)
{
    FaultPlan plan;
    plan.windows.push_back({FaultKind::WriteCliff, 100, 50, 0.0});
    const FaultInjector inj(std::move(plan));
    EXPECT_FALSE(inj.writeCliffActive(50));
    EXPECT_TRUE(inj.writeCliffActive(120));
    EXPECT_FALSE(inj.writeCliffActive(160));
}

/** err-window helper: rate 0.5 over [1000, 2000). */
FaultPlan
halfErrPlan(uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.windows.push_back({FaultKind::ErrorRate, 1000, 1000, 0.5});
    return plan;
}

TEST(FaultInjectorT, DrawStreamIsSeedDeterministic)
{
    FaultInjector a(halfErrPlan(7));
    FaultInjector b(halfErrPlan(7));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.drawError(1500), b.drawError(1500)) << i;
    EXPECT_EQ(a.errorsInjected(), b.errorsInjected());
    EXPECT_GT(a.errorsInjected(), 0u);
    EXPECT_LT(a.errorsInjected(), 200u);
}

TEST(FaultInjectorT, SeedMixDecorrelatesStreams)
{
    FaultInjector a(halfErrPlan(7), 1);
    FaultInjector b(halfErrPlan(7), 2);
    bool diverged = false;
    for (int i = 0; i < 200; ++i)
        diverged |= a.drawError(1500) != b.drawError(1500);
    EXPECT_TRUE(diverged);
}

TEST(FaultInjectorT, DrawsOutsideWindowConsumeNoRandomness)
{
    // Injector `a` performs many draws outside the error window
    // first; its subsequent in-window stream must match a fresh
    // injector's, proving the out-of-window draws left the RNG
    // untouched (the property that keeps healthy phases of a faulty
    // run byte-identical to a fault-free run).
    FaultInjector a(halfErrPlan(7));
    FaultInjector b(halfErrPlan(7));
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(a.drawError(50));
    EXPECT_EQ(a.errorsInjected(), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.drawError(1500), b.drawError(1500)) << i;
}

TEST(FaultInjectorT, OverlappingErrorWindowsUseMaxRate)
{
    FaultPlan plan;
    plan.windows.push_back({FaultKind::ErrorRate, 0, 100, 0.0});
    plan.windows.push_back({FaultKind::ErrorRate, 0, 100, 1.0});
    FaultInjector inj(std::move(plan));
    // Max rate 1.0 wins: every draw fails.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(inj.drawError(50));
}

TEST(FaultInjectorT, StallReportedOncePerWindow)
{
    FaultPlan plan;
    plan.windows.push_back({FaultKind::Stall, 0, 100, 0.0});
    plan.windows.push_back({FaultKind::Stall, 500, 100, 0.0});
    FaultInjector inj(std::move(plan));
    EXPECT_TRUE(inj.shouldReportStall(100));
    EXPECT_FALSE(inj.shouldReportStall(100));
    EXPECT_FALSE(inj.shouldReportStall(100));
    EXPECT_TRUE(inj.shouldReportStall(600)); // distinct window
    EXPECT_FALSE(inj.shouldReportStall(600));
}

} // namespace
