/**
 * @file
 * Tests for the shared write-ahead journal, including the §3.5
 * journal priority-inversion scenario: under IOCost's production
 * debt mode an innocent fsync stays fast even when the transaction
 * is full of a budget-exhausted neighbour's metadata; with the
 * inversion ablation it stalls.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fs/journal.hh"
#include "profile/device_profiler.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Stack
{
    sim::Simulator sim{111};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;
    std::unique_ptr<fs::Journal> journal;

    explicit Stack(fs::JournalConfig cfg = {})
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::newGenSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        journal = std::make_unique<fs::Journal>(sim, *layer, cfg);
    }
};

TEST(Journal, FsyncWaitsForCommitRecord)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "app");
    s.journal->logMetadata(cg, 1 << 20);
    bool durable = false;
    s.journal->fsync(cg, [&] { durable = true; });
    EXPECT_FALSE(durable) << "fsync must not complete synchronously";
    s.sim.runUntil(1 * sim::kSec);
    EXPECT_TRUE(durable);
    EXPECT_EQ(s.journal->commits(), 1u);
    // Data blocks + the 4k commit record reached the device.
    EXPECT_GE(s.journal->bytesWritten(), (1u << 20) + 4096u);
}

TEST(Journal, PeriodicTimerCommitsWithoutFsync)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "app");
    s.journal->logMetadata(cg, 4096);
    EXPECT_EQ(s.journal->commits(), 0u);
    s.sim.runUntil(200 * sim::kMsec);
    EXPECT_EQ(s.journal->commits(), 1u);
    EXPECT_EQ(s.journal->runningBytes(), 0u);
}

TEST(Journal, SizeCapForcesCommit)
{
    fs::JournalConfig cfg;
    cfg.maxTxnBytes = 1 << 20;
    cfg.commitInterval = 10 * sim::kSec; // timer out of the picture
    Stack s(cfg);
    const auto cg = s.tree.create(cgroup::kRoot, "app");
    s.journal->logMetadata(cg, 2 << 20);
    s.sim.runUntil(1 * sim::kSec);
    EXPECT_GE(s.journal->commits(), 1u);
}

TEST(Journal, ManyFsyncsBatchIntoOneCommit)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "app");
    int done = 0;
    for (int i = 0; i < 32; ++i) {
        s.journal->logMetadata(cg, 4096);
        s.journal->fsync(cg, [&] { ++done; });
    }
    s.sim.runUntil(1 * sim::kSec);
    EXPECT_EQ(done, 32);
    // Group commit: far fewer commits than fsyncs.
    EXPECT_LE(s.journal->commits(), 3u);
}

TEST(Journal, OverlappingCommitsSerialize)
{
    fs::JournalConfig cfg;
    cfg.commitInterval = 10 * sim::kSec;
    Stack s(cfg);
    const auto a = s.tree.create(cgroup::kRoot, "a");
    bool first = false, second = false;
    s.journal->logMetadata(a, 8 << 20);
    s.journal->fsync(a, [&] { first = true; });
    // While the first commit is in flight, log + fsync again.
    s.journal->logMetadata(a, 4096);
    s.journal->fsync(a, [&] { second = true; });
    s.sim.runUntil(2 * sim::kSec);
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
    EXPECT_EQ(s.journal->commits(), 2u);
}

/**
 * The §3.5 scenario: cgroup A floods the journal and has no budget;
 * cgroup B logs a little metadata and fsyncs. Production debt mode
 * must keep B's fsync fast; the Inversion ablation throttles the
 * commit IO against the committing cgroup's budget and B stalls.
 */
struct InversionOutcome
{
    uint64_t issued = 0;
    uint64_t completed = 0;
    sim::Time p99 = 0;
};

InversionOutcome
journalInversionRun(core::DebtMode mode)
{
    sim::Simulator sim(112);
    auto device = std::make_unique<device::SsdModel>(
        sim, device::oldGenSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, *device, tree);

    core::IoCostConfig cfg;
    cfg.model = core::CostModel::fromConfig(
        profile::DeviceProfiler::profileSsd(device::oldGenSsd())
            .model);
    cfg.qos.vrateMin = 1.0;
    cfg.qos.vrateMax = 1.0;
    cfg.qos.readLatTarget = 1 * sim::kSec;
    cfg.qos.writeLatTarget = 1 * sim::kSec;
    cfg.debtMode = mode;
    layer.setController(std::make_unique<core::IoCost>(cfg));

    // Small transactions: the flooder's metadata stream triggers
    // most commits itself (committer = flooder), which is where the
    // charging policy bites.
    fs::JournalConfig jcfg;
    jcfg.maxTxnBytes = 1 << 20;
    fs::Journal journal(sim, layer, jcfg);
    const auto a = tree.create(cgroup::kRoot, "flooder", 100);
    const auto b = tree.create(cgroup::kRoot, "innocent", 100);

    // A overruns its budget with open-loop data writes (a deep
    // throttled backlog builds in its iocost queue) and floods the
    // journal with metadata.
    workload::FioConfig flood;
    flood.readFraction = 0.0;
    flood.arrival = workload::Arrival::Rate;
    flood.ratePerSec = 80000; // ~1.5x the device-wide 4k-write budget
    workload::FioWorkload flood_job(sim, layer, a, flood);
    flood_job.start();
    sim::PeriodicTimer meta_flood(sim, 5 * sim::kMsec, [&] {
        journal.logMetadata(a, 256 << 10); // 50 MB/s of metadata
    });
    meta_flood.start();

    // B fsyncs a little metadata every 50ms.
    InversionOutcome out;
    stat::Histogram b_fsync;
    sim::PeriodicTimer b_commits(sim, 50 * sim::kMsec, [&] {
        journal.logMetadata(b, 4096);
        const sim::Time t0 = sim.now();
        ++out.issued;
        journal.fsync(b, [&, t0] {
            ++out.completed;
            b_fsync.record(sim.now() - t0);
        });
    });
    b_commits.start();

    sim.runUntil(10 * sim::kSec);
    out.p99 = b_fsync.count() ? b_fsync.quantile(0.99)
                              : sim::kTimeNever;
    return out;
}

TEST(Journal, DebtModePreventsCommitInversion)
{
    const InversionOutcome production =
        journalInversionRun(core::DebtMode::Production);
    const InversionOutcome inversion =
        journalInversionRun(core::DebtMode::Inversion);

    // Production: essentially every fsync completes, and fast.
    EXPECT_GE(production.completed + 2, production.issued);
    EXPECT_LT(production.p99, 200 * sim::kMsec);

    // Inversion: commits charged against the flooder's exhausted
    // budget stall the journal pipeline; innocent fsyncs pile up
    // behind them and most never finish within the run.
    EXPECT_LT(inversion.completed * 2, inversion.issued)
        << "inversion should leave most fsyncs stuck behind the "
           "flooder's throttled commit IO";
}

} // namespace
