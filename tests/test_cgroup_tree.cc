/**
 * @file
 * Unit tests for the cgroup hierarchy: hweight compounding, active
 * filtering, inuse adjustment, and generation-number cache behavior.
 */

#include <gtest/gtest.h>

#include "cgroup/cgroup_tree.hh"

namespace {

using namespace iocost::cgroup;

TEST(CgroupTree, RootOnly)
{
    CgroupTree t;
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.parent(kRoot), kNone);
    EXPECT_EQ(t.path(kRoot), "/");
    EXPECT_DOUBLE_EQ(t.hweightActive(kRoot), 1.0);
    EXPECT_DOUBLE_EQ(t.hweightInuse(kRoot), 1.0);
}

TEST(CgroupTree, PathConstruction)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "workload.slice");
    const CgroupId b = t.create(a, "web");
    EXPECT_EQ(t.path(b), "/workload.slice/web");
}

TEST(CgroupTree, SiblingShares)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 200);
    t.setActive(a, true);
    t.setActive(b, true);
    EXPECT_NEAR(t.hweightActive(a), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(t.hweightActive(b), 2.0 / 3.0, 1e-12);
}

TEST(CgroupTree, HierarchicalCompounding)
{
    CgroupTree t;
    const CgroupId p = t.create(kRoot, "p", 100);
    const CgroupId q = t.create(kRoot, "q", 100);
    const CgroupId pa = t.create(p, "pa", 300);
    const CgroupId pb = t.create(p, "pb", 100);
    t.setActive(pa, true);
    t.setActive(pb, true);
    t.setActive(q, true);
    EXPECT_NEAR(t.hweightActive(pa), 0.5 * 0.75, 1e-12);
    EXPECT_NEAR(t.hweightActive(pb), 0.5 * 0.25, 1e-12);
    EXPECT_NEAR(t.hweightActive(q), 0.5, 1e-12);
}

TEST(CgroupTree, InactiveSiblingsExcluded)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    // b idle: a owns the whole device.
    EXPECT_NEAR(t.hweightActive(a), 1.0, 1e-12);
    EXPECT_NEAR(t.hweightActive(b), 0.0, 1e-12);
    t.setActive(b, true);
    EXPECT_NEAR(t.hweightActive(a), 0.5, 1e-12);
}

TEST(CgroupTree, SubtreeActivePropagatesUp)
{
    CgroupTree t;
    const CgroupId p = t.create(kRoot, "p", 100);
    const CgroupId leaf = t.create(p, "leaf", 100);
    EXPECT_FALSE(t.subtreeActive(p));
    t.setActive(leaf, true);
    EXPECT_TRUE(t.subtreeActive(p));
    EXPECT_TRUE(t.subtreeActive(leaf));
    t.setActive(leaf, false);
    EXPECT_FALSE(t.subtreeActive(p));
}

TEST(CgroupTree, InactiveInternalNodeExcludedFromSums)
{
    CgroupTree t;
    const CgroupId p = t.create(kRoot, "p", 100);
    const CgroupId q = t.create(kRoot, "q", 100);
    const CgroupId pl = t.create(p, "pl", 100);
    const CgroupId ql = t.create(q, "ql", 100);
    t.setActive(pl, true);
    t.setActive(ql, true);
    EXPECT_NEAR(t.hweightActive(pl), 0.5, 1e-12);
    t.setActive(ql, false);
    EXPECT_NEAR(t.hweightActive(pl), 1.0, 1e-12);
    EXPECT_NEAR(t.hweightActive(ql), 0.0, 1e-12);
}

TEST(CgroupTree, SetWeightRestoresInuse)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    t.setInuse(a, 40.0);
    EXPECT_NEAR(t.inuse(a), 40.0, 1e-12);
    t.setWeight(a, 200);
    EXPECT_NEAR(t.inuse(a), 200.0, 1e-12);
}

TEST(CgroupTree, InuseAllowsOvershootButStaysPositive)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    // Donation math may push inuse above the configured weight
    // inside fully-donating subtrees.
    t.setInuse(a, 500.0);
    EXPECT_NEAR(t.inuse(a), 500.0, 1e-12);
    t.setInuse(a, -5.0);
    EXPECT_GT(t.inuse(a), 0.0);
}

TEST(CgroupTree, HweightInuseTracksDonation)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    t.setActive(b, true);
    t.setInuse(b, 50.0);
    EXPECT_NEAR(t.hweightInuse(a), 100.0 / 150.0, 1e-12);
    EXPECT_NEAR(t.hweightInuse(b), 50.0 / 150.0, 1e-12);
    // hweightActive ignores inuse.
    EXPECT_NEAR(t.hweightActive(a), 0.5, 1e-12);
}

TEST(CgroupTree, DeactivationRestoresInuse)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    t.setActive(a, true);
    t.setInuse(a, 10.0);
    t.setActive(a, false);
    EXPECT_NEAR(t.inuse(a), 100.0, 1e-12);
}

TEST(CgroupTree, GenerationBumpsOnMutation)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const uint64_t g0 = t.generation();
    t.setWeight(a, 150);
    const uint64_t g1 = t.generation();
    EXPECT_GT(g1, g0);
    t.setActive(a, true);
    EXPECT_GT(t.generation(), g1);
    const uint64_t g2 = t.generation();
    t.setActive(a, true); // no-op: already active
    EXPECT_EQ(t.generation(), g2);
}

TEST(CgroupTree, CachedHweightConsistentAfterChanges)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 100);
    t.setActive(a, true);
    t.setActive(b, true);
    EXPECT_NEAR(t.hweightActive(a), 0.5, 1e-12);
    t.setWeight(a, 300);
    EXPECT_NEAR(t.hweightActive(a), 0.75, 1e-12);
    EXPECT_NEAR(t.hweightActive(b), 0.25, 1e-12);
}

TEST(CgroupTree, LeafIdsAndAllIds)
{
    CgroupTree t;
    const CgroupId p = t.create(kRoot, "p");
    const CgroupId l1 = t.create(p, "l1");
    const CgroupId l2 = t.create(p, "l2");
    EXPECT_EQ(t.allIds().size(), 4u);
    const auto leaves = t.leafIds();
    ASSERT_EQ(leaves.size(), 2u);
    EXPECT_EQ(leaves[0], l1);
    EXPECT_EQ(leaves[1], l2);
}

TEST(CgroupTree, IsAncestor)
{
    CgroupTree t;
    const CgroupId p = t.create(kRoot, "p");
    const CgroupId l = t.create(p, "l");
    const CgroupId q = t.create(kRoot, "q");
    EXPECT_TRUE(t.isAncestor(kRoot, l));
    EXPECT_TRUE(t.isAncestor(p, l));
    EXPECT_TRUE(t.isAncestor(l, l));
    EXPECT_FALSE(t.isAncestor(q, l));
    EXPECT_FALSE(t.isAncestor(l, p));
}

TEST(CgroupTree, ActiveLeafHweightsSumToOne)
{
    CgroupTree t;
    const CgroupId a = t.create(kRoot, "a", 100);
    const CgroupId b = t.create(kRoot, "b", 50);
    const CgroupId a1 = t.create(a, "a1", 10);
    const CgroupId a2 = t.create(a, "a2", 30);
    const CgroupId b1 = t.create(b, "b1", 77);
    for (CgroupId cg : {a1, a2, b1})
        t.setActive(cg, true);
    const double sum = t.hweightActive(a1) + t.hweightActive(a2) +
                       t.hweightActive(b1);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

} // namespace
