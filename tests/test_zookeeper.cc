/**
 * @file
 * Tests for the ZooKeeper-like cluster workload: placement,
 * quorum-write semantics, snapshot jitter, group commit, and
 * violation tracking.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "blk/block_layer.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "sim/simulator.hh"
#include "workload/zookeeper.hh"

namespace {

using namespace iocost;

struct Cluster
{
    sim::Simulator sim{61};
    std::vector<std::unique_ptr<host::Host>> hosts;
    std::vector<blk::BlockLayer *> layers;
    std::vector<cgroup::CgroupId> parents;
    std::unique_ptr<workload::ZkCluster> zk;

    explicit Cluster(workload::ZkConfig cfg, unsigned n_hosts = 3)
    {
        for (unsigned h = 0; h < n_hosts; ++h) {
            host::HostOptions opts;
            opts.controller = "none";
            hosts.push_back(std::make_unique<host::Host>(
                sim,
                std::make_unique<device::SsdModel>(
                    sim, device::enterpriseSsd()),
                opts));
            layers.push_back(&hosts.back()->layer());
            parents.push_back(hosts.back()->workload());
        }
        zk = std::make_unique<workload::ZkCluster>(
            sim, layers, parents, cfg);
    }
};

workload::ZkConfig
smallConfig()
{
    workload::ZkConfig cfg;
    cfg.ensembles = 2;
    cfg.participantsPerEnsemble = 3;
    cfg.readsPerSec = 100;
    cfg.writesPerSec = 20;
    cfg.payloadBytes = 32 * 1024;
    cfg.noisyEnsemble = UINT32_MAX;
    cfg.snapshotEveryTxns = 0; // off unless the test wants them
    cfg.window = 1 * sim::kSec;
    return cfg;
}

TEST(ZkCluster, ParticipantsLandOnDistinctHosts)
{
    Cluster c(smallConfig());
    // Every host got participant cgroups from both ensembles, and
    // within an ensemble all hosts are distinct -> with 3 hosts and
    // 3 participants each host holds exactly one per ensemble.
    for (unsigned h = 0; h < 3; ++h) {
        std::set<std::string> names;
        for (auto cg : c.layers[h]->cgroups().allIds()) {
            const auto &name = c.layers[h]->cgroups().name(cg);
            if (name.rfind("zk-", 0) == 0)
                names.insert(name);
        }
        EXPECT_EQ(names.size(), 2u) << "host " << h;
    }
}

TEST(ZkCluster, ServesReadsAndWrites)
{
    Cluster c(smallConfig());
    c.zk->start();
    c.sim.runUntil(20 * sim::kSec);
    c.zk->stop();
    const auto &st = c.zk->ensembleStats(0);
    EXPECT_NEAR(static_cast<double>(st.reads), 2000, 300);
    EXPECT_NEAR(static_cast<double>(st.writes), 400, 100);
    EXPECT_GT(st.readLatency.count(), 0u);
    EXPECT_GT(st.writeLatency.count(), 0u);
    // Quorum writes include at least one log append round trip.
    EXPECT_GT(st.writeLatency.quantile(0.5), 50 * sim::kUsec);
}

TEST(ZkCluster, SnapshotsTriggerAndJitter)
{
    workload::ZkConfig cfg = smallConfig();
    cfg.snapshotEveryTxns = 100;
    cfg.snapshotBytes = 16ull << 20;
    Cluster c(cfg);
    c.zk->start();
    c.sim.runUntil(60 * sim::kSec);
    c.zk->stop();
    // ~20 writes/s -> ~1200 txns per participant -> ~12 snapshots
    // per participant, 3 participants per ensemble.
    const auto &st = c.zk->ensembleStats(0);
    EXPECT_GT(st.snapshots, 15u);
    EXPECT_LT(st.snapshots, 60u);
}

TEST(ZkCluster, ViolationTrackingCountsEpisodes)
{
    // Force violations by making the device absurdly slow.
    workload::ZkConfig cfg = smallConfig();
    cfg.sloTarget = 1 * sim::kMsec; // unattainable with 100KB logs
    cfg.payloadBytes = 1 << 20;
    Cluster c(cfg);
    c.zk->start();
    c.sim.runUntil(10 * sim::kSec);
    c.zk->stop();
    const auto &st = c.zk->ensembleStats(0);
    ASSERT_GE(st.violations.size(), 1u);
    for (const auto &v : st.violations) {
        EXPECT_GT(v.duration, 0);
        EXPECT_GT(v.worstP99, cfg.sloTarget);
    }
}

TEST(ZkCluster, WellBehavedAggregateExcludesNoisy)
{
    workload::ZkConfig cfg = smallConfig();
    cfg.noisyEnsemble = 1;
    Cluster c(cfg);
    c.zk->start();
    c.sim.runUntil(5 * sim::kSec);
    c.zk->stop();
    auto agg = c.zk->wellBehavedAggregate();
    const auto &e0 = c.zk->ensembleStats(0);
    EXPECT_EQ(agg.reads, e0.reads);
    EXPECT_EQ(agg.writes, e0.writes);
}

} // namespace
