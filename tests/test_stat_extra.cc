/**
 * @file
 * Tests for the remaining statistics utilities: rate meters, EWMA,
 * and time series.
 */

#include <gtest/gtest.h>

#include "stat/meter.hh"
#include "stat/time_series.hh"

namespace {

using namespace iocost;

TEST(RateMeter, AveragesOverWindow)
{
    stat::RateMeter m;
    m.reset(0);
    m.add(500);
    EXPECT_DOUBLE_EQ(m.perSecond(500 * sim::kMsec), 1000.0);
    m.add(500);
    EXPECT_DOUBLE_EQ(m.perSecond(1 * sim::kSec), 1000.0);
}

TEST(RateMeter, RestartResetsCount)
{
    stat::RateMeter m;
    m.reset(0);
    m.add(100);
    m.reset(1 * sim::kSec);
    EXPECT_EQ(m.count(), 0u);
    EXPECT_DOUBLE_EQ(m.perSecond(1 * sim::kSec), 0.0);
}

TEST(Ewma, ConvergesToStepInput)
{
    stat::Ewma e(100 * sim::kMsec);
    e.sample(0, 0.0);
    for (int i = 1; i <= 50; ++i)
        e.sample(i * 100 * sim::kMsec, 10.0);
    EXPECT_NEAR(e.value(), 10.0, 0.1);
}

TEST(Ewma, TimeConstantGovernsResponse)
{
    stat::Ewma fast(10 * sim::kMsec);
    stat::Ewma slow(1 * sim::kSec);
    fast.sample(0, 0.0);
    slow.sample(0, 0.0);
    fast.sample(50 * sim::kMsec, 1.0);
    slow.sample(50 * sim::kMsec, 1.0);
    EXPECT_GT(fast.value(), slow.value());
    // One tau => ~63%.
    stat::Ewma tau(50 * sim::kMsec);
    tau.sample(0, 0.0);
    tau.sample(50 * sim::kMsec, 1.0);
    EXPECT_NEAR(tau.value(), 0.63, 0.03);
}

TEST(Ewma, SameInstantSamplesAverage)
{
    stat::Ewma e(100);
    e.sample(5, 2.0);
    e.sample(5, 4.0);
    EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(TimeSeries, RecordsAndSummarizes)
{
    stat::TimeSeries s("x");
    s.record(0, 1.0);
    s.record(1, 3.0);
    s.record(2, 5.0);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 5.0);
    EXPECT_EQ(s.name(), "x");
}

TEST(TimeSeries, DownsampleAverages)
{
    stat::TimeSeries s("y");
    for (int i = 0; i < 100; ++i)
        s.record(i, static_cast<double>(i));
    const auto d = s.downsample(10);
    EXPECT_LE(d.size(), 10u);
    // Overall mean preserved by chunked averaging.
    EXPECT_NEAR(d.mean(), s.mean(), 1.0);
}

TEST(TimeSeries, DownsampleNoOpWhenSmall)
{
    stat::TimeSeries s("z");
    s.record(0, 1.0);
    const auto d = s.downsample(10);
    EXPECT_EQ(d.size(), 1u);
}

} // namespace
