/**
 * @file
 * Branchable-state tests: snapshot/restore round-trip byte-identity
 * across every controller and a faulted device, branch isolation,
 * and the what-if service's determinism gate (branch-from-
 * checkpoint == cold full re-run, byte for byte).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "controllers/factory.hh"
#include "host/device_factory.hh"
#include "host/host.hh"
#include "sim/rng.hh"
#include "whatif/query.hh"
#include "whatif/scenario.hh"
#include "whatif/service.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

/** A small two-job host, deterministically assembled. */
struct Rig
{
    sim::Simulator sim;
    std::unique_ptr<host::Host> host;
    std::vector<std::unique_ptr<workload::FioWorkload>> jobs;

    explicit Rig(const std::string &controller,
                 const std::string &faults = "",
                 const std::string &device = "newgen",
                 uint64_t seed = 7)
        : sim(seed)
    {
        core::LinearModelConfig model;
        auto dev = host::makeNamedDevice(device, sim, &model);
        const auto spec =
            controllers::parseControllerSpec(controller);
        if (!spec)
            throw std::invalid_argument("bad controller spec: " +
                                        controller);
        host::HostOptions opts;
        opts.controller = *spec;
        opts.controller.iocost.model =
            core::CostModel::fromConfig(model);
        opts.controller.iocost.qos.vrateMin = 0.5;
        opts.controller.iocost.qos.vrateMax = 1.0;
        opts.faults = faults;
        opts.installFaultInjector = true;
        host = std::make_unique<host::Host>(sim, std::move(dev),
                                            opts);
        for (int j = 0; j < 2; ++j) {
            workload::FioConfig fio;
            fio.iodepth = 16;
            fio.offsetBase = static_cast<uint64_t>(j) << 40;
            if (j == 1)
                fio.readFraction = 0.3;
            const auto cg = host->addWorkload(
                j ? "batch" : "web", j ? 100u : 200u);
            jobs.push_back(
                std::make_unique<workload::FioWorkload>(
                    sim, host->layer(), cg, fio));
            host->track(*jobs.back());
            jobs.back()->start();
        }
    }

    /** The byte tape of a fresh snapshot: the state signature. */
    std::vector<unsigned char>
    signature() const
    {
        return host->snapshot().image().bytes;
    }
};

const char *const kControllers[] = {
    "none",     "mq-deadline", "kyber",  "bfq",
    "blk-throttle", "iolatency",   "iocost",
};

/**
 * snapshot -> restore -> run(T) must be byte-identical to run(T)
 * without the round-trip, for every controller. Fuzzed over the
 * round-trip instant.
 */
TEST(SnapshotRoundTrip, EveryController)
{
    sim::Rng fuzz(2022);
    for (const char *ctl : kControllers) {
        for (int iter = 0; iter < 3; ++iter) {
            const sim::Time t1 =
                10 * sim::kMsec +
                static_cast<sim::Time>(
                    fuzz.below(90 * sim::kMsec));
            const sim::Time t2 = t1 + 120 * sim::kMsec;

            Rig plain(ctl);
            plain.sim.runUntil(t1);
            plain.sim.runUntil(t2);

            Rig tripped(ctl);
            tripped.sim.runUntil(t1);
            const host::HostSnapshot snap =
                tripped.host->snapshot();
            tripped.host->restore(snap);
            tripped.sim.runUntil(t2);

            EXPECT_EQ(plain.signature(), tripped.signature())
                << "controller " << ctl << " diverged after a "
                << "snapshot/restore round-trip at t=" << t1;
        }
    }
}

/** Same round-trip identity on a device with fault windows that
 *  straddle the round-trip instant (error and latency injection,
 *  retries and timeouts in flight). */
TEST(SnapshotRoundTrip, FaultedDevice)
{
    const std::string faults =
        "lat@40ms+80ms=6,err@60ms+60ms=0.05,timeout=30ms";
    sim::Rng fuzz(7);
    for (int iter = 0; iter < 4; ++iter) {
        const sim::Time t1 =
            30 * sim::kMsec +
            static_cast<sim::Time>(fuzz.below(80 * sim::kMsec));
        const sim::Time t2 = 200 * sim::kMsec;

        Rig plain("iocost", faults);
        plain.sim.runUntil(t1);
        plain.sim.runUntil(t2);

        Rig tripped("iocost", faults);
        tripped.sim.runUntil(t1);
        const host::HostSnapshot snap = tripped.host->snapshot();
        tripped.host->restore(snap);
        tripped.sim.runUntil(t2);

        EXPECT_EQ(plain.signature(), tripped.signature())
            << "faulted round-trip at t=" << t1;
    }
}

/** One snapshot restored twice must behave identically both times
 *  (boxes are immutable; restores clone out of them). */
TEST(SnapshotRoundTrip, MultiRestore)
{
    Rig rig("iocost");
    rig.sim.runUntil(50 * sim::kMsec);
    const host::HostSnapshot snap = rig.host->snapshot();

    rig.host->restore(snap);
    rig.sim.runUntil(150 * sim::kMsec);
    const auto first = rig.signature();

    rig.host->restore(snap);
    rig.sim.runUntil(150 * sim::kMsec);
    const auto second = rig.signature();

    EXPECT_EQ(first, second);
}

/** A branch runs a hypothetical and leaves no trace: state after
 *  the scope ends equals state at the branch point, and the
 *  continued run equals a run that never branched. */
TEST(BranchScope, Isolation)
{
    Rig branched("iocost");
    branched.sim.runUntil(60 * sim::kMsec);
    const auto at_branch = branched.signature();
    {
        host::BranchScope scope = branched.host->branch();
        branched.host->tree().setWeight(
            branched.host->workload(), 900);
        branched.sim.runUntil(140 * sim::kMsec);
    }
    EXPECT_EQ(at_branch, branched.signature())
        << "BranchScope did not roll back to the branch point";

    branched.sim.runUntil(200 * sim::kMsec);

    Rig straight("iocost");
    straight.sim.runUntil(200 * sim::kMsec);
    EXPECT_EQ(straight.signature(), branched.signature())
        << "a branch perturbed the baseline timeline";
}

whatif::Scenario
smallScenario()
{
    return whatif::Scenario::parse(
        "device=newgen;seconds=0.4;marks=100ms,200ms;seed=11");
}

/** The service's branch-from-checkpoint answer must be
 *  byte-identical to a cold full re-run for every query kind. */
TEST(WhatifService, DeterminismGate)
{
    const whatif::Scenario sc = smallScenario();
    whatif::Service service(sc, 2);
    const char *const queries[] = {
        "{\"q\":\"weight\",\"cg\":\"web\",\"value\":300,"
        "\"from\":\"150ms\"}",
        "{\"q\":\"fault\",\"spec\":\"lat@250ms+100ms=6\","
        "\"from\":\"220ms\"}",
        "{\"q\":\"device\",\"profile\":\"oldgen\","
        "\"from\":\"100ms\"}",
    };
    for (const char *line : queries) {
        const whatif::Query q = whatif::Query::parse(line);
        EXPECT_EQ(service.evaluate(q),
                  whatif::Service::evaluateCold(sc, q))
            << "query " << line;
    }
}

/** Identical queries are served from the result cache. */
TEST(WhatifService, ResultCache)
{
    whatif::Service service(smallScenario(), 1);
    const whatif::Query q = whatif::Query::parse(
        "{\"q\":\"weight\",\"cg\":\"batch\",\"value\":500}");
    const std::string first = service.evaluate(q);
    const std::string second = service.evaluate(q);
    EXPECT_EQ(first, second);
    EXPECT_GE(service.cacheHits(), 1u);
}

/** Malformed queries fail loudly at parse time. */
TEST(WhatifQuery, ParseErrors)
{
    EXPECT_THROW(whatif::Query::parse("not json"),
                 std::invalid_argument);
    EXPECT_THROW(whatif::Query::parse("{\"q\":\"weight\"}"),
                 std::invalid_argument);
    EXPECT_THROW(
        whatif::Query::parse(
            "{\"q\":\"fault\",\"spec\":\"timeout=10ms\"}"),
        std::invalid_argument);
    EXPECT_THROW(
        whatif::Query::parse(
            "{\"q\":\"weight\",\"cg\":\"web\",\"value\":300,"
            "\"bogus\":1}"),
        std::invalid_argument);
    const whatif::Query q = whatif::Query::parse(
        "{\"q\":\"weight\",\"cg\":\"web\",\"value\":300,"
        "\"from\":\"1s\"}");
    EXPECT_EQ(q.from, sim::kSec);
    EXPECT_EQ(q.weight, 300u);
}

/** Unknown cgroups and cross-kind device swaps are clean errors
 *  (whatif_error documents), not aborts. */
TEST(WhatifService, BadQueriesAreErrors)
{
    whatif::Service service(smallScenario(), 1);
    const std::string unknown_cg = service.evaluate(
        whatif::Query::parse("{\"q\":\"weight\",\"cg\":\"nope\","
                             "\"value\":300}"));
    EXPECT_NE(unknown_cg.find("whatif_error"), std::string::npos);
    const std::string wrong_kind = service.evaluate(
        whatif::Query::parse(
            "{\"q\":\"device\",\"profile\":\"hdd\"}"));
    EXPECT_NE(wrong_kind.find("whatif_error"), std::string::npos);
}

/** Scenario identity: canonicalization is stable and the hash
 *  separates materially different scenarios. */
TEST(WhatifScenario, CanonicalHash)
{
    const whatif::Scenario a = smallScenario();
    const whatif::Scenario b = smallScenario();
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hash(), b.hash());
    whatif::Scenario c = smallScenario();
    c.seed = 12;
    c.normalize();
    EXPECT_NE(a.hash(), c.hash());
    EXPECT_THROW(whatif::Scenario::parse("bogus-key=1"),
                 std::invalid_argument);
}

} // namespace
