/**
 * @file
 * Unit tests for the zero-allocation bio hot path: the BioPool
 * slab/free-list arena, the pooled BioPtr lifecycle, the flat
 * completion list used by the back-merge path, and the
 * InlineFunction small-buffer callable the whole path is built on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "blk/bio.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/inline_function.hh"
#include "sim/simulator.hh"

namespace {

using namespace iocost;

// ---------------------------------------------------------------
// InlineFunction
// ---------------------------------------------------------------

TEST(InlineFunction, SmallCaptureStoredInlineAndInvokes)
{
    int hits = 0;
    sim::InlineFunction<void(), 48> fn = [&hits] { ++hits; };
    ASSERT_TRUE(static_cast<bool>(fn));
    EXPECT_TRUE(fn.storedInline());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeap)
{
    struct Big
    {
        char pad[96];
    } big{};
    big.pad[0] = 7;
    int got = 0;
    sim::InlineFunction<void(), 48> fn = [big, &got] {
        got = big.pad[0];
    };
    EXPECT_FALSE(fn.storedInline());
    fn();
    EXPECT_EQ(got, 7);
}

TEST(InlineFunction, HotPathCaptureShapesFitInline)
{
    // The capture shapes the fast path relies on staying
    // allocation-free. If one of these starts spilling to the heap,
    // the perf_kernel --check-allocs gate fails too — this pins the
    // budget at unit-test granularity.

    // Device completion event: this + owned BioPtr + accept time.
    void *self = nullptr;
    blk::BioPtr owned;
    sim::Time now = 0;
    sim::InlineCallback device_done =
        [self, owned = std::move(owned), now]() mutable {
            (void)self;
            (void)now;
        };
    EXPECT_TRUE(device_done.storedInline());

    // Submission CPU event: this + owned BioPtr.
    blk::BioPtr owned2;
    sim::InlineCallback cpu_done =
        [self, owned = std::move(owned2)]() mutable { (void)self; };
    EXPECT_TRUE(cpu_done.storedInline());

    // Bio completion: object pointer + keep-alive + a scalar.
    auto keep = std::make_shared<int>(1);
    blk::BioEndFn end = [self, keep,
                         started = sim::Time{0}](const blk::Bio &) {
        (void)self;
        (void)started;
    };
    EXPECT_TRUE(end.storedInline());
}

TEST(InlineFunction, MoveTransfersCallableAndEmptiesSource)
{
    int hits = 0;
    sim::InlineFunction<void(), 48> a = [&hits] { ++hits; };
    sim::InlineFunction<void(), 48> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: post-move probe
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MutableStateSurvivesMoves)
{
    sim::InlineFunction<int(), 48> counter = [n = 0]() mutable {
        return ++n;
    };
    EXPECT_EQ(counter(), 1);
    sim::InlineFunction<int(), 48> moved = std::move(counter);
    EXPECT_EQ(moved(), 2);
}

TEST(InlineFunction, ConsumeInvokeEmptiesBeforeRunning)
{
    // consumeInvoke must vacate the wrapper before the callable
    // runs, so the callable can reuse its own storage (the event
    // queue recycles slots this way).
    sim::InlineCallback fn;
    bool was_empty_during_call = false;
    fn = [&fn, &was_empty_during_call] {
        was_empty_during_call = !static_cast<bool>(fn);
    };
    fn.consumeInvoke();
    EXPECT_TRUE(was_empty_during_call);
    EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, ResetReleasesCapturedState)
{
    auto token = std::make_shared<int>(42);
    sim::InlineCallback fn = [token] {};
    EXPECT_EQ(token.use_count(), 2);
    fn.reset();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(fn));
}

// ---------------------------------------------------------------
// BioPool
// ---------------------------------------------------------------

/** Restores the process-wide bypass flag on scope exit. */
struct BypassGuard
{
    explicit BypassGuard(bool on) { blk::BioPool::setBypass(on); }
    ~BypassGuard() { blk::BioPool::setBypass(false); }
};

TEST(BioPool, RecyclesReleasedBios)
{
    blk::BioPool pool;
    blk::BioPtr a = pool.make(blk::Op::Read, 0, 4096, cgroup::kRoot);
    blk::Bio *addr = a.get();
    EXPECT_EQ(a->pool, &pool);
    a.reset(); // returns to the free list, not the heap

    blk::BioPtr b =
        pool.make(blk::Op::Write, 4096, 4096, cgroup::kRoot);
    EXPECT_EQ(b.get(), addr); // LIFO free list hands it right back
    EXPECT_EQ(pool.acquired(), 2u);
    EXPECT_EQ(pool.created(), blk::BioPool::kSlabBios);
    EXPECT_EQ(pool.outstanding(), 1u);
}

TEST(BioPool, ReusedBioIsFullyReinitialized)
{
    blk::BioPool pool;
    {
        blk::BioPtr a = pool.make(blk::Op::Write, 123, 456,
                                  cgroup::kRoot,
                                  [](const blk::Bio &) {});
        a->id = 99;
        a->swap = true;
        a->meta = true;
        a->submitTime = 7;
        a->dispatchTime = 8;
        a->controllerScratch = 3.5;
    }
    blk::BioPtr b = pool.make(blk::Op::Read, 1, 2, cgroup::kRoot);
    EXPECT_EQ(b->id, 0u);
    EXPECT_EQ(b->op, blk::Op::Read);
    EXPECT_EQ(b->offset, 1u);
    EXPECT_EQ(b->size, 2u);
    EXPECT_FALSE(b->swap);
    EXPECT_FALSE(b->meta);
    EXPECT_EQ(b->submitTime, 0);
    EXPECT_EQ(b->dispatchTime, 0);
    EXPECT_EQ(b->controllerScratch, 0.0);
    EXPECT_FALSE(b->hasCompletion());
}

TEST(BioPool, ReleaseDropsCompletionCaptures)
{
    blk::BioPool pool;
    auto keep = std::make_shared<int>(0);
    {
        blk::BioPtr a =
            pool.make(blk::Op::Read, 0, 4096, cgroup::kRoot,
                      [keep](const blk::Bio &) {});
        a->addCompletion([keep](const blk::Bio &) {});
        EXPECT_EQ(keep.use_count(), 3);
    }
    // Both closures (onComplete and the merged slot) released their
    // keep-alive when the bio went back to the pool.
    EXPECT_EQ(keep.use_count(), 1);
}

TEST(BioPool, ChurnIsBoundedBySteadyStateDepth)
{
    blk::BioPool pool;
    constexpr unsigned kDepth = 8;
    constexpr unsigned kCycles = 10'000;

    std::deque<blk::BioPtr> window;
    for (unsigned i = 0; i < kCycles; ++i) {
        window.push_back(pool.make(blk::Op::Read,
                                   uint64_t{i} * 4096, 4096,
                                   cgroup::kRoot));
        if (window.size() > kDepth)
            window.pop_front();
    }
    window.clear();

    // A closed loop of depth kDepth must never hold more than
    // kDepth bios, and one slab covers it: no growth, all reuse.
    EXPECT_EQ(pool.highWater(), kDepth + 1);
    EXPECT_EQ(pool.created(), blk::BioPool::kSlabBios);
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_EQ(pool.acquired(), kCycles);
    EXPECT_GE(pool.recycled(),
              kCycles - blk::BioPool::kSlabBios);
}

TEST(BioPool, BypassRevertsToHeapAllocation)
{
    blk::BioPool pool;
    BypassGuard guard(true);
    EXPECT_TRUE(blk::BioPool::bypassed());
    blk::BioPtr a = pool.make(blk::Op::Read, 0, 4096, cgroup::kRoot);
    EXPECT_EQ(a->pool, nullptr); // plain heap bio; deleter frees it
    EXPECT_EQ(pool.acquired(), 0u);
    a.reset();

    blk::BioPool::setBypass(false);
    blk::BioPtr b = pool.make(blk::Op::Read, 0, 4096, cgroup::kRoot);
    EXPECT_EQ(b->pool, &pool);
}

TEST(BioPool, MoreCompletionsCapacitySurvivesRecycle)
{
    blk::BioPool pool;
    blk::Bio *addr = nullptr;
    size_t cap = 0;
    {
        blk::BioPtr a =
            pool.make(blk::Op::Read, 0, 4096, cgroup::kRoot,
                      [](const blk::Bio &) {});
        for (int i = 0; i < 4; ++i)
            a->addCompletion([](const blk::Bio &) {});
        addr = a.get();
        cap = a->moreCompletions.capacity();
        ASSERT_GT(cap, 0u);
    }
    blk::BioPtr b = pool.make(blk::Op::Read, 0, 4096, cgroup::kRoot);
    ASSERT_EQ(b.get(), addr);
    EXPECT_TRUE(b->moreCompletions.empty());
    // The vector's buffer is part of the slab slot's steady state:
    // repeated merging settles into zero allocations.
    EXPECT_GE(b->moreCompletions.capacity(), cap);
}

// ---------------------------------------------------------------
// Flat completion list (back-merge support)
// ---------------------------------------------------------------

TEST(Bio, CompletionsRunInAttachOrder)
{
    blk::BioPool pool;
    std::vector<int> order;
    blk::BioPtr bio =
        pool.make(blk::Op::Write, 0, 4096, cgroup::kRoot,
                  [&order](const blk::Bio &) {
                      order.push_back(0);
                  });
    bio->addCompletion(
        [&order](const blk::Bio &) { order.push_back(1); });
    bio->addCompletion(
        [&order](const blk::Bio &) { order.push_back(2); });
    EXPECT_TRUE(bio->hasCompletion());
    bio->runCompletions();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Bio, AddCompletionOnEmptyBioBecomesPrimary)
{
    blk::BioPool pool;
    blk::BioPtr bio =
        pool.make(blk::Op::Write, 0, 4096, cgroup::kRoot);
    EXPECT_FALSE(bio->hasCompletion());
    int hits = 0;
    bio->addCompletion(
        [&hits](const blk::Bio &) { ++hits; });
    EXPECT_TRUE(bio->hasCompletion());
    EXPECT_TRUE(bio->moreCompletions.empty()); // took the fast slot
    bio->runCompletions();
    EXPECT_EQ(hits, 1);
}

// ---------------------------------------------------------------
// Pooled bios through the real stack
// ---------------------------------------------------------------

TEST(BioPool, IdsStayMonotonicAcrossRecycling)
{
    // The block layer stamps ids at submission; recycling a bio must
    // never resurrect an old id. Run a closed loop deep enough that
    // every bio is a reused slab slot several times over.
    const uint64_t recycled_before = blk::BioPool::local().recycled();

    sim::Simulator sim(99);
    device::SsdModel device(sim, device::oldGenSsd());
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, device, tree);
    const auto cg = tree.create(cgroup::kRoot, "ids");

    std::vector<uint64_t> ids;
    constexpr unsigned kDepth = 4;
    constexpr unsigned kTotal = 500;
    unsigned to_issue = kTotal;

    // Self-refilling closed loop: each completion issues the next.
    struct Driver
    {
        blk::BlockLayer &layer;
        cgroup::CgroupId cg;
        std::vector<uint64_t> &ids;
        unsigned &to_issue;

        void
        issue()
        {
            // Stride 2x the size: never contiguous, so no bio is
            // back-merged (a merge hands every absorbed callback the
            // primary's id, which would break the strict ordering
            // this test pins).
            layer.submit(blk::Bio::make(
                blk::Op::Read,
                uint64_t{8192} * (ids.size() + 1), 4096, cg,
                [this](const blk::Bio &bio) {
                    ids.push_back(bio.id);
                    if (to_issue > 0) {
                        --to_issue;
                        issue();
                    }
                }));
        }
    } drv{layer, cg, ids, to_issue};

    for (unsigned i = 0; i < kDepth; ++i) {
        --to_issue;
        drv.issue();
    }
    sim.events().runAll();

    ASSERT_EQ(ids.size(), kTotal);
    // Completions arrive out of submission order (service times
    // vary across channels), so don't expect sorted ids — expect
    // that recycling never resurrected one: the 500 observed ids
    // are exactly the 500 the layer assigned, each seen once.
    std::sort(ids.begin(), ids.end());
    for (size_t i = 0; i < ids.size(); ++i)
        ASSERT_EQ(ids[i], i + 1);
    // The loop really exercised recycling, not fresh slots.
    EXPECT_GT(blk::BioPool::local().recycled(), recycled_before);
}

} // namespace
