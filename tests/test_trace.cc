/**
 * @file
 * Tests for trace capture, serialization, and replay.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/trace.hh"

namespace {

using namespace iocost;
using workload::ReplayConfig;
using workload::Trace;
using workload::TraceRecord;
using workload::TraceRecorder;
using workload::TraceReplayer;

struct Stack
{
    sim::Simulator sim{101};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;

    Stack()
    {
        device = std::make_unique<device::SsdModel>(
            sim, device::enterpriseSsd());
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
    }
};

TEST(Trace, RecorderCapturesCompletions)
{
    Stack s;
    const auto cg = s.tree.create(cgroup::kRoot, "app");
    TraceRecorder rec(*s.layer);
    for (int i = 0; i < 10; ++i) {
        rec.submit(blk::Bio::make(
            i % 2 ? blk::Op::Write : blk::Op::Read,
            static_cast<uint64_t>(i) * 8192, 4096, cg));
    }
    s.sim.runAll();
    const Trace &t = rec.trace();
    ASSERT_EQ(t.size(), 10u);
    EXPECT_EQ(t.readBytes(), 5u * 4096);
    EXPECT_EQ(t.writeBytes(), 5u * 4096);
    EXPECT_EQ(t.records().front().cgroupName, "/app");
    // Timestamps are completion-ordered.
    for (size_t i = 1; i < t.size(); ++i) {
        EXPECT_GE(t.records()[i].when, t.records()[i - 1].when);
    }
}

TEST(Trace, RecorderPreservesCallerCallback)
{
    Stack s;
    TraceRecorder rec(*s.layer);
    bool fired = false;
    rec.submit(blk::Bio::make(blk::Op::Read, 0, 4096, cgroup::kRoot,
                              [&](const blk::Bio &) {
                                  fired = true;
                              }));
    s.sim.runAll();
    EXPECT_TRUE(fired);
    EXPECT_EQ(rec.trace().size(), 1u);
}

TEST(Trace, SaveLoadRoundTrips)
{
    Trace t;
    t.add(TraceRecord{100, blk::Op::Read, 4096, 8192, "/web"});
    t.add(TraceRecord{250, blk::Op::Write, 0, 4096, "/db"});

    std::stringstream buf;
    t.save(buf);
    const Trace loaded = Trace::load(buf);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.records()[0].when, 100);
    EXPECT_EQ(loaded.records()[0].op, blk::Op::Read);
    EXPECT_EQ(loaded.records()[0].size, 8192u);
    EXPECT_EQ(loaded.records()[1].cgroupName, "/db");
    EXPECT_EQ(loaded.duration(), 150);
}

TEST(Trace, LoadSkipsMalformedLines)
{
    std::stringstream buf(
        "100 R 0 4096 /a\n"
        "garbage line\n"
        "200 X 0 4096 /a\n"
        "300 W 8192 4096 /b\n");
    const Trace loaded = Trace::load(buf);
    EXPECT_EQ(loaded.size(), 2u);
}

TEST(Trace, ReplayReissuesEverything)
{
    Stack s;
    Trace t;
    for (int i = 0; i < 20; ++i) {
        t.add(TraceRecord{i * sim::kMsec,
                          i % 3 ? blk::Op::Read : blk::Op::Write,
                          static_cast<uint64_t>(i) << 20, 4096,
                          "/replayed"});
    }
    TraceReplayer replay(s.sim, *s.layer, t);
    replay.start();
    s.sim.runAll();
    EXPECT_TRUE(replay.done());
    EXPECT_EQ(replay.completed(), 20u);
    // The cgroup named in the trace was created on demand.
    bool found = false;
    for (cgroup::CgroupId id = 0; id < s.tree.size(); ++id)
        found |= s.tree.name(id) == "replayed";
    EXPECT_TRUE(found);
}

TEST(Trace, ReplayTimeScaleCompresses)
{
    Stack s;
    Trace t;
    t.add(TraceRecord{0, blk::Op::Read, 0, 4096, "/a"});
    t.add(TraceRecord{1 * sim::kSec, blk::Op::Read, 8192, 4096,
                      "/a"});
    ReplayConfig cfg;
    cfg.timeScale = 0.1;
    TraceReplayer replay(s.sim, *s.layer, t, cfg);
    replay.start();
    s.sim.runAll();
    EXPECT_TRUE(replay.done());
    EXPECT_LT(s.sim.now(), 200 * sim::kMsec);
}

TEST(Trace, ReplayCgroupOverride)
{
    Stack s;
    const auto target = s.tree.create(cgroup::kRoot, "target");
    Trace t;
    t.add(TraceRecord{0, blk::Op::Read, 0, 4096, "/whatever"});
    ReplayConfig cfg;
    cfg.cgroupOverride = target;
    TraceReplayer replay(s.sim, *s.layer, t, cfg);
    replay.start();
    s.sim.runAll();
    EXPECT_EQ(s.layer->stats(target).reads, 1u);
}

TEST(Trace, RecordThenReplayMatchesVolume)
{
    // Capture a run, replay it on a fresh stack, compare volumes.
    Trace captured;
    {
        Stack s;
        const auto cg = s.tree.create(cgroup::kRoot, "app");
        TraceRecorder rec(*s.layer);
        for (int i = 0; i < 50; ++i) {
            rec.submit(blk::Bio::make(
                blk::Op::Read, static_cast<uint64_t>(i) << 16,
                16384, cg));
        }
        s.sim.runAll();
        captured = rec.take();
        EXPECT_EQ(rec.trace().size(), 0u) << "take() resets";
    }
    Stack fresh;
    TraceReplayer replay(fresh.sim, *fresh.layer, captured);
    replay.start();
    fresh.sim.runAll();
    EXPECT_EQ(replay.completed(), 50u);
}

} // namespace
