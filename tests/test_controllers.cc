/**
 * @file
 * Behavioural tests for the baseline controllers: blk-throttle's
 * hard limits, IOLatency's strict prioritization, BFQ's turn-taking
 * and sector accounting, kyber's adaptive write depth, and
 * mq-deadline's read preference.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/bfq.hh"
#include "controllers/blk_throttle.hh"
#include "controllers/factory.hh"
#include "controllers/io_latency.hh"
#include "controllers/kyber.hh"
#include "controllers/mq_deadline.hh"
#include "controllers/noop.hh"
#include "device/device_profiles.hh"
#include "device/hdd_model.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct Stack
{
    sim::Simulator sim{41};
    std::unique_ptr<blk::BlockDevice> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<blk::BlockLayer> layer;

    explicit Stack(std::unique_ptr<blk::IoController> ctl,
                   bool hdd = false)
    {
        if (hdd) {
            device = std::make_unique<device::HddModel>(
                sim, device::nearlineHdd());
        } else {
            device = std::make_unique<device::SsdModel>(
                sim, device::oldGenSsd());
        }
        layer = std::make_unique<blk::BlockLayer>(sim, *device,
                                                  tree);
        layer->setController(std::move(ctl));
    }

    workload::FioWorkload
    job(cgroup::CgroupId cg, workload::FioConfig cfg)
    {
        return workload::FioWorkload(sim, *layer, cg, cfg);
    }
};

TEST(Factory, AllMechanismsConstruct)
{
    for (const auto &name : controllers::allMechanisms()) {
        auto ctl = controllers::makeController(name);
        ASSERT_NE(ctl, nullptr) << name;
        EXPECT_EQ(ctl->caps().name, name);
    }
}

TEST(Factory, SpecNameAssignmentKeepsConfigs)
{
    controllers::ControllerSpec spec;
    spec.iocost.qos.period = 42 * sim::kMsec;
    spec.kyber.maxWriteDepth = 7;
    // Assigning a bare mechanism name must not wipe the configs,
    // so "set name" and "set config" compose in either order.
    spec = "kyber";
    EXPECT_EQ(spec.name, "kyber");
    EXPECT_EQ(spec.iocost.qos.period, 42 * sim::kMsec);
    EXPECT_EQ(spec.kyber.maxWriteDepth, 7u);
}

TEST(Factory, ParseControllerSpecLines)
{
    const auto kyber = controllers::parseControllerSpec(
        "kyber rlat=1000 wlat=8000 wdepth=32");
    ASSERT_TRUE(kyber.has_value());
    EXPECT_EQ(kyber->name, "kyber");
    EXPECT_EQ(kyber->kyber.readTarget, 1 * sim::kMsec);
    EXPECT_EQ(kyber->kyber.writeTarget, 8 * sim::kMsec);
    EXPECT_EQ(kyber->kyber.maxWriteDepth, 32u);

    const auto thr = controllers::parseControllerSpec(
        "blk-throttle rbps=100e6 wiops=500");
    ASSERT_TRUE(thr.has_value());
    EXPECT_DOUBLE_EQ(thr->throttle.defaultLimits.rbps, 100e6);
    EXPECT_DOUBLE_EQ(thr->throttle.defaultLimits.wiops, 500.0);

    const auto ioc = controllers::parseControllerSpec(
        "iocost rbps=500000000 rseqiops=10000 rrandiops=8000 "
        "wbps=400000000 wseqiops=9000 wrandiops=7000 "
        "rpct=90 rlat=2000 min=50 max=150 donation=0 debt=root");
    ASSERT_TRUE(ioc.has_value());
    EXPECT_FALSE(ioc->iocost.donationEnabled);
    EXPECT_EQ(ioc->iocost.debtMode, core::DebtMode::RootCharge);
    EXPECT_DOUBLE_EQ(ioc->iocost.qos.readLatQuantile, 0.90);
    EXPECT_EQ(ioc->iocost.qos.readLatTarget, 2 * sim::kMsec);
    EXPECT_DOUBLE_EQ(ioc->iocost.qos.vrateMin, 0.5);

    // Bare names parse; junk does not.
    EXPECT_TRUE(controllers::parseControllerSpec("none"));
    EXPECT_FALSE(controllers::parseControllerSpec(""));
    EXPECT_FALSE(controllers::parseControllerSpec("cfq"));
    EXPECT_FALSE(
        controllers::parseControllerSpec("kyber bogus=1"));
    EXPECT_FALSE(
        controllers::parseControllerSpec("iocost debt=bogus"));
}

TEST(Factory, SpecConfigsReachControllers)
{
    controllers::ControllerSpec spec("blk-throttle");
    spec.throttle.defaultLimits.riops = 123;
    auto ctl = controllers::makeController(spec);
    auto *thr =
        dynamic_cast<controllers::BlkThrottle *>(ctl.get());
    ASSERT_NE(thr, nullptr);
    // Spot-check via behaviour below (ThrottleHardLimits); here we
    // just assert the factory dispatched the right type per name.
    for (const auto &name : controllers::allMechanisms()) {
        auto c = controllers::makeController(
            controllers::ControllerSpec(name));
        EXPECT_EQ(c->caps().name, name);
    }
}

TEST(Factory, TableOneCapabilityMatrix)
{
    // The paper's Table 1, row by row.
    const auto caps = controllers::allCapabilities();
    for (const auto &c : caps) {
        if (c.name == "kyber" || c.name == "mq-deadline") {
            EXPECT_TRUE(c.lowOverhead && c.workConserving);
            EXPECT_FALSE(c.cgroupControl);
            EXPECT_FALSE(c.proportionalFairness);
        } else if (c.name == "blk-throttle") {
            EXPECT_FALSE(c.workConserving);
            EXPECT_TRUE(c.cgroupControl);
        } else if (c.name == "bfq") {
            EXPECT_FALSE(c.lowOverhead);
            EXPECT_TRUE(c.proportionalFairness);
            EXPECT_FALSE(c.memoryManagementAware);
        } else if (c.name == "iolatency") {
            EXPECT_TRUE(c.memoryManagementAware);
            EXPECT_FALSE(c.proportionalFairness);
        } else if (c.name == "iocost") {
            EXPECT_TRUE(c.lowOverhead && c.workConserving &&
                        c.memoryManagementAware &&
                        c.proportionalFairness && c.cgroupControl);
        }
    }
}

TEST(BlkThrottle, ReadIopsLimitEnforced)
{
    auto ctl = std::make_unique<controllers::BlkThrottle>();
    auto *throttle = ctl.get();
    Stack s(std::move(ctl));
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    throttle->setLimits(cg, {.riops = 1000});

    workload::FioConfig cfg;
    cfg.iodepth = 32;
    auto job = s.job(cg, cfg);
    job.start();
    s.sim.runUntil(5 * sim::kSec);
    EXPECT_NEAR(job.iops(), 1000, 60);
}

TEST(BlkThrottle, BytesLimitEnforced)
{
    auto ctl = std::make_unique<controllers::BlkThrottle>();
    auto *throttle = ctl.get();
    Stack s(std::move(ctl));
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    throttle->setLimits(cg, {.rbps = 10e6});

    workload::FioConfig cfg;
    cfg.blockSize = 65536;
    cfg.iodepth = 16;
    auto job = s.job(cg, cfg);
    job.start();
    s.sim.runUntil(5 * sim::kSec);
    EXPECT_NEAR(job.iops() * 65536, 10e6, 1e6);
}

TEST(BlkThrottle, UnlimitedCgroupUnaffected)
{
    auto ctl = std::make_unique<controllers::BlkThrottle>();
    auto *throttle = ctl.get();
    Stack s(std::move(ctl));
    const auto capped = s.tree.create(cgroup::kRoot, "capped");
    const auto open = s.tree.create(cgroup::kRoot, "open");
    throttle->setLimits(capped, {.riops = 500});

    workload::FioConfig cfg;
    cfg.iodepth = 32;
    auto j1 = s.job(capped, cfg);
    auto j2 = s.job(open, cfg);
    j1.start();
    j2.start();
    s.sim.runUntil(4 * sim::kSec);
    EXPECT_NEAR(j1.iops(), 500, 50);
    EXPECT_GT(j2.iops(), 20000) << "open cgroup rides the device";
}

TEST(BlkThrottle, NotWorkConservingWhenDeviceIdle)
{
    // The defining weakness: the cap binds even with an idle device.
    auto ctl = std::make_unique<controllers::BlkThrottle>();
    auto *throttle = ctl.get();
    Stack s(std::move(ctl));
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    throttle->setLimits(cg, {.riops = 200});
    workload::FioConfig cfg;
    cfg.iodepth = 64;
    auto job = s.job(cg, cfg);
    job.start();
    s.sim.runUntil(4 * sim::kSec);
    EXPECT_LT(job.iops(), 250);
}

TEST(IoLatency, ViolationPunishesLooserTargets)
{
    auto ctl = std::make_unique<controllers::IoLatency>();
    auto *iolat = ctl.get();
    Stack s(std::move(ctl));
    const auto tight = s.tree.create(cgroup::kRoot, "tight");
    const auto loose = s.tree.create(cgroup::kRoot, "loose");
    iolat->setTarget(tight, 150 * sim::kUsec);
    iolat->setTarget(loose, 50 * sim::kMsec);

    // Flood from the loose cgroup drives device latency above the
    // tight target; the loose cgroup's depth must collapse.
    workload::FioConfig flood;
    flood.iodepth = 128;
    auto floodjob = s.job(loose, flood);
    workload::FioConfig light;
    light.arrival = workload::Arrival::ThinkTime;
    light.thinkTime = 500 * sim::kUsec;
    light.iodepth = 1;
    auto lightjob = s.job(tight, light);
    floodjob.start();
    lightjob.start();
    s.sim.runUntil(5 * sim::kSec);
    EXPECT_LT(iolat->depthLimit(loose), 16u);
    // The protected cgroup keeps decent latency.
    EXPECT_LT(lightjob.latency().quantile(0.5), 400 * sim::kUsec);
}

TEST(IoLatency, DepthRecoversWhenTargetsMet)
{
    auto ctl = std::make_unique<controllers::IoLatency>();
    auto *iolat = ctl.get();
    Stack s(std::move(ctl));
    const auto tight = s.tree.create(cgroup::kRoot, "tight");
    const auto loose = s.tree.create(cgroup::kRoot, "loose");
    iolat->setTarget(tight, 150 * sim::kUsec);
    iolat->setTarget(loose, 50 * sim::kMsec);

    workload::FioConfig flood;
    flood.iodepth = 128;
    auto floodjob = s.job(loose, flood);
    workload::FioConfig light;
    light.arrival = workload::Arrival::ThinkTime;
    light.thinkTime = 500 * sim::kUsec;
    auto lightjob = s.job(tight, light);
    floodjob.start();
    lightjob.start();
    s.sim.runUntil(5 * sim::kSec);
    const unsigned punished = iolat->depthLimit(loose);
    floodjob.stop();
    lightjob.stop();
    s.sim.runUntil(15 * sim::kSec);
    EXPECT_GT(iolat->depthLimit(loose), punished);
}

TEST(IoLatency, SwapBypassesDepthLimit)
{
    auto ctl = std::make_unique<controllers::IoLatency>();
    auto *iolat = ctl.get();
    Stack s(std::move(ctl));
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    iolat->setTarget(cg, 0);

    // Saturate the cgroup's depth with normal reads...
    workload::FioConfig flood;
    flood.iodepth = 64;
    auto job = s.job(cg, flood);
    job.start();
    s.sim.runUntil(100 * sim::kMsec);

    // ...then a swap write still goes straight through.
    bool done = false;
    auto bio = blk::Bio::make(blk::Op::Write, 1ull << 40, 65536, cg,
                              [&](const blk::Bio &) { done = true; });
    bio->swap = true;
    s.layer->submit(std::move(bio));
    s.sim.runUntil(150 * sim::kMsec);
    EXPECT_TRUE(done);
}

TEST(Bfq, ExclusiveServiceTurns)
{
    auto ctl = std::make_unique<controllers::Bfq>();
    auto *bfq = ctl.get();
    Stack s(std::move(ctl));
    const auto a = s.tree.create(cgroup::kRoot, "a");
    const auto b = s.tree.create(cgroup::kRoot, "b");

    workload::FioConfig cfg;
    cfg.iodepth = 16;
    auto ja = s.job(a, cfg);
    auto jb = s.job(b, cfg);
    ja.start();
    jb.start();
    s.sim.runUntil(200 * sim::kMsec);
    // At any instant exactly one queue is in service.
    const auto svc = bfq->inService();
    EXPECT_TRUE(svc == a || svc == b);
}

TEST(Bfq, WeightedByteProportions)
{
    auto ctl = std::make_unique<controllers::Bfq>();
    Stack s(std::move(ctl));
    const auto hi = s.tree.create(cgroup::kRoot, "hi", 200);
    const auto lo = s.tree.create(cgroup::kRoot, "lo", 100);

    workload::FioConfig cfg;
    cfg.iodepth = 32;
    auto jh = s.job(hi, cfg);
    auto jl = s.job(lo, cfg);
    jh.start();
    jl.start();
    s.sim.runUntil(1 * sim::kSec);
    jh.resetStats();
    jl.resetStats();
    s.sim.runUntil(9 * sim::kSec);
    // Same IO size: byte fairness == IOPS fairness here.
    EXPECT_NEAR(jh.iops() / jl.iops(), 2.0, 0.35);
}

TEST(Bfq, SectorFairnessMisallocatesOnHdd)
{
    // Random vs sequential on a spinning disk: BFQ's byte accounting
    // grossly over-serves the random workload in *time* (Fig. 12's
    // failure mode) — equal bytes despite seeks costing ~100x.
    auto ctl = std::make_unique<controllers::Bfq>();
    Stack s(std::move(ctl), /*hdd=*/true);
    const auto rnd = s.tree.create(cgroup::kRoot, "rand", 100);
    const auto seq = s.tree.create(cgroup::kRoot, "seq", 100);

    workload::FioConfig rc;
    rc.randomFraction = 1.0;
    rc.iodepth = 8;
    workload::FioConfig sc;
    sc.randomFraction = 0.0;
    sc.iodepth = 8;
    auto jr = s.job(rnd, rc);
    auto js = s.job(seq, sc);
    jr.start();
    js.start();
    s.sim.runUntil(20 * sim::kSec);
    // Sequential standalone would be >20x random; under BFQ's byte
    // fairness it collapses toward parity.
    EXPECT_LT(js.iops() / jr.iops(), 6.0);
}

TEST(Kyber, WriteDepthShrinksWhenReadsHurt)
{
    auto ctl = std::make_unique<controllers::Kyber>();
    auto *kyber = ctl.get();
    // Tighten the read target so the old-gen SSD under write flood
    // violates it.
    Stack s(std::move(ctl));
    const auto cg = s.tree.create(cgroup::kRoot, "a");

    workload::FioConfig writes;
    writes.readFraction = 0.0;
    writes.blockSize = 256 * 1024;
    writes.iodepth = 128;
    auto wj = s.job(cg, writes);
    workload::FioConfig reads;
    reads.arrival = workload::Arrival::ThinkTime;
    reads.thinkTime = 200 * sim::kUsec;
    reads.iodepth = 4;
    auto rj = s.job(cg, reads);
    wj.start();
    rj.start();
    s.sim.runUntil(20 * sim::kSec);
    EXPECT_LT(kyber->writeDepth(), 128u)
        << "GC-inflated read latency must shrink the write depth";
}

TEST(MqDeadline, ReadsPreferredOverWrites)
{
    auto ctl = std::make_unique<controllers::MqDeadline>();
    Stack s(std::move(ctl));
    const auto cg = s.tree.create(cgroup::kRoot, "a");

    workload::FioConfig mixed;
    mixed.readFraction = 0.5;
    mixed.iodepth = 256;
    auto job = s.job(cg, mixed);
    job.start();
    s.sim.runUntil(5 * sim::kSec);
    const auto &st = s.layer->stats(cg);
    // Reads complete with consistently better latency.
    EXPECT_LT(st.totalLatency.count(), UINT64_MAX);
    EXPECT_GT(st.reads, 0u);
    EXPECT_GT(st.writes, 0u) << "writes must not starve";
}

TEST(Noop, PassThrough)
{
    Stack s(std::make_unique<controllers::NoopScheduler>());
    const auto cg = s.tree.create(cgroup::kRoot, "a");
    workload::FioConfig cfg;
    cfg.iodepth = 8;
    auto job = s.job(cg, cfg);
    job.start();
    s.sim.runUntil(1 * sim::kSec);
    EXPECT_GT(job.completed(), 1000u);
}

} // namespace
