/**
 * @file
 * Determinism of the fault-injection path: a seeded fault plan must
 * replay byte-identically — across repeated runs, with the bio pool
 * bypassed, and through the parallel fleet runner at any worker
 * count — and a throwing slice (malformed fault spec) must
 * propagate out of FleetSim::run instead of terminating a worker.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "blk/bio_pool.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "stat/telemetry.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

constexpr const char *kFaults =
    "err@50ms+200ms=0.1,lat@150ms+100ms=4,stall@300ms+10ms,"
    "cliff@200ms+100ms,timeout=50ms,backoff=200us,retries=3";

struct RunResult
{
    std::string digest;
    uint64_t deviceErrors = 0;
    uint64_t retries = 0;
    uint64_t failed = 0;
};

/**
 * One degraded single-host run: every telemetry record (detail on,
 * so per-completion error/retry records are included) plus the
 * block-layer error counters, serialized into one comparable string.
 */
RunResult
runFaultyHost(bool bypass_pool)
{
    blk::BioPool::setBypass(bypass_pool);
    RunResult out;
    {
        sim::Simulator sim(2024);
        const device::SsdSpec spec = device::newGenSsd();
        auto dev = std::make_unique<device::SsdModel>(sim, spec);

        stat::RingSink ring;
        host::HostOptions opts;
        opts.controller = "iocost";
        const auto &prof =
            profile::DeviceProfiler::profileSsd(spec);
        opts.controller.iocost.model =
            core::CostModel::fromConfig(prof.model);
        opts.controller.iocost.qos.period = 10 * sim::kMsec;
        opts.telemetrySink = &ring;
        opts.telemetryDetail = true;
        opts.faults = kFaults;

        host::Host host(sim, std::move(dev), opts);
        const auto web = host.addWorkload("web", 200);
        const auto batch = host.addWorkload("batch", 100);

        workload::FioConfig rf;
        rf.iodepth = 16;
        workload::FioWorkload reads(sim, host.layer(), web, rf);
        workload::FioConfig wf;
        wf.iodepth = 8;
        wf.readFraction = 0.0;
        wf.blockSize = 256 * 1024;
        wf.offsetBase = 1ull << 40;
        workload::FioWorkload writes(sim, host.layer(), batch, wf);
        reads.start();
        writes.start();
        sim.runUntil(400 * sim::kMsec);

        for (const stat::Record &r : ring.records())
            out.digest += stat::toJsonl(r);
        out.deviceErrors = host.layer().deviceErrors();
        out.retries = host.layer().retries();
        out.failed = host.layer().failedBios();
        out.digest += "errors=" + std::to_string(out.deviceErrors) +
                      " retries=" + std::to_string(out.retries) +
                      " timeouts=" +
                      std::to_string(host.layer().timeouts()) +
                      " failed=" + std::to_string(out.failed) +
                      " completed=" +
                      std::to_string(host.layer().completed());
    }
    blk::BioPool::setBypass(false);
    return out;
}

TEST(FaultDeterminism, RunExercisesTheErrorPath)
{
    // Guard against the byte-identity tests passing vacuously on a
    // run where the fault windows never fired.
    const RunResult r = runFaultyHost(false);
    EXPECT_GT(r.deviceErrors, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_NE(r.digest.find("\"error\""), std::string::npos);
}

TEST(FaultDeterminism, RepeatedRunsAreByteIdentical)
{
    const RunResult a = runFaultyHost(false);
    const RunResult b = runFaultyHost(false);
    EXPECT_EQ(a.digest, b.digest);
}

TEST(FaultDeterminism, PoolBypassDoesNotChangeOutcomes)
{
    const RunResult pooled = runFaultyHost(false);
    const RunResult bypass = runFaultyHost(true);
    EXPECT_EQ(pooled.digest, bypass.digest);
}

/** Small fleet whose slice window covers the fault windows. */
fleet::FleetConfig
faultyFleet()
{
    fleet::FleetConfig cfg;
    cfg.hosts = 4;
    cfg.days = 3;
    cfg.migrationStartDay = 1;
    cfg.migrationEndDay = 3;
    cfg.warmup = 300 * sim::kMsec;
    cfg.slice = 250 * sim::kMsec;
    cfg.fetchBytes = 2ull << 20;
    cfg.cleanupOps = 40;
    cfg.seed = 91;
    cfg.telemetry = true;
    cfg.faults =
        "lat@350ms+100ms=3,err@350ms+150ms=0.08,timeout=40ms";
    return cfg;
}

void
expectOutcomesIdentical(const std::vector<fleet::HostDayOutcome> &a,
                        const std::vector<fleet::HostDayOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].fetchFailed, b[i].fetchFailed) << i;
        EXPECT_EQ(a[i].cleanupFailed, b[i].cleanupFailed) << i;
        EXPECT_EQ(a[i].fetchTime, b[i].fetchTime) << i;
        EXPECT_EQ(a[i].cleanupTime, b[i].cleanupTime) << i;
        ASSERT_EQ(a[i].records.size(), b[i].records.size()) << i;
        for (size_t j = 0; j < a[i].records.size(); ++j) {
            const stat::Record &ra = a[i].records[j];
            const stat::Record &rb = b[i].records[j];
            ASSERT_EQ(ra.time, rb.time) << i << "/" << j;
            ASSERT_EQ(ra.source, rb.source) << i << "/" << j;
            ASSERT_EQ(ra.cgroup, rb.cgroup) << i << "/" << j;
            ASSERT_EQ(ra.key, rb.key) << i << "/" << j;
            ASSERT_EQ(ra.value, rb.value) << i << "/" << j;
        }
    }
}

TEST(FaultDeterminism, FleetWithFaultsIdenticalAtAnyJobs)
{
    const fleet::FleetConfig cfg = faultyFleet();
    std::vector<fleet::HostDayOutcome> seq, par;
    const auto days_seq = fleet::FleetSim::run(cfg, 1, &seq);
    const auto days_par = fleet::FleetSim::run(cfg, 4, &par);

    ASSERT_EQ(days_seq.size(), days_par.size());
    for (size_t i = 0; i < days_seq.size(); ++i) {
        EXPECT_EQ(days_seq[i].fetchFailures,
                  days_par[i].fetchFailures);
        EXPECT_EQ(days_seq[i].cleanupFailures,
                  days_par[i].cleanupFailures);
    }
    expectOutcomesIdentical(seq, par);

    // And the fault path genuinely fired somewhere in the fleet.
    uint64_t error_records = 0;
    for (const auto &o : seq) {
        for (const stat::Record &r : o.records)
            error_records += r.key == "error" ? 1 : 0;
    }
    EXPECT_GT(error_records, 0u);
}

TEST(FaultDeterminism, FleetSliceExceptionPropagates)
{
    // A malformed fault spec throws from the Host constructor inside
    // each slice. Both the sequential and the parallel runner must
    // surface it as std::invalid_argument at the call site — a
    // throwing worker thread must not std::terminate the process.
    fleet::FleetConfig cfg = faultyFleet();
    cfg.hosts = 2;
    cfg.days = 2;
    cfg.telemetry = false;
    cfg.faults = "err@oops";
    EXPECT_THROW(fleet::FleetSim::run(cfg, 1),
                 std::invalid_argument);
    EXPECT_THROW(fleet::FleetSim::run(cfg, 4),
                 std::invalid_argument);
}

} // namespace
