/**
 * @file
 * The block layer's IO error/retry path: transient errors are
 * requeued with exponential backoff, permanent errors fail after the
 * retry bound with a terminal status, timeouts dominate, controllers
 * see one onError per failed attempt and exactly one onComplete per
 * bio, and failed completions never pollute latency statistics.
 *
 * Also the re-entrancy regression test for BlockLayer's per-cgroup
 * stats table: references handed out by stats() must survive table
 * growth from a completion-driven resubmission into a fresh, far
 * higher cgroup id (with contiguous storage this is a
 * use-after-free; the table is a deque for exactly this reason).
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_layer.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;
using blk::Bio;
using blk::BioStatus;
using blk::BlockLayer;
using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultPlan;

/** Jitter-free SSD + bare block layer (no controller). */
struct Stack
{
    sim::Simulator sim{7};
    std::unique_ptr<device::SsdModel> device;
    cgroup::CgroupTree tree;
    std::unique_ptr<BlockLayer> layer;
    std::unique_ptr<FaultInjector> faults;
    cgroup::CgroupId cg = cgroup::kNone;

    Stack()
    {
        device::SsdSpec spec = device::enterpriseSsd();
        spec.jitterSigma = 0.0;
        spec.hiccupMeanInterval = 0;
        device = std::make_unique<device::SsdModel>(sim, spec);
        layer = std::make_unique<BlockLayer>(sim, *device, tree);
        cg = tree.create(cgroup::kRoot, "t");
    }

    void
    installFaults(FaultPlan plan, const BlockLayer::RetryPolicy &p)
    {
        faults = std::make_unique<FaultInjector>(std::move(plan));
        device->setFaultInjector(faults.get());
        layer->setRetryPolicy(p);
    }
};

/** One error window with the given rate over [start, start+dur). */
FaultPlan
errPlan(sim::Time start, sim::Time dur, double rate)
{
    FaultPlan plan;
    plan.windows.push_back(
        {FaultKind::ErrorRate, start, dur, rate});
    return plan;
}

TEST(ErrorRetry, TransientErrorIsRetriedToSuccess)
{
    Stack s;
    // Every attempt inside the first millisecond fails; the 2ms
    // backoff pushes the retry past the window, where it succeeds.
    BlockLayer::RetryPolicy p;
    p.maxRetries = 4;
    p.backoffBase = 2 * sim::kMsec;
    s.installFaults(errPlan(0, 1 * sim::kMsec, 1.0), p);

    bool done = false;
    BioStatus status = BioStatus::Error;
    s.layer->submit(Bio::make(blk::Op::Read, 0, 4096, s.cg,
                              [&](const Bio &b) {
                                  done = true;
                                  status = b.status;
                              }));
    s.sim.runAll();

    EXPECT_TRUE(done);
    EXPECT_EQ(status, BioStatus::Ok);
    EXPECT_EQ(s.layer->completed(), 1u);
    EXPECT_EQ(s.layer->deviceErrors(), 1u);
    EXPECT_EQ(s.layer->retries(), 1u);
    EXPECT_EQ(s.layer->failedBios(), 0u);
    EXPECT_EQ(s.layer->timeouts(), 0u);

    const blk::CgroupIoStats &st = s.layer->stats(s.cg);
    EXPECT_EQ(st.reads, 1u);
    EXPECT_EQ(st.errors, 1u);
    EXPECT_EQ(st.retries, 1u);
    EXPECT_EQ(st.failures, 0u);
}

TEST(ErrorRetry, PermanentErrorFailsAfterRetryBound)
{
    Stack s;
    BlockLayer::RetryPolicy p;
    p.maxRetries = 2;
    p.backoffBase = 100 * sim::kUsec;
    s.installFaults(errPlan(0, 10 * sim::kSec, 1.0), p);

    bool done = false;
    BioStatus status = BioStatus::Ok;
    s.layer->submit(Bio::make(blk::Op::Read, 0, 4096, s.cg,
                              [&](const Bio &b) {
                                  done = true;
                                  status = b.status;
                              }));
    s.sim.runAll();

    EXPECT_TRUE(done);
    EXPECT_EQ(status, BioStatus::Error);
    // Initial attempt + 2 retries, all failed.
    EXPECT_EQ(s.layer->deviceErrors(), 3u);
    EXPECT_EQ(s.layer->retries(), 2u);
    EXPECT_EQ(s.layer->failedBios(), 1u);
    EXPECT_EQ(s.layer->timeouts(), 0u);
    // Exactly one terminal completion for the accepted bio.
    EXPECT_EQ(s.layer->completed(), 1u);

    const blk::CgroupIoStats &st = s.layer->stats(s.cg);
    EXPECT_EQ(st.reads, 0u);
    EXPECT_EQ(st.errors, 3u);
    EXPECT_EQ(st.failures, 1u);
    // Failed bios contribute no latency samples.
    EXPECT_EQ(st.totalLatency.count(), 0u);
    EXPECT_EQ(st.deviceLatency.count(), 0u);
}

TEST(ErrorRetry, BackoffOvershootExpiresWithTimeout)
{
    Stack s;
    // First attempt errors inside the window; the 5ms backoff lands
    // the requeue past the 2ms deadline, so dispatch() expires it
    // inline — status Timeout dominates the earlier error.
    BlockLayer::RetryPolicy p;
    p.maxRetries = 4;
    p.backoffBase = 5 * sim::kMsec;
    p.bioTimeout = 2 * sim::kMsec;
    s.installFaults(errPlan(0, 1 * sim::kMsec, 1.0), p);

    bool done = false;
    BioStatus status = BioStatus::Ok;
    s.layer->submit(Bio::make(blk::Op::Read, 0, 4096, s.cg,
                              [&](const Bio &b) {
                                  done = true;
                                  status = b.status;
                              }));
    s.sim.runAll();

    EXPECT_TRUE(done);
    EXPECT_EQ(status, BioStatus::Timeout);
    EXPECT_EQ(s.layer->deviceErrors(), 1u);
    EXPECT_EQ(s.layer->retries(), 1u);
    EXPECT_EQ(s.layer->timeouts(), 1u);
    EXPECT_EQ(s.layer->failedBios(), 1u);
    EXPECT_EQ(s.layer->completed(), 1u);
    EXPECT_EQ(s.layer->stats(s.cg).timeouts, 1u);
}

/** Counts controller callbacks and checks status plumbing. */
struct CountingController : blk::IoController
{
    uint64_t submits = 0;
    uint64_t completes = 0;
    uint64_t errors = 0;
    BioStatus lastStatus = BioStatus::Ok;

    blk::ControllerCaps
    caps() const override
    {
        blk::ControllerCaps c;
        c.name = "counting";
        return c;
    }

    void
    onSubmit(blk::BioPtr bio) override
    {
        ++submits;
        layer().dispatch(std::move(bio));
    }

    void
    onComplete(const Bio &, const blk::CompletionInfo &info) override
    {
        ++completes;
        lastStatus = info.status;
    }

    void
    onError(const Bio &, const blk::CompletionInfo &info) override
    {
        ++errors;
        EXPECT_NE(info.status, BioStatus::Ok);
    }
};

TEST(ErrorRetry, ControllerSeesEveryAttemptAndOneCompletion)
{
    Stack s;
    BlockLayer::RetryPolicy p;
    p.maxRetries = 2;
    p.backoffBase = 100 * sim::kUsec;
    s.installFaults(errPlan(0, 10 * sim::kSec, 1.0), p);

    auto ctl = std::make_unique<CountingController>();
    CountingController *counts = ctl.get();
    s.layer->setController(std::move(ctl));

    s.layer->submit(
        Bio::make(blk::Op::Read, 0, 4096, s.cg, [](const Bio &) {}));
    s.sim.runAll();

    EXPECT_EQ(counts->submits, 1u);
    // One onError per failed attempt; the retry bypasses onSubmit
    // (the bio was charged once, like the kernel's requeue path).
    EXPECT_EQ(counts->errors, 3u);
    // Exactly one terminal onComplete, carrying the final status.
    EXPECT_EQ(counts->completes, 1u);
    EXPECT_EQ(counts->lastStatus, BioStatus::Error);
}

TEST(ErrorRetry, IocostTreatsErrorBurstAsSaturation)
{
    // Identical light workloads, one against a healthy device, one
    // against a device failing half its requests: the error burst
    // must feed IOCost's depletion signal and ratchet vrate down.
    auto finalVrate = [](const std::string &faults) {
        sim::Simulator sim(11);
        device::SsdSpec spec = device::enterpriseSsd();
        auto dev = std::make_unique<device::SsdModel>(sim, spec);

        host::HostOptions opts;
        opts.controller = "iocost";
        const auto &prof =
            profile::DeviceProfiler::profileSsd(spec);
        opts.controller.iocost.model =
            core::CostModel::fromConfig(prof.model);
        opts.controller.iocost.qos.period = 10 * sim::kMsec;
        opts.controller.iocost.qos.vrateMin = 0.25;
        opts.controller.iocost.qos.vrateMax = 2.0;
        opts.faults = faults;

        host::Host host(sim, std::move(dev), opts);
        const auto cg = host.addWorkload("light");

        workload::FioConfig fio;
        fio.arrival = workload::Arrival::Rate;
        fio.ratePerSec = 3000;
        fio.readFraction = 1.0;
        workload::FioWorkload job(sim, host.layer(), cg, fio);
        job.start();
        sim.runUntil(1 * sim::kSec);
        return host.iocost()->vrate();
    };

    const double healthy = finalVrate("");
    const double faulty =
        finalVrate("err@0+10s=0.5,retries=1,backoff=100us");
    EXPECT_LT(faulty, healthy);
}

TEST(ErrorRetry, StatsStableAcrossCompletionResubmitIntoFreshCgroup)
{
    // Regression: hold a stats() reference, then grow the per-cgroup
    // table from inside a completion callback by submitting into a
    // fresh cgroup id far past the current table size. With a
    // vector-backed table the growth reallocates and `held` dangles
    // (ASan flags the read below); the deque keeps it valid.
    Stack s;
    constexpr cgroup::CgroupId kFresh = 513;

    bool warm = false;
    s.layer->submit(Bio::make(blk::Op::Read, 0, 4096, s.cg,
                              [&](const Bio &) { warm = true; }));
    s.sim.runAll();
    ASSERT_TRUE(warm);

    const blk::CgroupIoStats &held = s.layer->stats(s.cg);
    ASSERT_EQ(held.reads, 1u);

    bool inner = false;
    s.layer->submit(Bio::make(
        blk::Op::Read, 1 << 20, 4096, s.cg, [&](const Bio &) {
            s.layer->submit(Bio::make(blk::Op::Read, 2 << 20, 4096,
                                      kFresh, [&](const Bio &) {
                                          inner = true;
                                      }));
        }));
    s.sim.runAll();

    EXPECT_TRUE(inner);
    EXPECT_EQ(held.reads, 2u); // still valid after table growth
    EXPECT_EQ(s.layer->stats(kFresh).reads, 1u);
}

} // namespace
