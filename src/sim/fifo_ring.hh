/**
 * @file
 * FifoRing — allocation-stable FIFO queue.
 *
 * std::deque frees and re-acquires its fixed-size blocks as a
 * steady-state queue cycles across block boundaries, which puts an
 * allocator round-trip on every ~64th push for pointer-sized
 * elements — invisible in microbenchmarks that never queue, and a
 * per-bio heap hit on any hot path that does (the iocost throttle
 * queue under sustained contention). FifoRing is a power-of-two
 * ring over a vector: it grows when full and never returns memory,
 * so a warmed queue runs allocation-free regardless of how many
 * elements cycle through it.
 */

#ifndef IOCOST_SIM_FIFO_RING_HH
#define IOCOST_SIM_FIFO_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace iocost::sim {

template <typename T>
class FifoRing
{
  public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    void
    push_back(T v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
        ++count_;
    }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    /** Element @p i positions behind the head (0 = front). Exists so
     *  snapshot code can walk a queue without draining it. */
    T &at(size_t i) { return buf_[(head_ + i) & (buf_.size() - 1)]; }
    const T &
    at(size_t i) const
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    /** Removes and default-resets the head slot, so owning element
     *  types (BioPtr) release their resource immediately. */
    void
    pop_front()
    {
        buf_[head_] = T();
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

  private:
    void
    grow()
    {
        const size_t old = buf_.size();
        std::vector<T> next(old == 0 ? 8 : old * 2);
        for (size_t i = 0; i < count_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (old - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_FIFO_RING_HH
