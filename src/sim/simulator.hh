/**
 * @file
 * Simulation driver bundling the event queue and the root RNG.
 *
 * A Simulator is the shared context every simulated component (block
 * layer, devices, memory manager, workloads) is constructed against.
 * It owns the clock and hands out deterministic child RNG streams.
 */

#ifndef IOCOST_SIM_SIMULATOR_HH
#define IOCOST_SIM_SIMULATOR_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace iocost::sim {

/**
 * Top-level simulation context.
 *
 * Components keep a reference to the Simulator and use it to read the
 * clock, schedule events, and derive RNG streams. The Simulator must
 * outlive every component constructed against it.
 */
class Simulator
{
  public:
    /** @param seed Root seed; all randomness derives from it. */
    explicit Simulator(uint64_t seed = 1)
        : rootRng_(seed)
    {}

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time (ns). */
    Time now() const { return events_.now(); }

    /** The event queue. */
    EventQueue &events() { return events_; }

    /** Schedule @p fn to run @p delay from now. */
    template <typename F>
    EventHandle
    after(Time delay, F &&fn)
    {
        return events_.scheduleAfter(delay, std::forward<F>(fn));
    }

    /** Schedule @p fn at absolute time @p when. */
    template <typename F>
    EventHandle
    at(Time when, F &&fn)
    {
        return events_.scheduleAt(when, std::forward<F>(fn));
    }

    /** Run the simulation until simulated time @p until. */
    uint64_t runUntil(Time until) { return events_.runUntil(until); }

    /** Run until no events remain. */
    uint64_t runAll() { return events_.runAll(); }

    /** Fork an independent deterministic RNG stream. */
    Rng forkRng() { return rootRng_.fork(); }

    /** @name Snapshot support: clock, event arena, root RNG.
     *  @{ */
    void
    saveState(StateWriter &w) const
    {
        events_.saveState(w);
        uint64_t s[4];
        rootRng_.getState(s);
        w.put(s[0]);
        w.put(s[1]);
        w.put(s[2]);
        w.put(s[3]);
    }

    void
    loadState(StateReader &r)
    {
        events_.loadState(r);
        uint64_t s[4];
        for (auto &word : s)
            r.get(word);
        rootRng_.setState(s);
    }
    /** @} */

  private:
    EventQueue events_;
    Rng rootRng_;
};

/**
 * Utility that invokes a callback on a fixed period until stopped.
 *
 * Used for controller planning paths and workload pacing. The timer
 * is safe to destroy at any point; the pending event is cancelled.
 */
class PeriodicTimer
{
  public:
    /**
     * @param sim Simulation context.
     * @param period Interval between invocations.
     * @param cb Callback to run every period.
     */
    PeriodicTimer(Simulator &sim, Time period, EventCallback cb)
        : sim_(sim), period_(period), cb_(std::move(cb))
    {}

    ~PeriodicTimer() { stop(); }

    PeriodicTimer(const PeriodicTimer &) = delete;
    PeriodicTimer &operator=(const PeriodicTimer &) = delete;

    /** Arm the timer; first firing is one period from now. */
    void
    start()
    {
        if (running_)
            return;
        running_ = true;
        arm();
    }

    /** Disarm the timer. */
    void
    stop()
    {
        running_ = false;
        pending_.cancel();
    }

    /** Change the period; takes effect at the next (re)arming. */
    void setPeriod(Time period) { period_ = period; }

    /** Current period. */
    Time period() const { return period_; }

    /** @return true if the timer is armed. */
    bool running() const { return running_; }

    /**
     * @name Snapshot support.
     *
     * The pending tick lives in the event arena (captured as
     * Tick{this}, which stays valid across an in-place restore), so
     * only the handle coordinates and the armed flag are state
     * here; cb_ is wiring, not state.
     * @{
     */
    void
    saveState(StateWriter &w) const
    {
        w.put(running_);
        w.put(period_);
        sim_.events().saveHandle(w, pending_);
    }

    void
    loadState(StateReader &r)
    {
        r.get(running_);
        r.get(period_);
        pending_ = sim_.events().loadHandle(r);
    }
    /** @} */

  private:
    /**
     * Pointer-sized re-arm thunk: always stored inline in the event
     * slot, so a running timer never allocates. The callback itself
     * is wrapped exactly once (in cb_) for the timer's lifetime —
     * the seed kernel re-wrapped it in a fresh closure every period.
     */
    struct Tick
    {
        PeriodicTimer *timer;
        void operator()() { timer->fire(); }
    };

    void arm() { pending_ = sim_.after(period_, Tick{this}); }

    void
    fire()
    {
        if (!running_)
            return;
        cb_();
        if (running_)
            arm();
    }

    Simulator &sim_;
    Time period_;
    EventCallback cb_;
    EventHandle pending_;
    bool running_ = false;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_SIMULATOR_HH
