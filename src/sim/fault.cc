#include "sim/fault.hh"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace iocost::sim {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::LatencyMult:
        return "lat";
    case FaultKind::ErrorRate:
        return "err";
    case FaultKind::Stall:
        return "stall";
    case FaultKind::WriteCliff:
        return "cliff";
    }
    return "?";
}

namespace {

[[noreturn]] void
bad(const std::string &token, const std::string &why)
{
    throw std::invalid_argument("faults: bad token \"" + token +
                                "\": " + why);
}

/** Parse a non-negative number with an optional time suffix. */
Time
parseTime(const std::string &token, const std::string &text)
{
    if (text.empty())
        bad(token, "empty time value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad(token, "unparsable time \"" + text + "\"");
    }
    if (value < 0.0)
        bad(token, "negative time \"" + text + "\"");
    const std::string unit = text.substr(pos);
    double scale = 0.0;
    if (unit.empty() || unit == "ms")
        scale = static_cast<double>(kMsec);
    else if (unit == "ns")
        scale = static_cast<double>(kNsec);
    else if (unit == "us")
        scale = static_cast<double>(kUsec);
    else if (unit == "s")
        scale = static_cast<double>(kSec);
    else
        bad(token, "unknown time unit \"" + unit + "\"");
    return static_cast<Time>(value * scale);
}

double
parseNumber(const std::string &token, const std::string &text)
{
    if (text.empty())
        bad(token, "empty value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad(token, "unparsable value \"" + text + "\"");
    }
    if (pos != text.size())
        bad(token, "trailing junk after \"" + text + "\"");
    return value;
}

/** Parse "KIND@START+DUR[=PARAM]" into a FaultWindow. */
FaultWindow
parseWindow(const std::string &token, FaultKind kind,
            const std::string &rest)
{
    const size_t plus = rest.find('+');
    if (plus == std::string::npos)
        bad(token, "expected START+DUR after '@'");
    const size_t eq = rest.find('=', plus);

    FaultWindow w;
    w.kind = kind;
    w.start = parseTime(token, rest.substr(0, plus));
    const size_t dur_end =
        (eq == std::string::npos ? rest.size() : eq) - (plus + 1);
    w.duration = parseTime(token, rest.substr(plus + 1, dur_end));
    if (w.duration <= 0)
        bad(token, "window duration must be positive");

    const bool wants_param =
        kind == FaultKind::LatencyMult || kind == FaultKind::ErrorRate;
    if (wants_param) {
        if (eq == std::string::npos)
            bad(token, "expected '=<value>'");
        w.param = parseNumber(token, rest.substr(eq + 1));
        if (kind == FaultKind::LatencyMult && w.param <= 0.0)
            bad(token, "latency multiplier must be > 0");
        if (kind == FaultKind::ErrorRate &&
            (w.param < 0.0 || w.param > 1.0))
            bad(token, "error rate must be in [0, 1]");
    } else if (eq != std::string::npos) {
        bad(token, "takes no '=<value>'");
    }
    return w;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t begin = 0;
    while (begin <= spec.size()) {
        size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string token = spec.substr(begin, end - begin);
        begin = end + 1;
        if (token.empty()) {
            if (end == spec.size())
                break;
            bad(token, "empty token");
        }

        const size_t at = token.find('@');
        if (at != std::string::npos) {
            const std::string kind_name = token.substr(0, at);
            const std::string rest = token.substr(at + 1);
            FaultKind kind;
            if (kind_name == "lat")
                kind = FaultKind::LatencyMult;
            else if (kind_name == "err")
                kind = FaultKind::ErrorRate;
            else if (kind_name == "stall")
                kind = FaultKind::Stall;
            else if (kind_name == "cliff")
                kind = FaultKind::WriteCliff;
            else
                bad(token, "unknown fault kind \"" + kind_name + "\"");
            plan.windows.push_back(parseWindow(token, kind, rest));
            continue;
        }

        const size_t eq = token.find('=');
        if (eq == std::string::npos)
            bad(token, "expected KIND@... or KEY=VALUE");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "seed") {
            const double n = parseNumber(token, value);
            if (n < 0.0)
                bad(token, "seed must be non-negative");
            plan.seed = static_cast<uint64_t>(n);
        } else if (key == "retries") {
            const double n = parseNumber(token, value);
            if (n < 0.0 || n > 32.0)
                bad(token, "retries must be in [0, 32]");
            plan.maxRetries = static_cast<unsigned>(n);
        } else if (key == "backoff") {
            plan.retryBackoffBase = parseTime(token, value);
            if (plan.retryBackoffBase <= 0)
                bad(token, "backoff must be positive");
        } else if (key == "timeout") {
            plan.bioTimeout = parseTime(token, value);
        } else {
            bad(token, "unknown key \"" + key + "\"");
        }
    }
    return plan;
}

} // namespace iocost::sim
