/**
 * @file
 * Small-buffer-optimized callback for the simulation hot path.
 *
 * The event queue schedules tens of millions of callbacks per run;
 * `std::function` pays a heap allocation for any capture larger than
 * its (small) internal buffer plus RTTI-driven dispatch.
 * InlineCallback stores callables up to kInlineBytes directly in the
 * object — enough for every lambda the simulator schedules (a couple
 * of pointers and a few scalars) — and only falls back to the heap
 * for oversized captures. Dispatch is two function-pointer tables,
 * no RTTI, no exception machinery.
 *
 * Move-only by design: events are scheduled exactly once, so copying
 * a callback is always a bug (it was also the seed kernel's main
 * per-event cost, see EventQueue::step()).
 */

#ifndef IOCOST_SIM_INLINE_CALLBACK_HH
#define IOCOST_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace iocost::sim {

/**
 * Type-erased void() callable with inline storage.
 *
 * Invoking an empty InlineCallback is undefined (like std::function
 * it would be a kernel bug; the event queue never does).
 */
class InlineCallback
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t kInlineBytes = 48;

    InlineCallback() = default;

    /** Wrap any void() callable. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&fn) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(fn));
    }

    /**
     * Assign a callable in place — no intermediate InlineCallback,
     * so the hot scheduling path constructs the capture directly in
     * its final storage (the event slot) instead of relocating it
     * through a temporary.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback &
    operator=(F &&fn)
    {
        reset();
        emplace(std::forward<F>(fn));
        return *this;
    }

    InlineCallback(InlineCallback &&other) noexcept
        : vtable_(other.vtable_)
    {
        if (vtable_) {
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            vtable_ = other.vtable_;
            if (vtable_) {
                vtable_->relocate(storage_, other.storage_);
                other.vtable_ = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** Destroy the held callable, leaving the wrapper empty. */
    void
    reset()
    {
        if (vtable_) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    /** Invoke; requires a held callable. */
    void operator()() { vtable_->invoke(storage_); }

    /**
     * Move the callable out of the wrapper, then invoke it — a
     * single dispatch instead of relocate+invoke+destroy. The
     * wrapper is empty and its storage reusable *before* the
     * callable runs, so the event queue can recycle the slot and the
     * callable can safely reschedule into it (even if the slot pool
     * reallocates underneath). Requires a held callable.
     */
    void
    consumeInvoke()
    {
        const VTable *vt = vtable_;
        vtable_ = nullptr;
        vt->consume(storage_);
    }

    /** @return true if a callable is held. */
    explicit operator bool() const { return vtable_ != nullptr; }

  private:
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            vtable_ = &kInlineVtable<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(fn));
            vtable_ = &kHeapVtable<Fn>;
        }
    }

    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct into dst from src; src is destroyed. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        /** Vacate src, then run the callable (see consumeInvoke). */
        void (*consume)(void *src);
    };

    template <typename Fn>
    static constexpr VTable kInlineVtable = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
        [](void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            Fn local(std::move(*s));
            s->~Fn();
            local();
        },
    };

    template <typename Fn>
    static constexpr VTable kHeapVtable = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *p) { delete *reinterpret_cast<Fn **>(p); },
        [](void *src) {
            // The callable lives on the heap, not in src: reading
            // the pointer already vacates the wrapper's storage.
            Fn *p = *reinterpret_cast<Fn **>(src);
            (*p)();
            delete p;
        },
    };

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const VTable *vtable_ = nullptr;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_INLINE_CALLBACK_HH
