/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every source of randomness in the simulation flows through a Rng
 * seeded from the experiment configuration, so that all tests and
 * benchmarks are bit-for-bit reproducible. The generator is
 * xoshiro256** seeded via SplitMix64, which is fast, has a long
 * period, and passes the usual statistical batteries.
 */

#ifndef IOCOST_SIM_RNG_HH
#define IOCOST_SIM_RNG_HH

#include <cmath>
#include <cstdint>

namespace iocost::sim {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with standard distributions, though the convenience members
 * below cover everything the simulator needs.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step: decorrelates consecutive seeds.
            x += 0x9E3779B97F4A7C15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return UINT64_MAX; }

    /** Next raw 64-bit value. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high bits give a uniformly distributed mantissa.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Multiplicative range reduction; bias is negligible for the
        // ranges the simulator uses (n << 2^64).
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        // Clamp away from 0 to avoid log(0).
        double u = uniform();
        if (u < 1e-18)
            u = 1e-18;
        return -mean * std::log(u);
    }

    /** Normally distributed double (Box-Muller, one value per call). */
    double
    normal(double mean, double stddev)
    {
        double u1 = uniform();
        if (u1 < 1e-18)
            u1 = 1e-18;
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
    }

    /**
     * Log-normally distributed value parameterized by the desired
     * median and a shape sigma (in log space). Used for latency jitter.
     */
    double
    logNormal(double median, double sigma)
    {
        return median * std::exp(sigma * normal(0.0, 1.0));
    }

    /** Fork an independent, deterministically derived generator. */
    Rng
    fork()
    {
        return Rng((*this)());
    }

    /** @name Snapshot support: the four state words, verbatim.
     *  (Plain accessors, not StateWriter hooks, so this header
     *  stays dependency-free.)
     *  @{ */
    void
    getState(uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    void
    setState(const uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }
    /** @} */

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace iocost::sim

#endif // IOCOST_SIM_RNG_HH
