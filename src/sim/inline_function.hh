/**
 * @file
 * Small-buffer-optimized move-only function for the simulation hot
 * paths.
 *
 * The event queue schedules tens of millions of callbacks per run
 * and the block layer delivers one completion callback per bio;
 * `std::function` pays a heap allocation for any capture larger than
 * its (small) internal buffer plus RTTI-driven dispatch, and forces
 * every capture to be copyable. InlineFunction<Sig, N> stores
 * callables up to N bytes directly in the object — enough for every
 * lambda the simulator schedules or completes (a couple of pointers
 * and a few scalars) — and only falls back to the heap for oversized
 * captures. Dispatch is two function-pointer tables, no RTTI, no
 * exception machinery.
 *
 * Move-only by design: events fire exactly once and a bio completes
 * exactly once, so copying a callback is always a bug (it was also
 * the seed kernel's main per-event cost, see EventQueue::step()).
 * The one deliberate exception is clone(), the snapshot path: a
 * held callable whose capture is copy-constructible can be
 * duplicated into a snapshot image, and restoring clones it back.
 * Callables with move-only captures report cloneable() == false and
 * make the enclosing component non-snapshottable.
 */

#ifndef IOCOST_SIM_INLINE_FUNCTION_HH
#define IOCOST_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace iocost::sim {

template <typename Sig, std::size_t N = 48>
class InlineFunction; // primary template: specialized on signatures

/**
 * Type-erased R(Args...) callable with N bytes of inline storage.
 *
 * Invoking an empty InlineFunction is undefined (like std::function
 * it would be a kernel bug; the event queue never does).
 */
template <typename R, typename... Args, std::size_t N>
class InlineFunction<R(Args...), N>
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t kInlineBytes = N;

    InlineFunction() = default;

    /** Empty, like a default-constructed one (std::function compat). */
    InlineFunction(std::nullptr_t) {} // NOLINT: implicit by design

    /** Wrap any R(Args...) callable. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineFunction(F &&fn) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(fn));
    }

    /**
     * Assign a callable in place — no intermediate InlineFunction,
     * so the hot scheduling path constructs the capture directly in
     * its final storage (the event slot, the bio) instead of
     * relocating it through a temporary.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineFunction &
    operator=(F &&fn)
    {
        reset();
        emplace(std::forward<F>(fn));
        return *this;
    }

    /** Drop the held callable (std::function compat). */
    InlineFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    InlineFunction(InlineFunction &&other) noexcept
        : vtable_(other.vtable_)
    {
        if (vtable_) {
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            vtable_ = other.vtable_;
            if (vtable_) {
                vtable_->relocate(storage_, other.storage_);
                other.vtable_ = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Destroy the held callable, leaving the wrapper empty. */
    void
    reset()
    {
        if (vtable_) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    /** Invoke; requires a held callable. */
    R
    operator()(Args... args)
    {
        return vtable_->invoke(storage_,
                               std::forward<Args>(args)...);
    }

    /**
     * Move the callable out of the wrapper, then invoke it — a
     * single dispatch instead of relocate+invoke+destroy. The
     * wrapper is empty and its storage reusable *before* the
     * callable runs, so the event queue can recycle the slot and the
     * callable can safely reschedule into it (even if the slot pool
     * reallocates underneath). Requires a held callable.
     */
    R
    consumeInvoke(Args... args)
    {
        const VTable *vt = vtable_;
        vtable_ = nullptr;
        return vt->consume(storage_, std::forward<Args>(args)...);
    }

    /** @return true if a callable is held. */
    explicit operator bool() const { return vtable_ != nullptr; }

    /**
     * @return true if empty or the held callable's capture is
     * copy-constructible (i.e. clone() would succeed).
     */
    bool
    cloneable() const
    {
        return vtable_ == nullptr || vtable_->clone != nullptr;
    }

    /**
     * Duplicate the held callable (the snapshot path; never hot).
     * Aborts on a move-only capture: snapshotting a component whose
     * pending callbacks cannot be copied is a contract violation the
     * caller must rule out up front, not a recoverable condition.
     */
    InlineFunction
    clone() const
    {
        InlineFunction out;
        if (vtable_ != nullptr) {
            if (vtable_->clone == nullptr) {
                std::fprintf(stderr,
                             "panic: InlineFunction::clone() on a "
                             "move-only capture — this callback "
                             "cannot be snapshotted\n");
                std::abort();
            }
            vtable_->clone(out.storage_, storage_);
            out.vtable_ = vtable_;
        }
        return out;
    }

    /**
     * @return true if the held callable (if any) lives in the inline
     * buffer. Exposed so tests can pin the capture-size budget of
     * hot-path call sites.
     */
    bool
    storedInline() const
    {
        return vtable_ == nullptr || vtable_->inlineStored;
    }

  private:
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            vtable_ = &kInlineVtable<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(fn));
            vtable_ = &kHeapVtable<Fn>;
        }
    }

    struct VTable
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct into dst from src; src is destroyed. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        /** Vacate src, then run the callable (see consumeInvoke). */
        R (*consume)(void *src, Args &&...);
        /** Copy-construct into dst from src (the snapshot path);
         *  nullptr for move-only captures. */
        void (*clone)(void *dst, const void *src);
        bool inlineStored;
    };

    using CloneFn = void (*)(void *, const void *);

    /** clone entry for the inline table: copy in place, or nullptr
     *  when the capture is move-only. */
    template <typename Fn>
    static constexpr CloneFn
    inlineCloneFor()
    {
        if constexpr (std::is_copy_constructible_v<Fn>) {
            return [](void *dst, const void *src) {
                ::new (dst) Fn(*std::launder(
                    reinterpret_cast<const Fn *>(src)));
            };
        } else {
            return nullptr;
        }
    }

    /** clone entry for the heap table: copy to a fresh heap cell. */
    template <typename Fn>
    static constexpr CloneFn
    heapCloneFor()
    {
        if constexpr (std::is_copy_constructible_v<Fn>) {
            return [](void *dst, const void *src) {
                *reinterpret_cast<Fn **>(dst) = new Fn(
                    **reinterpret_cast<Fn *const *>(src));
            };
        } else {
            return nullptr;
        }
    }

    template <typename Fn>
    static constexpr VTable kInlineVtable = {
        [](void *p, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(p)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
        [](void *src, Args &&...args) -> R {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            Fn local(std::move(*s));
            s->~Fn();
            return local(std::forward<Args>(args)...);
        },
        inlineCloneFor<Fn>(),
        true,
    };

    template <typename Fn>
    static constexpr VTable kHeapVtable = {
        [](void *p, Args &&...args) -> R {
            return (**reinterpret_cast<Fn **>(p))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *p) { delete *reinterpret_cast<Fn **>(p); },
        [](void *src, Args &&...args) -> R {
            // The callable lives on the heap, not in src: reading
            // the pointer already vacates the wrapper's storage.
            Fn *p = *reinterpret_cast<Fn **>(src);
            struct Deleter // delete even if the call throws
            {
                Fn *p;
                ~Deleter() { delete p; }
            } del{p};
            return (*p)(std::forward<Args>(args)...);
        },
        heapCloneFor<Fn>(),
        false,
    };

    alignas(std::max_align_t) unsigned char storage_[N];
    const VTable *vtable_ = nullptr;
};

/** The event queue's callback type (the historical name). */
using InlineCallback = InlineFunction<void(), 48>;

/**
 * Capture wrapper that makes a lambda *detectably* non-copyable.
 *
 * std::vector<move-only T> still advertises a copy constructor
 * (std::is_copy_constructible_v is true; instantiating the copy is
 * ill-formed), so a lambda capturing such a container by value sends
 * inlineCloneFor down the copy branch and the build fails inside
 * vector's copy. Capturing `MoveOnly(std::move(v))` instead turns
 * the trait honest: the clone slot becomes nullptr and the callback
 * is simply not snapshottable — clone() aborts loudly if a snapshot
 * ever reaches it.
 */
template <typename T>
struct MoveOnly
{
    T value;

    explicit MoveOnly(T v) : value(std::move(v)) {}
    MoveOnly(MoveOnly &&) = default;
    MoveOnly &operator=(MoveOnly &&) = default;
    MoveOnly(const MoveOnly &) = delete;
    MoveOnly &operator=(const MoveOnly &) = delete;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_INLINE_FUNCTION_HH
