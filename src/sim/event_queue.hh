/**
 * @file
 * Discrete-event queue.
 *
 * The event queue is the heart of the simulation kernel: a binary
 * min-heap of (time, sequence) keys over a pool of event slots. Ties
 * in time break by insertion order so the simulation is fully
 * deterministic.
 *
 * Hot-path design (every scheduled event in every run pays these
 * costs):
 *
 * - Callbacks are `InlineCallback`s: lambdas up to 48 bytes live in
 *   the slot itself, so scheduling performs no heap allocation
 *   (the seed kernel paid a `make_shared<bool>` tombstone plus a
 *   possible `std::function` allocation per event).
 * - Slots are recycled through a free list and carry a generation
 *   counter. An EventHandle is (queue, slot, generation); cancel and
 *   pending() are O(1) generation compares, and a recycled slot
 *   invalidates stale handles automatically.
 * - Heap entries are 24-byte PODs (time, seq, slot, generation), so
 *   sift operations move trivially-copyable values and never touch
 *   the callbacks.
 * - Cancellation destroys the callback eagerly (releasing whatever
 *   it captured) and leaves a dead heap entry that is skipped —
 *   detected by generation mismatch — when it surfaces.
 */

#ifndef IOCOST_SIM_EVENT_QUEUE_HH
#define IOCOST_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/state.hh"
#include "sim/time.hh"

namespace iocost::sim {

/** Callback type invoked when an event fires. */
using EventCallback = InlineCallback;

class EventQueue;

/**
 * Cancellation handle for a scheduled event.
 *
 * Copies refer to the same slot generation, so any copy may cancel.
 * A default-constructed handle refers to no event and is inert. A
 * handle must not be used after its EventQueue is destroyed (the
 * Simulator outlives every component by contract, so this only
 * constrains code that owns an EventQueue directly).
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    void cancel();

    /** @return true if the handle refers to a not-yet-fired event. */
    bool pending() const;

  private:
    friend class EventQueue;

    EventHandle(EventQueue *queue, uint32_t slot, uint32_t gen)
        : queue_(queue), slot_(slot), gen_(gen)
    {}

    EventQueue *queue_ = nullptr;
    uint32_t slot_ = 0;
    uint32_t gen_ = 0;
};

/**
 * Deterministic discrete-event priority queue.
 *
 * Not thread safe: the entire simulation is single threaded by design
 * (see DESIGN.md, "Deterministic DES"). The parallel fleet runner
 * gets its concurrency from one private EventQueue per host-day.
 */
class EventQueue
{
  public:
    /**
     * Schedule a callback at an absolute simulated time.
     *
     * Perfect-forwarded so the callable is constructed directly in
     * its event slot — no intermediate EventCallback relocations on
     * the hottest path in the simulator.
     *
     * @param when Absolute firing time; values before now() are
     *             clamped to now() (time is monotonic).
     * @param fn Callback to invoke (any void() callable).
     * @return Handle usable to cancel the event.
     */
    template <typename F>
    EventHandle
    scheduleAt(Time when, F &&fn)
    {
        // The clock never runs backwards: a past firing time would
        // silently reorder against events already executed, so clamp
        // it to the present.
        if (when < now_)
            when = now_;
        const uint32_t slot = acquireSlot(std::forward<F>(fn));
        const uint32_t gen = slots_[slot].gen;
        heap_.push_back(HeapEntry{when, nextSeq_++, slot, gen});
        siftUp(heap_.size() - 1);
        return EventHandle(this, slot, gen);
    }

    /** Schedule a callback a relative delay from now. */
    template <typename F>
    EventHandle
    scheduleAfter(Time delay, F &&fn)
    {
        return scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /** Current simulated time. */
    Time now() const { return now_; }

    /** @return true if no live events remain (prunes tombstones). */
    bool
    empty()
    {
        prune();
        return heap_.empty();
    }

    /** Firing time of the next live event, or kTimeNever. */
    Time
    nextEventTime()
    {
        prune();
        return heap_.empty() ? kTimeNever : heap_.front().when;
    }

    /**
     * Pop and run the next live event, advancing the clock.
     *
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    step()
    {
        while (!heap_.empty()) {
            const HeapEntry e = heap_.front();
            popTop();
            Slot &s = slots_[e.slot];
            if (s.gen != e.gen)
                continue; // tombstone of a cancelled event
            // Recycle the slot and vacate the callback *before*
            // invoking: the callback may schedule (growing or even
            // reallocating the pool) or query its own handle (which
            // must read not-pending, like the seed kernel's
            // tombstone-before-invoke). consumeInvoke moves the
            // callable to the stack in the same dispatch that runs
            // it, so the hot path pays one indirect call, not three.
            ++s.gen;
            s.nextFree = freeHead_;
            freeHead_ = e.slot;
            now_ = e.when;
            s.cb.consumeInvoke();
            return true;
        }
        return false;
    }

    /**
     * Run events with firing time <= @p until, then advance the clock
     * to @p until.
     *
     * @return number of events executed.
     */
    uint64_t
    runUntil(Time until)
    {
        uint64_t executed = 0;
        while (nextEventTime() <= until) {
            if (!step())
                break;
            ++executed;
        }
        if (now_ < until)
            now_ = until;
        return executed;
    }

    /** Run until no live events remain. @return events executed. */
    uint64_t
    runAll()
    {
        uint64_t executed = 0;
        while (step())
            ++executed;
        return executed;
    }

    /**
     * @name Snapshot support
     *
     * The whole slot arena is cloned wholesale: every live
     * callback's capture is copied into the image (so the snapshot
     * owns independent state) while the heap keys, slot indices and
     * generation counters are preserved *exactly*. Preserving
     * (when, seq) keys — rather than re-registering events — is
     * what keeps tie-break order, and therefore the simulation,
     * byte-identical after a restore. Saved EventHandles are
     * revalidated for free: a handle is (slot, generation), and
     * both roll back with the arena.
     *
     * Requires every pending callback to be cloneable (copyable
     * capture); clone() aborts otherwise.
     * @{
     */

    void
    saveState(StateWriter &w) const
    {
        w.put(now_);
        w.put(nextSeq_);
        w.put(freeHead_);
        w.putPods(heap_);
        w.put(static_cast<uint32_t>(slots_.size()));
        for (const Slot &s : slots_) {
            w.put(s.gen);
            w.put(s.nextFree);
            const bool armed = static_cast<bool>(s.cb);
            w.put(armed);
            if (armed) {
                w.putBox(std::make_shared<const EventCallback>(
                    s.cb.clone()));
            }
        }
    }

    void
    loadState(StateReader &r)
    {
        r.get(now_);
        r.get(nextSeq_);
        r.get(freeHead_);
        r.getPods(heap_);
        const auto n = r.get<uint32_t>();
        // Destroy current callbacks first: post-snapshot events may
        // hold resources (pooled bios) that must return to their
        // owners before the restored callbacks re-clone theirs.
        slots_.clear();
        slots_.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
            Slot &s = slots_[i];
            r.get(s.gen);
            r.get(s.nextFree);
            if (r.get<bool>())
                s.cb = r.getBoxAs<EventCallback>()->clone();
        }
    }

    /** Persist a component's EventHandle as its (slot, generation)
     *  coordinates; valid again after the arena is restored. */
    void
    saveHandle(StateWriter &w, const EventHandle &h) const
    {
        w.put(h.queue_ != nullptr);
        w.put(h.slot_);
        w.put(h.gen_);
    }

    /** Rebind a handle saved by saveHandle() to this queue. */
    EventHandle
    loadHandle(StateReader &r)
    {
        const bool bound = r.get<bool>();
        const auto slot = r.get<uint32_t>();
        const auto gen = r.get<uint32_t>();
        return bound ? EventHandle(this, slot, gen) : EventHandle();
    }

    /** @} */

  private:
    friend class EventHandle;

    /** Heap key: trivially copyable, 24 bytes, sifted by value. */
    struct HeapEntry
    {
        Time when;
        uint64_t seq;
        uint32_t slot;
        uint32_t gen;
    };

    /** Pooled event state; address-stable storage for the callback
     *  while the POD heap entries shuffle above it. */
    struct Slot
    {
        EventCallback cb;
        /** Bumped on every release; stale handles and heap entries
         *  carry the old value and read as dead. */
        uint32_t gen = 0;
        uint32_t nextFree = kNoFree;
    };

    static constexpr uint32_t kNoFree = UINT32_MAX;

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /** @return true if the entry's slot generation is still live. */
    bool
    live(const HeapEntry &e) const
    {
        return slots_[e.slot].gen == e.gen;
    }

    /** Pop a free slot (or grow the pool) and construct the callable
     *  straight into it; EventCallback arguments move-assign, other
     *  callables use InlineCallback's in-place assignment. */
    template <typename F>
    uint32_t
    acquireSlot(F &&fn)
    {
        if (freeHead_ == kNoFree) {
            slots_.emplace_back();
            slots_.back().cb = std::forward<F>(fn);
            return static_cast<uint32_t>(slots_.size() - 1);
        }
        const uint32_t slot = freeHead_;
        freeHead_ = slots_[slot].nextFree;
        slots_[slot].cb = std::forward<F>(fn);
        return slot;
    }

    /** Retire a live slot: bump its generation (invalidating every
     *  outstanding reference) and return its callback. */
    EventCallback
    releaseSlot(uint32_t slot)
    {
        Slot &s = slots_[slot];
        EventCallback cb = std::move(s.cb);
        s.cb.reset();
        ++s.gen;
        s.nextFree = freeHead_;
        freeHead_ = slot;
        return cb;
    }

    /** O(1) cancel: validate the generation, retire the slot. The
     *  heap entry stays behind and is skipped when it surfaces. */
    bool
    cancelSlot(uint32_t slot, uint32_t gen)
    {
        if (slot >= slots_.size() || slots_[slot].gen != gen)
            return false;
        releaseSlot(slot);
        return true;
    }

    bool
    slotPending(uint32_t slot, uint32_t gen) const
    {
        return slot < slots_.size() && slots_[slot].gen == gen;
    }

    /** Drop dead entries sitting at the top of the heap. */
    void
    prune()
    {
        while (!heap_.empty() && !live(heap_.front()))
            popTop();
    }

    /**
     * The heap is 4-ary, not binary: half the levels per sift, and
     * the four children of a node span at most two cache lines
     * (4 x 24 bytes), so the extra compares per level are nearly
     * free next to the halved chain of data-dependent branches. Pop
     * order is unchanged — (when, seq) is a strict total order, so
     * any-arity heap pops events in exactly the same sequence.
     */
    static constexpr std::size_t kArity = 4;

    void
    siftUp(std::size_t i)
    {
        const HeapEntry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / kArity;
            if (!earlier(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    /** Remove the root, restoring the heap property. */
    void
    popTop()
    {
        const HeapEntry last = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t first = kArity * i + 1;
            if (first >= n)
                break;
            std::size_t kid = first;
            const std::size_t end = std::min(first + kArity, n);
            for (std::size_t c = first + 1; c < end; ++c) {
                if (earlier(heap_[c], heap_[kid]))
                    kid = c;
            }
            if (!earlier(heap_[kid], last))
                break;
            heap_[i] = heap_[kid];
            i = kid;
        }
        heap_[i] = last;
    }

    std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    uint32_t freeHead_ = kNoFree;
    Time now_ = 0;
    uint64_t nextSeq_ = 0;
};

inline void
EventHandle::cancel()
{
    if (queue_)
        queue_->cancelSlot(slot_, gen_);
}

inline bool
EventHandle::pending() const
{
    return queue_ && queue_->slotPending(slot_, gen_);
}

} // namespace iocost::sim

#endif // IOCOST_SIM_EVENT_QUEUE_HH
