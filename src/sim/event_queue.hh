/**
 * @file
 * Discrete-event queue.
 *
 * The event queue is the heart of the simulation kernel: a priority
 * queue of (time, sequence, callback) triples. Ties in time are broken
 * by insertion order so that the simulation is fully deterministic.
 * Events can be cancelled via the EventHandle returned at scheduling
 * time; cancellation is O(1) (a tombstone flag) and the queue skips
 * dead events lazily when they reach the top of the heap.
 */

#ifndef IOCOST_SIM_EVENT_QUEUE_HH
#define IOCOST_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hh"

namespace iocost::sim {

/** Callback type invoked when an event fires. */
using EventCallback = std::function<void()>;

/**
 * Cancellation handle for a scheduled event.
 *
 * Copies share the underlying tombstone, so any copy may cancel. A
 * default-constructed handle refers to no event and is inert.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    void
    cancel()
    {
        if (alive_)
            *alive_ = false;
    }

    /** @return true if the handle refers to a not-yet-fired event. */
    bool
    pending() const
    {
        return alive_ && *alive_;
    }

  private:
    friend class EventQueue;

    explicit EventHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive))
    {}

    std::shared_ptr<bool> alive_;
};

/**
 * Deterministic discrete-event priority queue.
 *
 * Not thread safe: the entire simulation is single threaded by design
 * (see DESIGN.md, "Deterministic DES").
 */
class EventQueue
{
  public:
    /**
     * Schedule a callback at an absolute simulated time.
     *
     * @param when Absolute firing time; values before now() are
     *             clamped to now() (time is monotonic).
     * @param cb Callback to invoke.
     * @return Handle usable to cancel the event.
     */
    EventHandle
    scheduleAt(Time when, EventCallback cb)
    {
        // The clock never runs backwards: a past firing time would
        // silently reorder against events already executed, so clamp
        // it to the present.
        if (when < now_)
            when = now_;
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{when, nextSeq_++, alive, std::move(cb)});
        return EventHandle(std::move(alive));
    }

    /** Schedule a callback a relative delay from now. */
    EventHandle
    scheduleAfter(Time delay, EventCallback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    /** Current simulated time. */
    Time now() const { return now_; }

    /** @return true if no live events remain (prunes tombstones). */
    bool
    empty()
    {
        prune();
        return heap_.empty();
    }

    /** Firing time of the next live event, or kTimeNever. */
    Time
    nextEventTime()
    {
        prune();
        return heap_.empty() ? kTimeNever : heap_.top().when;
    }

    /**
     * Pop and run the next live event, advancing the clock.
     *
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    step()
    {
        prune();
        if (heap_.empty())
            return false;
        // Move, don't copy: the comparator only reads when/seq, so a
        // moved-from top is safe to pop, and the callback (plus the
        // tombstone control block) is not duplicated per event.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        *e.alive = false;
        now_ = e.when;
        e.cb();
        return true;
    }

    /**
     * Run events with firing time <= @p until, then advance the clock
     * to @p until.
     *
     * @return number of events executed.
     */
    uint64_t
    runUntil(Time until)
    {
        uint64_t executed = 0;
        while (nextEventTime() <= until) {
            if (!step())
                break;
            ++executed;
        }
        if (now_ < until)
            now_ = until;
        return executed;
    }

    /** Run until no live events remain. @return events executed. */
    uint64_t
    runAll()
    {
        uint64_t executed = 0;
        while (step())
            ++executed;
        return executed;
    }

  private:
    struct Entry
    {
        Time when;
        uint64_t seq;
        std::shared_ptr<bool> alive;
        EventCallback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries sitting at the top of the heap. */
    void
    prune()
    {
        while (!heap_.empty() && !*heap_.top().alive)
            heap_.pop();
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Time now_ = 0;
    uint64_t nextSeq_ = 0;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_EVENT_QUEUE_HH
