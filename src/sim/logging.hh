/**
 * @file
 * Error and status reporting helpers (gem5-style panic/fatal/warn).
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user /
 * configuration error (clean exit with an error code); warn() and
 * inform() provide status without stopping the run.
 */

#ifndef IOCOST_SIM_LOGGING_HH
#define IOCOST_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace iocost::sim {

/** Abort the simulation: something that should never happen did. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit the simulation: unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Non-fatal warning about questionable configuration or behavior. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informative status message. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless the condition holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace iocost::sim

#endif // IOCOST_SIM_LOGGING_HH
