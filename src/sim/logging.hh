/**
 * @file
 * Error and status reporting helpers (gem5-style panic/fatal/warn).
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user /
 * configuration error (clean exit with an error code); warn() and
 * inform() provide status without stopping the run.
 */

#ifndef IOCOST_SIM_LOGGING_HH
#define IOCOST_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace iocost::sim {

/** Abort the simulation: something that should never happen did. */
[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    panic(msg.c_str());
}

/** Exit the simulation: unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    fatal(msg.c_str());
}

/** Non-fatal warning about questionable configuration or behavior. */
inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

inline void
warn(const std::string &msg)
{
    warn(msg.c_str());
}

/** Informative status message. */
inline void
inform(const char *msg)
{
    std::fprintf(stderr, "info: %s\n", msg);
}

inline void
inform(const std::string &msg)
{
    inform(msg.c_str());
}

/**
 * panic() unless the condition holds.
 *
 * The const char* overload exists for hot paths: a string literal
 * longer than the SSO buffer passed to the std::string overload
 * would heap-allocate (and format) the message on EVERY call, even
 * when the condition is false. Literals now bind here and cost
 * nothing until the panic actually fires; only call sites that
 * genuinely compose a message still pay for the composition — guard
 * those behind the condition by hand.
 */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic(msg);
}

inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg.c_str());
}

} // namespace iocost::sim

#endif // IOCOST_SIM_LOGGING_HH
