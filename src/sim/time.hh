/**
 * @file
 * Simulated time representation.
 *
 * All simulation timestamps are signed 64-bit nanosecond counts. A
 * signed representation makes interval arithmetic (deadlines, budget
 * deltas) safe without ad-hoc casts. Helper constants express common
 * units so call sites read naturally (e.g. 250 * kUsec).
 */

#ifndef IOCOST_SIM_TIME_HH
#define IOCOST_SIM_TIME_HH

#include <cstdint>

namespace iocost::sim {

/** Simulated time in nanoseconds since simulation start. */
using Time = int64_t;

/** One nanosecond. */
inline constexpr Time kNsec = 1;
/** One microsecond in nanoseconds. */
inline constexpr Time kUsec = 1000;
/** One millisecond in nanoseconds. */
inline constexpr Time kMsec = 1000 * 1000;
/** One second in nanoseconds. */
inline constexpr Time kSec = 1000 * 1000 * 1000;

/** Sentinel for "no deadline" / "never". */
inline constexpr Time kTimeNever = INT64_MAX;

/** Convert simulated time to floating point seconds (for reporting). */
inline constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert simulated time to floating point milliseconds. */
inline constexpr double
toMillis(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

/** Convert simulated time to floating point microseconds. */
inline constexpr double
toMicros(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kUsec);
}

} // namespace iocost::sim

#endif // IOCOST_SIM_TIME_HH
