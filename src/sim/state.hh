/**
 * @file
 * Snapshot substrate: the Snapshottable contract plus the state
 * tapes it serializes through.
 *
 * A snapshot is two tapes:
 *
 *  - a **byte tape** of trivially-copyable values (counters, clocks,
 *    heap keys, histogram buckets). Every value carries a one-byte
 *    type tag so a reader that drifts out of phase with its writer
 *    panics at the first misaligned field instead of silently
 *    reinterpreting garbage;
 *  - a **box tape** of shared_ptr-held live objects for state that
 *    cannot be flattened to bytes — cloned event callbacks and
 *    deep-cloned in-flight bios. Boxes are immutable once written:
 *    every restore *clones out of* the box again, so one snapshot
 *    can be restored any number of times (that is what makes
 *    Host::branch() cheap — branches share the snapshot, never
 *    mutate it).
 *
 * Writers and readers must put/get in exactly the same order; the
 * contract is positional, like the kernel's own suspend images.
 * saveState() must be const — taking a snapshot never perturbs the
 * simulation (determinism depends on it).
 */

#ifndef IOCOST_SIM_STATE_HH
#define IOCOST_SIM_STATE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace iocost::sim {

/** One serialized snapshot: byte tape plus box tape. */
struct StateImage
{
    std::vector<unsigned char> bytes;
    std::vector<std::shared_ptr<const void>> boxes;

    /** Flat size of the byte tape (the tracked bytes-per-host
     *  metric; boxed objects are counted separately). */
    size_t byteSize() const { return bytes.size(); }
    size_t boxCount() const { return boxes.size(); }
};

/** Sequential writer building a StateImage. */
class StateWriter
{
  public:
    /** Append one trivially-copyable value. */
    template <typename T>
    void
    put(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "put() is for trivially-copyable values");
        tag(podTag<T>());
        raw(&v, sizeof(T));
    }

    /** Append a length-prefixed string. */
    void
    putString(std::string_view s)
    {
        tag(kTagString);
        const uint64_t n = s.size();
        raw(&n, sizeof(n));
        raw(s.data(), s.size());
    }

    /** Append a length-prefixed array of trivially-copyable
     *  elements (vector<T>, deque-backed copies, raw spans). */
    template <typename T>
    void
    putPods(const T *data, size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "putPods() is for trivially-copyable element "
                      "types");
        tag(kTagArray);
        tag(podTag<T>());
        const uint64_t n = count;
        raw(&n, sizeof(n));
        raw(data, count * sizeof(T));
    }

    template <typename T>
    void
    putPods(const std::vector<T> &v)
    {
        putPods(v.data(), v.size());
    }

    /** Append a boxed live object (cloned callback, cloned bio). */
    void
    putBox(std::shared_ptr<const void> box)
    {
        tag(kTagBox);
        img_.boxes.push_back(std::move(box));
    }

    size_t byteSize() const { return img_.bytes.size(); }

    /** Hand over the finished image. */
    StateImage finish() && { return std::move(img_); }

  private:
    friend class StateReader;

    /** Type tags: pods encode their size so a misaligned reader
     *  trips immediately; containers get distinct markers. */
    static constexpr unsigned char kTagString = 0x01;
    static constexpr unsigned char kTagArray = 0x02;
    static constexpr unsigned char kTagBox = 0x03;

    template <typename T>
    static constexpr unsigned char
    podTag()
    {
        return static_cast<unsigned char>(0x40 +
                                          (sizeof(T) & 0x3F));
    }

    void tag(unsigned char t) { img_.bytes.push_back(t); }

    void
    raw(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        img_.bytes.insert(img_.bytes.end(), b, b + n);
    }

    StateImage img_;
};

/**
 * Sequential reader over a StateImage. Reads must mirror the writes
 * exactly; any divergence panics (a snapshot format bug, never a
 * user error).
 */
class StateReader
{
  public:
    explicit StateReader(const StateImage &img) : img_(&img) {}

    template <typename T>
    void
    get(T &out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "get() is for trivially-copyable values");
        expect(StateWriter::podTag<T>(), "pod");
        copyOut(&out, sizeof(T));
    }

    template <typename T>
    T
    get()
    {
        T out{};
        get(out);
        return out;
    }

    std::string
    getString()
    {
        expect(StateWriter::kTagString, "string");
        uint64_t n = 0;
        copyOut(&n, sizeof(n));
        checkAvail(n);
        std::string s(reinterpret_cast<const char *>(
                          img_->bytes.data() + pos_),
                      n);
        pos_ += n;
        return s;
    }

    template <typename T>
    void
    getPods(std::vector<T> &out)
    {
        expect(StateWriter::kTagArray, "array");
        expect(StateWriter::podTag<T>(), "array element");
        uint64_t n = 0;
        copyOut(&n, sizeof(n));
        checkAvail(n * sizeof(T));
        out.resize(n);
        if (n > 0) {
            std::memcpy(out.data(), img_->bytes.data() + pos_,
                        n * sizeof(T));
        }
        pos_ += n * sizeof(T);
    }

    /** Next box, untyped. */
    std::shared_ptr<const void>
    getBox()
    {
        expect(StateWriter::kTagBox, "box");
        panicIf(boxPos_ >= img_->boxes.size(),
                "snapshot box tape exhausted");
        return img_->boxes[boxPos_++];
    }

    /** Next box, cast to the type the writer stored. */
    template <typename T>
    std::shared_ptr<const T>
    getBoxAs()
    {
        return std::static_pointer_cast<const T>(getBox());
    }

    /** True when both tapes are fully consumed. */
    bool
    atEnd() const
    {
        return pos_ == img_->bytes.size() &&
               boxPos_ == img_->boxes.size();
    }

  private:
    void
    expect(unsigned char t, const char *what)
    {
        checkAvail(1);
        const unsigned char got = img_->bytes[pos_++];
        if (got != t) {
            panic(std::string("snapshot tape mismatch reading ") +
                  what + ": writer and reader are out of phase");
        }
    }

    void
    checkAvail(uint64_t n)
    {
        panicIf(pos_ + n > img_->bytes.size(),
                "snapshot byte tape exhausted");
    }

    void
    copyOut(void *out, size_t n)
    {
        checkAvail(n);
        std::memcpy(out, img_->bytes.data() + pos_, n);
        pos_ += n;
    }

    const StateImage *img_;
    size_t pos_ = 0;
    size_t boxPos_ = 0;
};

/**
 * The snapshot contract every mutable-state layer implements.
 *
 * loadState() restores *in place*: the object keeps its identity
 * (address, wiring to neighbors) and only its mutable state rolls
 * back. That is what lets event callbacks capture raw `this`
 * pointers and survive a restore — the pointers stay valid because
 * the objects never move.
 */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    /** Serialize all mutable state. Must not perturb the object. */
    virtual void saveState(StateWriter &w) const = 0;

    /** Restore state previously written by saveState(). */
    virtual void loadState(StateReader &r) = 0;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_STATE_HH
