/**
 * @file
 * Deterministic device fault injection.
 *
 * The paper's central claim is that IOCost keeps latency SLOs on
 * *misbehaving* devices — write-cliff SSDs, GC storms, fleet devices
 * with wildly degraded tails (§2, §5). A FaultPlan describes a
 * schedule of degradation windows; a FaultInjector evaluates it at
 * simulated time and hands the device models four orthogonal fault
 * effects:
 *
 *  - **latency multipliers** (`lat@...=mult`): every service time in
 *    the window is scaled, modeling thermal throttling or a degraded
 *    flash die;
 *  - **transient IO errors** (`err@...=rate`): each request drawn
 *    inside the window fails with the given probability after its
 *    full service time, driving the block layer's retry path;
 *  - **full stalls** (`stall@...`): the device freezes for the whole
 *    window — a firmware brownout, every in-window request is pushed
 *    to the window's end;
 *  - **early write-cliff onset** (`cliff@...`): the SSD's write
 *    buffer is forced empty for the window, dropping the device into
 *    its GC regime regardless of the actual write history.
 *
 * Determinism: the injector owns a *private* Rng seeded from the
 * plan (`seed=` token) xor a caller-provided mix (the fleet passes
 * its slice seed), and consumes randomness only for requests inside
 * an error window. Installing a fault plan therefore perturbs
 * neither the devices' jitter streams nor the simulator's fork
 * order, and fault schedules replay byte-identically at any --jobs.
 *
 * The plan also carries the block layer's retry policy (`retries=`,
 * `backoff=`, `timeout=` tokens) so one `--faults` spec string
 * configures the whole degraded-device scenario.
 */

#ifndef IOCOST_SIM_FAULT_HH
#define IOCOST_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/state.hh"
#include "sim/time.hh"

namespace iocost::sim {

/** One kind of injected device misbehaviour. */
enum class FaultKind : uint8_t
{
    /** Scale service times by `param` while active. */
    LatencyMult,
    /** Fail each request with probability `param` while active. */
    ErrorRate,
    /** Freeze the device until the window ends. */
    Stall,
    /** Force the SSD write buffer empty (GC regime) while active. */
    WriteCliff,
};

/** @return "lat" / "err" / "stall" / "cliff". */
const char *faultKindName(FaultKind kind);

/** One scheduled fault window. */
struct FaultWindow
{
    FaultKind kind = FaultKind::LatencyMult;
    /** Window start (absolute simulated time). */
    Time start = 0;
    /** Window length. */
    Time duration = 0;
    /** Multiplier (LatencyMult) or error probability (ErrorRate). */
    double param = 0.0;

    /** Window end (exclusive). */
    Time end() const { return start + duration; }

    /** @return true while @p now lies inside the window. */
    bool
    active(Time now) const
    {
        return now >= start && now < end();
    }
};

/**
 * A deterministic fault schedule plus the retry policy that rides
 * along with it. Parsed from the `--faults` spec grammar:
 *
 *   spec    := token ("," token)*
 *   token   := "lat@" START "+" DUR "=" MULT
 *            | "err@" START "+" DUR "=" RATE
 *            | "stall@" START "+" DUR
 *            | "cliff@" START "+" DUR
 *            | "seed=" N | "retries=" N
 *            | "backoff=" TIME | "timeout=" TIME
 *   TIME    := <number>["ns"|"us"|"ms"|"s"]   (default unit: ms)
 *
 * Example: "lat@2s+1s=6,err@2s+1s=0.02,cliff@2s+1s,timeout=80ms"
 */
struct FaultPlan
{
    std::vector<FaultWindow> windows;

    /** Injector seed (`seed=` token). */
    uint64_t seed = 1;

    /** Block-layer retry bound (`retries=` token). */
    unsigned maxRetries = 4;
    /** First retry backoff; doubles per attempt (`backoff=`). */
    Time retryBackoffBase = 100 * kUsec;
    /** Per-bio timeout; 0 disables (`timeout=` token). */
    Time bioTimeout = 0;

    /** @return true when no fault windows are scheduled. */
    bool empty() const { return windows.empty(); }

    /**
     * Parse a spec string (grammar above).
     *
     * @throws std::invalid_argument on malformed input, naming the
     *         offending token.
     */
    static FaultPlan parse(const std::string &spec);
};

/**
 * Evaluates a FaultPlan against simulated time for one device.
 *
 * Installed into a BlockDevice (setFaultInjector); the device models
 * query it on every submission. All query methods take the current
 * time explicitly so the injector needs no Simulator reference and
 * stays trivially testable.
 */
class FaultInjector
{
  public:
    /**
     * @param plan The fault schedule.
     * @param seed_mix Xored into the plan seed; the fleet passes its
     *        slice seed so per-host error draws decorrelate while
     *        remaining byte-deterministic.
     */
    explicit FaultInjector(FaultPlan plan, uint64_t seed_mix = 0)
        : plan_(std::move(plan)), rng_(plan_.seed ^ seed_mix)
    {}

    /** The installed plan. */
    const FaultPlan &plan() const { return plan_; }

    /** Product of active latency multipliers (1.0 outside windows). */
    double
    latencyMult(Time now) const
    {
        double mult = 1.0;
        for (const FaultWindow &w : plan_.windows) {
            if (w.kind == FaultKind::LatencyMult && w.active(now))
                mult *= w.param;
        }
        return mult;
    }

    /** End of the latest active stall window, or 0 when none. */
    Time
    stallUntil(Time now) const
    {
        Time until = 0;
        for (const FaultWindow &w : plan_.windows) {
            if (w.kind == FaultKind::Stall && w.active(now))
                until = std::max(until, w.end());
        }
        return until;
    }

    /** @return true while a write-cliff window is active. */
    bool
    writeCliffActive(Time now) const
    {
        for (const FaultWindow &w : plan_.windows) {
            if (w.kind == FaultKind::WriteCliff && w.active(now))
                return true;
        }
        return false;
    }

    /**
     * Draw the fate of one request. Consumes randomness only inside
     * an active error window (so a plan without error windows leaves
     * the draw sequence untouched).
     *
     * @return true if the request must fail.
     */
    bool
    drawError(Time now)
    {
        double rate = 0.0;
        for (const FaultWindow &w : plan_.windows) {
            if (w.kind == FaultKind::ErrorRate && w.active(now))
                rate = std::max(rate, w.param);
        }
        if (rate <= 0.0)
            return false;
        if (!rng_.chance(rate))
            return false;
        ++errorsInjected_;
        return true;
    }

    /**
     * Deduplicate stall telemetry: true exactly once per distinct
     * stall window end (devices emit one `stall_us` record per
     * brownout, not one per delayed request).
     */
    bool
    shouldReportStall(Time stall_end)
    {
        if (stall_end == lastStallReported_)
            return false;
        lastStallReported_ = stall_end;
        return true;
    }

    /** Requests failed by error windows so far. */
    uint64_t errorsInjected() const { return errorsInjected_; }

    /**
     * Append a window to the installed plan. What-if queries use
     * this to stack a hypothetical fault onto an existing schedule;
     * determinism is unaffected because the error-draw Rng is part
     * of snapshot state and windows are evaluated by wall time.
     */
    void addWindow(const FaultWindow &w) { plan_.windows.push_back(w); }

    /** @name Snapshot support (the whole plan is state: what-if
     *  queries mutate it, so restore must roll it back too).
     *  @{ */
    void
    saveState(StateWriter &w) const
    {
        // Field-by-field, not putPods: FaultWindow carries padding
        // after its uint8 kind, and raw padding bytes would make
        // the tape differ between byte-identical states.
        w.put(static_cast<uint64_t>(plan_.windows.size()));
        for (const FaultWindow &win : plan_.windows) {
            w.put(static_cast<uint8_t>(win.kind));
            w.put(win.start);
            w.put(win.duration);
            w.put(win.param);
        }
        w.put(plan_.seed);
        w.put(plan_.maxRetries);
        w.put(plan_.retryBackoffBase);
        w.put(plan_.bioTimeout);
        uint64_t s[4];
        rng_.getState(s);
        for (uint64_t word : s)
            w.put(word);
        w.put(lastStallReported_);
        w.put(errorsInjected_);
    }

    void
    loadState(StateReader &r)
    {
        plan_.windows.resize(r.get<uint64_t>());
        for (FaultWindow &win : plan_.windows) {
            win.kind = static_cast<FaultKind>(r.get<uint8_t>());
            r.get(win.start);
            r.get(win.duration);
            r.get(win.param);
        }
        r.get(plan_.seed);
        r.get(plan_.maxRetries);
        r.get(plan_.retryBackoffBase);
        r.get(plan_.bioTimeout);
        uint64_t s[4];
        for (uint64_t &word : s)
            r.get(word);
        rng_.setState(s);
        r.get(lastStallReported_);
        r.get(errorsInjected_);
    }
    /** @} */

  private:
    FaultPlan plan_;
    Rng rng_;
    Time lastStallReported_ = -1;
    uint64_t errorsInjected_ = 0;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_FAULT_HH
