/**
 * @file
 * Continuation helpers for asynchronous simulation code.
 *
 * Two patterns recur all over the workloads, the filesystem journal
 * and the memory manager:
 *
 *  - a *self-sustaining loop*: "issue a bio, and when it completes,
 *    issue the next one" — which needs a callable that can hand a
 *    reference to itself into a completion callback;
 *  - a *completion barrier*: "fire one callback after N asynchronous
 *    operations finish".
 *
 * Both used to be spelled with `make_shared<std::function<void()>>`
 * self-captures plus a separate `make_shared<unsigned>` counter,
 * paying one or two shared control blocks per loop plus a
 * std::function heap allocation per *step* (the self-referential
 * shared_ptr capture overflows std::function's inline buffer).
 * AsyncLoop and AsyncBarrier pay exactly one allocation for the
 * whole loop/barrier; the per-step handle is a shared_ptr that fits
 * in InlineFunction's inline storage, so steady-state stepping is
 * allocation-free.
 */

#ifndef IOCOST_SIM_ASYNC_HH
#define IOCOST_SIM_ASYNC_HH

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.hh"

namespace iocost::sim {

/**
 * A self-referential asynchronous loop.
 *
 * The body runs once per step() and re-arms itself by capturing a
 * keep-alive handle (`self()`) into whatever callback continues the
 * loop. Loop state lives in the body's captures (use `mutable`
 * lambdas); several concurrent continuation chains may share one
 * loop object — they step the same body and therefore the same
 * state. The loop dies when the last handle does.
 *
 * Usage:
 * @code
 *   auto loop = sim::AsyncLoop::spawn(
 *       [&layer, left = total](sim::AsyncLoop &self) mutable {
 *           if (left == 0)
 *               return;
 *           left -= chunk;
 *           layer.submit(blk::Bio::make(
 *               op, off, chunk, cg,
 *               [keep = self.self()](const blk::Bio &) {
 *                   keep->step();
 *               }));
 *       });
 *   loop->step();
 * @endcode
 */
class AsyncLoop : public std::enable_shared_from_this<AsyncLoop>
{
    struct Private
    {
    }; // make_shared needs a public ctor; this gates it

  public:
    using Ptr = std::shared_ptr<AsyncLoop>;

    /** Loop bodies live inline up to this capture size. */
    static constexpr std::size_t kBodyBytes = 64;

    using Body = InlineFunction<void(AsyncLoop &), kBodyBytes>;

    template <typename F>
    AsyncLoop(Private, F &&body) : body_(std::forward<F>(body))
    {}

    /** Create a loop; one allocation for body and control block. */
    template <typename F>
    static Ptr
    spawn(F &&body)
    {
        return std::make_shared<AsyncLoop>(Private{},
                                           std::forward<F>(body));
    }

    /** Run one iteration of the body. */
    void step() { body_(*this); }

    /** Keep-alive handle for continuation captures. */
    Ptr self() { return shared_from_this(); }

  private:
    Body body_;
};

/**
 * A completion barrier: runs its callback when the count of pending
 * operations drops to zero.
 *
 * Constructed with one pending reference held by the issuer; call
 * add() per asynchronous operation started and arrive() per
 * completion, then arrive() once from the issuer when everything has
 * been launched (the issuer's own reference, which keeps a barrier
 * whose operations complete synchronously from firing early).
 */
class AsyncBarrier
{
    struct Private
    {
    };

  public:
    using Ptr = std::shared_ptr<AsyncBarrier>;

    using DoneFn = InlineFunction<void(), 48>;

    template <typename F>
    AsyncBarrier(Private, F &&done)
        : done_(std::forward<F>(done))
    {}

    /** Create a barrier holding the issuer's pending reference. */
    template <typename F>
    static Ptr
    create(F &&done)
    {
        return std::make_shared<AsyncBarrier>(
            Private{}, std::forward<F>(done));
    }

    /** Register one more pending operation. */
    void add(uint64_t n = 1) { pending_ += n; }

    /** One operation finished; fires the callback on the last. */
    void
    arrive()
    {
        if (--pending_ == 0)
            done_.consumeInvoke();
    }

    /** Operations still pending (incl. the issuer's reference). */
    uint64_t pending() const { return pending_; }

  private:
    uint64_t pending_ = 1;
    DoneFn done_;
};

} // namespace iocost::sim

#endif // IOCOST_SIM_ASYNC_HH
