#include "vm/hypervisor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace iocost::vm {

Hypervisor::Hypervisor(blk::BlockLayer &backing, HvPolicy policy,
                       core::CostModel model, unsigned window)
    : backing_(backing),
      policy_(policy),
      model_(std::move(model)),
      window_(window)
{}

VmId
Hypervisor::addVm(VmSpec spec)
{
    sim::panicIf(spec.shares == 0, "hypervisor: zero shares");
    Guest g;
    g.spec = std::move(spec);
    g.vtag = gvtag_;
    vms_.push_back(std::move(g));
    return static_cast<VmId>(vms_.size() - 1);
}

double
Hypervisor::price(Guest &g, const blk::Bio &bio)
{
    if (policy_ == HvPolicy::IopsShares)
        return 1.0;
    const bool sequential = bio.offset == g.lastEnd;
    return static_cast<double>(
        model_.cost(bio.op, sequential, bio.size));
}

void
Hypervisor::submit(VmId vm, blk::BioPtr bio)
{
    Guest &g = vms_[vm];
    // A guest that was idle may not claim service from the past.
    if (g.queue.empty())
        g.vtag = std::max(g.vtag, gvtag_);
    g.lastEnd = bio->offset + bio->size; // classify at arrival
    g.queue.push_back(std::move(bio));
    pump();
}

uint64_t
Hypervisor::completed(VmId vm) const
{
    return vms_[vm].completed;
}

double
Hypervisor::occupancy(VmId vm) const
{
    return vms_[vm].occupancy;
}

size_t
Hypervisor::queued(VmId vm) const
{
    return vms_[vm].queue.size();
}

void
Hypervisor::pump()
{
    while (inFlight_ < window_) {
        // Pick the backlogged guest with the smallest virtual tag.
        Guest *best = nullptr;
        for (Guest &g : vms_) {
            if (g.queue.empty())
                continue;
            if (!best || g.vtag < best->vtag)
                best = &g;
        }
        if (!best)
            return;

        blk::BioPtr bio = std::move(best->queue.front());
        best->queue.pop_front();

        const double cost = price(*best, *bio);
        best->vtag +=
            cost / static_cast<double>(best->spec.shares);
        gvtag_ = std::max(gvtag_, best->vtag);
        // Occupancy accounting always uses the model, so the two
        // policies are compared in the same currency.
        const bool sequential = false;
        best->occupancy += static_cast<double>(
            model_.cost(bio->op, sequential, bio->size));

        ++inFlight_;
        Guest *owner = best;
        auto prev = std::move(bio->onComplete);
        bio->onComplete = [this, owner,
                           prev = std::move(prev)](
                              const blk::Bio &done) mutable {
            --inFlight_;
            ++owner->completed;
            if (prev)
                prev(done);
            pump();
        };
        backing_.submit(std::move(bio));
    }
}

} // namespace iocost::vm
