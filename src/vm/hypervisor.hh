/**
 * @file
 * Hypervisor IO scheduling with device-occupancy pricing — the
 * paper's stated future direction (§6: "we believe that modeling
 * device occupancy could be a fruitful approach for virtual machine
 * monitors to explore").
 *
 * A Hypervisor multiplexes the virtual disks of several VMs onto one
 * backing block device with weighted fair queueing over a virtual
 * tag, under one of two pricing policies:
 *
 *  - IopsShares: every request costs 1 (the PARDA/mClock lineage —
 *    fairness denominated in IOPS);
 *  - Occupancy: requests are priced by the IOCost linear model
 *    (fairness denominated in device time).
 *
 * With heterogeneous guests (small random vs large sequential IO),
 * IOPS fairness hands the large-IO guest a multiple of the device;
 * occupancy fairness equalizes device time — the same argument the
 * paper makes against IOPS/bytes interfaces inside one kernel,
 * applied across VMs (`ablation_vm_occupancy`).
 */

#ifndef IOCOST_VM_HYPERVISOR_HH
#define IOCOST_VM_HYPERVISOR_HH

#include <cstdint>
#include <deque>
#include <string>

#include "blk/block_layer.hh"
#include "core/cost_model.hh"
#include "sim/simulator.hh"

namespace iocost::vm {

/** Request pricing policy. */
enum class HvPolicy
{
    IopsShares,
    Occupancy,
};

/** One guest's identity and entitlement. */
struct VmSpec
{
    std::string name = "vm";
    uint32_t shares = 100;
};

/** Handle to a registered VM. */
using VmId = uint32_t;

/**
 * The hypervisor IO scheduler.
 */
class Hypervisor
{
  public:
    /**
     * @param backing The shared device's block layer (no controller
     *        expected; the hypervisor is the controller here).
     * @param policy Request pricing policy.
     * @param model Cost model for the Occupancy policy (profiled
     *        from the backing device).
     * @param window Total requests kept in flight at the backing
     *        store.
     */
    Hypervisor(blk::BlockLayer &backing, HvPolicy policy,
               core::CostModel model, unsigned window = 32);

    /** Register a guest. */
    VmId addVm(VmSpec spec);

    /**
     * Submit a request from @p vm's virtual disk. Ordering across
     * VMs follows weighted virtual tags; within a VM, FIFO.
     */
    void submit(VmId vm, blk::BioPtr bio);

    /** Completed requests of @p vm. */
    uint64_t completed(VmId vm) const;

    /**
     * Modeled device occupancy consumed by @p vm (ns of device
     * time per the cost model) — the fairness currency.
     */
    double occupancy(VmId vm) const;

    /** Requests currently queued (not yet dispatched) for @p vm. */
    size_t queued(VmId vm) const;

    const VmSpec &spec(VmId vm) const { return vms_[vm].spec; }

  private:
    struct Guest
    {
        VmSpec spec;
        /** Weighted virtual finish tag. */
        double vtag = 0.0;
        std::deque<blk::BioPtr> queue;
        uint64_t completed = 0;
        double occupancy = 0.0;
        uint64_t lastEnd = UINT64_MAX;
    };

    double price(Guest &g, const blk::Bio &bio);
    void pump();

    blk::BlockLayer &backing_;
    HvPolicy policy_;
    core::CostModel model_;
    unsigned window_;
    unsigned inFlight_ = 0;
    double gvtag_ = 0.0;
    std::deque<Guest> vms_;
};

} // namespace iocost::vm

#endif // IOCOST_VM_HYPERVISOR_HH
