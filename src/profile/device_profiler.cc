#include "profile/device_profiler.hh"

#include <map>
#include <mutex>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "workload/fio_workload.hh"

namespace iocost::profile {

namespace {

struct DimensionResult
{
    double opsPerSec = 0;
    double bytesPerSec = 0;
    sim::Time p50Latency = 0;
};

/**
 * Run one saturating fio job against a fresh device and measure
 * steady-state throughput and latency.
 */
DimensionResult
runDimension(const DeviceFactory &factory, uint64_t seed,
             double run_seconds, blk::Op op, bool random,
             uint32_t block_size, unsigned iodepth)
{
    sim::Simulator sim(seed);
    auto device = factory(sim);
    cgroup::CgroupTree tree;
    blk::BlockLayer layer(sim, *device, tree);

    workload::FioConfig cfg;
    cfg.name = "profiler";
    cfg.readFraction = op == blk::Op::Read ? 1.0 : 0.0;
    cfg.randomFraction = random ? 1.0 : 0.0;
    cfg.blockSize = block_size;
    cfg.arrival = workload::Arrival::Saturating;
    cfg.iodepth = iodepth;

    workload::FioWorkload job(sim, layer, cgroup::kRoot, cfg);
    job.start();

    // Warm up long enough to drain any write-buffer burst credit so
    // the measurement reflects sustainable rates (what the paper's
    // tooling reports).
    const auto warmup = static_cast<sim::Time>(
        run_seconds * 0.5 * static_cast<double>(sim::kSec));
    sim.runUntil(warmup);
    job.resetStats();

    const auto measure = static_cast<sim::Time>(
        run_seconds * static_cast<double>(sim::kSec));
    sim.runUntil(warmup + measure);

    DimensionResult out;
    out.opsPerSec = job.iops();
    out.bytesPerSec = out.opsPerSec * block_size;
    out.p50Latency = job.latency().quantile(0.5);
    job.stop();
    return out;
}

std::map<std::string, ProfileResult> &
cache()
{
    static std::map<std::string, ProfileResult> c;
    return c;
}

const ProfileResult &
cachedProfile(const std::string &name, const DeviceFactory &factory)
{
    // The parallel fleet runner profiles devices from worker
    // threads; the cache is shared process state. Profiling runs a
    // private Simulator seeded per dimension, so holding the lock
    // across it is deterministic (map references stay stable across
    // later inserts, so returning a reference is safe).
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache().find(name);
    if (it == cache().end()) {
        it = cache()
                 .emplace(name,
                          DeviceProfiler::profile(name, factory))
                 .first;
    }
    return it->second;
}

} // namespace

ProfileResult
DeviceProfiler::profile(const std::string &name,
                        const DeviceFactory &factory, uint64_t seed,
                        double run_seconds)
{
    ProfileResult r;
    r.deviceName = name;

    // IOPS anchors: saturating 4k jobs at a deep queue.
    const auto rr = runDimension(factory, seed + 1, run_seconds,
                                 blk::Op::Read, true, 4096, 256);
    const auto rs = runDimension(factory, seed + 2, run_seconds,
                                 blk::Op::Read, false, 4096, 256);
    const auto wr = runDimension(factory, seed + 3, run_seconds,
                                 blk::Op::Write, true, 4096, 256);
    const auto ws = runDimension(factory, seed + 4, run_seconds,
                                 blk::Op::Write, false, 4096, 256);

    // Byte rates: large sequential transfers.
    const auto rb =
        runDimension(factory, seed + 5, run_seconds, blk::Op::Read,
                     false, 1 << 20, 64);
    const auto wb =
        runDimension(factory, seed + 6, run_seconds, blk::Op::Write,
                     false, 1 << 20, 64);

    // Single-IO latency: depth-1 random jobs.
    const auto rl = runDimension(factory, seed + 7, run_seconds,
                                 blk::Op::Read, true, 4096, 1);
    const auto wl = runDimension(factory, seed + 8, run_seconds,
                                 blk::Op::Write, true, 4096, 1);

    r.model.rrandiops = rr.opsPerSec;
    r.model.rseqiops = rs.opsPerSec;
    r.model.wrandiops = wr.opsPerSec;
    r.model.wseqiops = ws.opsPerSec;
    r.model.rbps = rb.bytesPerSec;
    r.model.wbps = wb.bytesPerSec;

    r.randReadIops = rr.opsPerSec;
    r.seqReadIops = rs.opsPerSec;
    r.randWriteIops = wr.opsPerSec;
    r.seqWriteIops = ws.opsPerSec;
    r.readLatency = rl.p50Latency;
    r.writeLatency = wl.p50Latency;
    return r;
}

const ProfileResult &
DeviceProfiler::profileSsd(const device::SsdSpec &s)
{
    device::SsdSpec spec = s;
    return cachedProfile(
        "ssd:" + s.name, [spec](sim::Simulator &sim) {
            return std::make_unique<device::SsdModel>(sim, spec);
        });
}

const ProfileResult &
DeviceProfiler::profileHdd(const device::HddSpec &s)
{
    device::HddSpec spec = s;
    return cachedProfile(
        "hdd:" + s.name, [spec](sim::Simulator &sim) {
            return std::make_unique<device::HddModel>(sim, spec);
        });
}

const ProfileResult &
DeviceProfiler::profileRemote(const device::RemoteSpec &s)
{
    device::RemoteSpec spec = s;
    return cachedProfile(
        "remote:" + s.name, [spec](sim::Simulator &sim) {
            return std::make_unique<device::RemoteModel>(sim, spec);
        });
}

} // namespace iocost::profile
