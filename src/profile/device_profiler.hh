/**
 * @file
 * Offline device profiling (paper §3.2).
 *
 * Reproduces the fio-based methodology the authors upstreamed with
 * iocost: run saturating synthetic workloads against a device —
 * 4k random/sequential reads and writes for the IOPS anchors, large
 * sequential transfers for the byte rates — and emit the six-
 * parameter linear model configuration. Profiling runs in a private
 * simulator instance per dimension, exactly as the real tool runs
 * fio jobs back to back on an idle device.
 */

#ifndef IOCOST_PROFILE_DEVICE_PROFILER_HH
#define IOCOST_PROFILE_DEVICE_PROFILER_HH

#include <functional>
#include <memory>
#include <string>

#include "blk/block_device.hh"
#include "core/cost_model.hh"
#include "device/hdd_model.hh"
#include "device/remote_model.hh"
#include "device/ssd_model.hh"
#include "sim/simulator.hh"

namespace iocost::profile {

/** Factory producing a fresh device inside a given simulator. */
using DeviceFactory = std::function<std::unique_ptr<blk::BlockDevice>(
    sim::Simulator &)>;

/** Everything a profiling pass learns about a device. */
struct ProfileResult
{
    std::string deviceName;

    /** The six-parameter model configuration (Fig. 6 format). */
    core::LinearModelConfig model;

    /** 4k random read IOPS at saturation. */
    double randReadIops = 0;
    /** 4k sequential read IOPS at saturation. */
    double seqReadIops = 0;
    /** 4k random write IOPS at saturation (sustained). */
    double randWriteIops = 0;
    /** 4k sequential write IOPS at saturation (sustained). */
    double seqWriteIops = 0;

    /** Median completion latency of a lone 4k random read. */
    sim::Time readLatency = 0;
    /** Median completion latency of a lone 4k random write. */
    sim::Time writeLatency = 0;
};

/**
 * The profiler.
 */
class DeviceProfiler
{
  public:
    /**
     * Profile an arbitrary device.
     *
     * @param name Reported device name.
     * @param factory Constructs the device under test.
     * @param seed Determinism seed.
     * @param run_seconds Measurement duration per dimension (after a
     *        warmup that places write-buffered devices in steady
     *        state).
     */
    static ProfileResult profile(const std::string &name,
                                 const DeviceFactory &factory,
                                 uint64_t seed = 42,
                                 double run_seconds = 4.0);

    /** Convenience: profile an SSD spec (cached by spec name). */
    static const ProfileResult &profileSsd(const device::SsdSpec &s);

    /** Convenience: profile an HDD spec (cached by spec name). */
    static const ProfileResult &profileHdd(const device::HddSpec &s);

    /** Convenience: profile a remote volume (cached by name). */
    static const ProfileResult &
    profileRemote(const device::RemoteSpec &s);
};

} // namespace iocost::profile

#endif // IOCOST_PROFILE_DEVICE_PROFILER_HH
