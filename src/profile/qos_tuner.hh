/**
 * @file
 * QoS parameter tuning with ResourceControlBench (paper §3.4).
 *
 * Reproduces the two-scenario procedure the authors use to bound
 * vrate per device model:
 *
 *  1. The latency-sensitive benchmark runs *alone* with a working
 *     set larger than memory, so paging/swap throughput limits its
 *     performance. Sweeping pinned vrates from above, the smallest
 *     vrate that still delivers (nearly) the best throughput becomes
 *     vrateMax — above it, extra throughput buys nothing for memory
 *     overcommit.
 *
 *  2. The benchmark runs *next to a memory leak* in another
 *     container. Sweeping pinned vrates from below, IO control keeps
 *     improving latency as vrate drops until the benchmark is
 *     sufficiently protected; the largest vrate that achieves
 *     (nearly) the best latency becomes vrateMin — below it there is
 *     no further isolation benefit, only lost throughput.
 *
 * Latency targets are derived from the device profile.
 */

#ifndef IOCOST_PROFILE_QOS_TUNER_HH
#define IOCOST_PROFILE_QOS_TUNER_HH

#include <vector>

#include "core/qos.hh"
#include "device/ssd_model.hh"

namespace iocost::profile {

/** One sweep point. */
struct QosSweepPoint
{
    double vrate = 1.0;
    /** Scenario 1 metric: delivered RPS with paging-bound memory. */
    double aloneRps = 0.0;
    /** Scenario 2 metric: p95 request latency next to a leaker. */
    sim::Time stackedP95 = 0;
};

/** Tuning output. */
struct QosTuneResult
{
    core::QosParams qos;
    std::vector<QosSweepPoint> sweep;
};

/**
 * The tuner.
 */
class QosTuner
{
  public:
    /**
     * Tune QoS parameters for @p spec.
     *
     * Every sweep point runs both scenarios with the *same* seeds
     * (common random numbers), so the across-vrate deltas the
     * derivation thresholds compare are free of seed noise. The
     * scenarios are closed-loop (the memory manager and the server's
     * feedback react to IO control), so points run as full paired
     * runs — host::runPaired — not shadow lanes; the result is
     * identical for any @p jobs value.
     *
     * @param spec Device model to tune for.
     * @param vrates Pinned vrate sweep points (sorted ascending).
     * @param run_seconds Simulated seconds per scenario run.
     * @param seed Determinism seed.
     * @param jobs Worker threads across sweep points (0 = serial).
     */
    static QosTuneResult
    tune(const device::SsdSpec &spec,
         const std::vector<double> &vrates = {0.25, 0.5, 0.75, 1.0,
                                              1.5, 2.0},
         double run_seconds = 6.0, uint64_t seed = 7,
         unsigned jobs = 1);
};

} // namespace iocost::profile

#endif // IOCOST_PROFILE_QOS_TUNER_HH
