#include "profile/qos_tuner.hh"

#include <algorithm>
#include <memory>

#include "host/host.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "workload/latency_server.hh"
#include "workload/memory_hog.hh"

namespace iocost::profile {

namespace {

/** Build a ResourceControlBench-like server config. */
workload::LatencyServerConfig
rcbConfig(uint64_t working_set)
{
    workload::LatencyServerConfig cfg;
    cfg.name = "rcb";
    cfg.offeredRps = 250;
    cfg.workingSetBytes = working_set;
    cfg.touchPerRequest = 2ull << 20;
    cfg.readsPerRequest = 2;
    cfg.readSize = 16 * 1024;
    cfg.logWriteSize = 4096;
    cfg.maxConcurrency = 96;
    return cfg;
}

host::HostOptions
hostOptions(const device::SsdSpec &spec, double vrate)
{
    host::HostOptions opts;
    opts.controller = "iocost";
    const auto &prof = DeviceProfiler::profileSsd(spec);
    opts.controller.iocost.model =
        core::CostModel::fromConfig(prof.model);
    opts.controller.iocost.qos.vrateMin = vrate;
    opts.controller.iocost.qos.vrateMax = vrate; // pinned
    opts.controller.iocost.qos.readLatTarget = 10 * sim::kMsec;
    opts.controller.iocost.qos.writeLatTarget = 10 * sim::kMsec;
    // Tuning measures worst-case interference: keep the debt
    // pacing weak so device-level throttling (vrate) is what
    // protects latency, as in the paper's procedure.
    opts.controller.iocost.qos.debtThreshold = 50 * sim::kMsec;
    opts.controller.iocost.qos.maxUserspaceDelay = 10 * sim::kMsec;
    opts.enableMemory = true;
    opts.memoryConfig.totalBytes = 1ull << 30;
    opts.memoryConfig.swapBytes = 8ull << 30;
    return opts;
}

/** Scenario 1: RCB alone, working set over memory (paging bound). */
double
runAlone(const device::SsdSpec &spec, double vrate,
         double run_seconds, uint64_t seed)
{
    sim::Simulator sim(seed);
    host::Host host(
        sim, std::make_unique<device::SsdModel>(sim, spec),
        hostOptions(spec, vrate));
    const auto cg = host.addWorkload("rcb", 100);
    // Working set 1.25x memory: requests page persistently, and
    // delivered RPS tracks the paging throughput vrate allows.
    workload::LatencyServer rcb(sim, host.layer(), host.mm(), cg,
                                rcbConfig(5ull << 28));
    rcb.prepare([&] { rcb.start(); });
    sim.runUntil(static_cast<sim::Time>(
        0.4 * run_seconds * sim::kSec));
    rcb.resetStats();
    sim.runUntil(static_cast<sim::Time>(
        run_seconds * sim::kSec));
    return rcb.deliveredRps();
}

/** Scenario 2: RCB + leaker; p95 request latency. */
sim::Time
runStacked(const device::SsdSpec &spec, double vrate,
           double run_seconds, uint64_t seed)
{
    sim::Simulator sim(seed);
    host::Host host(
        sim, std::make_unique<device::SsdModel>(sim, spec),
        hostOptions(spec, vrate));
    const auto rcb_cg = host.addWorkload("rcb", 100);
    const auto leak_cg = host.addSystemService("leaker");

    workload::LatencyServer rcb(sim, host.layer(), host.mm(),
                                rcb_cg, rcbConfig(1ull << 29));
    workload::MemoryHogConfig leak;
    leak.mode = workload::HogMode::Leak;
    leak.leakBytesPerSec = 128e6;
    workload::MemoryHog hog(sim, host.mm(), leak_cg, leak);
    host.mm().setOomHandler(
        [&](cgroup::CgroupId cg) {
            if (cg == leak_cg)
                hog.notifyOomKilled();
        });

    rcb.prepare([&] {
        rcb.start();
        hog.start();
    });
    sim.runUntil(static_cast<sim::Time>(
        0.4 * run_seconds * sim::kSec));
    rcb.resetStats();
    sim.runUntil(static_cast<sim::Time>(
        run_seconds * sim::kSec));
    return rcb.latency().quantile(0.95);
}

} // namespace

QosTuneResult
QosTuner::tune(const device::SsdSpec &spec,
               const std::vector<double> &vrates,
               double run_seconds, uint64_t seed, unsigned jobs)
{
    // Warm the profiler cache before the paired pool: hostOptions()
    // reads it from every worker, and first-use population is not
    // concurrency-safe.
    (void)DeviceProfiler::profileSsd(spec);

    QosTuneResult out;
    // Paired CRN across vrates: every point uses seed+11 / seed+23,
    // so the across-vrate deltas compared below are seed-noise-free
    // and independent of the worker layout.
    out.sweep = host::runPaired(
        vrates.size(), jobs, [&](size_t c) {
            QosSweepPoint p;
            p.vrate = vrates[c];
            p.aloneRps =
                runAlone(spec, vrates[c], run_seconds, seed + 11);
            p.stackedP95 = runStacked(spec, vrates[c], run_seconds,
                                      seed + 23);
            return p;
        });

    // vrateMax: smallest vrate delivering >= 92% of the best
    // paging-bound throughput (more budget buys nothing beyond it).
    // If the curve is flat — the device is never paging-bound at
    // this working set — there is no evidence for a ceiling below
    // the model rate, so keep 100%.
    double best_rps = 0.0, worst_rps = 1e300;
    for (const auto &p : out.sweep) {
        best_rps = std::max(best_rps, p.aloneRps);
        worst_rps = std::min(worst_rps, p.aloneRps);
    }
    double vmax = 1.0;
    if (worst_rps < 0.85 * best_rps) {
        vmax = vrates.back();
        for (const auto &p : out.sweep) {
            if (p.aloneRps >= 0.92 * best_rps) {
                vmax = p.vrate;
                break;
            }
        }
    }

    // vrateMin: the smallest vrate whose stacked p95 is within 25%
    // of the best — below it further throttling buys no additional
    // protection.
    sim::Time best_lat = sim::kTimeNever;
    for (const auto &p : out.sweep)
        best_lat = std::min(best_lat, p.stackedP95);
    double vmin = vrates.front();
    for (const auto &p : out.sweep) {
        if (p.stackedP95 <= best_lat + best_lat / 4) {
            vmin = p.vrate;
            break;
        }
    }
    if (vmin > vmax)
        vmin = vmax;

    const auto &prof = DeviceProfiler::profileSsd(spec);
    out.qos.vrateMin = vmin;
    out.qos.vrateMax = std::max(vmax, vmin);
    // Latency targets: a generous multiple of the unloaded medians.
    out.qos.readLatQuantile = 0.90;
    out.qos.readLatTarget =
        std::max<sim::Time>(1 * sim::kMsec, 8 * prof.readLatency);
    out.qos.writeLatQuantile = 0.90;
    out.qos.writeLatTarget =
        std::max<sim::Time>(2 * sim::kMsec, 8 * prof.writeLatency);
    return out;
}

} // namespace iocost::profile
