/**
 * @file
 * ServiceLog — the shared device/fault event stream for multi-config
 * (sweep) execution.
 *
 * In sweep mode one generator host drives the device model, and K
 * shadow controller lanes replay its per-request outcomes. The log
 * records, for every (bio id, attempt) the generator's device
 * accepted, the device-side service duration (accept-to-completion,
 * including channel waits, GC pacing, hiccups, and injected stalls)
 * and the fault-draw status. Replay devices in the lanes look
 * outcomes up by (id, attempt), so all K configs observe identical
 * device randomness while their queueing/throttling timing stays
 * their own (common random numbers, paper-comparison semantics).
 *
 * Storage is O(total bios): one flat slot per id for the first
 * attempt (the overwhelmingly common case) plus a sparse side table
 * for retried attempts. `reserve()` pre-sizes the flat lane so the
 * steady-state append path does not touch the allocator.
 */

#ifndef IOCOST_BLK_SERVICE_LOG_HH
#define IOCOST_BLK_SERVICE_LOG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blk/bio.hh"
#include "sim/inline_function.hh"
#include "sim/time.hh"

namespace iocost::blk {

/**
 * Append-only log of device-side outcomes, written by the generator's
 * device model and read by per-lane replay devices.
 */
class ServiceLog
{
  public:
    /** One recorded device outcome. */
    struct Entry
    {
        /** Accept-to-completion time the device delivered. */
        sim::Time duration = 0;
        /** Generator time the outcome was drawn (fault-window
         *  membership is judged against this instant). */
        sim::Time drawTime = 0;
        /** Status drawn from the shared fault stream. */
        BioStatus status = BioStatus::Ok;
        bool valid = false;
    };

    /** Notified with the bio id on every append and close, so replay
     *  devices can resolve requests parked on a missing entry. */
    using Listener = sim::InlineFunction<void(uint64_t), 16>;

    /** Pre-size the flat per-id lane (ids are 1-based, dense). */
    void
    reserve(size_t bios)
    {
        slots_.reserve(bios);
    }

    /** Record the outcome of one device-accepted attempt. */
    void
    append(uint64_t id, uint8_t attempt, sim::Time draw_time,
           sim::Time duration, BioStatus status)
    {
        Slot &s = slot(id);
        if (attempt == 0) {
            s.first = Entry{duration, draw_time, status, true};
        } else {
            auto &v = retries_[id];
            if (v.size() < attempt)
                v.resize(attempt);
            v[attempt - 1] = Entry{duration, draw_time, status, true};
        }
        if (attempt > s.lastAttempt)
            s.lastAttempt = attempt;
        ++entries_;
        notify(id);
    }

    /**
     * Mark an id terminal: the generator delivered its final
     * completion, no further attempts will be recorded. Lanes whose
     * retry schedule diverged past the generator's clamp to the last
     * recorded attempt (see findClamped).
     */
    void
    close(uint64_t id)
    {
        slot(id).closed = true;
        notify(id);
    }

    /** Exact lookup, or nullptr when not (yet) recorded. */
    const Entry *
    find(uint64_t id, uint8_t attempt) const
    {
        const Slot *s = slotIfPresent(id);
        if (s == nullptr)
            return nullptr;
        if (attempt == 0)
            return s->first.valid ? &s->first : nullptr;
        const auto it = retries_.find(id);
        if (it == retries_.end() || it->second.size() < attempt)
            return nullptr;
        const Entry &e = it->second[attempt - 1];
        return e.valid ? &e : nullptr;
    }

    /**
     * Lookup with the retry clamp: the entry for the highest
     * recorded attempt <= @p attempt. Used once an id is closed, so
     * a lane that (through divergent queue timing) wants more
     * attempts than the generator made still completes with the
     * shared stream's final outcome. nullptr when the id carries no
     * entries at all (the generator expired it before the device).
     */
    const Entry *
    findClamped(uint64_t id, uint8_t attempt) const
    {
        const Slot *s = slotIfPresent(id);
        if (s == nullptr)
            return nullptr;
        for (uint8_t a = std::min(attempt, s->lastAttempt);; --a) {
            if (const Entry *e = find(id, a))
                return e;
            if (a == 0)
                break;
        }
        return nullptr;
    }

    /** True once close(id) ran. */
    bool
    closed(uint64_t id) const
    {
        const Slot *s = slotIfPresent(id);
        return s != nullptr && s->closed;
    }

    /** Highest attempt recorded for @p id. */
    uint8_t
    lastAttempt(uint64_t id) const
    {
        const Slot *s = slotIfPresent(id);
        return s ? s->lastAttempt : 0;
    }

    /** Register a listener; all listeners fire on append and close. */
    void
    addListener(Listener fn)
    {
        listeners_.push_back(std::move(fn));
    }

    /** Attempts recorded so far. */
    uint64_t entries() const { return entries_; }

    /** Ids touched so far (== highest id seen). */
    uint64_t ids() const { return slots_.size(); }

  private:
    struct Slot
    {
        Entry first;
        uint8_t lastAttempt = 0;
        bool closed = false;
    };

    Slot &
    slot(uint64_t id)
    {
        if (id > slots_.size())
            slots_.resize(id);
        return slots_[id - 1];
    }

    const Slot *
    slotIfPresent(uint64_t id) const
    {
        if (id == 0 || id > slots_.size())
            return nullptr;
        return &slots_[id - 1];
    }

    void
    notify(uint64_t id)
    {
        for (Listener &l : listeners_)
            l(id);
    }

    /** Flat first-attempt lane, indexed by id - 1. */
    std::vector<Slot> slots_;
    /** Sparse retry attempts (attempt a >= 1 at index a - 1). */
    std::unordered_map<uint64_t, std::vector<Entry>> retries_;
    std::vector<Listener> listeners_;
    uint64_t entries_ = 0;
};

} // namespace iocost::blk

#endif // IOCOST_BLK_SERVICE_LOG_HH
