/**
 * @file
 * BioPool: a slab/free-list arena recycling Bio objects.
 *
 * The paper's headline operational claim is that IOCost adds
 * negligible per-IO overhead at millions of IOPS (Fig. 9); the
 * kernel gets there by never allocating on the bio fast path (slab
 * bio_sets, per-cgroup annotations inline in the bio). The simulated
 * stack used to pay 3–5 heap allocations per bio — make_unique in
 * Bio::make, a make_shared<BioPtr> trampoline per device submit, and
 * std::function completion captures — which bounded every figure
 * bench. BioPool closes that gap:
 *
 *  - bios live in slabs (kSlabBios per allocation) and recycle
 *    through a pointer free list; steady state performs no global
 *    allocator calls;
 *  - recycling preserves each bio's moreCompletions capacity, so the
 *    back-merge path also settles into zero allocations;
 *  - under IOCOST_SANITIZE (ASan) free slots are poisoned, so
 *    use-after-release and double-release of a BioPtr trip the
 *    sanitizer exactly like a heap use-after-free would;
 *  - a process-wide bypass flag reverts Bio::make to plain heap
 *    allocation — the pre-pool behaviour — which the determinism
 *    tests use to prove pooling cannot change simulated results and
 *    the bio-path bench uses as its pinned seed-shaped baseline.
 *
 * One pool per thread (BioPool::local): each fleet worker owns a
 * private arena, so pooling needs no locks and parallel runs stay
 * byte-identical to sequential ones. Pool-backed bios must not
 * outlive their pool; every simulation drains its bios before the
 * owning thread exits, and the thread-local arena outlives any
 * simulation stack constructed on that thread.
 */

#ifndef IOCOST_BLK_BIO_POOL_HH
#define IOCOST_BLK_BIO_POOL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "blk/bio.hh"

#if defined(__SANITIZE_ADDRESS__)
#define IOCOST_BIO_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IOCOST_BIO_POOL_ASAN 1
#endif
#endif

#ifdef IOCOST_BIO_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace iocost::blk {

/**
 * Slab-backed free-list arena for Bio objects. Not thread safe; use
 * one pool per thread (see BioPool::local()).
 */
class BioPool
{
  public:
    /** Bios per slab allocation. */
    static constexpr size_t kSlabBios = 64;

    BioPool() = default;

    /**
     * Slabs are freed with the pool; outstanding BioPtrs must be
     * gone by now (simulations drain before teardown).
     */
    ~BioPool()
    {
        for (auto &slab : slabs_)
            unpoisonSlab(slab.get());
    }

    BioPool(const BioPool &) = delete;
    BioPool &operator=(const BioPool &) = delete;

    /** Draw a bio from the arena and initialize it for submission. */
    BioPtr
    make(Op op, uint64_t offset, uint32_t size,
         cgroup::CgroupId cg, BioEndFn on_complete = {})
    {
        Bio *bio = bypass_.load(std::memory_order_relaxed)
                       ? new Bio
                       : acquire();
        bio->id = 0;
        bio->op = op;
        bio->offset = offset;
        bio->size = size;
        bio->cgroup = cg;
        bio->swap = false;
        bio->meta = false;
        bio->wb = false;
        bio->submitTime = 0;
        bio->dispatchTime = 0;
        bio->status = BioStatus::Ok;
        bio->retries = 0;
        bio->onComplete = std::move(on_complete);
        bio->controllerScratch = 0.0;
        return BioPtr(bio);
    }

    /** Return a bio to the free list (called by BioDeleter). */
    void
    release(Bio *bio) noexcept
    {
        // Drop captured state now (completion closures may hold
        // keep-alive references); the vector keeps its capacity.
        bio->onComplete.reset();
        bio->moreCompletions.clear();
        --outstanding_;
        poison(bio);
        free_.push_back(bio);
    }

    /** The calling thread's arena (what Bio::make draws from). */
    static BioPool &
    local()
    {
        static thread_local BioPool pool;
        return pool;
    }

    /**
     * Process-wide escape hatch: when set, make() heap-allocates
     * every bio (the pre-pool behaviour) on all threads. Used by the
     * determinism tests and the bio-path bench baseline; never in
     * production paths.
     */
    static void
    setBypass(bool on)
    {
        bypass_.store(on, std::memory_order_relaxed);
    }

    /** @return true while the bypass flag is set. */
    static bool
    bypassed()
    {
        return bypass_.load(std::memory_order_relaxed);
    }

    /** Pool-backed bios currently owned by callers. */
    uint64_t outstanding() const { return outstanding_; }

    /** Maximum outstanding() ever observed. */
    uint64_t highWater() const { return highWater_; }

    /** Slab slots constructed so far (pool capacity). */
    uint64_t created() const { return created_; }

    /** Total acquisitions served by this pool. */
    uint64_t acquired() const { return acquired_; }

    /**
     * Lower bound on acquisitions served by recycling: every draw
     * past one-per-slot must have reused a released bio.
     */
    uint64_t
    recycled() const
    {
        return acquired_ > created_ ? acquired_ - created_ : 0;
    }

  private:
    Bio *
    acquire()
    {
        if (free_.empty())
            grow();
        Bio *bio = free_.back();
        free_.pop_back();
        unpoison(bio);
        ++acquired_;
        if (++outstanding_ > highWater_)
            highWater_ = outstanding_;
        return bio;
    }

    void
    grow()
    {
        slabs_.push_back(std::make_unique<Bio[]>(kSlabBios));
        Bio *slab = slabs_.back().get();
        free_.reserve(free_.size() + kSlabBios);
        for (size_t i = 0; i < kSlabBios; ++i) {
            slab[i].pool = this;
            poison(&slab[i]); // free slots stay poisoned until drawn
            free_.push_back(&slab[i]);
        }
        created_ += kSlabBios;
    }

    static void
    poison(Bio *bio)
    {
#ifdef IOCOST_BIO_POOL_ASAN
        ASAN_POISON_MEMORY_REGION(bio, sizeof(Bio));
#else
        (void)bio;
#endif
    }

    static void
    unpoison(Bio *bio)
    {
#ifdef IOCOST_BIO_POOL_ASAN
        ASAN_UNPOISON_MEMORY_REGION(bio, sizeof(Bio));
#else
        (void)bio;
#endif
    }

    void
    unpoisonSlab(Bio *slab)
    {
#ifdef IOCOST_BIO_POOL_ASAN
        // delete[] runs destructors over the slab; lift the poison
        // first so teardown doesn't read as use-after-release.
        ASAN_UNPOISON_MEMORY_REGION(slab,
                                    sizeof(Bio) * kSlabBios);
#else
        (void)slab;
#endif
    }

    inline static std::atomic<bool> bypass_{false};

    std::vector<std::unique_ptr<Bio[]>> slabs_;
    std::vector<Bio *> free_;
    uint64_t outstanding_ = 0;
    uint64_t highWater_ = 0;
    uint64_t created_ = 0;
    uint64_t acquired_ = 0;
};

inline void
BioDeleter::operator()(Bio *bio) const noexcept
{
    if (bio->pool)
        bio->pool->release(bio);
    else
        delete bio;
}

inline BioPtr
Bio::make(Op op, uint64_t offset, uint32_t size,
          cgroup::CgroupId cg, BioEndFn on_complete)
{
    return BioPool::local().make(op, offset, size, cg,
                                 std::move(on_complete));
}

inline BioPtr
cloneBio(const Bio &src)
{
    // Heap, not pool: see the declaration in bio.hh. The snapshot
    // path is deliberately outside the zero-alloc budget.
    Bio *out = new Bio;
    out->id = src.id;
    out->op = src.op;
    out->offset = src.offset;
    out->size = src.size;
    out->cgroup = src.cgroup;
    out->swap = src.swap;
    out->meta = src.meta;
    out->wb = src.wb;
    out->submitTime = src.submitTime;
    out->dispatchTime = src.dispatchTime;
    out->status = src.status;
    out->retries = src.retries;
    out->onComplete = src.onComplete.clone();
    out->moreCompletions.reserve(src.moreCompletions.size());
    for (const BioEndFn &fn : src.moreCompletions)
        out->moreCompletions.push_back(fn.clone());
    out->controllerScratch = src.controllerScratch;
    return BioPtr(out);
}

} // namespace iocost::blk

#endif // IOCOST_BLK_BIO_POOL_HH
