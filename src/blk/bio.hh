/**
 * @file
 * The bio: the unit of block IO flowing through the simulated stack.
 *
 * Mirrors the kernel's struct bio at the granularity IO controllers
 * care about: operation type, byte offset and size, the issuing
 * cgroup, and flags identifying swap and filesystem-metadata IO
 * (which get special priority-inversion treatment, paper §3.5).
 */

#ifndef IOCOST_BLK_BIO_HH
#define IOCOST_BLK_BIO_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "cgroup/cgroup_tree.hh"
#include "sim/time.hh"

namespace iocost::blk {

/** Block IO operation direction. */
enum class Op : uint8_t
{
    Read,
    Write,
};

/** @return "read" / "write". */
inline const char *
opName(Op op)
{
    return op == Op::Read ? "read" : "write";
}

struct Bio;

/** Bios are owned uniquely and moved through the pipeline. */
using BioPtr = std::unique_ptr<Bio>;

/** Completion callback delivered to the submitter. */
using BioEndFn = std::function<void(const Bio &)>;

/**
 * One block IO request.
 */
struct Bio
{
    /** Monotonic id, assigned by the block layer at submission. */
    uint64_t id = 0;

    /** Operation direction. */
    Op op = Op::Read;

    /** Byte offset on the device. */
    uint64_t offset = 0;

    /** Transfer size in bytes. */
    uint32_t size = 0;

    /** Issuing (charged) cgroup. */
    cgroup::CgroupId cgroup = cgroup::kRoot;

    /**
     * Swap-out / swap-in IO issued by memory reclaim on behalf of the
     * charged cgroup; must not be throttled synchronously (§3.5).
     */
    bool swap = false;

    /**
     * Filesystem metadata/journal IO; shares the swap path's debt
     * treatment because other groups can be blocked behind it.
     */
    bool meta = false;

    /** When the bio entered the block layer. */
    sim::Time submitTime = 0;

    /** When the bio was dispatched to the device. */
    sim::Time dispatchTime = 0;

    /** Invoked by the block layer when the bio completes. */
    BioEndFn onComplete;

    /**
     * Scratch slot for the installed controller (IOCost stores the
     * absolute cost computed at submission so queued bios are not
     * re-classified). Mirrors the kernel's per-bio blkcg annotations.
     */
    double controllerScratch = 0.0;

    /** Convenience factory. */
    static BioPtr
    make(Op op, uint64_t offset, uint32_t size,
         cgroup::CgroupId cg, BioEndFn on_complete = nullptr)
    {
        auto bio = std::make_unique<Bio>();
        bio->op = op;
        bio->offset = offset;
        bio->size = size;
        bio->cgroup = cg;
        bio->onComplete = std::move(on_complete);
        return bio;
    }
};

} // namespace iocost::blk

#endif // IOCOST_BLK_BIO_HH
