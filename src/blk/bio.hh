/**
 * @file
 * The bio: the unit of block IO flowing through the simulated stack.
 *
 * Mirrors the kernel's struct bio at the granularity IO controllers
 * care about: operation type, byte offset and size, the issuing
 * cgroup, and flags identifying swap and filesystem-metadata IO
 * (which get special priority-inversion treatment, paper §3.5).
 *
 * Allocation model (mirroring the kernel's bio_set slabs): bios are
 * recycled through a per-thread BioPool arena, so the steady-state
 * submit→throttle→dispatch→complete path never touches the global
 * allocator. A BioPtr is a unique_ptr whose deleter returns the bio
 * to its owning pool instead of freeing it; completion callbacks are
 * move-only InlineFunctions stored inside the bio itself (the
 * kernel's bi_end_io + bi_private, not a heap-allocated closure).
 */

#ifndef IOCOST_BLK_BIO_HH
#define IOCOST_BLK_BIO_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cgroup/cgroup_tree.hh"
#include "sim/inline_function.hh"
#include "sim/time.hh"

namespace iocost::blk {

/** Block IO operation direction. */
enum class Op : uint8_t
{
    Read,
    Write,
};

/** @return "read" / "write". */
inline const char *
opName(Op op)
{
    return op == Op::Read ? "read" : "write";
}

/**
 * Completion status of a bio — the simulated analogue of the
 * kernel's blk_status_t. Devices set Error when a fault window
 * fails a request; the BlockLayer either retries (resetting the
 * status) or delivers the final failure to the submitter.
 */
enum class BioStatus : uint8_t
{
    /** Completed successfully. */
    Ok,
    /** Failed on the device (after retries were exhausted). */
    Error,
    /** Exceeded the block layer's per-bio timeout. */
    Timeout,
};

/** @return "ok" / "error" / "timeout". */
inline const char *
statusName(BioStatus status)
{
    switch (status) {
    case BioStatus::Ok:
        return "ok";
    case BioStatus::Error:
        return "error";
    case BioStatus::Timeout:
        return "timeout";
    }
    return "?";
}

struct Bio;
class BioPool;

/** Returns a bio to its owning pool (or the heap when unpooled). */
struct BioDeleter
{
    void operator()(Bio *bio) const noexcept;
};

/** Bios are owned uniquely and moved through the pipeline. */
using BioPtr = std::unique_ptr<Bio, BioDeleter>;

/**
 * Completion callback delivered to the submitter. Move-only with
 * inline storage: a capture up to kInlineBytes (an object pointer, a
 * keep-alive shared_ptr and a few scalars) lives inside the bio and
 * costs no allocation. Oversized captures fall back to the heap —
 * fine on cold paths, a bug on the per-IO fast path (the bio-path
 * bench asserts zero steady-state allocations).
 */
using BioEndFn = sim::InlineFunction<void(const Bio &), 48>;

/**
 * One block IO request.
 */
struct Bio
{
    /** Monotonic id, assigned by the block layer at submission. */
    uint64_t id = 0;

    /** Operation direction. */
    Op op = Op::Read;

    /** Byte offset on the device. */
    uint64_t offset = 0;

    /** Transfer size in bytes. */
    uint32_t size = 0;

    /** Issuing (charged) cgroup. */
    cgroup::CgroupId cgroup = cgroup::kRoot;

    /**
     * Swap-out / swap-in IO issued by memory reclaim on behalf of the
     * charged cgroup; must not be throttled synchronously (§3.5).
     */
    bool swap = false;

    /**
     * Filesystem metadata/journal IO; shares the swap path's debt
     * treatment because other groups can be blocked behind it.
     */
    bool meta = false;

    /**
     * Dirty-page writeback issued by the flusher on behalf of the
     * dirtying cgroup (cgroup writeback attribution). Joins the
     * swap/meta forced-issue path: writeback cannot wait — dirty
     * pages pin memory and fsync barriers queue behind them — so
     * iocost turns the cost into debt instead of throttling (§3.5).
     */
    bool wb = false;

    /** When the bio entered the block layer. */
    sim::Time submitTime = 0;

    /** When the bio was dispatched to the device. */
    sim::Time dispatchTime = 0;

    /**
     * Completion status, inspected by completion callbacks. Ok on
     * the wire; a device sets Error when fault injection fails the
     * request, and the BlockLayer resolves the final status
     * (retried-to-success, Error, or Timeout) before running
     * completions.
     */
    BioStatus status = BioStatus::Ok;

    /** Retry attempts consumed so far (block-layer requeues). */
    uint8_t retries = 0;

    /** Invoked by the block layer when the bio completes. */
    BioEndFn onComplete;

    /**
     * Completion callbacks of bios back-merged into this one, run
     * after onComplete in merge order. A flat list, not a chain of
     * nested closures: capture size stays constant per merge, and
     * the vector's capacity survives pool recycling so repeated
     * merging settles into zero allocations.
     */
    std::vector<BioEndFn> moreCompletions;

    /**
     * Scratch slot for the installed controller (IOCost stores the
     * absolute cost computed at submission so queued bios are not
     * re-classified). Mirrors the kernel's per-bio blkcg annotations.
     */
    double controllerScratch = 0.0;

    /** Owning pool; null for plain heap-allocated bios. */
    BioPool *pool = nullptr;

    /** Append a completion callback (used by the back-merge path). */
    void
    addCompletion(BioEndFn fn)
    {
        if (!onComplete)
            onComplete = std::move(fn);
        else
            moreCompletions.push_back(std::move(fn));
    }

    /** @return true if any completion callback is attached. */
    bool
    hasCompletion() const
    {
        return static_cast<bool>(onComplete) ||
               !moreCompletions.empty();
    }

    /** Run every attached completion callback, in attach order. */
    void
    runCompletions()
    {
        if (onComplete)
            onComplete(*this);
        for (BioEndFn &fn : moreCompletions)
            fn(*this);
    }

    /**
     * Convenience factory: draws from the calling thread's BioPool
     * arena (defined in bio_pool.hh).
     */
    static BioPtr make(Op op, uint64_t offset, uint32_t size,
                       cgroup::CgroupId cg,
                       BioEndFn on_complete = {});
};

/**
 * Deep-copy a bio for the snapshot path: all scalar fields plus
 * cloned completion callbacks (which must have copyable captures —
 * see InlineFunction::clone()).
 *
 * The clone is always heap-allocated, never pool-backed: a snapshot
 * image may outlive the taking thread's arena or be destroyed from
 * another thread, and BioPool is thread-local by design. Pool
 * identity never enters simulation logic, so a restored in-flight
 * bio completing as a heap bio is byte-identical to the original
 * completing as a pool bio; the handful of heap clones a restore
 * brings back (bounded by device queue depth) free themselves as
 * they complete. Defined in bio_pool.hh.
 */
BioPtr cloneBio(const Bio &src);

/**
 * Copyable BioPtr holder for event captures.
 *
 * Event lambdas that own an in-flight bio (device completions, the
 * block layer's retry backoff and submission-CPU hops) capture one
 * of these instead of a raw BioPtr: moves behave exactly like
 * BioPtr (same size, noexcept), and the copy constructor — reached
 * only when the event arena is cloned into a snapshot — deep-clones
 * the bio via cloneBio(). That one substitution is what makes every
 * pending event in the simulator snapshot-copyable.
 */
class BioCapture
{
  public:
    explicit BioCapture(BioPtr bio) : bio_(std::move(bio)) {}

    BioCapture(BioCapture &&) noexcept = default;
    BioCapture &operator=(BioCapture &&) noexcept = default;

    BioCapture(const BioCapture &other)
        : bio_(other.bio_ ? cloneBio(*other.bio_) : BioPtr())
    {}

    BioCapture &
    operator=(const BioCapture &other)
    {
        if (this != &other)
            bio_ = other.bio_ ? cloneBio(*other.bio_) : BioPtr();
        return *this;
    }

    /** Move the bio out (the firing path). */
    BioPtr take() { return std::move(bio_); }

    Bio &operator*() { return *bio_; }
    Bio *operator->() { return bio_.get(); }
    explicit operator bool() const { return bio_ != nullptr; }

  private:
    BioPtr bio_;
};

} // namespace iocost::blk

// The pool header completes BioDeleter and Bio::make; including it
// here means every bio user sees the full allocation API.
#include "blk/bio_pool.hh" // IWYU pragma: keep

#endif // IOCOST_BLK_BIO_HH
