#include "blk/block_layer.hh"

#include <utility>

#include "blk/bio_state.hh"

namespace iocost::blk {

BlockLayer::BlockLayer(sim::Simulator &sim, BlockDevice &device,
                       cgroup::CgroupTree &tree)
    : sim_(sim), device_(device), tree_(tree)
{
    device_.setCompletionFn(
        [this](BioPtr bio, sim::Time device_latency) {
            onDeviceComplete(std::move(bio), device_latency);
        });
    device_.setTelemetry(&telemetry_);
}

void
BlockLayer::setController(std::unique_ptr<IoController> controller)
{
    controller_ = std::move(controller);
    if (controller_)
        controller_->attach(*this);
}

void
BlockLayer::submit(BioPtr bio)
{
    bio->id = nextBioId_++;
    bio->submitTime = sim_.now();
    ++submitted_;

    if (!cpuEnabled_) {
        deliverToController(std::move(bio));
        return;
    }

    // Submissions serialize on one simulated CPU for the
    // controller's per-bio issue-path cost; this is what bounds
    // throughput for heavyweight schedulers in the Fig. 9 bench.
    const sim::Time cost = controller_ ? controller_->issueCpuCost()
                                       : kNoControllerCpuCost;
    cpuBusyUntil_ = std::max(sim_.now(), cpuBusyUntil_) + cost;
    // The BioPtr moves straight into the event's inline storage —
    // no shared_ptr trampoline, no allocation. BioCapture (not a
    // raw BioPtr) so the pending event is snapshot-cloneable.
    sim_.at(cpuBusyUntil_,
            [this, owned = BioCapture(std::move(bio))]() mutable {
                deliverToController(owned.take());
            });
}

void
BlockLayer::deliverToController(BioPtr bio)
{
    if (controller_) {
        controller_->onSubmit(std::move(bio));
    } else {
        dispatch(std::move(bio));
    }
}

void
BlockLayer::dispatch(BioPtr bio)
{
    // A bio can reach dispatch already past its deadline (held by
    // the controller, or a requeue whose backoff overshot). Failing
    // it here runs its completion inline under dispatch() — the one
    // place completions fire outside a device-completion event — so
    // everything reachable from a completion callback must tolerate
    // re-entry (see the stats_ deque comment in the header).
    if (expired(*bio)) {
        failBio(std::move(bio), 0);
        return;
    }

    bio->dispatchTime = sim_.now();
    if (dispatchQueue_.empty() && device_.submit(bio))
        return;

    // Device queue saturated: try to back-merge with a recently
    // parked bio it extends (same direction and cgroup, bounded
    // size), else park in FIFO order. Only the tail of the queue is
    // scanned — the kernel's plug/merge window is equally shallow —
    // which keeps dispatch O(1) even when the backlog is deep.
    ++queueFullEvents_;
    if (!mergeEnabled_) {
        dispatchQueue_.push_back(std::move(bio));
        return;
    }
    const size_t scan_from =
        dispatchQueue_.size() > kMergeScanWindow
            ? dispatchQueue_.size() - kMergeScanWindow
            : 0;
    for (size_t i = scan_from; i < dispatchQueue_.size(); ++i) {
        BioPtr &parked = dispatchQueue_[i];
        if (parked->op == bio->op &&
            parked->cgroup == bio->cgroup &&
            parked->offset + parked->size == bio->offset &&
            parked->size + bio->size <= kMaxMergedBytes) {
            parked->size += bio->size;
            ++mergedBios_;
            // Flat completion list: each merge appends one slot
            // instead of nesting closures whose capture grows with
            // every absorbed bio. The absorbed bio recycles here.
            if (bio->onComplete)
                parked->addCompletion(std::move(bio->onComplete));
            for (BioEndFn &fn : bio->moreCompletions)
                parked->addCompletion(std::move(fn));
            return;
        }
    }
    dispatchQueue_.push_back(std::move(bio));
}

void
BlockLayer::drainDispatchQueue()
{
    while (!dispatchQueue_.empty()) {
        // Expire parked bios before spending a device slot on them.
        // failBio runs completions inline, which may re-enter
        // submit()/dispatch() and mutate the queue — re-resolve
        // front() every iteration, never hold it across the call.
        if (expired(*dispatchQueue_.front())) {
            BioPtr dead = std::move(dispatchQueue_.front());
            dispatchQueue_.pop_front();
            failBio(std::move(dead), 0);
            continue;
        }
        BioPtr &front = dispatchQueue_.front();
        front->dispatchTime = sim_.now();
        if (!device_.submit(front))
            break;
        dispatchQueue_.pop_front();
    }
}

bool
BlockLayer::expired(const Bio &bio) const
{
    return retry_.bioTimeout > 0 &&
           sim_.now() - bio.submitTime >= retry_.bioTimeout;
}

void
BlockLayer::fusedMergeStats(cgroup::CgroupId cg,
                            const CgroupIoStats &delta)
{
    CgroupIoStats &st = statsMutable(cg);
    st.reads += delta.reads;
    st.writes += delta.writes;
    st.readBytes += delta.readBytes;
    st.writeBytes += delta.writeBytes;
    st.wbWrites += delta.wbWrites;
    st.wbBytes += delta.wbBytes;
    st.totalLatency.merge(delta.totalLatency);
    st.deviceLatency.merge(delta.deviceLatency);
}

void
BlockLayer::fusedCompleteStats(Op op, uint32_t size,
                               cgroup::CgroupId cg, bool wb,
                               sim::Time total_latency,
                               sim::Time device_latency)
{
    ++completed_;

    CgroupIoStats &st = statsMutable(cg);
    if (op == Op::Read) {
        ++st.reads;
        st.readBytes += size;
    } else {
        ++st.writes;
        st.writeBytes += size;
        if (wb) {
            ++st.wbWrites;
            st.wbBytes += size;
        }
    }
    st.totalLatency.record(total_latency);
    st.deviceLatency.record(device_latency);
}

void
BlockLayer::onDeviceComplete(BioPtr bio, sim::Time device_latency)
{
    if (bio->status != BioStatus::Ok) {
        handleError(std::move(bio), device_latency);
        return;
    }

    ++completed_;

    CgroupIoStats &st = statsMutable(bio->cgroup);
    if (bio->op == Op::Read) {
        ++st.reads;
        st.readBytes += bio->size;
    } else {
        ++st.writes;
        st.writeBytes += bio->size;
        if (bio->wb) {
            ++st.wbWrites;
            st.wbBytes += bio->size;
        }
    }
    st.totalLatency.record(sim_.now() - bio->submitTime);
    st.deviceLatency.record(device_latency);

    CompletionInfo info;
    info.deviceLatency = device_latency;
    info.totalLatency = sim_.now() - bio->submitTime;
    info.sizeBytes = bio->size;
    info.op = bio->op;
    info.deviceInFlight = device_.inFlight();
    info.dispatchQueueDepth = dispatchQueue_.size();

    // Per-completion records are detail-gated: a period-level sink
    // (the default) sees controller/planning records only.
    if (telemetry_.detailEnabled()) {
        const sim::Time now = sim_.now();
        telemetry_.emit(now, "blk", bio->cgroup, "device_lat_us",
                        sim::toMicros(device_latency));
        telemetry_.emit(now, "blk", bio->cgroup, "total_lat_us",
                        sim::toMicros(info.totalLatency));
        telemetry_.emit(now, "blk", bio->cgroup, "queue_depth",
                        static_cast<double>(info.dispatchQueueDepth));
    }

    if (controller_)
        controller_->onComplete(*bio, info);

    // A completed request frees a device slot: feed parked bios in.
    drainDispatchQueue();

    bio->runCompletions();
}

void
BlockLayer::handleError(BioPtr bio, sim::Time device_latency)
{
    ++deviceErrors_;
    ++statsMutable(bio->cgroup).errors;

    if (telemetry_.enabled()) {
        telemetry_.emit(sim_.now(), "blk", bio->cgroup, "error",
                        1.0);
    }

    // Notify the controller of every failed attempt (error bursts
    // are a saturation signal); the bio stays outstanding until its
    // final onComplete.
    if (controller_) {
        CompletionInfo info;
        info.deviceLatency = device_latency;
        info.totalLatency = sim_.now() - bio->submitTime;
        info.sizeBytes = bio->size;
        info.op = bio->op;
        info.deviceInFlight = device_.inFlight();
        info.dispatchQueueDepth = dispatchQueue_.size();
        info.status = bio->status;
        controller_->onError(*bio, info);
    }

    // Even a failed request occupied — and now frees — a device
    // slot.
    drainDispatchQueue();

    if (!expired(*bio) && bio->retries < retry_.maxRetries) {
        // Bounded requeue with exponential backoff. The retry
        // bypasses the controller (the bio was already charged at
        // submission — the kernel's requeue path likewise skips
        // rq-qos) and goes straight back to dispatch.
        ++retries_;
        ++statsMutable(bio->cgroup).retries;
        const unsigned attempt = ++bio->retries;
        bio->status = BioStatus::Ok;
        if (telemetry_.detailEnabled()) {
            telemetry_.emit(sim_.now(), "blk", bio->cgroup, "retry",
                            static_cast<double>(attempt));
        }
        const sim::Time backoff = retry_.backoffBase
                                  << (attempt - 1u);
        sim_.after(backoff,
                   [this,
                    owned = BioCapture(std::move(bio))]() mutable {
                       dispatch(owned.take());
                   });
        return;
    }

    failBio(std::move(bio), device_latency);
}

void
BlockLayer::failBio(BioPtr bio, sim::Time device_latency)
{
    // Timeout dominates: a bio that blew its deadline reports
    // Timeout even when the last attempt also errored, and a parked
    // bio that never reached the device expires with status Ok.
    const bool timed_out = expired(*bio);
    bio->status =
        timed_out ? BioStatus::Timeout : BioStatus::Error;

    ++completed_;
    ++failed_;
    CgroupIoStats &st = statsMutable(bio->cgroup);
    ++st.failures;
    if (timed_out) {
        ++timeouts_;
        ++st.timeouts;
    }
    // Failed bios contribute no latency samples: their timings
    // describe the failure path, not the device's service quality.

    if (telemetry_.enabled()) {
        telemetry_.emit(sim_.now(), "blk", bio->cgroup,
                        timed_out ? "timeout" : "io_failed", 1.0);
    }

    // The terminal onComplete keeps the controller's in-flight
    // accounting balanced (exactly one per accepted bio); info
    // carries the non-Ok status so latency percentiles skip it.
    if (controller_) {
        CompletionInfo info;
        info.deviceLatency = device_latency;
        info.totalLatency = sim_.now() - bio->submitTime;
        info.sizeBytes = bio->size;
        info.op = bio->op;
        info.deviceInFlight = device_.inFlight();
        info.dispatchQueueDepth = dispatchQueue_.size();
        info.status = bio->status;
        controller_->onComplete(*bio, info);
    }

    // No drainDispatchQueue() here: failing a bio frees no device
    // slot (queue-expired bios never held one), and the error path
    // already drained after the device completion.
    bio->runCompletions();
}

CgroupIoStats &
BlockLayer::statsMutable(cgroup::CgroupId cg)
{
    if (cg >= stats_.size())
        stats_.resize(cg + 1);
    return stats_[cg];
}

const CgroupIoStats &
BlockLayer::stats(cgroup::CgroupId cg) const
{
    if (cg >= stats_.size())
        stats_.resize(cg + 1);
    return stats_[cg];
}

void
BlockLayer::resetStats()
{
    stats_.clear();
}

void
BlockLayer::saveState(sim::StateWriter &w) const
{
    // Field-by-field: RetryPolicy pads after its unsigned, and raw
    // padding would make the tape differ between identical states.
    w.put(retry_.maxRetries);
    w.put(retry_.backoffBase);
    w.put(retry_.bioTimeout);
    blk::saveBioSeq(w, dispatchQueue_);

    w.put(static_cast<uint32_t>(stats_.size()));
    for (const CgroupIoStats &st : stats_) {
        w.put(st.reads);
        w.put(st.writes);
        w.put(st.readBytes);
        w.put(st.writeBytes);
        w.put(st.errors);
        w.put(st.retries);
        w.put(st.timeouts);
        w.put(st.failures);
        w.put(st.wbWrites);
        w.put(st.wbBytes);
        st.totalLatency.saveState(w);
        st.deviceLatency.saveState(w);
    }

    w.put(nextBioId_);
    w.put(submitted_);
    w.put(completed_);
    w.put(deviceErrors_);
    w.put(retries_);
    w.put(timeouts_);
    w.put(failed_);
    w.put(queueFullEvents_);
    w.put(mergedBios_);
    w.put(cpuEnabled_);
    w.put(mergeEnabled_);
    w.put(cpuBusyUntil_);

    if (controller_)
        controller_->saveState(w);
}

void
BlockLayer::loadState(sim::StateReader &r)
{
    r.get(retry_.maxRetries);
    r.get(retry_.backoffBase);
    r.get(retry_.bioTimeout);
    blk::loadBioSeq(r, dispatchQueue_);

    const auto n = r.get<uint32_t>();
    stats_.resize(n);
    for (CgroupIoStats &st : stats_) {
        r.get(st.reads);
        r.get(st.writes);
        r.get(st.readBytes);
        r.get(st.writeBytes);
        r.get(st.errors);
        r.get(st.retries);
        r.get(st.timeouts);
        r.get(st.failures);
        r.get(st.wbWrites);
        r.get(st.wbBytes);
        st.totalLatency.loadState(r);
        st.deviceLatency.loadState(r);
    }

    r.get(nextBioId_);
    r.get(submitted_);
    r.get(completed_);
    r.get(deviceErrors_);
    r.get(retries_);
    r.get(timeouts_);
    r.get(failed_);
    r.get(queueFullEvents_);
    r.get(mergedBios_);
    r.get(cpuEnabled_);
    r.get(mergeEnabled_);
    r.get(cpuBusyUntil_);

    if (controller_)
        controller_->loadState(r);
}

} // namespace iocost::blk
