/**
 * @file
 * The IO controller interface: the surface the kernel block layer
 * offers rq-qos policies and elevators.
 *
 * A controller receives every bio at submission (and may hold it),
 * dispatches bios toward the device through its BlockLayer, and is
 * notified of completions with the measured device latency. A
 * periodic planning hook and a return-to-userspace hook cover the
 * two slow-path integration points IOCost uses (paper §3.1.2, §3.5).
 */

#ifndef IOCOST_BLK_IO_CONTROLLER_HH
#define IOCOST_BLK_IO_CONTROLLER_HH

#include <string>

#include "blk/bio.hh"
#include "cgroup/cgroup_tree.hh"
#include "sim/state.hh"
#include "sim/time.hh"

namespace iocost::blk {

class BlockLayer;

/**
 * Everything a controller may want to know about one completion,
 * assembled by the BlockLayer. Extending observability means adding
 * a field here — not threading another parameter through every
 * controller override.
 */
struct CompletionInfo
{
    /** Dispatch-to-completion time (what the device delivered). */
    sim::Time deviceLatency = 0;
    /** Submission-to-completion time (what the app observed). */
    sim::Time totalLatency = 0;
    /** Request size in bytes (post-merge). */
    uint32_t sizeBytes = 0;
    /** Request direction. */
    Op op = Op::Read;
    /** Device requests still in flight after this completion. */
    uint32_t deviceInFlight = 0;
    /** Bios parked in the dispatch FIFO at completion time. */
    size_t dispatchQueueDepth = 0;
    /**
     * Final completion status. Non-Ok completions carry no valid
     * device latency; controllers must not feed them into their
     * latency percentiles.
     */
    BioStatus status = BioStatus::Ok;
};

/**
 * Static feature flags, used to regenerate the paper's Table 1.
 */
struct ControllerCaps
{
    std::string name;
    bool lowOverhead = false;
    bool workConserving = false;
    bool memoryManagementAware = false;
    bool proportionalFairness = false;
    bool cgroupControl = false;
};

/**
 * Abstract IO controller / scheduler.
 *
 * Lifecycle: the BlockLayer calls attach() once, then onSubmit() for
 * every bio. The controller forwards bios to layer().dispatch() when
 * they may proceed; held bios are the controller's responsibility to
 * eventually dispatch (via timers or completion events).
 */
class IoController
{
  public:
    virtual ~IoController() = default;

    /** Static capability flags (Table 1 row). */
    virtual ControllerCaps caps() const = 0;

    /**
     * A bio enters the block layer. Dispatch it now or hold it.
     */
    virtual void onSubmit(BioPtr bio) = 0;

    /**
     * A bio completed on the device.
     *
     * @param bio The completed request.
     * @param info Measured latencies and queue state.
     */
    virtual void
    onComplete(const Bio &bio, const CompletionInfo &info)
    {
        (void)bio;
        (void)info;
    }

    /**
     * A bio failed on the device. Fired once per failed attempt —
     * before the block layer decides between requeue and final
     * failure — so a controller can treat error bursts as a
     * saturation signal (a degrading device behaves like a slow
     * one). The bio is still outstanding: final accounting happens
     * in the onComplete() that eventually follows, which carries the
     * terminal status.
     */
    virtual void
    onError(const Bio &bio, const CompletionInfo &info)
    {
        (void)bio;
        (void)info;
    }

    /**
     * Return-to-userspace throttling hook (§3.5): the delay a thread
     * of @p cg should sleep before returning to userspace, used to
     * make pure memory hogs pay their swap-IO debt. Zero by default.
     */
    virtual sim::Time
    userspaceDelay(cgroup::CgroupId cg)
    {
        (void)cg;
        return 0;
    }

    /**
     * Modeled CPU time consumed on the submission path per bio.
     *
     * Values are calibrated so the simulated Fig. 9 experiment
     * reproduces the relative overheads the paper measured on kernel
     * implementations (BFQ's lock-heavy path caps throughput near
     * 170k IOPS; the rest stay below the device's ~750k ceiling).
     * Only applied when the BlockLayer's submission-CPU model is
     * enabled.
     */
    virtual sim::Time issueCpuCost() const { return 300; }

    /** Called once when installed into a BlockLayer. */
    virtual void
    attach(BlockLayer &layer)
    {
        layer_ = &layer;
    }

    /**
     * @name Snapshot support (sim::Snapshottable shape).
     *
     * Controllers serialize everything that evolves while bios flow:
     * per-cgroup accounting, held bios, timer handles, latency
     * windows. The defaults are no-ops — correct exactly for a
     * controller with no mutable state (noop); every stateful
     * controller overrides both.
     * @{
     */
    virtual void saveState(sim::StateWriter &w) const { (void)w; }
    virtual void loadState(sim::StateReader &r) { (void)r; }
    /** @} */

  protected:
    /** The owning block layer (valid after attach()). */
    BlockLayer &layer() { return *layer_; }
    const BlockLayer &layer() const { return *layer_; }

  private:
    BlockLayer *layer_ = nullptr;
};

} // namespace iocost::blk

#endif // IOCOST_BLK_IO_CONTROLLER_HH
