/**
 * @file
 * Abstract block device consumed by the block layer.
 *
 * A device accepts bios up to its queue depth (the driver/hardware
 * queue slots) and completes them asynchronously on the simulated
 * event queue, reporting the dispatch-to-completion latency. The
 * "slots" abstraction is what IOCost's saturation detection watches
 * (request depletion, paper §3.3).
 */

#ifndef IOCOST_BLK_BLOCK_DEVICE_HH
#define IOCOST_BLK_BLOCK_DEVICE_HH

#include <string>

#include "blk/bio.hh"
#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/state.hh"
#include "sim/time.hh"

namespace iocost::stat {
class Telemetry;
}

namespace iocost::sim {
class FaultInjector;
}

namespace iocost::blk {

class ServiceLog;

/** Invoked by a device when a request finishes. Move-only, inline:
 *  installed once by the BlockLayer, invoked once per bio. */
using DeviceEndFn =
    sim::InlineFunction<void(BioPtr, sim::Time), 32>;

/**
 * Abstract block device.
 */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /**
     * Try to accept a request.
     *
     * @return true and take ownership if a queue slot was free,
     *         false (leaving the bio with the caller) otherwise.
     */
    virtual bool submit(BioPtr &bio) = 0;

    /** Hardware/driver queue depth (max in-flight requests). */
    virtual uint32_t queueDepth() const = 0;

    /** Currently in-flight requests. */
    virtual uint32_t inFlight() const = 0;

    /** Marketing name for reports. */
    virtual std::string modelName() const = 0;

    /** Register the completion sink (set once by the BlockLayer). */
    void
    setCompletionFn(DeviceEndFn fn)
    {
        complete_ = std::move(fn);
    }

    /**
     * Borrow the owning layer's telemetry handle (set by the
     * BlockLayer; may stay null for bare-device tests). Device
     * models publish internal-state records (GC transitions,
     * firmware hiccups, rate-limiter stalls) through it.
     */
    void setTelemetry(stat::Telemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

    /**
     * Install a fault injector (owned by the caller, typically the
     * Host). Device models consult it on every submission for
     * latency multipliers, stalls, injected errors, and write-cliff
     * onset; null (the default) means a well-behaved device with
     * zero overhead on the submit path.
     */
    void setFaultInjector(sim::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /**
     * Install a service log (owned by the caller; see
     * blk/service_log.hh). When set, the model records every
     * accepted attempt's service duration and fault status so sweep
     * lanes can replay the shared device/fault stream. Null (the
     * default) costs one predictable branch on the submit path.
     */
    void setServiceLog(ServiceLog *log) { serviceLog_ = log; }

    /**
     * @name Snapshot support (sim::Snapshottable shape).
     *
     * A snapshottable device serializes its mutable spec, its jitter
     * Rng, and every in-flight request (completion events themselves
     * live in the event-queue arena and are cloned there). The
     * defaults panic so an unported model fails loudly at snapshot
     * time instead of silently diverging after restore.
     * @{
     */
    virtual void
    saveState(sim::StateWriter &) const
    {
        sim::panic("device model '" + modelName() +
                   "' is not snapshottable");
    }

    virtual void
    loadState(sim::StateReader &)
    {
        sim::panic("device model '" + modelName() +
                   "' is not snapshottable");
    }
    /** @} */

  protected:
    /** The telemetry handle, or nullptr when never attached. */
    stat::Telemetry *telemetry() const { return telemetry_; }
    /** The fault injector, or nullptr for a healthy device. */
    sim::FaultInjector *faults() const { return faults_; }
    /** The service log, or nullptr outside sweep mode. */
    ServiceLog *serviceLog() const { return serviceLog_; }
    /** Deliver a completion to the block layer. */
    void
    finish(BioPtr bio, sim::Time device_latency)
    {
        if (complete_)
            complete_(std::move(bio), device_latency);
    }

  private:
    DeviceEndFn complete_;
    stat::Telemetry *telemetry_ = nullptr;
    sim::FaultInjector *faults_ = nullptr;
    ServiceLog *serviceLog_ = nullptr;
};

} // namespace iocost::blk

#endif // IOCOST_BLK_BLOCK_DEVICE_HH
