/**
 * @file
 * The block layer: glue between submitters, the IO controller, and
 * the device.
 *
 * Responsibilities (mirroring the kernel's):
 *  - accept bios from workloads / the memory manager;
 *  - hand every bio to the installed controller (which may hold it);
 *  - dispatch controller-released bios to the device, parking them in
 *    a FIFO when the device queue is full;
 *  - fan completions back out (controller notification, per-cgroup
 *    accounting, submitter callback).
 */

#ifndef IOCOST_BLK_BLOCK_LAYER_HH
#define IOCOST_BLK_BLOCK_LAYER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "blk/bio.hh"
#include "blk/block_device.hh"
#include "blk/io_controller.hh"
#include "cgroup/cgroup_tree.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"
#include "stat/telemetry.hh"

namespace iocost::blk {

/**
 * Per-cgroup IO accounting kept by the block layer.
 */
struct CgroupIoStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t readBytes = 0;
    uint64_t writeBytes = 0;
    /** Device-level failures observed (each failed attempt). */
    uint64_t errors = 0;
    /** Requeues after a failed attempt. */
    uint64_t retries = 0;
    /** Bios that exceeded the per-bio timeout. */
    uint64_t timeouts = 0;
    /** Bios delivered to the submitter with a non-Ok status. */
    uint64_t failures = 0;
    /** Dirty-writeback bios completed (flusher IO, bio->wb). */
    uint64_t wbWrites = 0;
    /** Bytes cleaned by those writeback completions. */
    uint64_t wbBytes = 0;
    /** Submission-to-completion latency (what the app observes). */
    stat::Histogram totalLatency;
    /** Dispatch-to-completion latency (what the device delivered). */
    stat::Histogram deviceLatency;
};

/**
 * The block layer for one device.
 */
class BlockLayer
{
  public:
    /**
     * @param sim Simulation context.
     * @param device The backing device (not owned).
     * @param tree The cgroup hierarchy (not owned).
     */
    BlockLayer(sim::Simulator &sim, BlockDevice &device,
               cgroup::CgroupTree &tree);

    /**
     * Error-handling policy (the kernel's bounded requeue + request
     * timeout). Defaults mean: up to 4 requeues with exponential
     * backoff, no per-bio timeout — and, with no fault injector
     * installed, zero behavioral change on the hot path.
     */
    struct RetryPolicy
    {
        /** Requeue attempts before a bio fails permanently. */
        unsigned maxRetries = 4;
        /** Backoff before attempt n is 'backoffBase << (n - 1)'. */
        sim::Time backoffBase = 100 * sim::kUsec;
        /** Submit-to-completion deadline; 0 disables timeouts. */
        sim::Time bioTimeout = 0;
    };

    /** Install the error-handling policy. */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }

    /** The active error-handling policy. */
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Install the IO controller (nullptr = no control, direct). */
    void setController(std::unique_ptr<IoController> controller);

    /** The installed controller, or nullptr. */
    IoController *controller() { return controller_.get(); }

    /** Submit a bio into the stack. */
    void submit(BioPtr bio);

    /**
     * Enable the submission-path CPU model: each submitted bio
     * serializes on one simulated CPU for the controller's
     * issueCpuCost() before reaching the controller. Off by default;
     * the Fig. 9 overhead bench turns it on.
     */
    void setSubmissionCpuEnabled(bool enabled)
    {
        cpuEnabled_ = enabled;
    }

    /** CPU cost charged per bio when no controller is installed. */
    static constexpr sim::Time kNoControllerCpuCost = 150;

    /**
     * Dispatch a controller-released bio toward the device. Parks it
     * in the elevator FIFO if the device is saturated; while parked,
     * contiguous same-direction bios of one cgroup are back-merged
     * into larger requests (the kernel's plug/elevator merging),
     * which is what keeps interleaved sequential streams efficient
     * on seek-bound media.
     */
    void dispatch(BioPtr bio);

    /** Upper bound on a merged request's size. */
    static constexpr uint32_t kMaxMergedBytes = 512 * 1024;

    /** Parked bios scanned for a back-merge (plug-list window). */
    static constexpr size_t kMergeScanWindow = 64;

    /**
     * Enable/disable back-merging of parked bios. On by default.
     * Sweep execution turns it off on every layer it builds: merging
     * rewrites bio identity (the absorbed bio never reaches the
     * device), which would break the id-keyed outcome replay that
     * keeps the lanes on one device stream.
     */
    void setMergeEnabled(bool enabled) { mergeEnabled_ = enabled; }

    /** Bios absorbed into merged requests so far. */
    uint64_t mergedBios() const { return mergedBios_; }

    /** Simulation context. */
    sim::Simulator &sim() const { return sim_; }

    /** The cgroup hierarchy. */
    cgroup::CgroupTree &cgroups() { return tree_; }

    /** The device. */
    BlockDevice &device() { return device_; }

    /**
     * The stack's telemetry handle. The layer owns it; the
     * controller and the device publish through it. Install a sink
     * (setTelemetrySink) to start the record flow.
     */
    stat::Telemetry &telemetry() { return telemetry_; }

    /** Install a telemetry sink (not owned; nullptr disconnects). */
    void
    setTelemetrySink(stat::TelemetrySink *sink)
    {
        telemetry_.setSink(sink);
    }

    /** Per-cgroup accounting (grows on demand). */
    const CgroupIoStats &stats(cgroup::CgroupId cg) const;

    /** Reset all per-cgroup accounting (benches reuse stacks). */
    void resetStats();

    /** Bios accepted so far. */
    uint64_t submitted() const { return submitted_; }

    /** Bios completed so far (successes and final failures). */
    uint64_t completed() const { return completed_; }

    /** Failed device attempts observed so far. */
    uint64_t deviceErrors() const { return deviceErrors_; }

    /** Requeues performed so far. */
    uint64_t retries() const { return retries_; }

    /** Bios that exceeded the per-bio timeout. */
    uint64_t timeouts() const { return timeouts_; }

    /** Bios delivered to submitters with a non-Ok status. */
    uint64_t failedBios() const { return failed_; }

    /** Bios sitting in the post-controller dispatch FIFO. */
    size_t dispatchQueueDepth() const { return dispatchQueue_.size(); }

    /**
     * Count of dispatch attempts that found the device queue full
     * since the last readAndResetQueueFullEvents() call. IOCost's
     * planning path consumes this as its request-depletion signal.
     */
    uint64_t
    readAndResetQueueFullEvents()
    {
        const uint64_t n = queueFullEvents_;
        queueFullEvents_ = 0;
        return n;
    }

    /**
     * @name Fused-sweep accounting hooks (host::FusedObserver).
     *
     * The sweep's fused observer performs this layer's per-bio work
     * for lockstep lanes without materializing a bio. Each hook
     * replicates exactly the mutations the corresponding full-path
     * function makes for a status-Ok bio; the observer calls them in
     * full-path order. Only meaningful on shadow-lane layers, where
     * merging, the submission-CPU model, and detail telemetry are
     * all off.
     * @{
     */

    /**
     * Apply a deferred batch of acceptance/completion counts. The
     * observer counts fused submissions and Ok completions once, in
     * shared scratch, and lands the identical integer deltas on
     * every fused lane at its flush points (planning boundaries,
     * forks, stat reads) — addition commutes, so deferral cannot
     * change results.
     */
    void
    fusedApplyDeferred(uint64_t submits, uint64_t completes)
    {
        nextBioId_ += submits;
        submitted_ += submits;
        completed_ += completes;
    }

    /**
     * Merge a deferred per-cgroup stats window (Ok completions only:
     * counts, bytes, and the two latency histograms — error counters
     * always go through the full path).
     */
    void fusedMergeStats(cgroup::CgroupId cg,
                         const CgroupIoStats &delta);

    /** Next bio id to be assigned (fused lockstep assertion). */
    uint64_t nextBioId() const { return nextBioId_; }

    /** onDeviceComplete()'s accounting for one Ok completion
     *  (immediate form, for completions that straddle a refusion). */
    void fusedCompleteStats(Op op, uint32_t size,
                            cgroup::CgroupId cg, bool wb,
                            sim::Time total_latency,
                            sim::Time device_latency);

    /** onDeviceComplete()'s freed-device-slot drain. */
    void fusedCompleteDrain() { drainDispatchQueue(); }
    /** @} */

    /**
     * @name Snapshot support (sim::Snapshottable shape).
     *
     * Serializes the retry policy (what-if fault queries rewrite
     * it), the parked dispatch FIFO, the per-cgroup accounting
     * table, all counters, and the installed controller's state.
     * The device is NOT covered here — the Host snapshots it
     * separately, matching the ownership split.
     * @{
     */
    void saveState(sim::StateWriter &w) const;
    void loadState(sim::StateReader &r);
    /** @} */

  private:
    void onDeviceComplete(BioPtr bio, sim::Time device_latency);
    void handleError(BioPtr bio, sim::Time device_latency);
    void failBio(BioPtr bio, sim::Time device_latency);
    bool expired(const Bio &bio) const;
    void drainDispatchQueue();
    void deliverToController(BioPtr bio);
    CgroupIoStats &statsMutable(cgroup::CgroupId cg);

    sim::Simulator &sim_;
    BlockDevice &device_;
    cgroup::CgroupTree &tree_;
    stat::Telemetry telemetry_;
    std::unique_ptr<IoController> controller_;
    RetryPolicy retry_;
    std::deque<BioPtr> dispatchQueue_;
    /**
     * Per-cgroup table. Deliberately a deque, never a vector:
     * stats() hands out references that callers (benches, tests,
     * agents) hold across further submissions, and a completion
     * callback — which can run inline under dispatch() since the
     * timeout path — may submit from a previously-unseen cgroup id
     * and grow this table. Contiguous storage would invalidate every
     * held reference on reallocation (a use-after-free the
     * regression test in test_error_retry.cc demonstrates); deque
     * growth leaves existing elements in place.
     */
    mutable std::deque<CgroupIoStats> stats_;
    uint64_t nextBioId_ = 1;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    uint64_t deviceErrors_ = 0;
    uint64_t retries_ = 0;
    uint64_t timeouts_ = 0;
    uint64_t failed_ = 0;
    uint64_t queueFullEvents_ = 0;
    uint64_t mergedBios_ = 0;
    bool cpuEnabled_ = false;
    bool mergeEnabled_ = true;
    sim::Time cpuBusyUntil_ = 0;
};

} // namespace iocost::blk

#endif // IOCOST_BLK_BLOCK_LAYER_HH
