/**
 * @file
 * Snapshot helpers for in-flight bios.
 *
 * Queued and in-flight bios are the one kind of simulator state
 * that cannot be flattened onto the snapshot byte tape: they carry
 * type-erased completion callbacks. Each bio is deep-cloned once
 * into the image's box tape (immutable, shared across restores) and
 * cloned back out on every restore, so a snapshot can seed any
 * number of branches without aliasing.
 */

#ifndef IOCOST_BLK_BIO_STATE_HH
#define IOCOST_BLK_BIO_STATE_HH

#include <cstdint>
#include <memory>

#include "blk/bio.hh"
#include "sim/state.hh"

namespace iocost::blk {

/** Box one bio into the snapshot image. */
inline void
saveBio(sim::StateWriter &w, const Bio &bio)
{
    // cloneBio() heap-allocates (pool == nullptr), so the default
    // shared_ptr deleter is the right one and the image can be
    // destroyed from any thread.
    w.putBox(std::shared_ptr<const Bio>(cloneBio(bio).release()));
}

/** Clone the next boxed bio back out of the image. */
inline BioPtr
loadBio(sim::StateReader &r)
{
    return cloneBio(*r.getBoxAs<Bio>());
}

/** Save an ordered container of BioPtrs (deque/vector). */
template <typename Container>
inline void
saveBioSeq(sim::StateWriter &w, const Container &bios)
{
    w.put(static_cast<uint64_t>(bios.size()));
    for (const BioPtr &bio : bios)
        saveBio(w, *bio);
}

/** Restore an ordered container of BioPtrs (deque/vector). */
template <typename Container>
inline void
loadBioSeq(sim::StateReader &r, Container &bios)
{
    bios.clear();
    const auto n = r.get<uint64_t>();
    for (uint64_t i = 0; i < n; ++i)
        bios.push_back(loadBio(r));
}

} // namespace iocost::blk

#endif // IOCOST_BLK_BIO_STATE_HH
