#include "cgroup/cgroup_tree.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace iocost::cgroup {

CgroupTree::CgroupTree()
{
    Node root;
    root.name = "/";
    root.weight = kDefaultWeight;
    root.inuse = kDefaultWeight;
    nodes_.push_back(std::move(root));
}

CgroupId
CgroupTree::create(CgroupId parent, std::string name, uint32_t weight)
{
    sim::panicIf(parent >= nodes_.size(),
                 "cgroup create: bad parent id");
    sim::panicIf(weight == 0, "cgroup create: zero weight");
    const CgroupId id = static_cast<CgroupId>(nodes_.size());
    Node node;
    node.parent = parent;
    node.name = std::move(name);
    node.weight = weight;
    node.inuse = weight;
    nodes_.push_back(std::move(node));
    nodes_[parent].children.push_back(id);
    bump();
    return id;
}

std::string
CgroupTree::path(CgroupId id) const
{
    if (id == kRoot)
        return "/";
    std::string out;
    for (CgroupId cur = id; cur != kRoot; cur = nodes_[cur].parent)
        out = "/" + nodes_[cur].name + out;
    return out;
}

void
CgroupTree::setWeight(CgroupId id, uint32_t weight)
{
    sim::panicIf(weight == 0, "cgroup setWeight: zero weight");
    nodes_[id].weight = weight;
    nodes_[id].inuse = weight;
    bump();
}

void
CgroupTree::setInuse(CgroupId id, double inuse)
{
    // No upper clamp: inuse is an internal effective weight, and the
    // donation math legitimately pushes a node's inuse above its
    // configured weight inside fully-donating subtrees (only the
    // ratios among siblings matter).
    nodes_[id].inuse = std::max(inuse, 1e-9);
    bump();
}

void
CgroupTree::setActive(CgroupId id, bool active)
{
    Node &node = nodes_[id];
    if (node.activeSelf == active)
        return;
    node.activeSelf = active;
    const int delta = active ? 1 : -1;
    for (CgroupId cur = node.parent; cur != kNone;
         cur = nodes_[cur].parent) {
        nodes_[cur].activeDescendants =
            static_cast<uint32_t>(
                static_cast<int>(nodes_[cur].activeDescendants) +
                delta);
    }
    // A group that falls inactive stops donating: restore inuse so a
    // later reactivation starts from its configured entitlement.
    if (!active)
        node.inuse = node.weight;
    bump();
}

void
CgroupTree::refreshCache(CgroupId id) const
{
    const Node &node = nodes_[id];
    if (node.cacheGen == generation_)
        return;

    if (id == kRoot) {
        node.cachedActive = subtreeActive(kRoot) ? 1.0 : 1.0;
        node.cachedInuse = 1.0;
        node.cacheGen = generation_;
        return;
    }

    if (!subtreeActive(id)) {
        node.cachedActive = 0.0;
        node.cachedInuse = 0.0;
        node.cacheGen = generation_;
        return;
    }

    refreshCache(node.parent);
    const Node &par = nodes_[node.parent];

    double sum_weight = 0.0;
    double sum_inuse = 0.0;
    for (CgroupId sib : par.children) {
        if (!subtreeActive(sib))
            continue;
        sum_weight += static_cast<double>(nodes_[sib].weight);
        sum_inuse += nodes_[sib].inuse;
    }
    node.cachedActive =
        par.cachedActive *
        static_cast<double>(node.weight) / sum_weight;
    node.cachedInuse = par.cachedInuse * node.inuse / sum_inuse;
    node.cacheGen = generation_;
}

double
CgroupTree::hweightActive(CgroupId id) const
{
    refreshCache(id);
    return nodes_[id].cachedActive;
}

double
CgroupTree::hweightInuse(CgroupId id) const
{
    refreshCache(id);
    return nodes_[id].cachedInuse;
}

std::vector<CgroupId>
CgroupTree::allIds() const
{
    std::vector<CgroupId> out(nodes_.size());
    for (CgroupId i = 0; i < nodes_.size(); ++i)
        out[i] = i;
    return out;
}

std::vector<CgroupId>
CgroupTree::leafIds() const
{
    std::vector<CgroupId> out;
    for (CgroupId i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].children.empty())
            out.push_back(i);
    }
    return out;
}

bool
CgroupTree::isAncestor(CgroupId ancestor, CgroupId id) const
{
    for (CgroupId cur = id; cur != kNone; cur = nodes_[cur].parent) {
        if (cur == ancestor)
            return true;
    }
    return false;
}

void
CgroupTree::saveState(sim::StateWriter &w) const
{
    w.put(generation_);
    w.put(static_cast<uint32_t>(nodes_.size()));
    for (const Node &n : nodes_) {
        w.put(n.weight);
        w.put(n.inuse);
        w.put(n.activeSelf);
        w.put(n.activeDescendants);
        w.put(n.cacheGen);
        w.put(n.cachedActive);
        w.put(n.cachedInuse);
    }
}

void
CgroupTree::loadState(sim::StateReader &r)
{
    r.get(generation_);
    const auto count = r.get<uint32_t>();
    sim::panicIf(count != nodes_.size(),
                 "CgroupTree::loadState: node count mismatch — "
                 "snapshots restore state, they cannot add or "
                 "remove cgroups");
    for (Node &n : nodes_) {
        r.get(n.weight);
        r.get(n.inuse);
        r.get(n.activeSelf);
        r.get(n.activeDescendants);
        r.get(n.cacheGen);
        r.get(n.cachedActive);
        r.get(n.cachedInuse);
    }
}

} // namespace iocost::cgroup
