/**
 * @file
 * Weighted cgroup hierarchy with cached hierarchical weights.
 *
 * Mirrors the part of the kernel cgroup v2 machinery that IO
 * controllers consume: a tree of groups, each with a configured
 * weight, and the derived *hierarchical* weight (hweight) obtained by
 * compounding each node's share of its siblings' weights up to the
 * root (paper §3.1, step 3).
 *
 * Like the kernel's iocost, every node carries two weights:
 *
 *  - weight: the configured weight (what the administrator set);
 *  - inuse:  the weight currently in effect, lowered below `weight`
 *            while the group donates budget (§3.6) and restored when
 *            the donation is rescinded.
 *
 * hweightActive() compounds `weight` (the entitlement); hweightInuse()
 * compounds `inuse` (the share after donation). Throttling decisions
 * use hweightInuse; donation planning uses both.
 *
 * hweights are cached per node and invalidated by a tree-wide
 * generation number, bumped whenever any weight, inuse value, or
 * activation changes — exactly the paper's "weight tree generation
 * number" (§3.1.1).
 */

#ifndef IOCOST_CGROUP_CGROUP_TREE_HH
#define IOCOST_CGROUP_CGROUP_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/state.hh"

namespace iocost::cgroup {

/** Index of a cgroup within its tree. */
using CgroupId = uint32_t;

/** The root group always has id 0. */
inline constexpr CgroupId kRoot = 0;

/** Sentinel for "no cgroup". */
inline constexpr CgroupId kNone = UINT32_MAX;

/** Default cgroup v2 io.weight. */
inline constexpr uint32_t kDefaultWeight = 100;

/**
 * A tree of weighted control groups.
 *
 * Groups are created once and never destroyed (ids are stable);
 * datacenter hosts recycle container cgroups, but within one
 * simulated experiment the set is fixed, matching how the benches
 * use it.
 */
class CgroupTree
{
  public:
    CgroupTree();

    /**
     * Create a child group.
     *
     * @param parent Parent group id (kRoot for top level).
     * @param name Human-readable name for reports.
     * @param weight Configured weight (> 0).
     * @return Id of the new group.
     */
    CgroupId create(CgroupId parent, std::string name,
                    uint32_t weight = kDefaultWeight);

    /** Number of groups including the root. */
    size_t size() const { return nodes_.size(); }

    /** Parent id; kNone for the root. */
    CgroupId parent(CgroupId id) const { return nodes_[id].parent; }

    /** Children ids of @p id. */
    const std::vector<CgroupId> &
    children(CgroupId id) const
    {
        return nodes_[id].children;
    }

    /** Name of @p id. */
    const std::string &name(CgroupId id) const
    {
        return nodes_[id].name;
    }

    /** Slash-separated path from the root (root is "/"). */
    std::string path(CgroupId id) const;

    /** Configured weight. */
    uint32_t weight(CgroupId id) const { return nodes_[id].weight; }

    /** Set the configured weight; also resets inuse to the weight. */
    void setWeight(CgroupId id, uint32_t weight);

    /** Effective (donation-adjusted) weight. */
    double inuse(CgroupId id) const { return nodes_[id].inuse; }

    /**
     * Set the effective weight (> 0; may exceed the configured
     * weight inside fully-donating subtrees — only sibling ratios
     * matter). Called by the planning path (donation) and the issue
     * path (rescind).
     */
    void setInuse(CgroupId id, double inuse);

    /** @return true if the group itself is active (issued IO). */
    bool activeSelf(CgroupId id) const
    {
        return nodes_[id].activeSelf;
    }

    /**
     * @return true if the group or any descendant is active; inactive
     * subtrees are excluded from sibling weight sums so their budget
     * implicitly flows to active siblings (§3.1.1).
     */
    bool
    subtreeActive(CgroupId id) const
    {
        return nodes_[id].activeDescendants > 0 ||
               nodes_[id].activeSelf;
    }

    /** Mark a (leaf) group active or inactive. */
    void setActive(CgroupId id, bool active);

    /**
     * Hierarchical share of the device based on configured weights.
     * 1.0 for the root. 0 for inactive groups.
     */
    double hweightActive(CgroupId id) const;

    /**
     * Hierarchical share based on donation-adjusted (inuse) weights.
     * This is the share the issue path divides costs by.
     */
    double hweightInuse(CgroupId id) const;

    /**
     * Current tree generation; bumped on any weight/active change.
     * Exposed so controllers can keep their own derived caches.
     */
    uint64_t generation() const { return generation_; }

    /** All ids in creation order (root first). */
    std::vector<CgroupId> allIds() const;

    /** Ids of leaves (groups with no children). */
    std::vector<CgroupId> leafIds() const;

    /** @return true if @p ancestor is on the path from @p id to root
     *  (a group is its own ancestor). */
    bool isAncestor(CgroupId ancestor, CgroupId id) const;

    /**
     * @name Snapshot support.
     *
     * Structure (parent links, names) is identity and must match at
     * load time — snapshots roll state back, they never create or
     * destroy cgroups. The per-node *mutable hweight caches* are
     * serialized too, deliberately: refreshCache() tests
     * `cacheGen == generation_` for equality, so a branch that
     * bumped the generation and stamped fresh caches could collide
     * with a replayed timeline reaching the same generation number
     * — restoring the caches verbatim closes that hole and costs a
     * few doubles per node.
     * @{
     */
    void saveState(sim::StateWriter &w) const;
    void loadState(sim::StateReader &r);
    /** @} */

  private:
    struct Node
    {
        CgroupId parent = kNone;
        std::vector<CgroupId> children;
        std::string name;
        uint32_t weight = kDefaultWeight;
        double inuse = kDefaultWeight;
        bool activeSelf = false;
        uint32_t activeDescendants = 0;

        // hweight caches, keyed by tree generation.
        mutable uint64_t cacheGen = 0;
        mutable double cachedActive = 0.0;
        mutable double cachedInuse = 0.0;
    };

    void bump() { ++generation_; }
    void refreshCache(CgroupId id) const;

    std::vector<Node> nodes_;
    uint64_t generation_ = 1;
};

} // namespace iocost::cgroup

#endif // IOCOST_CGROUP_CGROUP_TREE_HH
