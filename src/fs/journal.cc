#include "fs/journal.hh"

#include <algorithm>
#include <memory>

namespace iocost::fs {

Journal::Journal(sim::Simulator &sim, blk::BlockLayer &layer,
                 JournalConfig cfg)
    : sim_(sim),
      layer_(layer),
      cfg_(cfg),
      timer_(sim, cfg.commitInterval, [this] {
          if (running_.bytes > 0 || !running_.waiters.empty())
              maybeCommit(cgroup::kRoot);
      })
{
    timer_.start();
}

Journal::~Journal() = default;

void
Journal::logMetadata(cgroup::CgroupId cg, uint64_t bytes)
{
    (void)cg; // contributors are anonymous inside a transaction
    running_.bytes += bytes;
    if (running_.bytes >= cfg_.maxTxnBytes)
        maybeCommit(cg);
}

void
Journal::fsync(cgroup::CgroupId cg, DoneFn done)
{
    // The caller's metadata lives in the running transaction (or an
    // earlier one already committing, whose completion happens
    // before the running one — waiting for the running txn is
    // always sufficient and matches jbd2's coarse semantics).
    running_.waiters.push_back(Waiter{std::move(done), sim_.now()});
    maybeCommit(cg);
}

void
Journal::maybeCommit(cgroup::CgroupId committer)
{
    if (commitInFlight_) {
        // jbd2 allows one running + one committing transaction; a
        // second commit request queues until the current finishes.
        commitPending_ = true;
        pendingCommitter_ = committer;
        return;
    }
    if (running_.bytes == 0 && running_.waiters.empty())
        return;

    committing_ = std::move(running_);
    running_ = Txn{};
    commitInFlight_ = true;
    ++commits_;

    // Write the transaction's blocks plus one commit record,
    // sequentially in the journal area, all charged to the
    // committing cgroup and flagged as metadata so the §3.5 debt
    // path applies. The commit record is written after the data
    // blocks complete (write barrier), like a real journal.
    const uint64_t payload =
        std::max<uint64_t>(committing_.bytes, 1);
    const unsigned n_ios = static_cast<unsigned>(
        (payload + cfg_.ioBytes - 1) / cfg_.ioBytes);

    commitRemaining_ = n_ios;
    committingCgroup_ = committer;

    uint64_t left = payload;
    for (unsigned i = 0; i < n_ios; ++i) {
        const uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(cfg_.ioBytes, left));
        left -= chunk;
        bytesWritten_ += chunk;
        auto bio = blk::Bio::make(
            blk::Op::Write, cfg_.areaOffset + cursor_, chunk,
            committer, [this](const blk::Bio &) {
                if (--commitRemaining_ == 0)
                    writeCommitRecord();
            });
        bio->meta = true;
        cursor_ = (cursor_ + chunk) % cfg_.areaBytes;
        layer_.submit(std::move(bio));
    }
}

void
Journal::writeCommitRecord()
{
    auto record = blk::Bio::make(
        blk::Op::Write, cfg_.areaOffset + cursor_, 4096,
        committingCgroup_,
        [this](const blk::Bio &) { commitDone(); });
    record->meta = true;
    cursor_ = (cursor_ + 4096) % cfg_.areaBytes;
    layer_.submit(std::move(record));
}

void
Journal::commitDone()
{
    bytesWritten_ += 4096; // the commit record
    for (Waiter &w : committing_.waiters) {
        fsyncLat_.record(sim_.now() - w.since);
        w.done();
    }
    committing_ = Txn{};
    commitInFlight_ = false;
    if (commitPending_) {
        commitPending_ = false;
        maybeCommit(pendingCommitter_);
    }
}

} // namespace iocost::fs
