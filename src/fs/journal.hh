/**
 * @file
 * Shared write-ahead journal (jbd2-style) on top of the block layer.
 *
 * The filesystem journal is the second priority-inversion source the
 * paper's debt mechanism handles (§3.5): metadata from *all* cgroups
 * serializes into one transaction stream, and an fsync by cgroup B
 * cannot complete until the running transaction — which may be full
 * of cgroup A's metadata — commits. If the commit IO were throttled
 * against A's (exhausted) budget, B would stall on A's debt: the
 * classic journal inversion. The journal therefore tags its IO with
 * the bio `meta` flag, which IOCost's production mode issues
 * immediately and charges as debt to the committing cgroup.
 *
 * Model (following jbd2's essentials):
 *  - one *running* transaction accumulates metadata bytes from any
 *    number of cgroups;
 *  - at most one transaction *commits* at a time: its data blocks
 *    are written, then a commit record; fsync waiters of that
 *    transaction fire when the commit record is durable;
 *  - a commit is triggered by the periodic commit timer, by the
 *    running transaction reaching its size cap, or by an fsync;
 *  - an fsync issued while a commit is in flight joins the *next*
 *    transaction's waiters if the running transaction has its data
 *    (jbd2's "wait for the running transaction" semantics are
 *    simplified to: fsync waits for the transaction that holds the
 *    caller's most recent metadata, or for an empty-commit barrier
 *    when the caller logged nothing).
 */

#ifndef IOCOST_FS_JOURNAL_HH
#define IOCOST_FS_JOURNAL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "blk/block_layer.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"

namespace iocost::fs {

/** Static journal configuration. */
struct JournalConfig
{
    /** Byte offset of the journal area on the device. */
    uint64_t areaOffset = 2ull << 40;

    /** Journal area size (log wraps around). */
    uint64_t areaBytes = 1ull << 30;

    /** Periodic commit interval (jbd2's 5s scaled down). */
    sim::Time commitInterval = 50 * sim::kMsec;

    /** Running transaction size that forces a commit. */
    uint64_t maxTxnBytes = 8ull << 20;

    /** Size of each journal write bio. */
    uint32_t ioBytes = 256 * 1024;
};

/**
 * The shared journal.
 */
class Journal
{
  public:
    using DoneFn = std::function<void()>;

    Journal(sim::Simulator &sim, blk::BlockLayer &layer,
            JournalConfig cfg);
    ~Journal();

    /**
     * Record @p bytes of metadata dirtied by @p cg into the running
     * transaction. Returns immediately (the buffer is in memory
     * until commit).
     */
    void logMetadata(cgroup::CgroupId cg, uint64_t bytes);

    /**
     * Make @p cg's logged metadata durable: forces the transaction
     * holding it to commit and fires @p done once the commit record
     * is on stable storage. The commit IO is charged to @p cg (the
     * committing cgroup) with the bio meta flag.
     */
    void fsync(cgroup::CgroupId cg, DoneFn done);

    /** Transactions committed so far. */
    uint64_t commits() const { return commits_; }

    /** Journal bytes written so far. */
    uint64_t bytesWritten() const { return bytesWritten_; }

    /** fsync latency distribution. */
    const stat::Histogram &fsyncLatency() const
    {
        return fsyncLat_;
    }

    /** Bytes buffered in the running transaction. */
    uint64_t runningBytes() const { return running_.bytes; }

  private:
    struct Waiter
    {
        DoneFn done;
        sim::Time since;
    };

    struct Txn
    {
        uint64_t bytes = 0;
        std::vector<Waiter> waiters;
    };

    /** Begin committing the running transaction (if allowed). */
    void maybeCommit(cgroup::CgroupId committer);

    /** Data blocks durable: write the commit record (barrier). */
    void writeCommitRecord();

    /** Completion of the in-flight commit. */
    void commitDone();

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    JournalConfig cfg_;

    Txn running_;
    Txn committing_;
    bool commitInFlight_ = false;
    /** A commit was requested while one was in flight. */
    bool commitPending_ = false;
    cgroup::CgroupId pendingCommitter_ = cgroup::kRoot;
    /**
     * In-flight commit state. At most one transaction commits at a
     * time (commitInFlight_), so the data-block countdown and the
     * charged cgroup are plain members — bio callbacks capture only
     * `this` instead of a shared counter and a copied continuation.
     */
    unsigned commitRemaining_ = 0;
    cgroup::CgroupId committingCgroup_ = cgroup::kRoot;

    uint64_t cursor_ = 0;
    uint64_t commits_ = 0;
    uint64_t bytesWritten_ = 0;
    stat::Histogram fsyncLat_;
    sim::PeriodicTimer timer_;
};

} // namespace iocost::fs

#endif // IOCOST_FS_JOURNAL_HH
