/**
 * @file
 * Telemetry bus: period-level observability records.
 *
 * The planning path, the comparison controllers, the block layer and
 * the device models publish flat (time, source, cgroup, key, value)
 * records into a TelemetrySink — the simulator's analogue of the
 * kernel's iocost_monitor drgn scraper, except the data is pushed at
 * the points where the decisions are made instead of scraped from
 * kernel memory.
 *
 * Emission goes through a Telemetry handle whose enabled() check is a
 * single pointer test: with no sink installed (the default) every
 * publisher reduces to a branch, so simulation hot paths pay nothing
 * (bench/perf_kernel.cc tracks this). Three sinks cover the use
 * cases: none (default), a JSONL file (tools/iocost_mon), and an
 * in-memory ring (tests, fleet capture).
 *
 * Record volume discipline: publishers emit once per planning period
 * / evaluation window by default. Per-completion records (block layer
 * latencies, device service details) are additionally gated behind
 * the `detail` flag, so fleet-scale captures stay period-sized.
 */

#ifndef IOCOST_STAT_TELEMETRY_HH
#define IOCOST_STAT_TELEMETRY_HH

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"
#include "stat/window.hh"

namespace iocost::stat {

/** Record cgroup value for machine-wide (non-cgroup) records. */
inline constexpr uint32_t kNoCgroup = UINT32_MAX;

/**
 * One telemetry record. `source` names the publisher ("iocost",
 * "kyber", "blk", "ssd", ...), `key` the metric within it
 * ("vrate_pct", "wait_us", ...). Units are suffixed onto the key
 * (_us, _pct, _bytes) so a record stream is self-describing.
 */
struct Record
{
    sim::Time time = 0;
    std::string source;
    uint32_t cgroup = kNoCgroup;
    std::string key;
    double value = 0.0;
};

/**
 * Abstract telemetry sink.
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /**
     * Whether this sink wants records at all. A sink returning false
     * is never installed into a Telemetry handle, which keeps the
     * publisher-side fast path a null check.
     */
    virtual bool enabled() const { return true; }

    /** Consume one record. */
    virtual void emit(const Record &record) = 0;

    /** Flush buffered output (file sinks). */
    virtual void flush() {}

    /**
     * A fresh, empty sink of the same kind for a simulation branch
     * (see host::Host::branch()): branches must not interleave their
     * records into the baseline's stream. Returns nullptr when the
     * sink cannot be meaningfully duplicated (a file sink — two
     * writers of one file would corrupt it), in which case the
     * branch runs with telemetry disconnected.
     */
    virtual std::unique_ptr<TelemetrySink> fork() { return nullptr; }
};

/**
 * The null sink: explicitly requests no records. Installing it is
 * identical to installing no sink; it exists so "telemetry off" can
 * be expressed as a sink choice in configuration code.
 */
class NullSink : public TelemetrySink
{
  public:
    bool enabled() const override { return false; }
    void emit(const Record &) override {}

    std::unique_ptr<TelemetrySink>
    fork() override
    {
        return std::make_unique<NullSink>();
    }
};

/**
 * Bounded (or unbounded) in-memory record buffer. The test sink, and
 * the capture vehicle for fleet host-day slices.
 */
class RingSink : public TelemetrySink
{
  public:
    /** @param capacity Max records retained; 0 = unbounded. */
    explicit RingSink(size_t capacity = 0)
        : capacity_(capacity)
    {}

    void
    emit(const Record &record) override
    {
        records_.push_back(record);
        if (capacity_ > 0 && records_.size() > capacity_)
            records_.pop_front();
    }

    /** Records in emission order (oldest first). */
    const std::deque<Record> &records() const { return records_; }

    size_t size() const { return records_.size(); }

    void clear() { records_.clear(); }

    /** Move the records out (fleet slices hand them to the caller). */
    std::vector<Record>
    drain()
    {
        std::vector<Record> out(
            std::make_move_iterator(records_.begin()),
            std::make_move_iterator(records_.end()));
        records_.clear();
        return out;
    }

    /** An empty ring with the same capacity policy. */
    std::unique_ptr<TelemetrySink>
    fork() override
    {
        return std::make_unique<RingSink>(capacity_);
    }

  private:
    size_t capacity_;
    std::deque<Record> records_;
};

/** Serialize one record as a JSONL line (with trailing newline). */
std::string toJsonl(const Record &record);

/**
 * The inner fields of the JSONL object, without braces or newline,
 * so callers can prepend context fields (the fleet writer adds
 * "day" and "host").
 */
std::string toJsonlFields(const Record &record);

/**
 * JSONL file sink: one record per line,
 * {"t":<ns>,"src":"...","cg":<id|-1>,"key":"...","val":<v>}.
 */
class JsonlSink : public TelemetrySink
{
  public:
    /** Open @p path for writing (truncates). */
    explicit JsonlSink(const std::string &path);

    /** Write to an externally owned stream (e.g. stdout). */
    explicit JsonlSink(FILE *stream)
        : file_(stream), owned_(false)
    {}

    ~JsonlSink() override;

    /** @return false when the file could not be opened. */
    bool ok() const { return file_ != nullptr; }

    void emit(const Record &record) override;
    void flush() override;

  private:
    FILE *file_ = nullptr;
    bool owned_ = true;
};

/**
 * Publisher-side handle. Components own one (the BlockLayer) or
 * borrow a pointer to it (controllers, devices); callers install a
 * sink to start the flow. Emission is a no-op until then.
 */
class Telemetry
{
  public:
    /**
     * Install @p sink (not owned; nullptr disconnects). A sink whose
     * enabled() is false is treated as nullptr so the emit fast path
     * stays a single pointer test.
     */
    void
    setSink(TelemetrySink *sink)
    {
        sink_ = (sink && sink->enabled()) ? sink : nullptr;
    }

    TelemetrySink *sink() const { return sink_; }

    /** Fast path: anything listening? */
    bool enabled() const { return sink_ != nullptr; }

    /**
     * Enable per-completion records (block layer / device detail).
     * Off by default: period-level records only.
     */
    void setDetail(bool on) { detail_ = on; }

    /** Whether per-completion records should be emitted. */
    bool detailEnabled() const
    {
        return sink_ != nullptr && detail_;
    }

    /** Emit one record (no-op without a sink). */
    void
    emit(sim::Time time, std::string_view source, uint32_t cgroup,
         std::string_view key, double value)
    {
        if (!sink_)
            return;
        Record r;
        r.time = time;
        r.source.assign(source);
        r.cgroup = cgroup;
        r.key.assign(key);
        r.value = value;
        sink_->emit(r);
    }

    /**
     * Emit a WindowSnapshot as a set of records:
     * <prefix>_count, <prefix>_per_sec, <prefix>_mean, <prefix>_p50,
     * <prefix>_p99. Percentile/mean records are skipped for empty
     * windows (count record is always emitted).
     */
    void emitSnapshot(sim::Time time, std::string_view source,
                      uint32_t cgroup, std::string_view prefix,
                      const WindowSnapshot &snap);

    /** Flush the installed sink, if any. */
    void
    flush()
    {
        if (sink_)
            sink_->flush();
    }

  private:
    TelemetrySink *sink_ = nullptr;
    bool detail_ = false;
};

} // namespace iocost::stat

#endif // IOCOST_STAT_TELEMETRY_HH
