#include "stat/telemetry.hh"

#include <cstring>

namespace iocost::stat {

namespace {

/** Minimal JSON string escaping (sources/keys are identifiers). */
void
appendEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

std::string
toJsonlFields(const Record &record)
{
    std::string out;
    out.reserve(64 + record.source.size() + record.key.size());
    char buf[48];
    std::snprintf(buf, sizeof(buf), "\"t\":%lld,",
                  static_cast<long long>(record.time));
    out += buf;
    out += "\"src\":\"";
    appendEscaped(out, record.source);
    out += "\",";
    const long long cg =
        record.cgroup == kNoCgroup
            ? -1
            : static_cast<long long>(record.cgroup);
    std::snprintf(buf, sizeof(buf), "\"cg\":%lld,", cg);
    out += buf;
    out += "\"key\":\"";
    appendEscaped(out, record.key);
    out += "\",";
    std::snprintf(buf, sizeof(buf), "\"val\":%.10g", record.value);
    out += buf;
    return out;
}

std::string
toJsonl(const Record &record)
{
    std::string out = "{";
    out += toJsonlFields(record);
    out += "}\n";
    return out;
}

JsonlSink::JsonlSink(const std::string &path)
    : file_(std::fopen(path.c_str(), "w")), owned_(true)
{}

JsonlSink::~JsonlSink()
{
    if (file_ && owned_)
        std::fclose(file_);
}

void
JsonlSink::emit(const Record &record)
{
    if (!file_)
        return;
    const std::string line = toJsonl(record);
    std::fwrite(line.data(), 1, line.size(), file_);
}

void
JsonlSink::flush()
{
    if (file_)
        std::fflush(file_);
}

void
Telemetry::emitSnapshot(sim::Time time, std::string_view source,
                        uint32_t cgroup, std::string_view prefix,
                        const WindowSnapshot &snap)
{
    if (!sink_)
        return;
    std::string key(prefix);
    const size_t base = key.size();
    auto one = [&](const char *suffix, double value) {
        key.resize(base);
        key += suffix;
        emit(time, source, cgroup, key, value);
    };
    one("_count", static_cast<double>(snap.count));
    if (snap.count == 0)
        return;
    one("_per_sec", snap.perSecond);
    one("_mean", snap.mean);
    one("_p50", static_cast<double>(snap.p50));
    one("_p99", static_cast<double>(snap.p99));
}

} // namespace iocost::stat
