/**
 * @file
 * Log-linear histogram for latency percentile tracking.
 *
 * Buckets are organized HDR-histogram style: values are grouped by
 * their power-of-two magnitude, and each magnitude is split into a
 * fixed number of linear sub-buckets, bounding relative quantile error
 * by 1/subBuckets. Recording is O(1); percentile queries are O(number
 * of buckets). This mirrors what the kernel's iocost implementation
 * does with its completion-latency percentile estimation, and is the
 * backbone of every latency statistic in the simulator.
 */

#ifndef IOCOST_STAT_HISTOGRAM_HH
#define IOCOST_STAT_HISTOGRAM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/state.hh"
#include "sim/time.hh"
#include "stat/window.hh"

namespace iocost::stat {

/**
 * Fixed-memory log-linear histogram over non-negative 64-bit values.
 */
class Histogram
{
  public:
    /**
     * @param sub_bucket_bits Linear sub-buckets per octave as a power
     *        of two (default 5 -> 32 sub-buckets, ~3% relative error).
     */
    explicit Histogram(unsigned sub_bucket_bits = 5);

    /** Record one observation. Negative values clamp to zero. */
    void record(int64_t value) { record(value, 1); }

    /**
     * Record @p count identical observations. Inline: this sits on
     * the per-bio completion path (several records per IO).
     */
    void
    record(int64_t value, uint64_t count)
    {
        if (count == 0)
            return;
        if (value < 0)
            value = 0;
        const unsigned idx = std::min<unsigned>(
            bucketIndex(static_cast<uint64_t>(value)),
            static_cast<unsigned>(buckets_.size() - 1));
        buckets_[idx] += count;
        if (count_ == 0) {
            min_ = value;
            max_ = value;
        } else {
            min_ = std::min(min_, value);
            max_ = std::max(max_, value);
        }
        count_ += count;
        total_ += value * static_cast<int64_t>(count);
        sumSquares_ += static_cast<unsigned __int128>(value) *
                       static_cast<unsigned __int128>(value) *
                       count;
    }

    /** Number of recorded observations. */
    uint64_t count() const { return count_; }

    /** Sum of recorded values (saturating in practice, not checked). */
    int64_t total() const { return total_; }

    /** Arithmetic mean, 0 when empty. */
    double mean() const;

    /** Standard deviation (population), 0 when empty. */
    double stddev() const;

    /** Minimum recorded value, 0 when empty. */
    int64_t minValue() const { return count_ ? min_ : 0; }

    /** Maximum recorded value, 0 when empty. */
    int64_t maxValue() const { return count_ ? max_ : 0; }

    /**
     * Value at quantile @p q in [0, 1]; e.g. q = 0.5 is the median.
     * Returns the representative (upper-edge) value of the bucket
     * containing the quantile. 0 when empty.
     */
    int64_t quantile(double q) const;

    /** Convenience: value at percentile p in [0, 100]. */
    int64_t percentile(double p) const { return quantile(p / 100.0); }

    /** Remove all observations (window start is unchanged). */
    void reset();

    /**
     * Remove all observations and start a new measurement window at
     * @p now (the common window convention, stat/window.hh).
     */
    void
    reset(sim::Time now)
    {
        reset();
        windowStart_ = now;
    }

    /** Summarize the current window as of @p now. */
    WindowSnapshot snapshot(sim::Time now) const;

    /**
     * Merge another histogram's observations into this one.
     *
     * All state — buckets, extrema, and the moments backing mean()
     * and stddev() — is held in integers, so merging any partition
     * of the same observations in any order yields bit-identical
     * results. This is what lets the fleet engine fold per-host
     * results into per-shard accumulators and still produce
     * byte-identical aggregates at every shard count.
     */
    void merge(const Histogram &other);

    /**
     * @name Snapshot support (the unified window-API companion to
     * reset(now)/snapshot(now)): all integer state verbatim, so a
     * restored histogram is bit-identical to the saved one.
     * @{
     */
    void
    saveState(sim::StateWriter &w) const
    {
        w.put(subBits_);
        w.putPods(buckets_);
        w.put(count_);
        w.put(total_);
        w.put(sumSquares_);
        w.put(min_);
        w.put(max_);
        w.put(windowStart_);
    }

    void
    loadState(sim::StateReader &r)
    {
        r.get(subBits_);
        r.getPods(buckets_);
        r.get(count_);
        r.get(total_);
        r.get(sumSquares_);
        r.get(min_);
        r.get(max_);
        r.get(windowStart_);
    }
    /** @} */

  private:
    unsigned
    bucketIndex(uint64_t value) const
    {
        // Octave o scales the value down so it fits in one
        // sub-bucket span; values below 2^subBits are exact (o = 0).
        // The relative quantization error is bounded by
        // 2^(1 - subBits).
        if (value == 0)
            return 0;
        const unsigned msb = 63u - std::countl_zero(value);
        const unsigned octave =
            msb < subBits_ ? 0u : msb - subBits_ + 1u;
        const auto sub = static_cast<unsigned>(value >> octave);
        return (octave << subBits_) + sub;
    }

    uint64_t bucketUpperEdge(unsigned index) const;

    unsigned subBits_;
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    int64_t total_ = 0;
    /**
     * Sum of squared values in exact integer arithmetic. A double
     * here would make stddev() depend on accumulation order and
     * break bit-identical shard merges; 128 bits hold the square of
     * any realistic latency (2^45 ns) times 2^38 observations.
     */
    unsigned __int128 sumSquares_ = 0;
    int64_t min_ = 0;
    int64_t max_ = 0;
    sim::Time windowStart_ = 0;
};

} // namespace iocost::stat

#endif // IOCOST_STAT_HISTOGRAM_HH
