/**
 * @file
 * The common windowed-statistic convention.
 *
 * Every period-resettable statistic (RateMeter, Histogram,
 * TimeSeries) exposes the same pair of operations:
 *
 *   reset(now)     — start a new measurement window at `now`;
 *   snapshot(now)  — summarize the current window as of `now`.
 *
 * A WindowSnapshot is the lowest common denominator the telemetry
 * layer can flush uniformly: fields a given statistic cannot supply
 * (e.g. percentiles of a pure counter) stay zero. Consumers check
 * `count` before trusting the derived fields.
 */

#ifndef IOCOST_STAT_WINDOW_HH
#define IOCOST_STAT_WINDOW_HH

#include <cstdint>

#include "sim/time.hh"

namespace iocost::stat {

/** Summary of one measurement window. */
struct WindowSnapshot
{
    /** Window bounds ([start, end], simulated time). */
    sim::Time windowStart = 0;
    sim::Time windowEnd = 0;

    /** Observations recorded within the window. */
    uint64_t count = 0;

    /** count / window length (0 when the window is empty). */
    double perSecond = 0.0;

    /** Mean observed value (0 when not applicable). */
    double mean = 0.0;

    /** Median and tail value (0 when not applicable). */
    int64_t p50 = 0;
    int64_t p99 = 0;
};

} // namespace iocost::stat

#endif // IOCOST_STAT_WINDOW_HH
