/**
 * @file
 * Time-series recording for benchmark figure output.
 *
 * Benches that reproduce time-axis figures (vrate adjustment, SLO
 * violations, fleet migrations) record named series of (time, value)
 * points and print them in a uniform layout.
 */

#ifndef IOCOST_STAT_TIME_SERIES_HH
#define IOCOST_STAT_TIME_SERIES_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/state.hh"
#include "sim/time.hh"
#include "stat/window.hh"

namespace iocost::stat {

/** One sample in a series. */
struct SeriesPoint
{
    sim::Time when;
    double value;
};

/**
 * A named sequence of timestamped samples.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string name = {})
        : name_(std::move(name))
    {}

    /** Append a sample. Timestamps are expected non-decreasing. */
    void
    record(sim::Time when, double value)
    {
        points_.push_back(SeriesPoint{when, value});
    }

    const std::string &name() const { return name_; }
    const std::vector<SeriesPoint> &points() const { return points_; }
    bool empty() const { return points_.empty(); }
    size_t size() const { return points_.size(); }

    /** Pre-size the point storage (steady-state no-alloc folding). */
    void reserve(size_t n) { points_.reserve(n); }

    /**
     * Merge @p other into this series, summing values at equal
     * timestamps and interleaving the rest in time order. Both
     * series must be sorted by time with unique timestamps (the
     * form every per-shard accumulator produces: one point per
     * day/period).
     *
     * The merge is exact — and therefore independent of shard count
     * and merge order — whenever the values are integer-valued
     * (counts), which is what the fleet engine sums. @p scratch is
     * caller-provided swap space so repeated merges reuse capacity
     * instead of allocating.
     */
    void
    mergeSum(const TimeSeries &other,
             std::vector<SeriesPoint> &scratch)
    {
        if (other.points_.empty())
            return;
        scratch.clear();
        size_t a = 0, b = 0;
        while (a < points_.size() || b < other.points_.size()) {
            if (b >= other.points_.size() ||
                (a < points_.size() &&
                 points_[a].when < other.points_[b].when)) {
                scratch.push_back(points_[a++]);
            } else if (a >= points_.size() ||
                       other.points_[b].when < points_[a].when) {
                scratch.push_back(other.points_[b++]);
            } else {
                scratch.push_back(SeriesPoint{
                    points_[a].when,
                    points_[a].value + other.points_[b].value});
                ++a;
                ++b;
            }
        }
        points_.swap(scratch);
    }

    /**
     * Start a new measurement window at @p now (the common window
     * convention, stat/window.hh). Recorded points are retained —
     * figure output needs the full series — only the window marker
     * that snapshot() summarizes over moves forward.
     */
    void
    reset(sim::Time now)
    {
        windowStart_ = now;
        windowFrom_ = points_.size();
    }

    /** Summarize the samples recorded since reset() as of @p now. */
    WindowSnapshot
    snapshot(sim::Time now) const
    {
        WindowSnapshot s;
        s.windowStart = windowStart_;
        s.windowEnd = now;
        s.count = points_.size() - windowFrom_;
        const sim::Time elapsed = now - windowStart_;
        if (elapsed > 0) {
            s.perSecond = static_cast<double>(s.count) /
                          sim::toSeconds(elapsed);
        }
        if (s.count == 0)
            return s;
        std::vector<double> vals;
        vals.reserve(s.count);
        double sum = 0.0;
        for (size_t i = windowFrom_; i < points_.size(); ++i) {
            vals.push_back(points_[i].value);
            sum += points_[i].value;
        }
        s.mean = sum / static_cast<double>(s.count);
        std::sort(vals.begin(), vals.end());
        auto at = [&](double q) {
            const size_t idx = std::min(
                vals.size() - 1,
                static_cast<size_t>(q *
                                    static_cast<double>(vals.size())));
            return static_cast<int64_t>(vals[idx]);
        };
        s.p50 = at(0.50);
        s.p99 = at(0.99);
        return s;
    }

    /** Mean of all sample values, 0 when empty. */
    double
    mean() const
    {
        if (points_.empty())
            return 0.0;
        double sum = 0.0;
        for (const auto &p : points_)
            sum += p.value;
        return sum / static_cast<double>(points_.size());
    }

    /** Largest sample value, 0 when empty. */
    double
    maxValue() const
    {
        double mx = 0.0;
        for (const auto &p : points_)
            mx = p.value > mx ? p.value : mx;
        return mx;
    }

    /**
     * Downsample to at most @p max_points by averaging fixed-size
     * chunks; used to keep printed figure output readable.
     */
    TimeSeries
    downsample(size_t max_points) const
    {
        TimeSeries out(name_);
        if (points_.size() <= max_points) {
            out.points_ = points_;
            return out;
        }
        const size_t chunk =
            (points_.size() + max_points - 1) / max_points;
        for (size_t i = 0; i < points_.size(); i += chunk) {
            const size_t end =
                i + chunk < points_.size() ? i + chunk
                                           : points_.size();
            double sum = 0.0;
            for (size_t j = i; j < end; ++j)
                sum += points_[j].value;
            out.record(points_[(i + end - 1) / 2].when,
                       sum / static_cast<double>(end - i));
        }
        return out;
    }

    /** @name Snapshot support (window-API companion; the name is
     *  identity, not state, and is not serialized).
     *  @{ */
    void
    saveState(sim::StateWriter &w) const
    {
        w.putPods(points_);
        w.put(windowStart_);
        w.put(static_cast<uint64_t>(windowFrom_));
    }

    void
    loadState(sim::StateReader &r)
    {
        r.getPods(points_);
        r.get(windowStart_);
        windowFrom_ = static_cast<size_t>(r.get<uint64_t>());
    }
    /** @} */

  private:
    std::string name_;
    std::vector<SeriesPoint> points_;
    sim::Time windowStart_ = 0;
    size_t windowFrom_ = 0;
};

} // namespace iocost::stat

#endif // IOCOST_STAT_TIME_SERIES_HH
