#include "stat/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace iocost::stat {

Histogram::Histogram(unsigned sub_bucket_bits)
    : subBits_(sub_bucket_bits)
{
    // 64 octaves x subBuckets linear slots covers the full uint64
    // range; latency values in ns never exceed ~2^45 in practice.
    buckets_.assign((64u + 1u) << subBits_, 0);
}

uint64_t
Histogram::bucketUpperEdge(unsigned index) const
{
    const unsigned sub_count = 1u << subBits_;
    const unsigned octave = index >> subBits_;
    const uint64_t sub = index & (sub_count - 1u);
    return ((sub + 1u) << octave) - 1u;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(total_) / static_cast<double>(count_);
}

double
Histogram::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = static_cast<double>(sumSquares_) /
                           static_cast<double>(count_) -
                       m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

int64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target observation (1-based, ceil).
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    uint64_t seen = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            const int64_t edge =
                static_cast<int64_t>(bucketUpperEdge(i));
            return std::min(edge, max_);
        }
    }
    return max_;
}

WindowSnapshot
Histogram::snapshot(sim::Time now) const
{
    WindowSnapshot s;
    s.windowStart = windowStart_;
    s.windowEnd = now;
    s.count = count_;
    const sim::Time elapsed = now - windowStart_;
    if (elapsed > 0) {
        s.perSecond = static_cast<double>(count_) /
                      sim::toSeconds(elapsed);
    }
    s.mean = mean();
    s.p50 = quantile(0.50);
    s.p99 = quantile(0.99);
    return s;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    total_ = 0;
    sumSquares_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (other.subBits_ == subBits_) {
        for (size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
    } else {
        // Differing resolutions: re-bucket counts at each source
        // bucket's representative (upper-edge) value. Quantiles
        // degrade to the coarser resolution; the exact moments are
        // carried over below — re-*recording* the representative
        // values here would inflate total_/sumSquares_ (every
        // observation rounds up to its bucket edge) and bias
        // mean/stddev after fleet aggregation.
        for (unsigned i = 0; i < other.buckets_.size(); ++i) {
            if (!other.buckets_[i])
                continue;
            const unsigned idx = std::min<unsigned>(
                bucketIndex(other.bucketUpperEdge(i)),
                static_cast<unsigned>(buckets_.size() - 1));
            buckets_[idx] += other.buckets_[i];
        }
    }
    // Moments and extrema merge exactly regardless of resolution.
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    total_ += other.total_;
    sumSquares_ += other.sumSquares_;
}

} // namespace iocost::stat
