/**
 * @file
 * Rate meters and simple counters over simulated time.
 */

#ifndef IOCOST_STAT_METER_HH
#define IOCOST_STAT_METER_HH

#include <cstdint>

#include "sim/state.hh"
#include "sim/time.hh"
#include "stat/window.hh"

namespace iocost::stat {

/**
 * Accumulates a count over simulated time and reports the average
 * rate per second between reset points. Used for IOPS / bytes-per-
 * second reporting in workloads and benches. Follows the common
 * reset(now)/snapshot(now) window convention (stat/window.hh).
 */
class RateMeter
{
  public:
    /** Begin (or restart) the measurement window at time @p now. */
    void
    reset(sim::Time now)
    {
        windowStart_ = now;
        count_ = 0;
    }

    /** Add @p n to the count. */
    void add(uint64_t n = 1) { count_ += n; }

    /** Total accumulated count since reset(). */
    uint64_t count() const { return count_; }

    /** Average rate per second across [reset, now]. */
    double
    perSecond(sim::Time now) const
    {
        const sim::Time elapsed = now - windowStart_;
        if (elapsed <= 0)
            return 0.0;
        return static_cast<double>(count_) /
               sim::toSeconds(elapsed);
    }

    /** Summarize the window as of @p now (percentiles stay 0). */
    WindowSnapshot
    snapshot(sim::Time now) const
    {
        WindowSnapshot s;
        s.windowStart = windowStart_;
        s.windowEnd = now;
        s.count = count_;
        s.perSecond = perSecond(now);
        return s;
    }

    /** @name Snapshot support (window-API companion).
     *  @{ */
    void
    saveState(sim::StateWriter &w) const
    {
        w.put(windowStart_);
        w.put(count_);
    }

    void
    loadState(sim::StateReader &r)
    {
        r.get(windowStart_);
        r.get(count_);
    }
    /** @} */

  private:
    sim::Time windowStart_ = 0;
    uint64_t count_ = 0;
};

/**
 * Exponentially weighted moving average with a configurable time
 * constant, evaluated lazily against the simulated clock. Used for
 * smoothed utilization / rate signals inside controllers.
 */
class Ewma
{
  public:
    /** @param time_constant Time for a step input to reach ~63%. */
    explicit Ewma(sim::Time time_constant)
        : tau_(time_constant)
    {}

    /** Fold in a new sample observed at time @p now. */
    void
    sample(sim::Time now, double value)
    {
        if (!initialized_) {
            value_ = value;
            last_ = now;
            initialized_ = true;
            return;
        }
        const sim::Time dt = now - last_;
        last_ = now;
        if (dt <= 0) {
            // Same-instant samples average equally.
            value_ = 0.5 * value_ + 0.5 * value;
            return;
        }
        // alpha = 1 - exp(-dt / tau), first-order approximation is
        // fine for dt << tau and exact enough elsewhere.
        const double x = static_cast<double>(dt) /
                         static_cast<double>(tau_);
        const double alpha = x >= 20.0 ? 1.0 : 1.0 - fastExpNeg(x);
        value_ += alpha * (value - value_);
    }

    /** Current smoothed value. */
    double value() const { return value_; }

    /** @return true once at least one sample has been folded in. */
    bool initialized() const { return initialized_; }

  private:
    static double
    fastExpNeg(double x)
    {
        // 4th-order rational approximation of exp(-x), adequate for a
        // smoothing filter (max error < 1% on [0, 20]).
        const double d = 1.0 + x * (1.0 + x * (0.5 + x * (1.0 / 6.0 +
                         x / 24.0)));
        return 1.0 / d;
    }

    sim::Time tau_;
    sim::Time last_ = 0;
    double value_ = 0.0;
    bool initialized_ = false;
};

} // namespace iocost::stat

#endif // IOCOST_STAT_METER_HH
