/**
 * @file
 * What-if scenario: the immutable description of one single-host
 * experiment the query service answers questions about.
 *
 * A scenario pins everything that identifies a run — device,
 * controller spec, kernel-format model/qos lines, fault plan, seed,
 * duration, fio-style jobs — plus the checkpoint marks the service
 * snapshots at. Two scenarios with equal canonical() strings build
 * byte-identical baselines, so (scenario hash, query) keys the
 * result cache.
 */

#ifndef IOCOST_WHATIF_SCENARIO_HH
#define IOCOST_WHATIF_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace iocost::whatif {

/**
 * One single-host what-if scenario.
 *
 * Spec grammar (Scenario::parse): ';'- or newline-separated
 * key=value pairs —
 *
 *   device=newgen          any host::makeNamedDevice name
 *   controller=iocost min=25 max=150
 *                          a controllers::parseControllerSpec line
 *   model=<io.cost.model payload>   (default: device profile)
 *   qos=<io.cost.qos payload>
 *   faults=<sim::FaultPlan spec>    (default: healthy device)
 *   seconds=10             simulated run length
 *   seed=42
 *   pagecache=512M         per-host page cache; enables buffered
 *                          jobs (0/omitted = direct IO only)
 *   dirty_ratio=20         hard dirty wall, percent of the cache
 *                          (background threshold tracks at half)
 *   job=web:weight=200:depth=32    repeatable; iocost_sim --job
 *                          grammar (weight/depth/bs/rw/pattern/rate
 *                          plus buffered=1/fsync=N/span=BYTES for
 *                          page-cache jobs)
 *   marks=1s,2s,5s         checkpoint marks (ns/us/ms/s suffix,
 *                          default ms); t=0 is always a mark
 *
 * Omitted jobs default to the iocost_sim pair (web:weight=200 and
 * batch:weight=100, depth 32 each); omitted marks default to the
 * run's quarter points.
 */
struct Scenario
{
    std::string device = "newgen";
    std::string controller = "iocost";
    std::string model;
    std::string qos;
    std::string faults;
    double seconds = 10.0;
    uint64_t seed = 42;

    /** Page cache size per replica host (0 = none; buffered jobs
     *  then fail validation). */
    uint64_t pagecacheBytes = 0;

    /** Hard dirty wall as a percent of the cache; 0 keeps
     *  mm::PageCacheConfig defaults. */
    double dirtyRatioPct = 0.0;

    /** Raw job spec strings (iocost_sim --job grammar). */
    std::vector<std::string> jobs;

    /** Checkpoint marks, sorted, deduplicated, starting at 0. */
    std::vector<sim::Time> marks;

    /** Simulated run length. */
    sim::Time duration() const;

    /**
     * Parse a scenario spec (grammar above) and normalize it:
     * default jobs/marks filled in, marks sorted with 0 prepended.
     * @throws std::invalid_argument on a malformed spec.
     */
    static Scenario parse(const std::string &text);

    /**
     * Fill defaulted jobs/marks and canonicalize the mark list.
     * parse() normalizes automatically; callers assembling a
     * Scenario field-by-field must normalize before use.
     * @throws std::invalid_argument on marks beyond the duration or
     *         a non-positive duration.
     */
    void normalize();

    /** Deterministic one-line rendering (the cache identity). */
    std::string canonical() const;

    /** FNV-1a hash of canonical(). */
    uint64_t hash() const;
};

} // namespace iocost::whatif

#endif // IOCOST_WHATIF_SCENARIO_HH
