/**
 * @file
 * What-if query service: load a scenario once, checkpoint the
 * baseline at the scenario's marks, answer hypothetical queries by
 * branching from the nearest checkpoint and replaying forward.
 *
 * Execution model: each worker thread owns a full scenario REPLICA
 * (its own Simulator, Host, workloads, and checkpoint images).
 * Replicas are byte-identical by construction — the simulation is
 * deterministic in the scenario seed — so any worker can answer any
 * query, and answers are byte-identical regardless of which worker
 * ran them, how queries were interleaved, or whether the branch
 * replayed from a checkpoint or a cold full re-run (the
 * determinism gate tests assert the last equivalence).
 *
 * Bio pools are thread-local, so a replica must be built AND run on
 * the same thread; the worker loop owns its replica for exactly
 * this reason.
 *
 * Results are cached keyed by (scenario hash, canonical query):
 * repeated queries cost a map lookup, not a replay.
 */

#ifndef IOCOST_WHATIF_SERVICE_HH
#define IOCOST_WHATIF_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/host.hh"
#include "whatif/query.hh"
#include "whatif/scenario.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

namespace iocost::whatif {

/** End-of-run counters for one workload cgroup (exact integers, so
 *  diff documents compare byte-for-byte across replay paths). */
struct JobStats
{
    std::string name;
    uint64_t ios = 0;
    uint64_t bytes = 0;
    int64_t p50Ns = 0;
    int64_t p99Ns = 0;
    uint64_t errors = 0;
};

/** End-of-run summary of one (baseline or branch) execution. */
struct RunStats
{
    std::vector<JobStats> jobs;
    bool isIocost = false;
    double vrate = 0.0;
};

/**
 * One worker's private copy of the scenario: host, workloads, the
 * baseline result, and the checkpoint images captured while the
 * baseline ran.
 */
class Replica
{
  public:
    /**
     * Build the host, run the baseline to the scenario duration,
     * capture a checkpoint at every mark.
     *
     * @param checkpoints When false, skip the snapshot captures
     *        (the cold-run path of the determinism gate).
     * @throws std::invalid_argument on a bad device, controller,
     *         fault, or job spec.
     */
    explicit Replica(const Scenario &sc, bool checkpoints = true);

    /** Baseline end-of-run stats. */
    const RunStats &baseline() const { return baseline_; }

    /**
     * Answer one query: restore the nearest checkpoint at or before
     * q.from, replay to q.from, apply the change, run to the end,
     * and return the branch stats. Requires checkpoints.
     * @throws std::invalid_argument on an unknown cgroup or an
     *         inapplicable device profile.
     */
    RunStats branch(const Query &q);

    /**
     * Answer one query without touching the checkpoint machinery:
     * run a FRESH replica from t=0 to q.from, apply, run to the
     * end. The determinism gate compares this against branch().
     */
    static RunStats cold(const Scenario &sc, const Query &q);

    /** Snapshot cost of this replica's t=0 checkpoint, in bytes. */
    size_t checkpointBytes() const;

  private:
    struct BuildOnly
    {
    };

    /** Assemble the host and start the workloads without running
     *  any simulated time (the cold-run path drives it manually). */
    Replica(const Scenario &sc, BuildOnly);

    void build();
    void apply(const Query &q);
    RunStats collect() const;

    Scenario sc_;
    sim::Simulator sim_;
    core::LinearModelConfig deviceModel_;
    std::unique_ptr<host::Host> host_;
    std::vector<std::string> jobNames_;
    std::vector<cgroup::CgroupId> jobCgs_;
    std::vector<std::unique_ptr<workload::FioWorkload>> workloads_;
    std::vector<std::unique_ptr<workload::BufferedWorkload>>
        buffered_;
    std::vector<std::pair<sim::Time, host::HostSnapshot>>
        checkpoints_;
    RunStats baseline_;
};

/**
 * The concurrent query service.
 */
class Service
{
  public:
    /**
     * @param threads Worker count; 0 = one per hardware thread.
     *        Each worker lazily builds its replica on first use, on
     *        its own thread.
     */
    explicit Service(Scenario sc, unsigned threads = 1);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Enqueue a query; the future resolves to a one-line
     * "whatif_diff" JSON document (or a "whatif_error" document if
     * evaluation failed — parse errors throw from Query::parse
     * before anything is enqueued).
     */
    std::future<std::string> submit(const Query &q);

    /** submit() and wait. */
    std::string evaluate(const Query &q);

    /**
     * The determinism gate: evaluate the query on a fresh host with
     * no checkpoint machinery at all. Byte-identical to evaluate()
     * for every valid query.
     */
    static std::string evaluateCold(const Scenario &sc,
                                    const Query &q);

    const Scenario &scenario() const { return sc_; }

    /** Cache hits served so far (observability, tests). */
    uint64_t cacheHits() const;

  private:
    struct Task
    {
        Query query;
        std::string cacheKey;
        std::promise<std::string> promise;
    };

    void workerLoop();

    Scenario sc_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> tasks_;
    bool stopping_ = false;
    uint64_t cacheHits_ = 0;
    std::map<std::string, std::string> cache_;
    std::vector<std::thread> workers_;
};

/** Render one result document (exposed for the tools and tests). */
std::string diffJson(const Scenario &sc, const Query &q,
                     const RunStats &baseline,
                     const RunStats &branch);

} // namespace iocost::whatif

#endif // IOCOST_WHATIF_SERVICE_HH
