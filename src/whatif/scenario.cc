#include "whatif/scenario.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace iocost::whatif {

namespace {

[[noreturn]] void
bad(const std::string &what)
{
    throw std::invalid_argument("whatif scenario: " + what);
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Non-negative time with optional ns/us/ms/s suffix (default ms —
 *  the fleet-scenario convention). */
sim::Time
parseTimeValue(const std::string &text)
{
    if (text.empty())
        bad("empty time value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad("unparsable time \"" + text + "\"");
    }
    if (value < 0.0)
        bad("negative time \"" + text + "\"");
    const std::string unit = text.substr(pos);
    double scale = 0.0;
    if (unit.empty() || unit == "ms")
        scale = static_cast<double>(sim::kMsec);
    else if (unit == "ns")
        scale = static_cast<double>(sim::kNsec);
    else if (unit == "us")
        scale = static_cast<double>(sim::kUsec);
    else if (unit == "s")
        scale = static_cast<double>(sim::kSec);
    else
        bad("unknown time unit \"" + unit + "\"");
    return static_cast<sim::Time>(value * scale);
}

/** Non-negative byte size with optional K/M/G suffix. */
uint64_t
parseBytesValue(const std::string &text)
{
    if (text.empty())
        bad("empty size value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad("unparsable size \"" + text + "\"");
    }
    if (value < 0.0)
        bad("negative size \"" + text + "\"");
    const std::string unit = text.substr(pos);
    double mult = 1.0;
    if (unit == "K" || unit == "k")
        mult = 1ull << 10;
    else if (unit == "M" || unit == "m")
        mult = 1ull << 20;
    else if (unit == "G" || unit == "g")
        mult = 1ull << 30;
    else if (!unit.empty())
        bad("unknown size suffix \"" + unit + "\"");
    return static_cast<uint64_t>(value * mult);
}

} // namespace

sim::Time
Scenario::duration() const
{
    return static_cast<sim::Time>(seconds *
                                  static_cast<double>(sim::kSec));
}

Scenario
Scenario::parse(const std::string &text)
{
    Scenario sc;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t sep = text.find_first_of(";\n", pos);
        if (sep == std::string::npos)
            sep = text.size();
        const std::string entry = trim(text.substr(pos, sep - pos));
        pos = sep + 1;
        if (entry.empty())
            continue;
        const size_t eq = entry.find('=');
        if (eq == std::string::npos)
            bad("expected key=value, got \"" + entry + "\"");
        const std::string key = trim(entry.substr(0, eq));
        const std::string value = trim(entry.substr(eq + 1));
        if (key == "device") {
            sc.device = value;
        } else if (key == "controller") {
            sc.controller = value;
        } else if (key == "model") {
            sc.model = value;
        } else if (key == "qos") {
            sc.qos = value;
        } else if (key == "faults") {
            sc.faults = value;
        } else if (key == "seconds") {
            try {
                sc.seconds = std::stod(value);
            } catch (const std::exception &) {
                bad("unparsable seconds \"" + value + "\"");
            }
        } else if (key == "seed") {
            try {
                sc.seed = std::stoull(value);
            } catch (const std::exception &) {
                bad("unparsable seed \"" + value + "\"");
            }
        } else if (key == "pagecache") {
            sc.pagecacheBytes = parseBytesValue(value);
        } else if (key == "dirty_ratio") {
            try {
                sc.dirtyRatioPct = std::stod(value);
            } catch (const std::exception &) {
                bad("unparsable dirty_ratio \"" + value + "\"");
            }
            if (sc.dirtyRatioPct < 0.0 || sc.dirtyRatioPct > 100.0)
                bad("dirty_ratio must be in [0, 100]");
        } else if (key == "job") {
            if (value.empty())
                bad("empty job spec");
            sc.jobs.push_back(value);
        } else if (key == "marks") {
            size_t mp = 0;
            while (mp <= value.size()) {
                size_t comma = value.find(',', mp);
                if (comma == std::string::npos)
                    comma = value.size();
                const std::string tok =
                    trim(value.substr(mp, comma - mp));
                mp = comma + 1;
                if (!tok.empty())
                    sc.marks.push_back(parseTimeValue(tok));
            }
        } else {
            bad("unknown key \"" + key + "\"");
        }
    }
    sc.normalize();
    return sc;
}

void
Scenario::normalize()
{
    if (seconds <= 0.0)
        bad("seconds must be > 0");
    if (jobs.empty()) {
        jobs.push_back("web:weight=200:depth=32");
        jobs.push_back("batch:weight=100:depth=32");
    }
    const sim::Time total = duration();
    if (marks.empty()) {
        // Quarter points: a query's replay never spans more than a
        // quarter of the run.
        marks = {0, total / 4, total / 2, 3 * (total / 4)};
    }
    marks.push_back(0);
    std::sort(marks.begin(), marks.end());
    marks.erase(std::unique(marks.begin(), marks.end()),
                marks.end());
    if (marks.back() > total)
        bad("checkpoint mark beyond the run duration");
}

std::string
Scenario::canonical() const
{
    std::string out;
    out += "device=" + device;
    out += ";controller=" + controller;
    out += ";model=" + model;
    out += ";qos=" + qos;
    out += ";faults=" + faults;
    char buf[64];
    std::snprintf(buf, sizeof buf, ";seconds=%.17g", seconds);
    out += buf;
    std::snprintf(buf, sizeof buf, ";seed=%" PRIu64, seed);
    out += buf;
    // Emitted only when set: pre-pagecache canonical strings (and
    // the cache hashes derived from them) must not change.
    if (pagecacheBytes != 0) {
        std::snprintf(buf, sizeof buf, ";pagecache=%" PRIu64,
                      pagecacheBytes);
        out += buf;
    }
    if (dirtyRatioPct != 0.0) {
        std::snprintf(buf, sizeof buf, ";dirty_ratio=%.17g",
                      dirtyRatioPct);
        out += buf;
    }
    for (const std::string &job : jobs)
        out += ";job=" + job;
    out += ";marks=";
    for (size_t i = 0; i < marks.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s%lld", i ? "," : "",
                      static_cast<long long>(marks[i]));
        out += buf;
    }
    return out;
}

uint64_t
Scenario::hash() const
{
    const std::string text = canonical();
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace iocost::whatif
