/**
 * @file
 * What-if query: one hypothetical change applied at a branch point.
 *
 * Queries arrive as flat one-line JSON objects (iocost_whatif
 * stdin, iocost_sim --whatif):
 *
 *   {"q":"weight","cg":"web","value":300,"from":"1s"}
 *       re-weight the named workload cgroup from sim time `from`
 *   {"q":"device","profile":"G","from":"2s"}
 *       swap the device to the named profile (same kind only; see
 *       host::applyDeviceProfile)
 *   {"q":"fault","spec":"lat@2s+1s=6","from":"1500ms"}
 *       add fault windows (sim::FaultPlan window grammar) — the
 *       window times are absolute sim time, `from` is only the
 *       branch point the change is introduced at
 *
 * `from` takes a number or string with ns/us/ms/s suffix (default
 * ms) and defaults to 0 — branch from the start of the run.
 */

#ifndef IOCOST_WHATIF_QUERY_HH
#define IOCOST_WHATIF_QUERY_HH

#include <cstdint>
#include <string>

#include "sim/time.hh"

namespace iocost::whatif {

struct Query
{
    enum class Kind
    {
        Weight,
        Device,
        Fault,
    };

    Kind kind = Kind::Weight;

    /** Weight: target cgroup name and new weight. */
    std::string cg;
    uint32_t weight = 0;

    /** Device: replacement profile name. */
    std::string profile;

    /** Fault: FaultPlan window spec (absolute sim times). */
    std::string fault;

    /** Branch point: sim time the change takes effect. */
    sim::Time from = 0;

    /**
     * Parse one JSON query line. Values must be strings or numbers
     * (the documents are flat); the fault spec is validated against
     * the FaultPlan grammar here, so a malformed query never
     * reaches a worker.
     * @throws std::invalid_argument with a one-line reason.
     */
    static Query parse(const std::string &jsonLine);

    /** Deterministic one-line rendering (the cache identity). */
    std::string canonical() const;
};

} // namespace iocost::whatif

#endif // IOCOST_WHATIF_QUERY_HH
