#include "whatif/service.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "core/config_parse.hh"
#include "host/device_factory.hh"
#include "sim/fault.hh"

namespace iocost::whatif {

namespace {

[[noreturn]] void
bad(const std::string &what)
{
    throw std::invalid_argument("whatif: " + what);
}

struct ParsedJob
{
    std::string name;
    uint32_t weight = 100;
    workload::FioConfig fio;
    /** Route through the page cache instead of the block layer. */
    bool buffered = false;
    uint32_t fsyncEvery = 0;
    uint64_t spanBytes = 0;
};

/** "name:key=value:..." — the iocost_sim --job grammar, throwing
 *  instead of exiting on errors so a bad scenario fails the query,
 *  not the service. */
ParsedJob
parseJobSpec(const std::string &arg)
{
    ParsedJob job;
    job.name = "job";
    size_t pos = 0;
    bool first = true;
    while (pos <= arg.size()) {
        const size_t colon = arg.find(':', pos);
        const std::string part =
            arg.substr(pos, colon == std::string::npos
                                ? std::string::npos
                                : colon - pos);
        if (first) {
            job.name = part;
            first = false;
        } else {
            const size_t eq = part.find('=');
            if (eq == std::string::npos)
                bad("bad job attribute \"" + part + "\"");
            const std::string key = part.substr(0, eq);
            const std::string value = part.substr(eq + 1);
            try {
                if (key == "weight") {
                    job.weight =
                        static_cast<uint32_t>(std::stoul(value));
                } else if (key == "depth") {
                    job.fio.iodepth =
                        static_cast<unsigned>(std::stoul(value));
                } else if (key == "bs") {
                    job.fio.blockSize =
                        static_cast<uint32_t>(std::stoul(value));
                } else if (key == "rw") {
                    job.fio.readFraction = value == "read"    ? 1.0
                                           : value == "write" ? 0.0
                                                              : 0.5;
                } else if (key == "pattern") {
                    job.fio.randomFraction =
                        value == "seq" ? 0.0 : 1.0;
                } else if (key == "rate") {
                    job.fio.arrival = workload::Arrival::Rate;
                    job.fio.ratePerSec = std::stod(value);
                } else if (key == "buffered") {
                    job.buffered = std::stoul(value) != 0;
                } else if (key == "fsync") {
                    job.fsyncEvery =
                        static_cast<uint32_t>(std::stoul(value));
                } else if (key == "span") {
                    job.spanBytes = std::stoull(value);
                } else {
                    bad("unknown job key \"" + key + "\"");
                }
            } catch (const std::invalid_argument &) {
                throw;
            } catch (const std::exception &) {
                bad("unparsable job value \"" + value + "\"");
            }
        }
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    return job;
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
appendRunStats(std::string &out, const RunStats &rs)
{
    char buf[128];
    out += '{';
    if (rs.isIocost) {
        std::snprintf(buf, sizeof buf, "\"vrate\":%.17g,",
                      rs.vrate);
        out += buf;
    }
    out += "\"jobs\":[";
    for (size_t i = 0; i < rs.jobs.size(); ++i) {
        const JobStats &j = rs.jobs[i];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"name\":\"%s\",\"ios\":%" PRIu64
            ",\"bytes\":%" PRIu64 ",\"p50_ns\":%" PRId64
            ",\"p99_ns\":%" PRId64 ",\"errors\":%" PRIu64 "}",
            i ? "," : "", escapeJson(j.name).c_str(), j.ios,
            j.bytes, j.p50Ns, j.p99Ns, j.errors);
        out += buf;
    }
    out += "]}";
}

void
appendDelta(std::string &out, const RunStats &base,
            const RunStats &branch)
{
    char buf[160];
    out += '{';
    if (base.isIocost && branch.isIocost) {
        std::snprintf(buf, sizeof buf, "\"vrate\":%.17g,",
                      branch.vrate - base.vrate);
        out += buf;
    }
    out += "\"jobs\":[";
    const size_t n =
        std::min(base.jobs.size(), branch.jobs.size());
    for (size_t i = 0; i < n; ++i) {
        const JobStats &a = base.jobs[i];
        const JobStats &b = branch.jobs[i];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"name\":\"%s\",\"ios\":%" PRId64
            ",\"bytes\":%" PRId64 ",\"p50_ns\":%" PRId64
            ",\"p99_ns\":%" PRId64 ",\"errors\":%" PRId64 "}",
            i ? "," : "", escapeJson(a.name).c_str(),
            static_cast<int64_t>(b.ios) -
                static_cast<int64_t>(a.ios),
            static_cast<int64_t>(b.bytes) -
                static_cast<int64_t>(a.bytes),
            b.p50Ns - a.p50Ns, b.p99Ns - a.p99Ns,
            static_cast<int64_t>(b.errors) -
                static_cast<int64_t>(a.errors));
        out += buf;
    }
    out += "]}";
}

} // namespace

std::string
diffJson(const Scenario &sc, const Query &q,
         const RunStats &baseline, const RunStats &branch)
{
    char buf[96];
    std::string out = "{\"type\":\"whatif_diff\"";
    std::snprintf(buf, sizeof buf,
                  ",\"scenario\":\"%016" PRIx64 "\"", sc.hash());
    out += buf;
    out += ",\"query\":\"" + escapeJson(q.canonical()) + "\"";
    std::snprintf(buf, sizeof buf, ",\"from_ns\":%lld",
                  static_cast<long long>(q.from));
    out += buf;
    out += ",\"baseline\":";
    appendRunStats(out, baseline);
    out += ",\"branch\":";
    appendRunStats(out, branch);
    out += ",\"delta\":";
    appendDelta(out, baseline, branch);
    out += '}';
    return out;
}

Replica::Replica(const Scenario &sc, BuildOnly)
    : sc_(sc), sim_(sc.seed)
{
    sc_.normalize();
    build();
}

Replica::Replica(const Scenario &sc, bool checkpoints)
    : sc_(sc), sim_(sc.seed)
{
    sc_.normalize();
    build();
    if (checkpoints) {
        for (sim::Time mark : sc_.marks) {
            if (mark > 0)
                sim_.runUntil(mark);
            checkpoints_.emplace_back(mark, host_->snapshot());
        }
    }
    sim_.runUntil(sc_.duration());
    baseline_ = collect();
}

void
Replica::build()
{
    auto device =
        host::makeNamedDevice(sc_.device, sim_, &deviceModel_);

    const auto spec =
        controllers::parseControllerSpec(sc_.controller);
    if (!spec)
        bad("bad controller spec \"" + sc_.controller + "\"");

    core::LinearModelConfig model = deviceModel_;
    if (!sc_.model.empty()) {
        const auto parsed = core::parseModelLine(sc_.model);
        if (!parsed)
            bad("bad model line \"" + sc_.model + "\"");
        model = *parsed;
    }

    host::HostOptions opts;
    opts.controller = *spec;
    opts.faults = sc_.faults;
    // Inject-fault queries must find an injector on healthy
    // scenarios too, and it must exist before the baseline runs:
    // snapshots restore state, not structure.
    opts.installFaultInjector = true;
    // Same defaulting as iocost_sim: the device profile and the
    // scenario's qos line fill whatever the spec line leaves out.
    const std::string spec_rest =
        controllers::iocostPayload(sc_.controller);
    if (!core::parseModelLine(spec_rest)) {
        opts.controller.iocost.model =
            core::CostModel::fromConfig(model);
    }
    if (!core::parseQosLine(spec_rest)) {
        opts.controller.iocost.qos.vrateMin = 0.5;
        opts.controller.iocost.qos.vrateMax = 1.0;
    }
    if (!sc_.qos.empty()) {
        const auto parsed = core::parseQosLine(sc_.qos);
        if (!parsed)
            bad("bad qos line \"" + sc_.qos + "\"");
        opts.controller.iocost.qos = *parsed;
    }
    if (sc_.pagecacheBytes != 0) {
        opts.enablePageCache = true;
        opts.pageCacheConfig.cacheBytes = sc_.pagecacheBytes;
        if (sc_.dirtyRatioPct > 0.0) {
            opts.pageCacheConfig.dirtyRatio =
                sc_.dirtyRatioPct / 100.0;
            opts.pageCacheConfig.dirtyBackgroundRatio =
                sc_.dirtyRatioPct / 200.0;
        }
    }

    host_ = std::make_unique<host::Host>(sim_, std::move(device),
                                         opts);

    for (size_t j = 0; j < sc_.jobs.size(); ++j) {
        ParsedJob job = parseJobSpec(sc_.jobs[j]);
        // Disjoint regions, as iocost_sim lays jobs out.
        job.fio.offsetBase = j << 40;
        const auto cg = host_->addWorkload(job.name, job.weight);
        jobNames_.push_back(job.name);
        jobCgs_.push_back(cg);
        if (job.buffered) {
            if (sc_.pagecacheBytes == 0) {
                bad("buffered job \"" + job.name +
                    "\" requires pagecache=");
            }
            workload::BufferedConfig bc;
            bc.name = job.name;
            bc.readFraction = job.fio.readFraction;
            bc.randomFraction = job.fio.randomFraction;
            bc.blockSize = job.fio.blockSize;
            bc.offsetBase = job.fio.offsetBase;
            bc.fsyncEvery = job.fsyncEvery;
            bc.depth = job.fio.iodepth;
            if (job.spanBytes != 0)
                bc.spanBytes = job.spanBytes;
            buffered_.push_back(
                std::make_unique<workload::BufferedWorkload>(
                    sim_, host_->pageCache(), cg, bc));
            host_->track(*buffered_.back());
            buffered_.back()->start();
        } else {
            workloads_.push_back(
                std::make_unique<workload::FioWorkload>(
                    sim_, host_->layer(), cg, job.fio));
            host_->track(*workloads_.back());
            workloads_.back()->start();
        }
    }
}

size_t
Replica::checkpointBytes() const
{
    return checkpoints_.empty()
               ? 0
               : checkpoints_.front().second.byteSize();
}

void
Replica::apply(const Query &q)
{
    switch (q.kind) {
      case Query::Kind::Weight: {
        for (size_t i = 0; i < jobNames_.size(); ++i) {
            if (jobNames_[i] == q.cg) {
                host_->tree().setWeight(jobCgs_[i], q.weight);
                return;
            }
        }
        if (q.cg == "workload.slice")
            host_->tree().setWeight(host_->workload(), q.weight);
        else if (q.cg == "system.slice")
            host_->tree().setWeight(host_->system(), q.weight);
        else if (q.cg == "hostcritical.slice")
            host_->tree().setWeight(host_->hostCritical(),
                                    q.weight);
        else
            bad("unknown cgroup \"" + q.cg + "\"");
        return;
      }
      case Query::Kind::Device:
        host::applyDeviceProfile(host_->device(), q.profile);
        return;
      case Query::Kind::Fault: {
        // Validated at parse time; re-parse to get the windows.
        const sim::FaultPlan plan = sim::FaultPlan::parse(q.fault);
        for (const sim::FaultWindow &w : plan.windows)
            host_->faults()->addWindow(w);
        return;
      }
    }
}

RunStats
Replica::collect() const
{
    RunStats rs;
    for (size_t i = 0; i < jobCgs_.size(); ++i) {
        const blk::CgroupIoStats &st =
            host_->layer().stats(jobCgs_[i]);
        JobStats js;
        js.name = jobNames_[i];
        js.ios = st.reads + st.writes;
        js.bytes = st.readBytes + st.writeBytes;
        js.p50Ns = st.totalLatency.quantile(0.5);
        js.p99Ns = st.totalLatency.quantile(0.99);
        js.errors = st.errors;
        rs.jobs.push_back(std::move(js));
    }
    if (const core::IoCost *ioc = host_->iocost()) {
        rs.isIocost = true;
        rs.vrate = ioc->vrate();
    }
    return rs;
}

RunStats
Replica::branch(const Query &q)
{
    if (checkpoints_.empty())
        bad("branch() on a checkpoint-less replica");
    if (q.from > sc_.duration())
        bad("branch point beyond the run duration");

    // Nearest checkpoint at or before the branch point (the t=0
    // mark always exists).
    const auto *cp = &checkpoints_.front();
    for (const auto &candidate : checkpoints_) {
        if (candidate.first <= q.from)
            cp = &candidate;
    }

    host_->restore(cp->second);
    if (q.from > cp->first)
        sim_.runUntil(q.from);
    apply(q);
    sim_.runUntil(sc_.duration());
    return collect();
}

RunStats
Replica::cold(const Scenario &sc, const Query &q)
{
    Scenario flat = sc;
    flat.normalize();
    if (q.from > flat.duration())
        bad("branch point beyond the run duration");
    // A fresh host, no snapshot machinery at all: run straight to
    // the branch point, apply, run to the end.
    Replica r(flat, BuildOnly{});
    if (q.from > 0)
        r.sim_.runUntil(q.from);
    r.apply(q);
    r.sim_.runUntil(flat.duration());
    return r.collect();
}

Service::Service(Scenario sc, unsigned threads) : sc_(std::move(sc))
{
    sc_.normalize();
    unsigned n = threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Service::~Service()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::future<std::string>
Service::submit(const Query &q)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016" PRIx64 "|", sc_.hash());
    Task task;
    task.query = q;
    task.cacheKey = buf + q.canonical();
    std::future<std::string> fut = task.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(task.cacheKey);
        if (it != cache_.end()) {
            ++cacheHits_;
            task.promise.set_value(it->second);
            return fut;
        }
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

std::string
Service::evaluate(const Query &q)
{
    return submit(q).get();
}

std::string
Service::evaluateCold(const Scenario &sc, const Query &q)
{
    Scenario flat = sc;
    flat.normalize();
    Replica baseline(flat, /*checkpoints=*/false);
    const RunStats branch = Replica::cold(flat, q);
    return diffJson(flat, q, baseline.baseline(), branch);
}

uint64_t
Service::cacheHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cacheHits_;
}

void
Service::workerLoop()
{
    std::unique_ptr<Replica> replica;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping
            task = std::move(tasks_.front());
            tasks_.pop_front();
            // A duplicate may have been enqueued while its twin
            // was still computing; answers are deterministic, so
            // serve the finished twin's result.
            auto it = cache_.find(task.cacheKey);
            if (it != cache_.end()) {
                ++cacheHits_;
                task.promise.set_value(it->second);
                continue;
            }
        }
        std::string result;
        try {
            if (!replica)
                replica = std::make_unique<Replica>(sc_);
            const RunStats branch = replica->branch(task.query);
            result = diffJson(sc_, task.query,
                              replica->baseline(), branch);
        } catch (const std::exception &err) {
            result = "{\"type\":\"whatif_error\",\"query\":\"" +
                     escapeJson(task.query.canonical()) +
                     "\",\"error\":\"" +
                     escapeJson(err.what()) + "\"}";
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            cache_.emplace(task.cacheKey, result);
        }
        task.promise.set_value(result);
    }
}

} // namespace iocost::whatif
