#include "whatif/query.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "sim/fault.hh"

namespace iocost::whatif {

namespace {

[[noreturn]] void
bad(const std::string &what)
{
    throw std::invalid_argument("whatif query: " + what);
}

/**
 * Minimal parser for the flat query documents: one object, string
 * keys, string/number values. Anything nested, boolean, or null is
 * rejected — the grammar is deliberately small enough to sniff.
 */
class FlatJson
{
  public:
    explicit FlatJson(const std::string &text) : text_(text)
    {
        parse();
    }

    const std::map<std::string, std::string> &values() const
    {
        return values_;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            bad("unexpected end of document");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            bad(std::string("expected '") + c + "' at offset " +
                std::to_string(pos_));
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    bad("truncated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default:
                    bad(std::string("unsupported escape \\") + e);
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= text_.size())
            bad("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    std::string
    parseNumber()
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            bad("expected a value at offset " +
                std::to_string(start));
        return text_.substr(start, pos_ - start);
    }

    void
    parse()
    {
        expect('{');
        if (peek() == '}') {
            ++pos_;
        } else {
            for (;;) {
                const std::string key = parseString();
                expect(':');
                std::string value;
                if (peek() == '"')
                    value = parseString();
                else
                    value = parseNumber();
                if (!values_.emplace(key, value).second)
                    bad("duplicate key \"" + key + "\"");
                const char c = peek();
                ++pos_;
                if (c == '}')
                    break;
                if (c != ',')
                    bad("expected ',' or '}' at offset " +
                        std::to_string(pos_ - 1));
            }
        }
        skipWs();
        if (pos_ != text_.size())
            bad("trailing characters after the document");
    }

    const std::string &text_;
    std::map<std::string, std::string> values_;
    size_t pos_ = 0;
};

/** Non-negative time with optional ns/us/ms/s suffix (default ms). */
sim::Time
parseTimeValue(const std::string &text)
{
    if (text.empty())
        bad("empty time value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad("unparsable time \"" + text + "\"");
    }
    if (value < 0.0)
        bad("negative time \"" + text + "\"");
    const std::string unit = text.substr(pos);
    double scale = 0.0;
    if (unit.empty() || unit == "ms")
        scale = static_cast<double>(sim::kMsec);
    else if (unit == "ns")
        scale = static_cast<double>(sim::kNsec);
    else if (unit == "us")
        scale = static_cast<double>(sim::kUsec);
    else if (unit == "s")
        scale = static_cast<double>(sim::kSec);
    else
        bad("unknown time unit \"" + unit + "\"");
    return static_cast<sim::Time>(value * scale);
}

} // namespace

Query
Query::parse(const std::string &jsonLine)
{
    const FlatJson doc(jsonLine);
    const auto &v = doc.values();

    auto get = [&](const char *key) -> const std::string & {
        auto it = v.find(key);
        if (it == v.end())
            bad(std::string("missing key \"") + key + "\"");
        return it->second;
    };

    Query q;
    const std::string &kind = get("q");
    std::map<std::string, std::string> known;
    known["q"] = kind;
    if (kind == "weight") {
        q.kind = Kind::Weight;
        q.cg = get("cg");
        known["cg"] = q.cg;
        const std::string &value = get("value");
        known["value"] = value;
        try {
            const unsigned long w = std::stoul(value);
            if (w == 0 || w > 10000)
                bad("weight must be in [1, 10000]");
            q.weight = static_cast<uint32_t>(w);
        } catch (const std::invalid_argument &) {
            throw;
        } catch (const std::exception &) {
            bad("unparsable weight \"" + value + "\"");
        }
    } else if (kind == "device") {
        q.kind = Kind::Device;
        q.profile = get("profile");
        known["profile"] = q.profile;
    } else if (kind == "fault") {
        q.kind = Kind::Fault;
        q.fault = get("spec");
        known["spec"] = q.fault;
        // Validate here so a malformed spec fails before it is
        // queued: it must parse and must carry actual windows
        // (retry-policy keys belong in the scenario's fault plan —
        // the block layer's policy is fixed at host build).
        sim::FaultPlan plan;
        try {
            plan = sim::FaultPlan::parse(q.fault);
        } catch (const std::invalid_argument &err) {
            bad(std::string("bad fault spec: ") + err.what());
        }
        if (plan.windows.empty())
            bad("fault spec \"" + q.fault +
                "\" has no fault windows");
    } else {
        bad("unknown query kind \"" + kind +
            "\" (weight, device, fault)");
    }

    if (auto it = v.find("from"); it != v.end()) {
        q.from = parseTimeValue(it->second);
        known["from"] = it->second;
    }
    for (const auto &[key, value] : v) {
        if (!known.count(key))
            bad("unknown key \"" + key + "\"");
    }
    return q;
}

std::string
Query::canonical() const
{
    std::string out;
    switch (kind) {
      case Kind::Weight:
        out = "weight cg=" + cg + " value=" + std::to_string(weight);
        break;
      case Kind::Device:
        out = "device profile=" + profile;
        break;
      case Kind::Fault:
        out = "fault spec=" + fault;
        break;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, " from=%lld",
                  static_cast<long long>(from));
    return out + buf;
}

} // namespace iocost::whatif
