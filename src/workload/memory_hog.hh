/**
 * @file
 * Memory-consuming antagonist workloads.
 *
 * Two modes, matching the paper's evaluation antagonists:
 *
 *  - Leak: allocate continuously and never touch again (the
 *    system-slice memory leak of Figs. 14/17/18). Leaked pages are
 *    cold, so reclaim swaps them out — generating swap-out writes
 *    charged to this cgroup. Restarts after an OOM kill, like a
 *    leaking service under a supervisor.
 *
 *  - Stress: allocate a fixed working set and touch it continuously
 *    (the `stress` consumer of Fig. 15), keeping its pages
 *    permanently hot and competing for residency.
 */

#ifndef IOCOST_WORKLOAD_MEMORY_HOG_HH
#define IOCOST_WORKLOAD_MEMORY_HOG_HH

#include <cstdint>
#include <string>

#include "mm/memory_manager.hh"
#include "sim/simulator.hh"

namespace iocost::workload {

/** Antagonist behaviour. */
enum class HogMode
{
    Leak,
    Stress,
};

/** Configuration of a memory hog. */
struct MemoryHogConfig
{
    std::string name = "hog";
    HogMode mode = HogMode::Leak;

    /** Leak: allocation rate. */
    double leakBytesPerSec = 64e6;
    /** Leak: chunk per allocation call. */
    uint64_t leakChunk = 8ull << 20;
    /** Leak: delay before restarting after an OOM kill. */
    sim::Time restartDelay = 1 * sim::kSec;

    /** Stress: resident working set to keep hot. */
    uint64_t workingSetBytes = 2ull << 30;
    /** Stress: bytes touched per loop iteration. */
    uint64_t touchChunk = 32ull << 20;
    /** Stress: pause between loop iterations. */
    sim::Time touchInterval = 5 * sim::kMsec;
};

/**
 * The antagonist.
 */
class MemoryHog
{
  public:
    MemoryHog(sim::Simulator &sim, mm::MemoryManager &mm,
              cgroup::CgroupId cg, MemoryHogConfig cfg);

    void start();
    void stop();

    /**
     * Notify that the OOM killer removed this cgroup's memory; the
     * hog pauses and (in Leak mode) starts leaking afresh.
     */
    void notifyOomKilled();

    /** Total bytes allocated over the run (across restarts). */
    uint64_t allocated() const { return allocated_; }

    /** Number of OOM kills absorbed. */
    unsigned kills() const { return kills_; }

    cgroup::CgroupId cg() const { return cg_; }

  private:
    void leakStep();
    void stressSetup(uint64_t remaining);
    void stressStep();

    sim::Simulator &sim_;
    mm::MemoryManager &mm_;
    cgroup::CgroupId cg_;
    MemoryHogConfig cfg_;

    bool running_ = false;
    /** Guards against stale async completions after an OOM kill. */
    uint64_t epoch_ = 0;
    uint64_t allocated_ = 0;
    unsigned kills_ = 0;
};

} // namespace iocost::workload

#endif // IOCOST_WORKLOAD_MEMORY_HOG_HH
