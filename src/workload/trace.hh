/**
 * @file
 * Block IO trace capture and replay.
 *
 * A TraceRecorder observes every completion on a BlockLayer and
 * appends (time, op, offset, size, cgroup-name) records; traces can
 * be saved to and loaded from a simple one-record-per-line text
 * format (a subset of blktrace/blkparse's fields). A TraceReplayer
 * re-submits a trace against any stack — optionally time-scaled and
 * remapped onto different cgroups — which is how real workload
 * signatures (e.g. the Fig. 4 archetypes) can be captured once and
 * replayed under every controller.
 */

#ifndef IOCOST_WORKLOAD_TRACE_HH
#define IOCOST_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "blk/block_layer.hh"
#include "sim/simulator.hh"

namespace iocost::workload {

/** One traced IO. */
struct TraceRecord
{
    sim::Time when = 0;
    blk::Op op = blk::Op::Read;
    uint64_t offset = 0;
    uint32_t size = 0;
    std::string cgroupName;
};

/**
 * An ordered collection of trace records.
 */
class Trace
{
  public:
    /** Append a record (timestamps must be non-decreasing). */
    void add(TraceRecord rec) { records_.push_back(std::move(rec)); }

    const std::vector<TraceRecord> &records() const
    {
        return records_;
    }
    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Total bytes transferred, by direction. */
    uint64_t readBytes() const;
    uint64_t writeBytes() const;

    /** Trace duration (last minus first timestamp). */
    sim::Time duration() const;

    /** Serialize one record per line: "when op offset size cgroup". */
    void save(std::ostream &out) const;

    /**
     * Parse the save() format. Malformed lines are skipped; returns
     * the number of parsed records.
     */
    static Trace load(std::istream &in);

  private:
    std::vector<TraceRecord> records_;
};

/**
 * Observes a BlockLayer and records every completed bio.
 *
 * Attach before the workload starts; detach (or destroy) to stop.
 * Recording hooks the layer's completion fan-out via per-bio
 * wrappers, so it composes with any controller.
 */
class TraceRecorder
{
  public:
    /**
     * @param layer The stack to observe (not owned).
     *
     * Recording works by wrapping submissions: call record() from
     * the submitting side, or use wrap() to decorate a bio before
     * layer.submit().
     */
    explicit TraceRecorder(blk::BlockLayer &layer)
        : layer_(layer)
    {}

    /** Decorate @p bio so its completion is recorded. */
    blk::BioPtr wrap(blk::BioPtr bio);

    /** Submit-and-record convenience. */
    void
    submit(blk::BioPtr bio)
    {
        layer_.submit(wrap(std::move(bio)));
    }

    /** The captured trace so far. */
    const Trace &trace() const { return trace_; }

    /** Move the captured trace out (resets the recorder). */
    Trace take();

  private:
    blk::BlockLayer &layer_;
    Trace trace_;
};

/** Replay options. */
struct ReplayConfig
{
    /** Multiply inter-arrival gaps (0.5 = twice as fast). */
    double timeScale = 1.0;
    /** Issue everything against this cgroup (kNone = per-record
     *  names are resolved against the tree, creating under
     *  `fallbackParent` when missing). */
    cgroup::CgroupId cgroupOverride = cgroup::kNone;
    /** Parent for cgroups created from trace names. */
    cgroup::CgroupId fallbackParent = cgroup::kRoot;
};

/**
 * Replays a trace open-loop against a block layer.
 */
class TraceReplayer
{
  public:
    TraceReplayer(sim::Simulator &sim, blk::BlockLayer &layer,
                  Trace trace, ReplayConfig cfg = {});

    /** Schedule all records relative to now. */
    void start();

    /** Completed replayed IOs. */
    uint64_t completed() const { return completed_; }

    /** @return true once every record has completed. */
    bool
    done() const
    {
        return completed_ == trace_.size();
    }

  private:
    cgroup::CgroupId resolveCgroup(const std::string &name);

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    Trace trace_;
    ReplayConfig cfg_;
    uint64_t completed_ = 0;
};

} // namespace iocost::workload

#endif // IOCOST_WORKLOAD_TRACE_HH
