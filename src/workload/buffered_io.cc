#include "workload/buffered_io.hh"

#include <algorithm>

namespace iocost::workload {

BufferedWorkload::BufferedWorkload(sim::Simulator &sim,
                                   mm::PageCache &cache,
                                   cgroup::CgroupId cg,
                                   BufferedConfig cfg)
    : sim_(sim),
      cache_(cache),
      cg_(cg),
      cfg_(std::move(cfg)),
      rng_(sim.forkRng())
{
    // Constructor-time registration: the span is part of the
    // cgroup's identity in the cache, not per-run state (a restart
    // must not double it).
    cache_.addSpan(cg_, cfg_.spanBytes);
}

void
BufferedWorkload::start()
{
    if (running_)
        return;
    running_ = true;
    statsStart_ = sim_.now();
    for (unsigned i = 0; i < std::max(1u, cfg_.depth); ++i)
        issueOne();
}

void
BufferedWorkload::stop()
{
    running_ = false;
}

double
BufferedWorkload::iops() const
{
    const sim::Time elapsed = sim_.now() - statsStart_;
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(completed_) / sim::toSeconds(elapsed);
}

void
BufferedWorkload::resetStats()
{
    completed_ = 0;
    fsyncsDone_ = 0;
    statsStart_ = sim_.now();
    latency_.reset();
}

void
BufferedWorkload::issueOne()
{
    if (!running_)
        return;

    ++inFlight_;
    const sim::Time submitted = sim_.now();
    auto finish = [this, submitted] {
        onDone(sim_.now() - submitted);
    };

    // A due fsync barrier takes the slot before the next write.
    if (cfg_.fsyncEvery > 0 &&
        writesSinceFsync_ >= cfg_.fsyncEvery) {
        writesSinceFsync_ = 0;
        ++fsyncsDone_;
        cache_.fsync(cg_, finish);
        return;
    }

    // Two draws per operation whatever the mix, so the stream stays
    // aligned across read-fraction sweeps.
    const bool is_read = rng_.uniform() < cfg_.readFraction;
    const bool is_random = rng_.uniform() < cfg_.randomFraction;

    uint64_t offset;
    if (is_random) {
        const uint64_t blocks = cfg_.spanBytes / cfg_.blockSize;
        offset = cfg_.offsetBase +
                 rng_.below(std::max<uint64_t>(1, blocks)) *
                     cfg_.blockSize;
    } else {
        offset = cfg_.offsetBase + seqCursor_;
        seqCursor_ = (seqCursor_ + cfg_.blockSize) % cfg_.spanBytes;
    }

    if (is_read) {
        cache_.read(cg_, offset, cfg_.blockSize, finish);
    } else {
        ++writesSinceFsync_;
        cache_.write(cg_, offset, cfg_.blockSize, finish);
    }
}

void
BufferedWorkload::onDone(sim::Time latency)
{
    if (inFlight_ > 0)
        --inFlight_;
    ++completed_;
    latency_.record(latency);

    if (!running_)
        return;
    // Closed loop with a think-time hop. The hop is mandatory (min
    // one tick): a buffered write that neither stalls nor owes debt
    // completes synchronously, and an unpaced loop would recurse at
    // a frozen timestamp.
    sim_.after(std::max<sim::Time>(1, cfg_.thinkTime),
               [this] { issueOne(); });
}

void
BufferedWorkload::saveState(sim::StateWriter &w) const
{
    uint64_t s[4];
    rng_.getState(s);
    for (uint64_t word : s)
        w.put(word);
    w.put(running_);
    w.put(inFlight_);
    w.put(completed_);
    w.put(fsyncsDone_);
    w.put(writesSinceFsync_);
    w.put(seqCursor_);
    w.put(statsStart_);
    latency_.saveState(w);
}

void
BufferedWorkload::loadState(sim::StateReader &r)
{
    uint64_t s[4];
    for (uint64_t &word : s)
        r.get(word);
    rng_.setState(s);
    r.get(running_);
    r.get(inFlight_);
    r.get(completed_);
    r.get(fsyncsDone_);
    r.get(writesSinceFsync_);
    r.get(seqCursor_);
    r.get(statsStart_);
    latency_.loadState(r);
}

} // namespace iocost::workload
