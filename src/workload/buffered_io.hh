/**
 * @file
 * Buffered-IO workload: closed-loop streams through the page cache.
 *
 * The buffered counterpart of FioWorkload: operations go through
 * mm::PageCache instead of straight into the block layer, so writes
 * dirty pages at memory speed (until the dirty wall or the
 * controller's debt delay paces them) and reads hit or miss the
 * cache. Two shapes matter for the paper's Figs. 14/15 narrative:
 *
 *  - the *dirtier*: write-heavy, no fsync — a batch job laundering
 *    a write flood through the flusher;
 *  - the *fsync storm*: small writes with periodic fsync barriers —
 *    a database-style workload whose latency collapses when the
 *    flusher's IO is starved or unattributed.
 */

#ifndef IOCOST_WORKLOAD_BUFFERED_IO_HH
#define IOCOST_WORKLOAD_BUFFERED_IO_HH

#include <cstdint>
#include <string>

#include "mm/page_cache.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"

namespace iocost::workload {

/** Configuration of one buffered-IO job. */
struct BufferedConfig
{
    std::string name = "buffered";

    /** Fraction of operations that are reads. */
    double readFraction = 0.0;

    /** Fraction of operations at random offsets (rest sequential). */
    double randomFraction = 0.0;

    /** Bytes per operation. */
    uint32_t blockSize = 64 * 1024;

    /** Addressable span (also registered as the cgroup's cache
     *  working-set span). */
    uint64_t spanBytes = 4ull << 30;

    /** Base offset of this job's file region. */
    uint64_t offsetBase = 0;

    /** fsync after every N writes; 0 = never. */
    uint32_t fsyncEvery = 0;

    /** Closed-loop delay after each completed operation. */
    sim::Time thinkTime = 100 * sim::kUsec;

    /** Concurrent streams. */
    unsigned depth = 1;
};

/**
 * One running buffered job issuing page-cache operations on behalf
 * of a cgroup.
 */
class BufferedWorkload : public sim::Snapshottable
{
  public:
    BufferedWorkload(sim::Simulator &sim, mm::PageCache &cache,
                     cgroup::CgroupId cg, BufferedConfig cfg);

    /** Begin issuing. */
    void start();

    /** Stop issuing (parked operations still complete). */
    void stop();

    /** Completed operations (fsyncs included) since start. */
    uint64_t completed() const { return completed_; }

    /** Completed operations per second over the run so far. */
    double iops() const;

    /** Operation latency (issue-to-return) histogram: buffered
     *  writes are ~0 until a stall or debt delay bites — the
     *  distribution's tail IS the protection story. */
    const stat::Histogram &latency() const { return latency_; }

    /** fsync barriers completed. */
    uint64_t fsyncsDone() const { return fsyncsDone_; }

    /** Issuing cgroup. */
    cgroup::CgroupId cg() const { return cg_; }

    const BufferedConfig &config() const { return cfg_; }

    /** Reset counters (e.g. after a warmup phase). */
    void resetStats();

    /**
     * @name Snapshot support. Same contract as FioWorkload: the
     * config is identity, the Rng/cursors/counters/histogram are
     * state; parked operations live in the PageCache slot arena
     * and pending think-time hops in the event arena.
     * @{
     */
    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;
    /** @} */

  private:
    void issueOne();
    void onDone(sim::Time latency);

    sim::Simulator &sim_;
    mm::PageCache &cache_;
    cgroup::CgroupId cg_;
    BufferedConfig cfg_;
    sim::Rng rng_;

    bool running_ = false;
    unsigned inFlight_ = 0;
    uint64_t completed_ = 0;
    uint64_t fsyncsDone_ = 0;
    uint32_t writesSinceFsync_ = 0;
    uint64_t seqCursor_ = 0;
    sim::Time statsStart_ = 0;
    stat::Histogram latency_;
};

} // namespace iocost::workload

#endif // IOCOST_WORKLOAD_BUFFERED_IO_HH
