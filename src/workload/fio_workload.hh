/**
 * @file
 * fio-style synthetic IO workload generator.
 *
 * Reproduces the workload shapes the paper's evaluation uses:
 *
 *  - Saturating: keep a fixed number of IOs in flight (fio iodepth);
 *  - Rate: open-loop arrivals at a fixed ops/sec;
 *  - ThinkTime: closed loop, next IO issued a fixed think time after
 *    the previous completion (Fig. 11's high-priority workload);
 *  - LatencyGoverned: issue as fast as possible while the observed
 *    p50 completion latency stays under a target, shedding load when
 *    it does not (Figs. 10/11's latency-sensitive services).
 */

#ifndef IOCOST_WORKLOAD_FIO_WORKLOAD_HH
#define IOCOST_WORKLOAD_FIO_WORKLOAD_HH

#include <cstdint>
#include <deque>
#include <string>

#include "blk/block_layer.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"

namespace iocost::workload {

/** Arrival process of a FioWorkload. */
enum class Arrival
{
    Saturating,
    Rate,
    ThinkTime,
    LatencyGoverned,
};

/** Configuration of one fio-style job. */
struct FioConfig
{
    std::string name = "fio";

    /** Fraction of operations that are reads. */
    double readFraction = 1.0;

    /** Fraction of operations at random offsets (rest sequential). */
    double randomFraction = 1.0;

    /** Transfer size per IO. */
    uint32_t blockSize = 4096;

    /** Addressable span for offsets. */
    uint64_t spanBytes = 64ull << 30;

    /**
     * Base offset of this job's region (jobs working on distinct
     * files/partitions must not overlap, or sequential streams
     * alias each other's blocks).
     */
    uint64_t offsetBase = 0;

    Arrival arrival = Arrival::Saturating;

    /** Saturating: IOs kept in flight. */
    unsigned iodepth = 64;

    /** Rate: operations per second (open loop). */
    double ratePerSec = 1000.0;

    /** ThinkTime: delay after each completion. */
    sim::Time thinkTime = 100 * sim::kUsec;

    /**
     * LatencyGoverned: issue continuously (closed loop) at an
     * adaptive concurrency — grow while the window p50 stays under
     * latencyTarget, back off when it does not (AIMD).
     */
    sim::Time latencyTarget = 200 * sim::kUsec;
    sim::Time governWindow = 20 * sim::kMsec;
    /** LatencyGoverned: concurrency ceiling. */
    unsigned governMaxDepth = 32;
};

/**
 * One running fio job issuing bios into a BlockLayer on behalf of a
 * cgroup.
 */
class FioWorkload : public sim::Snapshottable
{
  public:
    FioWorkload(sim::Simulator &sim, blk::BlockLayer &layer,
                cgroup::CgroupId cg, FioConfig cfg);

    /** Begin issuing. */
    void start();

    /** Stop issuing (in-flight IOs still complete). */
    void stop();

    /** Completed operations since start. */
    uint64_t completed() const { return completed_; }

    /** Completed operations per second over the run so far. */
    double iops() const;

    /** Completion latency (submit-to-complete) histogram. */
    const stat::Histogram &latency() const { return latency_; }

    /** Issuing cgroup. */
    cgroup::CgroupId cg() const { return cg_; }

    const FioConfig &config() const { return cfg_; }

    /** Reset counters (e.g. after a warmup phase). */
    void resetStats();

    /**
     * @name Snapshot support. The config is immutable identity; the
     * issue loop's Rng, cursors, counters, latency windows, and
     * pending timers are state. In-flight bios are owned by the
     * stack below (block layer / device / event arena) — only the
     * count lives here.
     * @{
     */
    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;
    /** @} */

  private:
    void issueOne();
    void onDone(sim::Time latency);
    void scheduleNext();
    void govern();

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    cgroup::CgroupId cg_;
    FioConfig cfg_;
    sim::Rng rng_;

    bool running_ = false;
    unsigned inFlight_ = 0;
    uint64_t completed_ = 0;
    uint64_t seqCursor_ = 0;
    sim::Time statsStart_ = 0;
    stat::Histogram latency_;

    /** LatencyGoverned adaptive state. */
    unsigned governDepth_ = 1;
    stat::Histogram windowLat_;
    sim::EventHandle governTimer_;
    sim::EventHandle nextIssue_;
};

} // namespace iocost::workload

#endif // IOCOST_WORKLOAD_FIO_WORKLOAD_HH
