#include "workload/latency_server.hh"

#include <algorithm>
#include <memory>

#include "sim/async.hh"

namespace iocost::workload {

LatencyServer::LatencyServer(sim::Simulator &sim,
                             blk::BlockLayer &layer,
                             mm::MemoryManager &mm,
                             cgroup::CgroupId cg,
                             LatencyServerConfig cfg)
    : sim_(sim),
      layer_(layer),
      mm_(mm),
      cg_(cg),
      cfg_(std::move(cfg)),
      rng_(sim.forkRng()),
      rpsSeries_(cfg_.name + ".rps")
{}

void
LatencyServer::prepare(std::function<void()> ready)
{
    // Allocate the working set in chunks so reclaim interleaves
    // naturally instead of one giant stall. The remaining count and
    // the ready continuation are loop state, not shared_ptr cells.
    static constexpr uint64_t kChunk = 16ull << 20;
    auto loop = sim::AsyncLoop::spawn(
        [this, left = cfg_.workingSetBytes,
         ready = std::move(ready)](sim::AsyncLoop &self) mutable {
            if (left == 0) {
                ready();
                return;
            }
            const uint64_t chunk = std::min(kChunk, left);
            left -= chunk;
            wsAllocated_ += chunk;
            mm_.allocate(cg_, chunk,
                         [keep = self.self()] { keep->step(); });
        });
    loop->step();
}

void
LatencyServer::start()
{
    if (running_)
        return;
    running_ = true;
    statsStart_ = sim_.now();
    scheduleArrival();
    windowTimer_ = sim_.after(cfg_.window, [this] { windowTick(); });
}

void
LatencyServer::stop()
{
    running_ = false;
    nextArrival_.cancel();
    windowTimer_.cancel();
}

double
LatencyServer::deliveredRps() const
{
    const sim::Time elapsed = sim_.now() - statsStart_;
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(completed_) / sim::toSeconds(elapsed);
}

void
LatencyServer::resetStats()
{
    completed_ = 0;
    shed_ = 0;
    statsStart_ = sim_.now();
    latency_.reset();
}

void
LatencyServer::scheduleArrival()
{
    if (!running_)
        return;
    const sim::Time delay = std::max<sim::Time>(
        1, static_cast<sim::Time>(
               rng_.exponential(1e9 / std::max(1.0,
                                               cfg_.offeredRps))));
    nextArrival_ = sim_.after(delay, [this] {
        arrival();
        scheduleArrival();
    });
}

void
LatencyServer::arrival()
{
    if (inFlight_ >= cfg_.maxConcurrency) {
        ++shed_;
        return;
    }
    ++inFlight_;
    const sim::Time started = sim_.now();

    auto stage1 = [this, started] { touchStage(started); };

    // Stage 0: grow the working set toward the load-dependent
    // target; the allocation may enter direct reclaim and stall
    // this request on swap-out IO (§3.5).
    const uint64_t ws_target =
        cfg_.workingSetBytes +
        static_cast<uint64_t>(cfg_.offeredRps) *
            cfg_.workingSetGrowthPerRps;
    uint64_t alloc = cfg_.allocPerRequest;
    if (wsAllocated_ < ws_target) {
        const uint64_t grow = std::min<uint64_t>(
            4ull << 20, ws_target - wsAllocated_);
        wsAllocated_ += grow;
        alloc += grow;
    }
    if (alloc > 0) {
        mm_.allocate(cg_, alloc, stage1);
        return;
    }
    stage1();
}

void
LatencyServer::touchStage(sim::Time started)
{
    // Stage 1: touch the working-set slice (may fault in pages).
    mm_.touch(cg_, cfg_.touchPerRequest, [this, started] {
        // Stage 2: data reads, issued concurrently.
        if (cfg_.readsPerRequest == 0 && cfg_.logWriteSize == 0) {
            finishRequest(started);
            return;
        }
        auto barrier = sim::AsyncBarrier::create(
            [this, started] { finishRequest(started); });
        if (cfg_.serialReads && cfg_.readsPerRequest > 0) {
            // Dependent lookups: read k completes before read k+1
            // is issued. The countdown is loop state.
            barrier->add();
            auto chain = sim::AsyncLoop::spawn(
                [this, barrier, left = cfg_.readsPerRequest](
                    sim::AsyncLoop &self) mutable {
                    if (left == 0) {
                        barrier->arrive();
                        return;
                    }
                    --left;
                    layer_.submit(blk::Bio::make(
                        blk::Op::Read, randomReadOffset(),
                        cfg_.readSize, cg_,
                        [keep = self.self()](const blk::Bio &) {
                            keep->step();
                        }));
                });
            chain->step();
        } else {
            for (unsigned i = 0; i < cfg_.readsPerRequest; ++i) {
                barrier->add();
                layer_.submit(blk::Bio::make(
                    blk::Op::Read, randomReadOffset(),
                    cfg_.readSize, cg_,
                    [barrier](const blk::Bio &) {
                        barrier->arrive();
                    }));
            }
        }
        if (cfg_.logWriteSize > 0) {
            // Log appends are sequential journal-style writes.
            barrier->add();
            static constexpr uint64_t kLogBase = 3ull << 40;
            const uint64_t log_offset = kLogBase + logCursor_;
            logCursor_ += cfg_.logWriteSize;
            layer_.submit(blk::Bio::make(
                blk::Op::Write, log_offset, cfg_.logWriteSize, cg_,
                [barrier](const blk::Bio &) {
                    barrier->arrive();
                }));
        }
        barrier->arrive(); // the issuer's reference
    });
}

uint64_t
LatencyServer::randomReadOffset()
{
    const uint64_t blocks = cfg_.dataSpanBytes / cfg_.readSize;
    return rng_.below(std::max<uint64_t>(1, blocks)) *
           cfg_.readSize;
}

void
LatencyServer::finishRequest(sim::Time started)
{
    if (inFlight_ > 0)
        --inFlight_;
    if (cfg_.allocPerRequest > 0)
        mm_.free(cg_, cfg_.allocPerRequest);
    ++completed_;
    ++windowCompleted_;
    const sim::Time lat = sim_.now() - started;
    latency_.record(lat);
    windowLat_.record(lat);
}

void
LatencyServer::windowTick()
{
    const double rps = static_cast<double>(windowCompleted_) /
                       sim::toSeconds(cfg_.window);
    rpsSeries_.record(sim_.now(), rps);
    if (onWindow_)
        onWindow_(rps, windowLat_.percentile(95));
    windowCompleted_ = 0;
    windowLat_.reset();
    if (running_) {
        windowTimer_ = sim_.after(cfg_.window,
                                  [this] { windowTick(); });
    }
}

} // namespace iocost::workload
