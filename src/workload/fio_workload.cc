#include "workload/fio_workload.hh"

#include <algorithm>

namespace iocost::workload {

FioWorkload::FioWorkload(sim::Simulator &sim, blk::BlockLayer &layer,
                         cgroup::CgroupId cg, FioConfig cfg)
    : sim_(sim),
      layer_(layer),
      cg_(cg),
      cfg_(std::move(cfg)),
      rng_(sim.forkRng())
{}

void
FioWorkload::start()
{
    if (running_)
        return;
    running_ = true;
    statsStart_ = sim_.now();

    switch (cfg_.arrival) {
      case Arrival::Saturating:
        for (unsigned i = 0; i < cfg_.iodepth; ++i)
            issueOne();
        break;
      case Arrival::Rate:
        scheduleNext();
        break;
      case Arrival::ThinkTime:
        for (unsigned i = 0; i < std::max(1u, cfg_.iodepth); ++i)
            issueOne();
        break;
      case Arrival::LatencyGoverned:
        governDepth_ = 1;
        issueOne();
        governTimer_ = sim_.after(cfg_.governWindow,
                                  [this] { govern(); });
        break;
    }
}

void
FioWorkload::stop()
{
    running_ = false;
    governTimer_.cancel();
    nextIssue_.cancel();
}

double
FioWorkload::iops() const
{
    const sim::Time elapsed = sim_.now() - statsStart_;
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(completed_) / sim::toSeconds(elapsed);
}

void
FioWorkload::resetStats()
{
    completed_ = 0;
    statsStart_ = sim_.now();
    latency_.reset();
}

void
FioWorkload::issueOne()
{
    if (!running_)
        return;

    const bool is_read = rng_.uniform() < cfg_.readFraction;
    const bool is_random = rng_.uniform() < cfg_.randomFraction;

    uint64_t offset;
    if (is_random) {
        const uint64_t blocks = cfg_.spanBytes / cfg_.blockSize;
        offset = cfg_.offsetBase +
                 rng_.below(std::max<uint64_t>(1, blocks)) *
                     cfg_.blockSize;
    } else {
        offset = cfg_.offsetBase + seqCursor_;
        seqCursor_ = (seqCursor_ + cfg_.blockSize) % cfg_.spanBytes;
    }

    ++inFlight_;
    const sim::Time submitted = sim_.now();
    blk::BioPtr bio = blk::Bio::make(
        is_read ? blk::Op::Read : blk::Op::Write, offset,
        cfg_.blockSize, cg_, [this, submitted](const blk::Bio &) {
            onDone(sim_.now() - submitted);
        });
    layer_.submit(std::move(bio));
}

void
FioWorkload::onDone(sim::Time latency)
{
    if (inFlight_ > 0)
        --inFlight_;
    ++completed_;
    latency_.record(latency);
    windowLat_.record(latency);

    if (!running_)
        return;
    switch (cfg_.arrival) {
      case Arrival::Saturating:
        issueOne();
        break;
      case Arrival::ThinkTime:
        sim_.after(cfg_.thinkTime, [this] { issueOne(); });
        break;
      case Arrival::LatencyGoverned:
        // Closed loop: keep governDepth_ IOs in flight.
        while (inFlight_ < governDepth_)
            issueOne();
        break;
      case Arrival::Rate:
        break; // paced by scheduleNext()
    }
}

void
FioWorkload::scheduleNext()
{
    if (!running_)
        return;
    const sim::Time delay = std::max<sim::Time>(
        1, static_cast<sim::Time>(
               rng_.exponential(1e9 / cfg_.ratePerSec)));
    nextIssue_ = sim_.after(delay, [this] {
        issueOne();
        scheduleNext();
    });
}

void
FioWorkload::govern()
{
    if (!running_)
        return;
    if (windowLat_.count() >= 4) {
        const auto p50 = windowLat_.quantile(0.5);
        if (p50 > cfg_.latencyTarget) {
            // Shed: back off hard in proportion to the overshoot —
            // the behaviour of an online service load-shedding to
            // protect its latency SLO.
            const bool severe = p50 > 2 * cfg_.latencyTarget;
            governDepth_ = std::max(
                1u, severe ? governDepth_ / 2 : governDepth_ - 1);
        } else if (p50 < cfg_.latencyTarget -
                             cfg_.latencyTarget / 10) {
            // Healthy: probe for more throughput.
            governDepth_ =
                std::min(cfg_.governMaxDepth, governDepth_ + 1);
            while (inFlight_ < governDepth_)
                issueOne();
        }
    }
    windowLat_.reset();
    governTimer_ = sim_.after(cfg_.governWindow,
                              [this] { govern(); });
}

void
FioWorkload::saveState(sim::StateWriter &w) const
{
    uint64_t s[4];
    rng_.getState(s);
    for (uint64_t word : s)
        w.put(word);
    w.put(running_);
    w.put(inFlight_);
    w.put(completed_);
    w.put(seqCursor_);
    w.put(statsStart_);
    latency_.saveState(w);
    w.put(governDepth_);
    windowLat_.saveState(w);
    sim_.events().saveHandle(w, governTimer_);
    sim_.events().saveHandle(w, nextIssue_);
}

void
FioWorkload::loadState(sim::StateReader &r)
{
    uint64_t s[4];
    for (uint64_t &word : s)
        r.get(word);
    rng_.setState(s);
    r.get(running_);
    r.get(inFlight_);
    r.get(completed_);
    r.get(seqCursor_);
    r.get(statsStart_);
    latency_.loadState(r);
    r.get(governDepth_);
    windowLat_.loadState(r);
    governTimer_ = sim_.events().loadHandle(r);
    nextIssue_ = sim_.events().loadHandle(r);
}

} // namespace iocost::workload
