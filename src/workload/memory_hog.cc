#include "workload/memory_hog.hh"

#include <algorithm>

namespace iocost::workload {

MemoryHog::MemoryHog(sim::Simulator &sim, mm::MemoryManager &mm,
                     cgroup::CgroupId cg, MemoryHogConfig cfg)
    : sim_(sim), mm_(mm), cg_(cg), cfg_(std::move(cfg))
{}

void
MemoryHog::start()
{
    if (running_)
        return;
    running_ = true;
    ++epoch_;
    if (cfg_.mode == HogMode::Leak) {
        leakStep();
    } else {
        stressSetup(cfg_.workingSetBytes);
    }
}

void
MemoryHog::stop()
{
    running_ = false;
    ++epoch_;
}

void
MemoryHog::notifyOomKilled()
{
    ++kills_;
    ++epoch_;
    if (!running_)
        return;
    const uint64_t epoch = epoch_;
    sim_.after(cfg_.restartDelay, [this, epoch] {
        if (!running_ || epoch != epoch_)
            return;
        if (cfg_.mode == HogMode::Leak) {
            leakStep();
        } else {
            stressSetup(cfg_.workingSetBytes);
        }
    });
}

void
MemoryHog::leakStep()
{
    if (!running_)
        return;
    const uint64_t epoch = epoch_;
    const sim::Time interval = std::max<sim::Time>(
        1, static_cast<sim::Time>(
               static_cast<double>(cfg_.leakChunk) /
               cfg_.leakBytesPerSec * 1e9));
    sim_.after(interval, [this, epoch] {
        if (!running_ || epoch != epoch_)
            return;
        allocated_ += cfg_.leakChunk;
        mm_.allocate(cg_, cfg_.leakChunk, [this, epoch] {
            if (running_ && epoch == epoch_)
                leakStep();
        });
    });
}

void
MemoryHog::stressSetup(uint64_t remaining)
{
    if (!running_)
        return;
    if (remaining == 0) {
        stressStep();
        return;
    }
    const uint64_t epoch = epoch_;
    const uint64_t chunk = std::min<uint64_t>(16ull << 20, remaining);
    allocated_ += chunk;
    mm_.allocate(cg_, chunk, [this, epoch, remaining, chunk] {
        if (running_ && epoch == epoch_)
            stressSetup(remaining - chunk);
    });
}

void
MemoryHog::stressStep()
{
    if (!running_)
        return;
    const uint64_t epoch = epoch_;
    mm_.touch(cg_, cfg_.touchChunk, [this, epoch] {
        if (!running_ || epoch != epoch_)
            return;
        sim_.after(cfg_.touchInterval, [this, epoch] {
            if (running_ && epoch == epoch_)
                stressStep();
        });
    });
}

} // namespace iocost::workload
