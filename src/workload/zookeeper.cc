#include "workload/zookeeper.hh"

#include <algorithm>
#include <memory>

#include "sim/async.hh"
#include "sim/logging.hh"

namespace iocost::workload {

/** One replica of one ensemble, pinned to a host. */
struct ZkCluster::Participant
{
    blk::BlockLayer *layer = nullptr;
    cgroup::CgroupId cg = cgroup::kNone;
    unsigned ensembleIdx = 0;

    /** Sequential txn-log cursor. */
    uint64_t logCursor = 0;
    uint64_t logBase = 0;
    uint64_t snapBase = 0;
    uint64_t snapCursor = 0;
    uint64_t txns = 0;
    /** Jittered snapshot trigger (ZooKeeper's randomized
     *  snapCount). */
    uint64_t nextSnapshotTxns = 0;

    struct Task
    {
        bool isRead;
        uint32_t payload;
        TaskDoneFn done;
    };

    /** The request pipeline: one task processed at a time. */
    std::deque<Task> queue;
    bool busy = false;
    /** Completion hook of the read being served (busy == true). */
    TaskDoneFn currentDone;
};

/** One replicated ensemble. */
struct ZkCluster::Ensemble
{
    unsigned idx = 0;
    uint32_t payload = 0;
    std::vector<Participant> participants;
    ZkEnsembleStats stats;

    stat::Histogram windowLat;
    bool inViolation = false;
    sim::Time violationStart = 0;
    sim::Time worstP99 = 0;

    sim::EventHandle readTimer;
    sim::EventHandle writeTimer;
};

ZkCluster::ZkCluster(sim::Simulator &sim,
                     std::vector<blk::BlockLayer *> hosts,
                     std::vector<cgroup::CgroupId> workload_parents,
                     ZkConfig cfg)
    : sim_(sim),
      hosts_(std::move(hosts)),
      cfg_(cfg),
      rng_(sim.forkRng())
{
    sim::panicIf(hosts_.size() < cfg_.participantsPerEnsemble,
                 "zk: fewer hosts than participants per ensemble");
    sim::panicIf(hosts_.size() != workload_parents.size(),
                 "zk: hosts/parents size mismatch");

    uint64_t global_idx = 0;
    for (unsigned e = 0; e < cfg_.ensembles; ++e) {
        auto ens = std::make_unique<Ensemble>();
        ens->idx = e;
        ens->payload = e == cfg_.noisyEnsemble
                           ? cfg_.noisyPayloadBytes
                           : cfg_.payloadBytes;
        ens->stats.name = "ensemble-" + std::to_string(e);
        for (unsigned p = 0; p < cfg_.participantsPerEnsemble;
             ++p) {
            // Stagger placement so participants of one ensemble
            // never share a host.
            const size_t host = (e + p) % hosts_.size();
            Participant part;
            part.layer = hosts_[host];
            part.ensembleIdx = e;
            part.cg = part.layer->cgroups().create(
                workload_parents[host],
                "zk-e" + std::to_string(e) + "-p" +
                    std::to_string(p),
                100);
            // Private disk regions per participant.
            part.logBase = (4ull << 40) + global_idx * (32ull << 30);
            part.snapBase = part.logBase + (16ull << 30);
            part.nextSnapshotTxns = static_cast<uint64_t>(
                cfg_.snapshotEveryTxns * rng_.uniform(0.75, 1.25));
            ++global_idx;
            ens->participants.push_back(std::move(part));
        }
        ensembles_.push_back(std::move(ens));
    }
}

ZkCluster::~ZkCluster() = default;

void
ZkCluster::start()
{
    if (running_)
        return;
    running_ = true;
    windowStart_ = sim_.now();
    for (auto &ens : ensembles_) {
        scheduleRead(*ens);
        scheduleWrite(*ens);
    }
    windowTimer_ = sim_.after(cfg_.window, [this] { windowTick(); });
}

void
ZkCluster::stop()
{
    running_ = false;
    windowTimer_.cancel();
    for (auto &ens : ensembles_) {
        ens->readTimer.cancel();
        ens->writeTimer.cancel();
    }
}

void
ZkCluster::enqueueTask(Participant &p, bool is_read,
                       uint32_t payload, TaskDoneFn done)
{
    p.queue.push_back(
        Participant::Task{is_read, payload, std::move(done)});
    pumpParticipant(p);
}

void
ZkCluster::maybeSnapshot(Participant &p)
{
    if (cfg_.snapshotEveryTxns == 0 ||
        p.txns < p.nextSnapshotTxns) {
        return;
    }
    p.nextSnapshotTxns =
        p.txns + static_cast<uint64_t>(cfg_.snapshotEveryTxns *
                                       rng_.uniform(0.75, 1.25));
    ++ensembles_[p.ensembleIdx]->stats.snapshots;

    // Background snapshot writer: keeps snapshotDepth sequential
    // writes in flight until the database image is on disk. The
    // remaining-byte count is loop state (a mutable capture), not a
    // shared_ptr cell, and each bio's callback just re-steps the
    // loop — one control-block allocation for the whole snapshot.
    Participant *pp = &p;
    auto writer = sim::AsyncLoop::spawn(
        [this, pp,
         left = cfg_.snapshotBytes](sim::AsyncLoop &loop) mutable {
            if (left == 0)
                return;
            const uint32_t chunk = static_cast<uint32_t>(
                std::min<uint64_t>(cfg_.snapshotIoBytes, left));
            left -= chunk;
            pp->snapCursor = (pp->snapCursor + chunk) % (8ull << 30);
            pp->layer->submit(blk::Bio::make(
                blk::Op::Write, pp->snapBase + pp->snapCursor,
                chunk, pp->cg,
                [keep = loop.self()](const blk::Bio &) {
                    keep->step();
                }));
        });
    for (unsigned i = 0; i < cfg_.snapshotDepth; ++i)
        writer->step();
}

void
ZkCluster::pumpParticipant(Participant &p)
{
    if (p.busy || p.queue.empty())
        return;
    p.busy = true;
    Participant::Task task = std::move(p.queue.front());
    p.queue.pop_front();

    Participant *pp = &p;

    if (task.isRead) {
        // The served read's hook parks on the participant (one task
        // at a time) so the timer capture stays small and inline.
        pp->currentDone = std::move(task.done);
        sim_.after(cfg_.readServiceTime, [this, pp] {
            TaskDoneFn done = std::move(pp->currentDone);
            done();
            pp->busy = false;
            pumpParticipant(*pp);
        });
        return;
    }

    // Group commit: fold every write waiting at the head of the
    // queue into one log append (ZooKeeper batches outstanding
    // transactions per fsync), bounded so one commit stays a
    // reasonable IO size.
    std::vector<TaskDoneFn> batch;
    batch.push_back(std::move(task.done));
    uint64_t payload = task.payload;
    while (!p.queue.empty() && !p.queue.front().isRead &&
           batch.size() < 64 && payload < (1u << 20)) {
        payload += p.queue.front().payload;
        batch.push_back(std::move(p.queue.front().done));
        p.queue.pop_front();
    }

    // Append the batch to the transaction log (sequential write,
    // completion models the fsync barrier). The batch moves into
    // the bio's inline callback storage — no shared_ptr wrapper.
    const uint64_t offset = pp->logBase + pp->logCursor;
    pp->logCursor = (pp->logCursor + payload) % (8ull << 30);
    pp->layer->submit(blk::Bio::make(
        blk::Op::Write, offset, static_cast<uint32_t>(payload),
        pp->cg,
        [this, pp, batch = sim::MoveOnly(std::move(batch))](
            const blk::Bio &) mutable {
            for (TaskDoneFn &done : batch.value) {
                ++pp->txns;
                done();
            }
            maybeSnapshot(*pp);
            pp->busy = false;
            pumpParticipant(*pp);
        }));
}

void
ZkCluster::recordOpLatency(Ensemble &e, bool is_read,
                           sim::Time latency)
{
    if (is_read) {
        ++e.stats.reads;
        e.stats.readLatency.record(latency);
    } else {
        ++e.stats.writes;
        e.stats.writeLatency.record(latency);
    }
    e.windowLat.record(latency);
}

void
ZkCluster::scheduleRead(Ensemble &e)
{
    if (!running_)
        return;
    const sim::Time delay = std::max<sim::Time>(
        1, static_cast<sim::Time>(
               rng_.exponential(1e9 / cfg_.readsPerSec)));
    e.readTimer = sim_.after(delay, [this, &e] {
        const sim::Time started = sim_.now();
        Participant &p =
            e.participants[rng_.below(e.participants.size())];
        enqueueTask(p, true, 0, [this, &e, started] {
            recordOpLatency(e, true, sim_.now() - started);
        });
        scheduleRead(e);
    });
}

void
ZkCluster::scheduleWrite(Ensemble &e)
{
    if (!running_)
        return;
    const sim::Time delay = std::max<sim::Time>(
        1, static_cast<sim::Time>(
               rng_.exponential(1e9 / cfg_.writesPerSec)));
    e.writeTimer = sim_.after(delay, [this, &e] {
        const sim::Time started = sim_.now();
        // Replicate to every participant; the op completes at
        // quorum.
        const unsigned quorum =
            static_cast<unsigned>(e.participants.size()) / 2 + 1;
        auto acks = std::make_shared<unsigned>(0);
        for (Participant &p : e.participants) {
            enqueueTask(p, false, e.payload,
                        [this, &e, started, acks, quorum] {
                            if (++*acks == quorum) {
                                recordOpLatency(
                                    e, false,
                                    sim_.now() - started);
                            }
                        });
        }
        scheduleWrite(e);
    });
}

void
ZkCluster::windowTick()
{
    const sim::Time now = sim_.now();
    for (auto &ens : ensembles_) {
        const sim::Time p99 =
            ens->windowLat.count() > 0
                ? ens->windowLat.quantile(0.99)
                : 0;
        ens->stats.p99Series.record(now,
                                    sim::toMillis(p99));
        if (p99 > cfg_.sloTarget) {
            if (!ens->inViolation) {
                ens->inViolation = true;
                ens->violationStart = now - cfg_.window;
                ens->worstP99 = p99;
            } else {
                ens->worstP99 = std::max(ens->worstP99, p99);
            }
        } else if (ens->inViolation) {
            ens->inViolation = false;
            ens->stats.violations.push_back(SloViolation{
                ens->violationStart,
                now - cfg_.window - ens->violationStart +
                    cfg_.window,
                ens->worstP99});
        }
        ens->windowLat.reset();
    }
    if (running_) {
        windowTimer_ =
            sim_.after(cfg_.window, [this] { windowTick(); });
    }
}

const ZkEnsembleStats &
ZkCluster::ensembleStats(unsigned idx)
{
    Ensemble &ens = *ensembles_[idx];
    if (ens.inViolation) {
        ens.inViolation = false;
        ens.stats.violations.push_back(
            SloViolation{ens.violationStart,
                         sim_.now() - ens.violationStart,
                         ens.worstP99});
    }
    return ens.stats;
}

ZkEnsembleStats
ZkCluster::wellBehavedAggregate()
{
    ZkEnsembleStats agg;
    agg.name = "well-behaved";
    for (unsigned i = 0; i < ensembles_.size(); ++i) {
        if (i == cfg_.noisyEnsemble)
            continue;
        const ZkEnsembleStats &s = ensembleStats(i);
        agg.readLatency.merge(s.readLatency);
        agg.writeLatency.merge(s.writeLatency);
        agg.reads += s.reads;
        agg.writes += s.writes;
        agg.snapshots += s.snapshots;
        agg.violations.insert(agg.violations.end(),
                              s.violations.begin(),
                              s.violations.end());
    }
    std::sort(agg.violations.begin(), agg.violations.end(),
              [](const SloViolation &a, const SloViolation &b) {
                  return a.start < b.start;
              });
    return agg;
}

} // namespace iocost::workload
