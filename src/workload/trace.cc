#include "workload/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>

namespace iocost::workload {

uint64_t
Trace::readBytes() const
{
    uint64_t sum = 0;
    for (const auto &r : records_) {
        if (r.op == blk::Op::Read)
            sum += r.size;
    }
    return sum;
}

uint64_t
Trace::writeBytes() const
{
    uint64_t sum = 0;
    for (const auto &r : records_) {
        if (r.op == blk::Op::Write)
            sum += r.size;
    }
    return sum;
}

sim::Time
Trace::duration() const
{
    if (records_.empty())
        return 0;
    return records_.back().when - records_.front().when;
}

void
Trace::save(std::ostream &out) const
{
    for (const auto &r : records_) {
        out << r.when << ' ' << (r.op == blk::Op::Read ? 'R' : 'W')
            << ' ' << r.offset << ' ' << r.size << ' '
            << (r.cgroupName.empty() ? "/" : r.cgroupName) << '\n';
    }
}

Trace
Trace::load(std::istream &in)
{
    Trace trace;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        TraceRecord rec;
        char op = 0;
        if (!(fields >> rec.when >> op >> rec.offset >> rec.size >>
              rec.cgroupName)) {
            continue; // malformed line: skip
        }
        if (op != 'R' && op != 'W')
            continue;
        rec.op = op == 'R' ? blk::Op::Read : blk::Op::Write;
        trace.add(std::move(rec));
    }
    return trace;
}

blk::BioPtr
TraceRecorder::wrap(blk::BioPtr bio)
{
    auto prev = std::move(bio->onComplete);
    bio->onComplete = [this, prev = std::move(prev)](
                          const blk::Bio &done) mutable {
        TraceRecord rec;
        rec.when = layer_.sim().now();
        rec.op = done.op;
        rec.offset = done.offset;
        rec.size = done.size;
        rec.cgroupName = layer_.cgroups().path(done.cgroup);
        trace_.add(std::move(rec));
        if (prev)
            prev(done);
    };
    return bio;
}

Trace
TraceRecorder::take()
{
    Trace out = std::move(trace_);
    trace_ = Trace{};
    return out;
}

TraceReplayer::TraceReplayer(sim::Simulator &sim,
                             blk::BlockLayer &layer, Trace trace,
                             ReplayConfig cfg)
    : sim_(sim), layer_(layer), trace_(std::move(trace)), cfg_(cfg)
{}

cgroup::CgroupId
TraceReplayer::resolveCgroup(const std::string &name)
{
    if (cfg_.cgroupOverride != cgroup::kNone)
        return cfg_.cgroupOverride;
    auto &tree = layer_.cgroups();
    for (cgroup::CgroupId id = 0; id < tree.size(); ++id) {
        if (tree.path(id) == name)
            return id;
    }
    if (name.empty() || name == "/")
        return cgroup::kRoot;
    // Create a leaf named after the last path component.
    const auto slash = name.find_last_of('/');
    return tree.create(cfg_.fallbackParent,
                       slash == std::string::npos
                           ? name
                           : name.substr(slash + 1));
}

void
TraceReplayer::start()
{
    if (trace_.empty())
        return;
    const sim::Time t0 = trace_.records().front().when;
    for (const TraceRecord &rec : trace_.records()) {
        const auto delay = static_cast<sim::Time>(
            static_cast<double>(rec.when - t0) * cfg_.timeScale);
        const cgroup::CgroupId cg = resolveCgroup(rec.cgroupName);
        sim_.after(std::max<sim::Time>(0, delay),
                   [this, rec, cg] {
                       layer_.submit(blk::Bio::make(
                           rec.op, rec.offset, rec.size, cg,
                           [this](const blk::Bio &) {
                               ++completed_;
                           }));
                   });
    }
}

} // namespace iocost::workload
