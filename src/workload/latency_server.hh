/**
 * @file
 * Latency-sensitive request-serving workload.
 *
 * Stands in for the paper's production web server and for
 * ResourceControlBench (§3.4): an open-loop request arrival process
 * where each request touches a slice of the service's working set
 * (faulting in any swapped-out pages), performs a few disk reads,
 * and optionally appends to a log. Requests past the concurrency cap
 * are shed — so sustained IO/memory interference shows up as lost
 * requests per second, the metric Figs. 14/17 report.
 */

#ifndef IOCOST_WORKLOAD_LATENCY_SERVER_HH
#define IOCOST_WORKLOAD_LATENCY_SERVER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "blk/block_layer.hh"
#include "mm/memory_manager.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"
#include "stat/time_series.hh"

namespace iocost::workload {

/** Configuration of a latency-sensitive server. */
struct LatencyServerConfig
{
    std::string name = "server";

    /** Offered request rate (open loop, Poisson arrivals). */
    double offeredRps = 500.0;

    /** Resident working set allocated during prepare(). */
    uint64_t workingSetBytes = 2ull << 30;

    /**
     * Additional working set per offered request/sec (the paper's
     * Fig. 15 dynamic: higher load pushes up demand for resident
     * memory). Growth allocations happen inline in request handling
     * and may enter direct reclaim — the §3.5 stall.
     */
    uint64_t workingSetGrowthPerRps = 0;

    /** Memory touched per request (uniform over the working set). */
    uint64_t touchPerRequest = 1ull << 20;

    /**
     * Transient memory allocated per request and freed at
     * completion (request buffers). Under memory pressure this is
     * what drags every request through direct reclaim — the §3.5
     * stall path.
     */
    uint64_t allocPerRequest = 0;

    /** Disk reads issued per request. */
    unsigned readsPerRequest = 2;
    uint32_t readSize = 16 * 1024;
    uint64_t dataSpanBytes = 32ull << 30;

    /**
     * Issue the reads one after another (dependent lookups, e.g.
     * index then data) instead of concurrently; device congestion
     * then compounds into request latency.
     */
    bool serialReads = false;

    /** Log append per request (0 disables). */
    uint32_t logWriteSize = 4096;

    /** Requests in flight beyond this are shed. */
    unsigned maxConcurrency = 64;

    /** RPS reporting window. */
    sim::Time window = 1 * sim::kSec;
};

/**
 * The server workload.
 */
class LatencyServer
{
  public:
    LatencyServer(sim::Simulator &sim, blk::BlockLayer &layer,
                  mm::MemoryManager &mm, cgroup::CgroupId cg,
                  LatencyServerConfig cfg);

    /**
     * Allocate the working set (chunked, through reclaim if needed)
     * then invoke @p ready.
     */
    void prepare(std::function<void()> ready);

    /** Begin serving. */
    void start();

    /** Stop serving. */
    void stop();

    /** Change the offered load (Fig. 15's ramp controller). */
    void setOfferedRps(double rps) { cfg_.offeredRps = rps; }
    double offeredRps() const { return cfg_.offeredRps; }

    /** Completed requests. */
    uint64_t completed() const { return completed_; }

    /** Shed (dropped) requests. */
    uint64_t shed() const { return shed_; }

    /** Delivered requests/sec, averaged since the last reset. */
    double deliveredRps() const;

    /** Per-window delivered RPS samples. */
    const stat::TimeSeries &rpsSeries() const { return rpsSeries_; }

    /** Request latency histogram since the last reset. */
    const stat::Histogram &latency() const { return latency_; }

    /** Request latency within the current window (for controllers
     *  like the Fig. 15 load ramp). */
    const stat::Histogram &windowLatency() const
    {
        return windowLat_;
    }

    void resetStats();

    /**
     * Install a per-window observer invoked with the window's
     * delivered RPS and p95 latency (before the window stats reset).
     * Fig. 15's load-ramp controller hangs off this hook.
     */
    void
    setWindowObserver(
        std::function<void(double rps, sim::Time p95)> fn)
    {
        onWindow_ = std::move(fn);
    }

    cgroup::CgroupId cg() const { return cg_; }

  private:
    void arrival();
    void touchStage(sim::Time started);
    void scheduleArrival();
    void finishRequest(sim::Time started);
    void windowTick();
    /** Block-aligned uniform offset within the data span. */
    uint64_t randomReadOffset();

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    mm::MemoryManager &mm_;
    cgroup::CgroupId cg_;
    LatencyServerConfig cfg_;
    sim::Rng rng_;

    bool running_ = false;
    unsigned inFlight_ = 0;
    uint64_t wsAllocated_ = 0;
    uint64_t completed_ = 0;
    uint64_t shed_ = 0;
    uint64_t windowCompleted_ = 0;
    sim::Time statsStart_ = 0;
    stat::Histogram latency_;
    stat::Histogram windowLat_;
    stat::TimeSeries rpsSeries_;
    std::function<void(double, sim::Time)> onWindow_;
    uint64_t logCursor_ = 0;
    sim::EventHandle nextArrival_;
    sim::EventHandle windowTimer_;
};

} // namespace iocost::workload

#endif // IOCOST_WORKLOAD_LATENCY_SERVER_HH
