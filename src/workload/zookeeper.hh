/**
 * @file
 * ZooKeeper-like stacked coordination-service workload (paper §4.6).
 *
 * A cluster of ensembles, each with several participants spread
 * across hosts so no two participants of one ensemble share a host.
 * Writes replicate: the operation completes when a quorum of
 * participants has appended the payload to its (sequential,
 * fsync-style) transaction log. Reads are served from memory by one
 * participant but queue behind in-flight appends on that participant
 * (the request pipeline), which is how IO starvation surfaces as
 * read-latency SLO violations. Every participant snapshots its
 * in-memory database after a fixed number of transactions,
 * producing the momentary write spikes the paper describes.
 */

#ifndef IOCOST_WORKLOAD_ZOOKEEPER_HH
#define IOCOST_WORKLOAD_ZOOKEEPER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "blk/block_layer.hh"
#include "sim/inline_function.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"
#include "stat/time_series.hh"

namespace iocost::workload {

/** Cluster configuration. */
struct ZkConfig
{
    unsigned ensembles = 12;
    unsigned participantsPerEnsemble = 5;

    /** Per-ensemble operation rates. */
    double readsPerSec = 300.0;
    double writesPerSec = 10.0;

    /** Payload for well-behaved ensembles. */
    uint32_t payloadBytes = 100 * 1024;
    /** Index of the noisy-neighbour ensemble (UINT_MAX = none). */
    unsigned noisyEnsemble = 11;
    /** Payload for the noisy ensemble. */
    uint32_t noisyPayloadBytes = 300 * 1024;

    /**
     * Snapshot trigger, in transactions per participant. Like
     * ZooKeeper's snapCount, the actual trigger is jittered per
     * participant (+/- 25%) so replicas do not snapshot in
     * lock-step.
     */
    uint64_t snapshotEveryTxns = 5000;
    /** Snapshot size (in-memory database image). */
    uint64_t snapshotBytes = 256ull << 20;
    /** Size of each snapshot write bio. */
    uint32_t snapshotIoBytes = 256 * 1024;
    /** Snapshot writes kept in flight. */
    unsigned snapshotDepth = 2;

    /** In-memory read service time at the participant. */
    sim::Time readServiceTime = 200 * sim::kUsec;

    /** Operation SLO (reads and writes). */
    sim::Time sloTarget = 1 * sim::kSec;
    /** p99 evaluation window for violation tracking. */
    sim::Time window = 5 * sim::kSec;
};

/** One SLO-violation episode. */
struct SloViolation
{
    sim::Time start;
    sim::Time duration;
    sim::Time worstP99;
};

/** Per-ensemble results. */
struct ZkEnsembleStats
{
    std::string name;
    stat::Histogram readLatency;
    stat::Histogram writeLatency;
    stat::TimeSeries p99Series{"p99"};
    std::vector<SloViolation> violations;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t snapshots = 0;
};

/**
 * The cluster.
 */
class ZkCluster
{
  public:
    /**
     * @param sim Shared simulation context.
     * @param hosts Block layers of the available hosts; participants
     *        are placed round-robin and get a fresh cgroup under
     *        each host's workload slice (@p workload_parents aligns
     *        with @p hosts).
     * @param workload_parents Parent cgroup per host for participant
     *        cgroups.
     * @param cfg Cluster configuration.
     */
    ZkCluster(sim::Simulator &sim,
              std::vector<blk::BlockLayer *> hosts,
              std::vector<cgroup::CgroupId> workload_parents,
              ZkConfig cfg);

    ~ZkCluster();

    /** Begin traffic. */
    void start();

    /** Stop traffic. */
    void stop();

    /** Results for ensemble @p idx (finalizes open violations). */
    const ZkEnsembleStats &ensembleStats(unsigned idx);

    /** Aggregate over all well-behaved ensembles. */
    ZkEnsembleStats wellBehavedAggregate();

    const ZkConfig &config() const { return cfg_; }

  private:
    struct Participant;
    struct Ensemble;

    /** Per-operation completion hook; move-only, inline (a quorum
     *  counter and a couple of pointers — no heap closure). */
    using TaskDoneFn = sim::InlineFunction<void(), 48>;

    void scheduleRead(Ensemble &e);
    void scheduleWrite(Ensemble &e);
    void enqueueTask(Participant &p, bool is_read, uint32_t payload,
                     TaskDoneFn done);
    void pumpParticipant(Participant &p);
    void maybeSnapshot(Participant &p);
    void windowTick();
    void recordOpLatency(Ensemble &e, bool is_read,
                         sim::Time latency);

    sim::Simulator &sim_;
    std::vector<blk::BlockLayer *> hosts_;
    ZkConfig cfg_;
    sim::Rng rng_;
    bool running_ = false;

    std::vector<std::unique_ptr<Ensemble>> ensembles_;
    sim::EventHandle windowTimer_;
    sim::Time windowStart_ = 0;
};

} // namespace iocost::workload

#endif // IOCOST_WORKLOAD_ZOOKEEPER_HH
