/**
 * @file
 * Parametric SSD model.
 *
 * The model reproduces the controller-visible behaviour of an SSD:
 *
 *  - `channels` parallel service units (flash channels / dies): each
 *    request occupies one unit for a service time derived from its
 *    direction, sequentiality, and size — the same feature set the
 *    IOCost linear cost model uses (paper §3.2), plus log-normal
 *    jitter;
 *  - a bounded host-visible queue (`queueDepth` slots), whose
 *    depletion is IOCost's saturation signal (§3.3);
 *  - a write buffer with burst-then-degrade dynamics: writes consume
 *    buffer credit refilled at the sustained write rate; once
 *    depleted, garbage collection inflates write (and, collaterally,
 *    read) service times. This reproduces the "over-exert in short
 *    bursts then slow down drastically" SSD idiosyncrasy the paper
 *    motivates IOCost's dynamic vrate with (§1, §3.3).
 */

#ifndef IOCOST_DEVICE_SSD_MODEL_HH
#define IOCOST_DEVICE_SSD_MODEL_HH

#include <cstdint>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "blk/block_device.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace iocost::device {

/**
 * Static description of one SSD model. All service times are per
 * channel; peak random-read IOPS ~= channels / readBaseRand.
 */
struct SsdSpec
{
    std::string name = "ssd";

    /** Host-visible queue slots (in-flight request limit). */
    uint32_t queueDepth = 256;

    /** Parallel internal service units. */
    uint32_t channels = 16;

    /** Base service time for a sequential read. */
    sim::Time readBaseSeq = 90 * sim::kUsec;
    /** Base service time for a random read. */
    sim::Time readBaseRand = 100 * sim::kUsec;
    /** Base service time for a sequential (buffered) write. */
    sim::Time writeBaseSeq = 25 * sim::kUsec;
    /** Base service time for a random (buffered) write. */
    sim::Time writeBaseRand = 30 * sim::kUsec;

    /** Transfer cost per byte (read). */
    double readNsPerByte = 2.0;
    /** Transfer cost per byte (write). */
    double writeNsPerByte = 1.5;

    /** Log-normal service-time jitter (sigma in log space). */
    double jitterSigma = 0.08;

    /** Burst write-buffer capacity in bytes. */
    uint64_t writeBufferBytes = 256ull << 20;
    /** Sustained (post-buffer) write drain rate, bytes/sec. */
    double sustainedWriteBps = 400e6;
    /** Write service-time multiplier while GC is active. */
    double gcWriteMult = 4.0;
    /** Read service-time multiplier while GC is active. */
    double gcReadMult = 2.5;

    /**
     * Firmware hiccup injection (off when interval is 0): at
     * exponentially distributed intervals the whole device freezes
     * for hiccupDuration — the "over-exert in short bursts then slow
     * down drastically" / unpredictable-behaviour idiosyncrasy the
     * paper repeatedly observes in production SSDs (§1, §5).
     */
    sim::Time hiccupMeanInterval = 0;
    sim::Time hiccupDuration = 0;
};

/**
 * Discrete-event SSD.
 */
class SsdModel : public blk::BlockDevice
{
  public:
    /**
     * @param sim Simulation context.
     * @param spec Static device description.
     */
    SsdModel(sim::Simulator &sim, SsdSpec spec);

    bool submit(blk::BioPtr &bio) override;
    uint32_t queueDepth() const override { return spec_.queueDepth; }
    uint32_t inFlight() const override { return inFlight_; }
    std::string modelName() const override { return spec_.name; }

    /** The static spec (benches read peak rates from it). */
    const SsdSpec &spec() const { return spec_; }

    /** @return true while the write buffer is depleted (GC active). */
    bool
    gcActive() const
    {
        const_cast<SsdModel *>(this)->refillWriteCredit();
        return writeCredit_ < gcExitCredit();
    }

    /** Remaining write-buffer credit in bytes. */
    double
    writeCredit() const
    {
        const_cast<SsdModel *>(this)->refillWriteCredit();
        return writeCredit_;
    }

    /** Injected firmware hiccups so far. */
    uint64_t hiccups() const { return hiccups_; }

    /**
     * Replace the spec (what-if device-profile queries). The spec is
     * mutable state — it is serialized by saveState so a restore
     * rolls a profile change back. Queue depth must not shrink below
     * the in-flight count; callers swap profiles at a checkpoint,
     * where the block layer has quiesced nothing — so the new depth
     * simply takes effect for future admissions.
     */
    void setSpec(SsdSpec spec) { spec_ = std::move(spec); }

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    sim::Time serviceTime(const blk::Bio &bio);
    void refillWriteCredit();
    double gcExitCredit() const
    {
        // Hysteresis: GC is considered active until the buffer
        // recovers to 10% to avoid oscillating at the boundary.
        return 0.10 * static_cast<double>(spec_.writeBufferBytes);
    }

    sim::Simulator &sim_;
    SsdSpec spec_;
    sim::Rng rng_;

    /**
     * Min-heap over the channels' next-free times. Only the value of
     * the minimum matters for scheduling (replacing any minimal
     * element with the new completion time evolves the multiset the
     * same way a first-minimum scan would), so the heap keeps bare
     * times and selection costs O(log channels), not O(channels).
     */
    std::vector<sim::Time> channelHeap_;
    uint32_t inFlight_ = 0;
    uint64_t lastEndOffset_ = UINT64_MAX;

    double writeCredit_ = 0.0;
    sim::Time lastRefill_ = 0;
    /** GC admission pacing cursor (see submit()). */
    sim::Time gcNext_ = 0;
    /** Next injected firmware hiccup (kTimeNever when disabled). */
    sim::Time nextHiccup_ = sim::kTimeNever;
    uint64_t hiccups_ = 0;
    /** Last GC state published, for edge-triggered telemetry. */
    bool lastGcTelemetry_ = false;
};

} // namespace iocost::device

#endif // IOCOST_DEVICE_SSD_MODEL_HH
