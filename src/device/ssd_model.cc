#include "device/ssd_model.hh"

#include <algorithm>
#include <functional>

#include "blk/service_log.hh"
#include "sim/fault.hh"
#include "stat/telemetry.hh"

namespace iocost::device {

SsdModel::SsdModel(sim::Simulator &sim, SsdSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      rng_(sim.forkRng()),
      writeCredit_(static_cast<double>(spec_.writeBufferBytes))
{
    channelHeap_.assign(spec_.channels, 0);
    if (spec_.hiccupMeanInterval > 0) {
        nextHiccup_ = static_cast<sim::Time>(rng_.exponential(
            static_cast<double>(spec_.hiccupMeanInterval)));
    }
}

void
SsdModel::refillWriteCredit()
{
    const sim::Time now = sim_.now();
    if (now <= lastRefill_)
        return;
    writeCredit_ += sim::toSeconds(now - lastRefill_) *
                    spec_.sustainedWriteBps;
    writeCredit_ = std::min(
        writeCredit_, static_cast<double>(spec_.writeBufferBytes));
    lastRefill_ = now;
    // Injected early write-cliff: the burst buffer reads as empty
    // for the window, forcing the GC regime (and its write pacing)
    // regardless of the actual write history.
    if (faults() && faults()->writeCliffActive(now))
        writeCredit_ = 0.0;
}

sim::Time
SsdModel::serviceTime(const blk::Bio &bio)
{
    refillWriteCredit();

    const bool sequential = bio.offset == lastEndOffset_;
    const bool gc = gcActive();

    double base;
    double per_byte;
    if (bio.op == blk::Op::Read) {
        base = static_cast<double>(sequential ? spec_.readBaseSeq
                                              : spec_.readBaseRand);
        per_byte = spec_.readNsPerByte;
        if (gc)
            base *= spec_.gcReadMult;
    } else {
        base = static_cast<double>(sequential ? spec_.writeBaseSeq
                                              : spec_.writeBaseRand);
        per_byte = spec_.writeNsPerByte;
        if (gc) {
            base *= spec_.gcWriteMult;
            per_byte *= spec_.gcWriteMult;
        }
        // Writes drain buffer credit. The floor at zero reflects
        // that GC pacing (below) keeps admission at the drain rate
        // once the buffer is empty.
        writeCredit_ = std::max(
            0.0, writeCredit_ - static_cast<double>(bio.size));
    }

    double svc = base + per_byte * static_cast<double>(bio.size);
    if (spec_.jitterSigma > 0.0)
        svc = rng_.logNormal(svc, spec_.jitterSigma);
    return std::max<sim::Time>(1, static_cast<sim::Time>(svc));
}

bool
SsdModel::submit(blk::BioPtr &bio)
{
    if (inFlight_ >= spec_.queueDepth)
        return false;

    const sim::Time now = sim_.now();

    // Injected firmware hiccup: freeze every service unit for the
    // hiccup duration (requests already accepted finish late, new
    // ones queue behind the stall).
    while (now >= nextHiccup_) {
        const sim::Time stall_end =
            nextHiccup_ + spec_.hiccupDuration;
        for (sim::Time &free_at : channelHeap_)
            free_at = std::max(free_at, stall_end);
        // Clamping to a common floor keeps the min-heap ordering
        // (a monotone map preserves it), so no rebuild is needed.
        gcNext_ = std::max(gcNext_, stall_end);
        ++hiccups_;
        if (telemetry() && telemetry()->enabled()) {
            telemetry()->emit(now, "ssd", stat::kNoCgroup,
                              "hiccup_us",
                              sim::toMicros(spec_.hiccupDuration));
        }
        nextHiccup_ =
            stall_end + static_cast<sim::Time>(rng_.exponential(
                            static_cast<double>(
                                spec_.hiccupMeanInterval)));
    }

    // Injected brownout: same mechanics as a firmware hiccup, but
    // scheduled by the fault plan (and reported once per window).
    if (faults()) {
        const sim::Time stall_end = faults()->stallUntil(now);
        if (stall_end > now) {
            for (sim::Time &free_at : channelHeap_)
                free_at = std::max(free_at, stall_end);
            gcNext_ = std::max(gcNext_, stall_end);
            if (telemetry() && telemetry()->enabled() &&
                faults()->shouldReportStall(stall_end)) {
                telemetry()->emit(now, "ssd", stat::kNoCgroup,
                                  "stall_us",
                                  sim::toMicros(stall_end - now));
            }
        }
    }

    const bool was_gc = gcActive();
    // GC regime transitions are the device's headline state change
    // (burst buffer drained / recovered); emit edges, not levels.
    if (telemetry() && telemetry()->enabled() &&
        was_gc != lastGcTelemetry_) {
        lastGcTelemetry_ = was_gc;
        telemetry()->emit(now, "ssd", stat::kNoCgroup, "gc_active",
                          was_gc ? 1.0 : 0.0);
    }
    sim::Time svc = serviceTime(*bio);
    if (faults()) {
        const double mult = faults()->latencyMult(now);
        if (mult != 1.0) {
            svc = std::max<sim::Time>(
                1, static_cast<sim::Time>(
                       static_cast<double>(svc) * mult));
        }
        // An errored request pays its full service time (the device
        // discovers the failure only when the operation finishes),
        // then completes with an error status for the block layer's
        // retry path to handle.
        if (faults()->drawError(now))
            bio->status = blk::BioStatus::Error;
    }
    lastEndOffset_ = bio->offset + bio->size;

    // Pick the earliest-free channel (heap top); the request
    // occupies it for the service time starting no earlier than now.
    std::pop_heap(channelHeap_.begin(), channelHeap_.end(),
                  std::greater<>{});
    sim::Time start = std::max(now, channelHeap_.back());

    if (bio->op == blk::Op::Write && was_gc) {
        // With the buffer depleted, writes admit no faster than the
        // garbage collector frees blocks: they serialize on the
        // sustained drain rate regardless of channel parallelism.
        const auto pace = static_cast<sim::Time>(
            static_cast<double>(bio->size) /
            spec_.sustainedWriteBps * 1e9);
        gcNext_ = std::max(gcNext_, start);
        start = gcNext_;
        gcNext_ += pace;
    }

    const sim::Time done = start + svc;
    channelHeap_.back() = done;
    std::push_heap(channelHeap_.begin(), channelHeap_.end(),
                   std::greater<>{});

    if (serviceLog() != nullptr) {
        serviceLog()->append(bio->id, bio->retries, now, done - now,
                             bio->status);
    }

    ++inFlight_;
    // Ownership moves into the completion event's inline storage
    // (this + BioPtr + Time fits the slot); no trampoline, no
    // allocation.
    sim_.at(done, [this, owned = blk::BioCapture(std::move(bio)),
                   now]() mutable {
        --inFlight_;
        finish(owned.take(), sim_.now() - now);
    });
    return true;
}

void
SsdModel::saveState(sim::StateWriter &w) const
{
    // The spec is mutable (what-if profile swaps), so it is state.
    w.putString(spec_.name);
    w.put(spec_.queueDepth);
    w.put(spec_.channels);
    w.put(spec_.readBaseSeq);
    w.put(spec_.readBaseRand);
    w.put(spec_.writeBaseSeq);
    w.put(spec_.writeBaseRand);
    w.put(spec_.readNsPerByte);
    w.put(spec_.writeNsPerByte);
    w.put(spec_.jitterSigma);
    w.put(spec_.writeBufferBytes);
    w.put(spec_.sustainedWriteBps);
    w.put(spec_.gcWriteMult);
    w.put(spec_.gcReadMult);
    w.put(spec_.hiccupMeanInterval);
    w.put(spec_.hiccupDuration);

    uint64_t s[4];
    rng_.getState(s);
    for (uint64_t word : s)
        w.put(word);

    w.putPods(channelHeap_);
    w.put(inFlight_);
    w.put(lastEndOffset_);
    w.put(writeCredit_);
    w.put(lastRefill_);
    w.put(gcNext_);
    w.put(nextHiccup_);
    w.put(hiccups_);
    w.put(lastGcTelemetry_);
}

void
SsdModel::loadState(sim::StateReader &r)
{
    spec_.name = r.getString();
    r.get(spec_.queueDepth);
    r.get(spec_.channels);
    r.get(spec_.readBaseSeq);
    r.get(spec_.readBaseRand);
    r.get(spec_.writeBaseSeq);
    r.get(spec_.writeBaseRand);
    r.get(spec_.readNsPerByte);
    r.get(spec_.writeNsPerByte);
    r.get(spec_.jitterSigma);
    r.get(spec_.writeBufferBytes);
    r.get(spec_.sustainedWriteBps);
    r.get(spec_.gcWriteMult);
    r.get(spec_.gcReadMult);
    r.get(spec_.hiccupMeanInterval);
    r.get(spec_.hiccupDuration);

    uint64_t s[4];
    for (uint64_t &word : s)
        r.get(word);
    rng_.setState(s);

    r.getPods(channelHeap_);
    r.get(inFlight_);
    r.get(lastEndOffset_);
    r.get(writeCredit_);
    r.get(lastRefill_);
    r.get(gcNext_);
    r.get(nextHiccup_);
    r.get(hiccups_);
    r.get(lastGcTelemetry_);
}

} // namespace iocost::device
