/**
 * @file
 * Remote (cloud) block-volume model.
 *
 * Models EBS/Persistent-Disk style volumes: a provisioned IOPS cap
 * and throughput cap enforced server-side, a network round trip with
 * jitter on every request, and substantial internal parallelism (the
 * backend is a distributed service, not a single device). Reproduces
 * the latency floors and provisioned ceilings that Fig. 17 of the
 * paper exercises.
 */

#ifndef IOCOST_DEVICE_REMOTE_MODEL_HH
#define IOCOST_DEVICE_REMOTE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace iocost::device {

/** Static description of a remote volume. */
struct RemoteSpec
{
    std::string name = "remote";

    /** Host-visible queue slots. */
    uint32_t queueDepth = 256;

    /** Provisioned IOPS ceiling. */
    double iopsCap = 3000;

    /** Provisioned throughput ceiling, bytes/sec. */
    double bpsCap = 125e6;

    /** Median network + service round trip. */
    sim::Time baseRtt = 900 * sim::kUsec;

    /** Log-normal RTT jitter sigma. */
    double rttSigma = 0.25;

    /** Extra per-byte service time at the backend. */
    double nsPerByte = 0.5;
};

/**
 * Discrete-event remote volume.
 */
class RemoteModel : public blk::BlockDevice
{
  public:
    RemoteModel(sim::Simulator &sim, RemoteSpec spec);

    bool submit(blk::BioPtr &bio) override;
    uint32_t queueDepth() const override { return spec_.queueDepth; }
    uint32_t inFlight() const override { return inFlight_; }
    std::string modelName() const override { return spec_.name; }

    const RemoteSpec &spec() const { return spec_; }

    /** Replace the spec (what-if device-profile queries); the spec
     *  is serialized state, so restore rolls a swap back. */
    void setSpec(RemoteSpec spec) { spec_ = std::move(spec); }

    void
    saveState(sim::StateWriter &w) const override
    {
        w.putString(spec_.name);
        w.put(spec_.queueDepth);
        w.put(spec_.iopsCap);
        w.put(spec_.bpsCap);
        w.put(spec_.baseRtt);
        w.put(spec_.rttSigma);
        w.put(spec_.nsPerByte);
        uint64_t s[4];
        rng_.getState(s);
        for (uint64_t word : s)
            w.put(word);
        w.put(limiterNext_);
        w.put(inFlight_);
    }

    void
    loadState(sim::StateReader &r) override
    {
        spec_.name = r.getString();
        r.get(spec_.queueDepth);
        r.get(spec_.iopsCap);
        r.get(spec_.bpsCap);
        r.get(spec_.baseRtt);
        r.get(spec_.rttSigma);
        r.get(spec_.nsPerByte);
        uint64_t s[4];
        for (uint64_t &word : s)
            r.get(word);
        rng_.setState(s);
        r.get(limiterNext_);
        r.get(inFlight_);
    }

  private:
    sim::Simulator &sim_;
    RemoteSpec spec_;
    sim::Rng rng_;

    /**
     * Virtual finish time of the provisioning rate limiter: each
     * request pushes it forward by 1/iopsCap + size/bpsCap; requests
     * arriving while it is in the future queue behind it.
     */
    sim::Time limiterNext_ = 0;
    uint32_t inFlight_ = 0;
};

} // namespace iocost::device

#endif // IOCOST_DEVICE_REMOTE_MODEL_HH
