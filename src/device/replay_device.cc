#include "device/replay_device.hh"

#include <algorithm>

namespace iocost::device {

namespace {

/** Round up to a power of two (minimum 8). */
size_t
pow2AtLeast(size_t n)
{
    size_t cap = 8;
    while (cap < n)
        cap *= 2;
    return cap;
}

} // namespace

ReplayDevice::ReplayDevice(sim::Simulator &sim,
                           const blk::ServiceLog &log,
                           uint32_t queue_depth,
                           std::string model_name)
    : sim_(sim), log_(log), depth_(queue_depth),
      name_(std::move(model_name))
{
    // At most depth_ bios can be parked at once; doubling keeps the
    // open-addressed table under 50% load so probe chains stay
    // short, and means it is never resized.
    pending_.resize(pow2AtLeast(static_cast<size_t>(depth_) * 2));
}

size_t
ReplayDevice::cellIndex(uint64_t id) const
{
    // Fibonacci hashing; ids are dense and increasing, so even the
    // raw id would probe well, but mixing is cheap insurance against
    // stride patterns from interleaved cgroups.
    return static_cast<size_t>(id * 0x9E3779B97F4A7C15ull) &
           (pending_.size() - 1);
}

void
ReplayDevice::park(blk::BioPtr bio)
{
    const uint64_t id = bio->id;
    size_t i = cellIndex(id);
    while (pending_[i].id != 0)
        i = (i + 1) & (pending_.size() - 1);
    pending_[i].id = id;
    pending_[i].bio = std::move(bio);
    ++pendingCount_;
}

blk::BioPtr
ReplayDevice::takePending(uint64_t id)
{
    if (pendingCount_ == 0)
        return nullptr;
    const size_t mask = pending_.size() - 1;
    size_t i = cellIndex(id);
    while (pending_[i].id != id) {
        if (pending_[i].id == 0)
            return nullptr;
        i = (i + 1) & mask;
    }
    blk::BioPtr out = std::move(pending_[i].bio);

    // Backward-shift deletion keeps probe chains tombstone-free: an
    // element may slide into the hole iff the hole lies on its probe
    // path (its home index is no closer to it than the hole is).
    size_t hole = i;
    size_t j = (hole + 1) & mask;
    while (pending_[j].id != 0) {
        const size_t home = cellIndex(pending_[j].id);
        if (((j - home) & mask) >= ((j - hole) & mask)) {
            pending_[hole] = std::move(pending_[j]);
            pending_[j].id = 0;
            hole = j;
        }
        j = (j + 1) & mask;
    }
    pending_[hole].id = 0;
    pending_[hole].bio = nullptr;
    --pendingCount_;
    return out;
}

bool
ReplayDevice::submit(blk::BioPtr &bio)
{
    if (inFlight_ >= depth_)
        return false;
    ++inFlight_;
    if (!tryResolve(bio))
        park(std::move(bio));
    return true;
}

bool
ReplayDevice::tryResolve(blk::BioPtr &bio)
{
    if (const blk::ServiceLog::Entry *e =
            log_.find(bio->id, bio->retries)) {
        completeIn(std::move(bio), e->duration, e->status);
        return true;
    }
    if (log_.closed(bio->id)) {
        // The generator will never record this attempt. Clamp to
        // the last recorded one; an id with no entries at all never
        // reached the generator's device (expired while parked) and
        // fails after a tick.
        if (const blk::ServiceLog::Entry *e =
                log_.findClamped(bio->id, bio->retries)) {
            completeIn(std::move(bio), e->duration, e->status);
        } else {
            completeIn(std::move(bio), 1, blk::BioStatus::Error);
        }
        return true;
    }
    return false;
}

void
ReplayDevice::completeIn(blk::BioPtr bio, sim::Time duration,
                         blk::BioStatus status)
{
    bio->status = status;
    duration = std::max<sim::Time>(1, duration);
    // Same shape as the real models: the bio moves into the
    // completion event's inline storage, no allocation.
    const sim::Time now = sim_.now();
    sim_.at(now + duration,
            [this, owned = blk::BioCapture(std::move(bio)),
             now]() mutable {
                --inFlight_;
                finish(owned.take(), sim_.now() - now);
            });
}

void
ReplayDevice::onLogEvent(uint64_t id)
{
    blk::BioPtr bio = takePending(id);
    if (!bio)
        return;
    if (!tryResolve(bio))
        park(std::move(bio)); // attempt still ahead of the log
}

void
ReplayDevice::resolveDetached(uint64_t id,
                              std::vector<Resolved> &out)
{
    blk::BioPtr bio = takePending(id);
    if (!bio)
        return;
    const blk::ServiceLog::Entry *e = log_.find(bio->id, bio->retries);
    if (e == nullptr) {
        if (!log_.closed(bio->id)) {
            park(std::move(bio)); // attempt still ahead of the log
            return;
        }
        e = log_.findClamped(bio->id, bio->retries);
        if (e == nullptr) {
            // Closed with no entries: never reached the generator's
            // device; fails after a tick (same as tryResolve).
            bio->status = blk::BioStatus::Error;
            out.push_back(Resolved{this, std::move(bio), 1});
            return;
        }
    }
    bio->status = e->status;
    out.push_back(Resolved{this, std::move(bio),
                           std::max<sim::Time>(1, e->duration)});
}

void
ReplayDevice::finishReplayed(blk::BioPtr bio, sim::Time duration)
{
    --inFlight_;
    finish(std::move(bio), duration);
}

} // namespace iocost::device
