/**
 * @file
 * ReplayDevice — the per-lane device stand-in for sweep execution.
 *
 * A sweep lane must observe the generator's device behavior — the
 * same service durations and the same fault outcomes for the same
 * (bio id, attempt) — while its own controller decides *when* each
 * bio reaches the device. The ReplayDevice provides exactly that: it
 * accepts bios up to the generator device's queue depth and
 * completes each one `duration` after the lane dispatched it, where
 * duration and status come from the shared ServiceLog. It draws no
 * randomness of its own, so every lane sees one device/fault stream.
 *
 * Lookups routinely miss: a lane whose controller releases a bio
 * with little delay dispatches it *before* the generator's device
 * accepts the original and records the outcome — nearly every bio
 * parks here for a moment. Parked bios are resolved by the
 * ServiceLog's append/close notifications, keyed by id: the pending
 * table is an open-addressed id → bio map so each notification
 * costs O(1) per lane, not a scan of the queue depth. In that
 * lockstep case every lane's bio completes at the *same* instant
 * (notification time + duration), so the SweepRunner batches all K
 * completions into one simulator event via resolveDetached() /
 * finishReplayed() instead of paying K event round trips per bio.
 * Once an id is closed, a lane that wants an attempt the generator
 * never made (divergent retry/timeout schedules) is clamped to the
 * last recorded attempt; a closed id with no entries at all (the
 * generator expired the bio before its device ever took it)
 * completes with an error after one tick.
 */

#ifndef IOCOST_DEVICE_REPLAY_DEVICE_HH
#define IOCOST_DEVICE_REPLAY_DEVICE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "blk/service_log.hh"
#include "sim/simulator.hh"

namespace iocost::device {

/**
 * Device that replays outcomes recorded in a ServiceLog.
 */
class ReplayDevice : public blk::BlockDevice
{
  public:
    /**
     * @param sim Simulation context (shared with the generator).
     * @param log The shared outcome log. The owner must register
     *        this device via log-listener wiring (the SweepRunner
     *        installs one listener that calls onLogEvent on every
     *        lane) — the device cannot do it itself because the log
     *        outlives no lane in particular.
     * @param queue_depth Queue depth to mirror (the generator
     *        device's, so depletion signals stay comparable).
     * @param model_name Name reported by modelName().
     */
    ReplayDevice(sim::Simulator &sim, const blk::ServiceLog &log,
                 uint32_t queue_depth, std::string model_name);

    bool submit(blk::BioPtr &bio) override;
    uint32_t queueDepth() const override { return depth_; }
    uint32_t inFlight() const override { return inFlight_; }
    std::string modelName() const override { return name_; }

    /**
     * The ServiceLog recorded or closed @p id: try to resolve the
     * pending bio with that id, if this lane parked one.
     */
    void onLogEvent(uint64_t id);

    /**
     * A resolved parked bio awaiting its batched completion. The
     * bio's status is already set; it completes `duration` after
     * the resolving log notification.
     */
    struct Resolved
    {
        ReplayDevice *dev;
        blk::BioPtr bio;
        sim::Time duration;
    };

    /**
     * Batched variant of onLogEvent: resolve this lane's parked bio
     * with @p id, if any, and push the outcome onto @p out instead
     * of scheduling a completion event. The caller (SweepRunner)
     * groups equal-duration outcomes from all lanes into a single
     * simulator event and delivers each via finishReplayed().
     */
    void resolveDetached(uint64_t id, std::vector<Resolved> &out);

    /** Deliver a resolveDetached() outcome (batch event body). */
    void finishReplayed(blk::BioPtr bio, sim::Time duration);

    /** Bios parked on a not-yet-recorded outcome. */
    size_t pendingCount() const { return pendingCount_; }

    /**
     * @name Fused-lane hooks (host::FusedObserver).
     *
     * A fused lane occupies device slots without materializing
     * bios: the observer acquires a slot at issue time, tracks the
     * in-flight record itself, and releases the slot when the fused
     * completion fires. When the lane forks back to the full path,
     * its fused in-flight records are materialized and parked here
     * (adoptParked) — their slots are already counted, so this is
     * park() without the submit() gate.
     * @{
     */

    /** submit()'s admission gate + slot acquisition, bio-less. */
    bool
    fusedAcquire()
    {
        if (inFlight_ >= depth_)
            return false;
        ++inFlight_;
        return true;
    }

    /** Release a slot acquired by fusedAcquire(). */
    void fusedRelease() { --inFlight_; }

    /** Park a materialized fused record; its slot is held. */
    void adoptParked(blk::BioPtr bio) { park(std::move(bio)); }
    /** @} */

  private:
    /**
     * One parked bio, keyed by id. id == 0 marks an empty cell (bio
     * ids are 1-based). Linear probing with backward-shift erase;
     * capacity is pre-sized to twice the queue depth (the table can
     * never hold more than `depth_` bios), so the park/resolve cycle
     * never touches the allocator.
     */
    struct Cell
    {
        uint64_t id = 0;
        blk::BioPtr bio;
    };

    size_t cellIndex(uint64_t id) const;
    void park(blk::BioPtr bio);
    blk::BioPtr takePending(uint64_t id);

    /** Schedule the completion of an accepted bio. */
    void completeIn(blk::BioPtr bio, sim::Time duration,
                    blk::BioStatus status);
    /** Resolve one bio against the log; false = keep pending. */
    bool tryResolve(blk::BioPtr &bio);

    sim::Simulator &sim_;
    const blk::ServiceLog &log_;
    uint32_t depth_;
    std::string name_;
    uint32_t inFlight_ = 0;
    std::vector<Cell> pending_;
    size_t pendingCount_ = 0;
};

} // namespace iocost::device

#endif // IOCOST_DEVICE_REPLAY_DEVICE_HH
