#include "device/device_profiles.hh"

#include "sim/logging.hh"

namespace iocost::device {

SsdSpec
oldGenSsd()
{
    SsdSpec s;
    s.name = "oldgen-commercial-ssd";
    s.queueDepth = 128;
    s.channels = 8;
    s.readBaseSeq = 85 * sim::kUsec;
    s.readBaseRand = 95 * sim::kUsec;
    s.writeBaseSeq = 35 * sim::kUsec;
    s.writeBaseRand = 45 * sim::kUsec;
    s.readNsPerByte = 2.4;
    s.writeNsPerByte = 2.0;
    s.jitterSigma = 0.10;
    s.writeBufferBytes = 96ull << 20;
    s.sustainedWriteBps = 220e6;
    s.gcWriteMult = 5.0;
    s.gcReadMult = 3.0;
    return s;
}

SsdSpec
newGenSsd()
{
    SsdSpec s;
    s.name = "newgen-commercial-ssd";
    s.queueDepth = 256;
    s.channels = 24;
    s.readBaseSeq = 80 * sim::kUsec;
    s.readBaseRand = 90 * sim::kUsec;
    s.writeBaseSeq = 25 * sim::kUsec;
    s.writeBaseRand = 32 * sim::kUsec;
    s.readNsPerByte = 2.05;
    s.writeNsPerByte = 1.6;
    s.jitterSigma = 0.08;
    s.writeBufferBytes = 256ull << 20;
    s.sustainedWriteBps = 550e6;
    s.gcWriteMult = 4.0;
    s.gcReadMult = 2.5;
    return s;
}

SsdSpec
enterpriseSsd()
{
    SsdSpec s;
    s.name = "enterprise-ssd";
    s.queueDepth = 1024;
    s.channels = 72;
    s.readBaseSeq = 88 * sim::kUsec;
    s.readBaseRand = 95 * sim::kUsec;
    s.writeBaseSeq = 20 * sim::kUsec;
    s.writeBaseRand = 24 * sim::kUsec;
    s.readNsPerByte = 1.2;
    s.writeNsPerByte = 0.9;
    s.jitterSigma = 0.05;
    s.writeBufferBytes = 1ull << 30;
    s.sustainedWriteBps = 1800e6;
    s.gcWriteMult = 3.0;
    s.gcReadMult = 1.8;
    return s;
}

SsdSpec
fleetSsd(char letter)
{
    // Channels / base latencies chosen so the profiled IOPS-vs-
    // latency scatter matches the paper's qualitative description:
    // H achieves high IOPS at low latency, G offers low IOPS at a
    // relatively low latency, and A moderate IOPS with higher
    // latency; the rest fill the space between.
    struct Row
    {
        uint32_t channels;
        sim::Time read_rand;     // us
        sim::Time write_rand;    // us
        double sustained_mbps;
    };
    static const Row rows[8] = {
        /* A */ {12, 160, 60, 300},
        /* B */ {10, 120, 45, 350},
        /* C */ {16, 140, 55, 420},
        /* D */ {20, 110, 40, 500},
        /* E */ {14, 100, 35, 450},
        /* F */ {24, 105, 38, 600},
        /* G */ {6, 90, 40, 200},
        /* H */ {48, 85, 25, 1200},
    };
    sim::panicIf(letter < 'A' || letter > 'H',
                 "fleetSsd: letter out of range");
    const Row &r = rows[letter - 'A'];

    SsdSpec s;
    s.name = std::string("fleet-ssd-") + letter;
    s.queueDepth = 256;
    s.channels = r.channels;
    s.readBaseRand = r.read_rand * sim::kUsec;
    s.readBaseSeq = r.read_rand * sim::kUsec * 9 / 10;
    s.writeBaseRand = r.write_rand * sim::kUsec;
    s.writeBaseSeq = r.write_rand * sim::kUsec * 8 / 10;
    s.readNsPerByte = 2.0;
    s.writeNsPerByte = 1.6;
    s.jitterSigma = 0.08;
    s.writeBufferBytes = 128ull << 20;
    s.sustainedWriteBps = r.sustained_mbps * 1e6;
    return s;
}

std::vector<SsdSpec>
fleetSsds()
{
    std::vector<SsdSpec> out;
    for (char c = 'A'; c <= 'H'; ++c)
        out.push_back(fleetSsd(c));
    return out;
}

HddSpec
nearlineHdd()
{
    HddSpec h;
    h.name = "nearline-hdd-7200rpm";
    return h;
}

RemoteSpec
awsGp3()
{
    RemoteSpec r;
    r.name = "aws-ebs-gp3-3000iops";
    r.iopsCap = 3000;
    r.bpsCap = 125e6;
    r.baseRtt = 1000 * sim::kUsec;
    r.rttSigma = 0.30;
    return r;
}

RemoteSpec
awsIo2()
{
    RemoteSpec r;
    r.name = "aws-ebs-io2-64000iops";
    r.iopsCap = 64000;
    r.bpsCap = 1000e6;
    r.baseRtt = 500 * sim::kUsec;
    r.rttSigma = 0.20;
    return r;
}

RemoteSpec
gcpBalanced()
{
    RemoteSpec r;
    r.name = "gcp-pd-balanced";
    r.iopsCap = 6000;
    r.bpsCap = 240e6;
    r.baseRtt = 1200 * sim::kUsec;
    r.rttSigma = 0.35;
    return r;
}

RemoteSpec
gcpSsd()
{
    RemoteSpec r;
    r.name = "gcp-pd-ssd";
    r.iopsCap = 30000;
    r.bpsCap = 480e6;
    r.baseRtt = 700 * sim::kUsec;
    r.rttSigma = 0.25;
    return r;
}

std::vector<RemoteSpec>
cloudVolumes()
{
    return {awsGp3(), awsIo2(), gcpBalanced(), gcpSsd()};
}

} // namespace iocost::device
