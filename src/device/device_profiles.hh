/**
 * @file
 * The device zoo: named specs for every device the paper's
 * evaluation uses.
 *
 * Absolute parameters are plausible stand-ins for the paper's
 * unnamed hardware (see DESIGN.md substitution table); what matters
 * is that the *relative* characteristics match the paper's
 * description: the three evaluation SSDs span old-gen commercial to
 * enterprise grade, the fleet devices A-H are heterogeneous in both
 * IOPS and latency (Fig. 3), and the cloud volumes have provisioned
 * ceilings and millisecond-class RTTs (Fig. 17).
 */

#ifndef IOCOST_DEVICE_DEVICE_PROFILES_HH
#define IOCOST_DEVICE_DEVICE_PROFILES_HH

#include <string>
#include <vector>

#include "device/hdd_model.hh"
#include "device/remote_model.hh"
#include "device/ssd_model.hh"

namespace iocost::device {

/** Older-generation commercial SSD (evaluation device 1). */
SsdSpec oldGenSsd();

/** Newer-generation commercial SSD (evaluation device 2). */
SsdSpec newGenSsd();

/** High-end enterprise SSD (evaluation device 3, ~750k read IOPS). */
SsdSpec enterpriseSsd();

/**
 * Fleet SSD profile for Fig. 3.
 *
 * @param letter 'A' through 'H'.
 */
SsdSpec fleetSsd(char letter);

/** All eight fleet profiles, A first. */
std::vector<SsdSpec> fleetSsds();

/** 7200-rpm nearline spinning disk (Fig. 12). */
HddSpec nearlineHdd();

/** AWS EBS gp3 provisioned at 3000 IOPS. */
RemoteSpec awsGp3();

/** AWS EBS io2 provisioned at 64000 IOPS. */
RemoteSpec awsIo2();

/** Google Cloud Persistent Disk, balanced. */
RemoteSpec gcpBalanced();

/** Google Cloud Persistent Disk, SSD. */
RemoteSpec gcpSsd();

/** All four cloud volume profiles in Fig. 17 order. */
std::vector<RemoteSpec> cloudVolumes();

} // namespace iocost::device

#endif // IOCOST_DEVICE_DEVICE_PROFILES_HH
