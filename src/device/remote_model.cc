#include "device/remote_model.hh"

#include <algorithm>

#include "blk/service_log.hh"
#include "sim/fault.hh"
#include "stat/telemetry.hh"

namespace iocost::device {

RemoteModel::RemoteModel(sim::Simulator &sim, RemoteSpec spec)
    : sim_(sim), spec_(std::move(spec)), rng_(sim.forkRng())
{}

bool
RemoteModel::submit(blk::BioPtr &bio)
{
    if (inFlight_ >= spec_.queueDepth)
        return false;

    const sim::Time now = sim_.now();

    // Provisioned-rate pacing: the backend admits one request per
    // 1/iopsCap plus the byte cost against the throughput cap.
    const double slot_ns =
        1e9 / spec_.iopsCap +
        static_cast<double>(bio->size) / spec_.bpsCap * 1e9;
    sim::Time admitted = std::max(now, limiterNext_);

    // Injected brownout: the backend (or the network path to it)
    // goes dark; nothing admits before the window ends.
    if (faults()) {
        const sim::Time stall_end = faults()->stallUntil(now);
        if (stall_end > admitted) {
            admitted = stall_end;
            if (telemetry() && telemetry()->enabled() &&
                faults()->shouldReportStall(stall_end)) {
                telemetry()->emit(now, "remote", stat::kNoCgroup,
                                  "stall_us",
                                  sim::toMicros(stall_end - now));
            }
        }
    }
    limiterNext_ = admitted + static_cast<sim::Time>(slot_ns);

    // The provisioning limiter is the controller-relevant state of a
    // remote volume; per-request stall times are detail records.
    if (telemetry() && telemetry()->detailEnabled() &&
        admitted > now) {
        telemetry()->emit(now, "remote", bio->cgroup,
                          "limiter_wait_us",
                          sim::toMicros(admitted - now));
    }

    double rtt = rng_.logNormal(
        static_cast<double>(spec_.baseRtt), spec_.rttSigma);
    const double backend =
        spec_.nsPerByte * static_cast<double>(bio->size);
    if (faults()) {
        // Congestion / degraded path: the network round trip bears
        // the latency multiplier; a failed request (dropped reply,
        // backend 5xx) still pays the full exchange.
        rtt *= faults()->latencyMult(now);
        if (faults()->drawError(now))
            bio->status = blk::BioStatus::Error;
    }
    const sim::Time done =
        admitted + static_cast<sim::Time>(rtt + backend);

    if (serviceLog() != nullptr) {
        serviceLog()->append(bio->id, bio->retries, now,
                             std::max(done, now + 1) - now,
                             bio->status);
    }

    ++inFlight_;
    // Ownership moves into the completion event's inline storage —
    // no trampoline, no allocation.
    sim_.at(std::max(done, now + 1),
            [this, owned = blk::BioCapture(std::move(bio)),
             now]() mutable {
                --inFlight_;
                finish(owned.take(), sim_.now() - now);
            });
    return true;
}

} // namespace iocost::device
