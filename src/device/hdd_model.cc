#include "device/hdd_model.hh"

#include <algorithm>
#include <cmath>

#include "blk/bio_state.hh"
#include "blk/service_log.hh"
#include "sim/fault.hh"
#include "stat/telemetry.hh"

namespace iocost::device {

HddModel::HddModel(sim::Simulator &sim, HddSpec spec)
    : sim_(sim), spec_(std::move(spec)), rng_(sim.forkRng())
{}

sim::Time
HddModel::serviceTime(const blk::Bio &bio)
{
    const double transfer_ns =
        static_cast<double>(bio.size) / spec_.transferBps * 1e9;
    sim::Time svc = static_cast<sim::Time>(transfer_ns);

    if (bio.offset != headPos_) {
        // Seek time grows with the square root of the relative
        // distance (classic disk model) plus rotational latency.
        const uint64_t dist = headPos_ > bio.offset
                                  ? headPos_ - bio.offset
                                  : bio.offset - headPos_;
        const double frac = std::min(
            1.0, static_cast<double>(dist) /
                     static_cast<double>(spec_.capacityBytes));
        const double seek =
            static_cast<double>(spec_.seekMin) +
            static_cast<double>(spec_.seekMax - spec_.seekMin) *
                std::sqrt(frac);
        const double rot =
            rng_.uniform() * static_cast<double>(spec_.rotationPeriod);
        svc += static_cast<sim::Time>(seek + rot);
    }
    if (bio.op == blk::Op::Write)
        svc += spec_.writeSettle;
    return std::max<sim::Time>(1, svc);
}

bool
HddModel::submit(blk::BioPtr &bio)
{
    if (inFlight() >= spec_.queueDepth)
        return false;
    queue_.push_back(Pending{std::move(bio), sim_.now()});
    maybeStartService();
    return true;
}

void
HddModel::maybeStartService()
{
    if (serving_ || queue_.empty())
        return;

    const sim::Time now = sim_.now();

    // NCQ selection: C-LOOK elevator order — the lowest offset at or
    // ahead of the head position, wrapping to the lowest offset
    // overall when nothing lies ahead. Unlike raw shortest-seek-
    // first, the one-directional sweep never strands requests just
    // behind the head (which would then be serviced backwards one
    // rotation at a time). An aging bound narrows the candidate set
    // once any request is over-age, preserving fairness under
    // overload.
    bool any_aged = false;
    for (const Pending &p : queue_) {
        if (now - p.accepted > spec_.maxWait) {
            any_aged = true;
            break;
        }
    }

    size_t pick_ahead = SIZE_MAX, pick_wrap = SIZE_MAX;
    uint64_t best_ahead = UINT64_MAX, best_wrap = UINT64_MAX;
    for (size_t i = 0; i < queue_.size(); ++i) {
        const Pending &p = queue_[i];
        if (any_aged && now - p.accepted <= spec_.maxWait)
            continue;
        const uint64_t off = p.bio->offset;
        if (off >= headPos_) {
            if (off < best_ahead) {
                best_ahead = off;
                pick_ahead = i;
            }
        } else if (off < best_wrap) {
            best_wrap = off;
            pick_wrap = i;
        }
    }
    const size_t pick =
        pick_ahead != SIZE_MAX ? pick_ahead : pick_wrap;

    Pending chosen = std::move(queue_[pick]);
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(pick));

    sim::Time svc = serviceTime(*chosen.bio);
    if (faults()) {
        const double mult = faults()->latencyMult(now);
        if (mult != 1.0) {
            svc = std::max<sim::Time>(
                1, static_cast<sim::Time>(
                       static_cast<double>(svc) * mult));
        }
        // Injected brownout: the mechanics freeze until the window
        // ends; the chosen request simply finishes that much later.
        const sim::Time stall_end = faults()->stallUntil(now);
        if (stall_end > now) {
            svc += stall_end - now;
            if (telemetry() && telemetry()->enabled() &&
                faults()->shouldReportStall(stall_end)) {
                telemetry()->emit(now, "hdd", stat::kNoCgroup,
                                  "stall_us",
                                  sim::toMicros(stall_end - now));
            }
        }
        // Media error (bad sector / unrecoverable seek): full
        // service time is still paid before the failure reports.
        if (faults()->drawError(now))
            chosen.bio->status = blk::BioStatus::Error;
    }
    headPos_ = chosen.bio->offset + chosen.bio->size;
    serving_ = true;

    // Per-service records (seek-dominated service time and the NCQ
    // backlog the elevator is working through) are detail-gated.
    if (telemetry() && telemetry()->detailEnabled()) {
        telemetry()->emit(now, "hdd", chosen.bio->cgroup,
                          "service_us", sim::toMicros(svc));
        telemetry()->emit(now, "hdd", stat::kNoCgroup, "ncq_depth",
                          static_cast<double>(queue_.size()));
    }

    // The logged duration spans accept-to-completion, so the replay
    // includes the NCQ elevator wait — the C-LOOK schedule is part
    // of the seek-bound device's behavior, not of any controller's.
    if (serviceLog() != nullptr) {
        serviceLog()->append(chosen.bio->id, chosen.bio->retries,
                             now, now - chosen.accepted + svc,
                             chosen.bio->status);
    }

    // Ownership moves into the completion event's inline storage —
    // no trampoline, no allocation.
    const sim::Time accepted = chosen.accepted;
    sim_.after(svc,
               [this, owned = blk::BioCapture(std::move(chosen.bio)),
                accepted]() mutable {
                   serving_ = false;
                   finish(owned.take(), sim_.now() - accepted);
                   maybeStartService();
               });
}

void
HddModel::saveState(sim::StateWriter &w) const
{
    w.putString(spec_.name);
    w.put(spec_.queueDepth);
    w.put(spec_.capacityBytes);
    w.put(spec_.seekMin);
    w.put(spec_.seekMax);
    w.put(spec_.rotationPeriod);
    w.put(spec_.transferBps);
    w.put(spec_.writeSettle);
    w.put(spec_.maxWait);

    uint64_t s[4];
    rng_.getState(s);
    for (uint64_t word : s)
        w.put(word);

    // NCQ backlog: each waiting bio deep-clones into the image.
    w.put(static_cast<uint64_t>(queue_.size()));
    for (const Pending &p : queue_) {
        blk::saveBio(w, *p.bio);
        w.put(p.accepted);
    }
    w.put(serving_);
    w.put(headPos_);
}

void
HddModel::loadState(sim::StateReader &r)
{
    spec_.name = r.getString();
    r.get(spec_.queueDepth);
    r.get(spec_.capacityBytes);
    r.get(spec_.seekMin);
    r.get(spec_.seekMax);
    r.get(spec_.rotationPeriod);
    r.get(spec_.transferBps);
    r.get(spec_.writeSettle);
    r.get(spec_.maxWait);

    uint64_t s[4];
    for (uint64_t &word : s)
        r.get(word);
    rng_.setState(s);

    const auto n = r.get<uint64_t>();
    queue_.clear();
    for (uint64_t i = 0; i < n; ++i) {
        Pending p;
        p.bio = blk::loadBio(r);
        r.get(p.accepted);
        queue_.push_back(std::move(p));
    }
    r.get(serving_);
    r.get(headPos_);
}

} // namespace iocost::device
