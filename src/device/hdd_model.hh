/**
 * @file
 * Spinning-disk model.
 *
 * A single-actuator disk with NCQ-style internal scheduling: the
 * drive holds up to queueDepth accepted requests and picks the next
 * one to service by positional cost — a request continuing the
 * current head position is free of seek, otherwise shortest-seek
 * first, with an aging bound so distant requests cannot starve.
 * This reproduces what matters for Fig. 12 of the paper: contiguous
 * runs from interleaved sequential streams get batched (so
 * sequential throughput survives multi-tenancy), while random IO
 * pays a distance-dependent seek plus rotational latency.
 */

#ifndef IOCOST_DEVICE_HDD_MODEL_HH
#define IOCOST_DEVICE_HDD_MODEL_HH

#include <cstdint>
#include <deque>
#include <string>

#include "blk/block_device.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace iocost::device {

/** Static description of a spinning disk. */
struct HddSpec
{
    std::string name = "hdd-7200rpm";

    /** Host-visible queue slots (NCQ depth). */
    uint32_t queueDepth = 32;

    /** Capacity in bytes (bounds seek distance scaling). */
    uint64_t capacityBytes = 4ull << 40;

    /** Track-to-track seek. */
    sim::Time seekMin = 500 * sim::kUsec;
    /** Full-stroke seek. */
    sim::Time seekMax = 14 * sim::kMsec;
    /** One platter revolution (7200 rpm = 8.33 ms). */
    sim::Time rotationPeriod = 8333 * sim::kUsec;

    /** Sequential media transfer rate, bytes/sec. */
    double transferBps = 180e6;

    /** Write-settle overhead added to writes. */
    sim::Time writeSettle = 100 * sim::kUsec;

    /** Requests older than this are serviced first (anti-starve). */
    sim::Time maxWait = 60 * sim::kMsec;
};

/**
 * Discrete-event spinning disk.
 */
class HddModel : public blk::BlockDevice
{
  public:
    HddModel(sim::Simulator &sim, HddSpec spec);

    bool submit(blk::BioPtr &bio) override;
    uint32_t queueDepth() const override { return spec_.queueDepth; }
    uint32_t inFlight() const override
    {
        return static_cast<uint32_t>(queue_.size()) +
               (serving_ ? 1 : 0);
    }
    std::string modelName() const override { return spec_.name; }

    const HddSpec &spec() const { return spec_; }

    /** Replace the spec (what-if device-profile queries); the spec
     *  is serialized state, so restore rolls a swap back. */
    void setSpec(HddSpec spec) { spec_ = std::move(spec); }

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    struct Pending
    {
        blk::BioPtr bio;
        sim::Time accepted;
    };

    /** Positional service time from the current head position. */
    sim::Time serviceTime(const blk::Bio &bio);

    /** Pick and service the best queued request. */
    void maybeStartService();

    sim::Simulator &sim_;
    HddSpec spec_;
    sim::Rng rng_;

    std::deque<Pending> queue_;
    bool serving_ = false;
    /** Byte position the head will rest at after current service. */
    uint64_t headPos_ = 0;
};

} // namespace iocost::device

#endif // IOCOST_DEVICE_HDD_MODEL_HH
