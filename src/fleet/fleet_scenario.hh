/**
 * @file
 * FleetScenario — compact spec for heterogeneous simulated fleets.
 *
 * A datacenter-scale fleet (10k–100k hosts) cannot be expressed by
 * enumerating hosts. A FleetScenario instead describes the fleet as
 * *mixes* — device mix over the paper's A–H SSD population, workload
 * mix, staged migration plan, fault plan — plus per-host-day knobs,
 * parsed from a one-line (or small-file, TOML-ish) spec:
 *
 *   hosts=10000 days=24 seed=2022 shards=64
 *   migration=4..10:30,12..20:70
 *   devices=A:25,D:25,G:25,H:25
 *   workloads=mixed:60,writeheavy:25,readheavy:15
 *   faults=lat@1s+500ms=4,err@1s+500ms=0.01
 *
 * Tokens are whitespace/newline separated `key=value` pairs; `#`
 * starts a comment through end of line, so the same grammar reads a
 * one-liner on the CLI or a small scenario file.
 *
 * Every per-host property (device, workload shape, migration day,
 * host-day RNG seed) is derived purely from (scenario seed, host
 * index) — never from execution order — so any shard count, worker
 * count, or work-stealing schedule reproduces byte-identical
 * fleets.
 */

#ifndef IOCOST_FLEET_FLEET_SCENARIO_HH
#define IOCOST_FLEET_FLEET_SCENARIO_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "device/ssd_model.hh"
#include "sim/time.hh"

namespace iocost::fleet {

/** Workload shape a host runs alongside the deadline agents. */
enum class WorkloadKind : uint8_t
{
    /** Saturating random reads + a large-write stream (the fig18/19
     *  shape: drains the device's burst buffer into GC). */
    Mixed,
    /** Read-dominated: deep random reads, a trickle of writes. */
    ReadHeavy,
    /** Write-dominated: deep large-write streams, shallow reads. */
    WriteHeavy,
    /** Rate-arrival read bursts over a shallow write stream. */
    Bursty,
    /** Buffered IO through the page cache: a dirtier stream, an
     *  fsync-storm stream, and a cache-friendly direct reader
     *  (requires pagecache=; see FleetScenario::pagecacheBytes). */
    Buffered,
};

/** @return "mixed" / "readheavy" / "writeheavy" / "bursty" /
 *  "buffered". */
const char *workloadKindName(WorkloadKind kind);

/** One stage of the IOLatency -> IOCost migration plan. */
struct MigrationStage
{
    /** Hosts in the stage migrate staggered across
     *  [startDay, endDay). */
    unsigned startDay = 0;
    unsigned endDay = 0;
    /** Fraction of the fleet covered by this stage (stages are
     *  assigned to contiguous host-index ranges in order). */
    double fraction = 1.0;
};

/**
 * Compact fleet description. See file header for the grammar.
 */
struct FleetScenario
{
    /** One device class in the mix with its fleet share. */
    struct DeviceShare
    {
        device::SsdSpec spec;
        double share = 1.0;
    };

    /** One workload shape in the mix with its fleet share. */
    struct WorkloadShare
    {
        WorkloadKind kind = WorkloadKind::Mixed;
        double share = 1.0;
    };

    unsigned hosts = 60;
    unsigned days = 24;
    uint64_t seed = 2022;

    /** Preferred shard count (0 = auto from the worker count). */
    unsigned shards = 0;

    /** Migration stages; empty = nobody ever migrates. */
    std::vector<MigrationStage> stages;

    /** Device mix (shares are normalized; need not sum to 100). */
    std::vector<DeviceShare> devices;

    /** Workload mix (shares are normalized). */
    std::vector<WorkloadShare> workloads;

    /** Device fault spec applied to every host-day slice
     *  (sim::FaultPlan::parse grammar; empty = healthy fleet). */
    std::string faults;

    /**
     * Page cache size per host (`pagecache=512M`); 0 disables
     * buffered IO. Auto-set to 512M when the workload mix contains
     * `buffered` and no explicit size was given. When non-zero,
     * every host-day gets a PageCache (all workload kinds — the
     * flusher only runs when something dirties pages).
     */
    uint64_t pagecacheBytes = 0;

    /** Hard dirty wall as a percent of the page cache
     *  (`dirty_ratio=20`); the background threshold tracks at
     *  half. 0 keeps PageCacheConfig defaults. */
    double dirtyRatioPct = 0.0;

    /**
     * Multi-config sweep: full controller spec lines (one per
     * config, parseControllerSpec grammar). When non-empty the
     * scenario is run through FleetSim::runScenarioSweep(): every
     * host-day is evaluated once per config with the SAME host-day
     * seed (common random numbers), and one aggregate is produced
     * per config. Migration stages are ignored under a sweep — each
     * config applies fleet-wide for all days. Spec-file key:
     * `sweep=iocost,min=25;iocost,min=50` (';' separates configs,
     * ',' separates tokens within one).
     */
    std::vector<std::string> sweep;

    /** Capture per-slice telemetry into HostDayOutcome::records
     *  (forces per-host retention — incompatible with constant-
     *  memory streaming; used by the iocost_mon replay). */
    bool telemetry = false;

    // Per-host-day slice knobs (same meanings as FleetConfig).
    sim::Time slice = 2 * sim::kSec;
    sim::Time warmup = 2500 * sim::kMsec;
    uint64_t fetchBytes = 16ull << 20;
    sim::Time fetchDeadline = 1 * sim::kSec;
    unsigned cleanupOps = 200;
    uint32_t cleanupIoBytes = 16 * 1024;
    sim::Time cleanupDeadline = 500 * sim::kMsec;

    /**
     * Host-day seed derivation. Mix uses a SplitMix64 finalizer
     * over (seed, day, host) — collision-free at 100k+ hosts.
     * Legacy reproduces the historical FleetConfig polynomial
     * (seed*1000003 + day*10007 + host) so the fig18/19 replays
     * stay byte-identical to previous releases.
     */
    enum class SeedMode : uint8_t
    {
        Mix,
        Legacy
    };
    SeedMode seedMode = SeedMode::Mix;

    /**
     * Device assignment. Share draws a deterministic per-host
     * sample against the mix shares; LegacyParity reproduces the
     * historical host%2 oldgen/newgen split.
     */
    enum class DeviceAssign : uint8_t
    {
        Share,
        LegacyParity
    };
    DeviceAssign deviceAssign = DeviceAssign::Share;

    /**
     * Test seam for the shard exception boundary: the slice at
     * (throwAtDay, throwAtHost) throws std::runtime_error mid-run.
     * Defaults never fire.
     */
    unsigned throwAtDay = std::numeric_limits<unsigned>::max();
    unsigned throwAtHost = std::numeric_limits<unsigned>::max();

    /**
     * Parse a spec (grammar in the file header). `@path` values for
     * the caller to resolve are NOT handled here — pass file
     * contents directly.
     *
     * @throws std::invalid_argument on malformed input, naming the
     *         offending token.
     */
    static FleetScenario parse(const std::string &spec);

    /** Canonical one-line form; parse(canonical()) round-trips. */
    std::string canonical() const;

    // -----------------------------------------------------------
    // Deterministic per-host derivations. All are functions of
    // (seed, host[, day]) only — independent of shard and worker
    // layout by construction.
    // -----------------------------------------------------------

    /** Day the host migrates IOLatency -> IOCost (>= days: never). */
    unsigned migrationDay(unsigned host) const;

    /** Index into devices for this host. */
    unsigned deviceIndexFor(unsigned host) const;

    /** Workload shape for this host. */
    WorkloadKind workloadFor(unsigned host) const;

    /** RNG seed for one host-day slice (see SeedMode). */
    uint64_t hostDaySeed(unsigned day, unsigned host) const;
};

} // namespace iocost::fleet

#endif // IOCOST_FLEET_FLEET_SCENARIO_HH
