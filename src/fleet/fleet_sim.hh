/**
 * @file
 * Fleet-scale Monte-Carlo for the migration studies (paper §4.8,
 * Figs. 18/19).
 *
 * The paper reports package-fetching and container-cleanup failure
 * rates across a region of hundreds of thousands of hosts over a
 * two-month staged migration from IOLatency to IOCost. We reproduce
 * the mechanism at reduced scale: every host-day runs a short
 * simulation slice in which a host-critical cleanup agent and a
 * system-slice package fetcher race their (scaled-down) deadlines
 * while the main workload saturates the device; the host's
 * controller — IOLatency before its migration day, IOCost after —
 * decides whether the agents starve. Daily failure counts across
 * the simulated fleet reproduce the migration shape.
 */

#ifndef IOCOST_FLEET_FLEET_SIM_HH
#define IOCOST_FLEET_FLEET_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"
#include "stat/telemetry.hh"

namespace iocost::fleet {

/** Fleet/migration configuration. */
struct FleetConfig
{
    /** Hosts in the simulated region. */
    unsigned hosts = 60;

    /** Days simulated. */
    unsigned days = 24;

    /** Hosts migrate IOLatency -> IOCost staggered across
     *  [migrationStartDay, migrationEndDay). */
    unsigned migrationStartDay = 6;
    unsigned migrationEndDay = 18;

    /** Wall length of one host-day sample slice. */
    sim::Time slice = 2 * sim::kSec;

    /**
     * Warmup before the agents start: long enough that the main
     * workload's write stream has drained the device's burst buffer
     * (the contended regime the agents really run in).
     */
    sim::Time warmup = 2500 * sim::kMsec;

    /** Package fetch: bytes written by the system service. */
    uint64_t fetchBytes = 16ull << 20;
    /** Scaled stand-in for the fetch timeout. */
    sim::Time fetchDeadline = 1 * sim::kSec;

    /** Cleanup: number of small metadata operations. */
    unsigned cleanupOps = 200;
    uint32_t cleanupIoBytes = 16 * 1024;
    /** Scaled stand-in for the 5s cleanup threshold. */
    sim::Time cleanupDeadline = 500 * sim::kMsec;

    /** Base RNG seed. */
    uint64_t seed = 2022;

    /**
     * Capture per-slice telemetry (period-level records from the
     * controller, block layer, and device) into
     * HostDayOutcome::records. Off by default: the migration
     * benches only need the aggregate counters.
     */
    bool telemetry = false;

    /**
     * Device fault spec applied to every host-day slice (see
     * sim::FaultPlan::parse for the grammar; empty = healthy
     * fleet). The plan seed is mixed with each slice's seed, so
     * error draws decorrelate across hosts while the whole run
     * stays byte-deterministic at any `jobs`.
     */
    std::string faults;
};

/** One day's aggregate outcome. */
struct FleetDayResult
{
    unsigned day = 0;
    double fractionOnIoCost = 0.0;
    unsigned fetchAttempts = 0;
    unsigned fetchFailures = 0;
    unsigned cleanupAttempts = 0;
    unsigned cleanupFailures = 0;
};

/** Outcome of a single host-day slice. */
struct HostDayOutcome
{
    bool fetchFailed = false;
    bool cleanupFailed = false;
    sim::Time fetchTime = 0;
    sim::Time cleanupTime = 0;
    /** Telemetry captured when FleetConfig::telemetry is set. */
    std::vector<stat::Record> records;
};

/**
 * The fleet simulator.
 */
class FleetSim
{
  public:
    /**
     * Run one host-day slice.
     *
     * @param controller "iolatency" or "iocost".
     * @param host_kind 0 = old-gen SSD host, 1 = new-gen SSD host.
     * @param seed Determinism seed for this slice.
     * @param cfg Fleet configuration (deadlines etc.).
     */
    static HostDayOutcome runHostDay(const std::string &controller,
                                     int host_kind, uint64_t seed,
                                     const FleetConfig &cfg);

    /**
     * Run the full migration study.
     *
     * Host-day slices are fully independent (each owns a private
     * Simulator whose seed derives from (cfg.seed, day, host)), so
     * they are fanned out across @p jobs worker threads and reduced
     * in (day, host) order. The result is byte-identical to the
     * sequential run for any jobs value.
     *
     * @param jobs Worker threads; 1 = sequential in the calling
     *             thread, 0 = one per hardware thread.
     */
    static std::vector<FleetDayResult> run(const FleetConfig &cfg,
                                           unsigned jobs = 1);

    /**
     * As run(), additionally exposing every host-day outcome
     * (indexed day * cfg.hosts + host) so callers can serialize
     * per-slice telemetry. The outcome grid, like the day results,
     * is byte-identical for any jobs value.
     */
    static std::vector<FleetDayResult>
    run(const FleetConfig &cfg, unsigned jobs,
        std::vector<HostDayOutcome> *outcomes_out);

    /** Day a given host migrates (staggered across the window). */
    static unsigned migrationDay(unsigned host,
                                 const FleetConfig &cfg);
};

} // namespace iocost::fleet

#endif // IOCOST_FLEET_FLEET_SIM_HH
