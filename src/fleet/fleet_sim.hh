/**
 * @file
 * Fleet-scale Monte-Carlo for the migration studies (paper §4.8,
 * Figs. 18/19) — sharded engine.
 *
 * The paper reports package-fetching and container-cleanup failure
 * rates across a region of hundreds of thousands of hosts over a
 * two-month staged migration from IOLatency to IOCost. We reproduce
 * the mechanism at reduced scale: every host-day runs a short
 * simulation slice in which a host-critical cleanup agent and a
 * system-slice package fetcher race their (scaled-down) deadlines
 * while the main workload saturates the device; the host's
 * controller — IOLatency before its migration day, IOCost after —
 * decides whether the agents starve.
 *
 * Execution model: the fleet is partitioned into contiguous host
 * shards. Workers pull whole shards from a shared queue (work
 * stealing rebalances load automatically) and fold each finished
 * host-day into the shard's private ShardAccumulator; shards merge
 * in a deterministic tree order at the end. Because every per-host
 * property derives purely from (scenario seed, host) and every
 * folded quantity is exact integer arithmetic, the aggregate is
 * byte-identical for ANY jobs/shards combination — and memory is
 * O(shards), independent of fleet size.
 */

#ifndef IOCOST_FLEET_FLEET_SIM_HH
#define IOCOST_FLEET_FLEET_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet_aggregate.hh"
#include "fleet/fleet_scenario.hh"
#include "sim/time.hh"

namespace iocost::fleet {

/** Fleet/migration configuration (legacy fig18/19 form; new code
 *  should prefer FleetScenario). */
struct FleetConfig
{
    /** Hosts in the simulated region. */
    unsigned hosts = 60;

    /** Days simulated. */
    unsigned days = 24;

    /** Hosts migrate IOLatency -> IOCost staggered across
     *  [migrationStartDay, migrationEndDay). */
    unsigned migrationStartDay = 6;
    unsigned migrationEndDay = 18;

    /** Wall length of one host-day sample slice. */
    sim::Time slice = 2 * sim::kSec;

    /**
     * Warmup before the agents start: long enough that the main
     * workload's write stream has drained the device's burst buffer
     * (the contended regime the agents really run in).
     */
    sim::Time warmup = 2500 * sim::kMsec;

    /** Package fetch: bytes written by the system service. */
    uint64_t fetchBytes = 16ull << 20;
    /** Scaled stand-in for the fetch timeout. */
    sim::Time fetchDeadline = 1 * sim::kSec;

    /** Cleanup: number of small metadata operations. */
    unsigned cleanupOps = 200;
    uint32_t cleanupIoBytes = 16 * 1024;
    /** Scaled stand-in for the 5s cleanup threshold. */
    sim::Time cleanupDeadline = 500 * sim::kMsec;

    /** Base RNG seed. */
    uint64_t seed = 2022;

    /**
     * Capture per-slice telemetry (period-level records from the
     * controller, block layer, and device) into
     * HostDayOutcome::records. Off by default: the migration
     * benches only need the aggregate counters.
     */
    bool telemetry = false;

    /**
     * Device fault spec applied to every host-day slice (see
     * sim::FaultPlan::parse for the grammar; empty = healthy
     * fleet). The plan seed is mixed with each slice's seed, so
     * error draws decorrelate across hosts while the whole run
     * stays byte-deterministic at any `jobs`.
     */
    std::string faults;
};

/**
 * Map a legacy FleetConfig onto the scenario form. The resulting
 * scenario uses SeedMode::Legacy and DeviceAssign::LegacyParity, so
 * runScenario() over it reproduces the historical fig18/19 runs
 * byte-for-byte.
 */
FleetScenario scenarioFromConfig(const FleetConfig &cfg);

/** Execution layout for runScenario(). */
struct RunOptions
{
    /** Worker threads; 1 = sequential in the calling thread,
     *  0 = one per hardware thread. */
    unsigned jobs = 1;

    /**
     * Shard count override; 0 defers to the scenario's `shards` key
     * and then to the auto policy (8 shards per worker, clamped to
     * the host count). More shards = finer work-stealing granularity
     * at O(days) memory each. Never affects any aggregated byte.
     */
    unsigned shards = 0;
};

/**
 * The fleet simulator.
 */
class FleetSim
{
  public:
    /**
     * Run one host-day slice (legacy entry point).
     *
     * @param controller "iolatency" or "iocost".
     * @param host_kind 0 = old-gen SSD host, 1 = new-gen SSD host.
     * @param seed Determinism seed for this slice.
     * @param cfg Fleet configuration (deadlines etc.).
     */
    static HostDayOutcome runHostDay(const std::string &controller,
                                     int host_kind, uint64_t seed,
                                     const FleetConfig &cfg);

    /**
     * Run one host-day slice of a scenario host.
     *
     * @param spec Device the host runs on.
     * @param kind Main-workload shape.
     */
    static HostDayOutcome runHostDay(const FleetScenario &sc,
                                     const device::SsdSpec &spec,
                                     WorkloadKind kind,
                                     const std::string &controller,
                                     uint64_t seed);

    /**
     * Run a full scenario through the sharded engine.
     *
     * Memory stays O(shards * days): per-host results are folded
     * into per-shard accumulators as they finish and never
     * retained. The returned aggregate is byte-identical for any
     * jobs/shards combination.
     *
     * A slice that throws poisons only its shard: the first
     * exception per shard is captured, remaining shards still
     * drain, and after a clean join the exception from the
     * lowest-indexed failed shard is rethrown (deterministic
     * regardless of worker scheduling).
     */
    static FleetAggregate runScenario(const FleetScenario &sc,
                                      const RunOptions &opts = {});

    /**
     * As runScenario(), additionally exposing every host-day
     * outcome (indexed day * sc.hosts + host) so callers can
     * serialize per-slice telemetry. This abandons constant memory
     * — the grid is O(hosts * days) — and exists for the
     * iocost_mon per-host replay path.
     */
    static FleetAggregate
    runScenario(const FleetScenario &sc, const RunOptions &opts,
                std::vector<HostDayOutcome> *outcomes_out);

    /**
     * Run a multi-config sweep through the sharded engine: every
     * host-day slice is evaluated once per entry of sc.sweep with
     * the SAME hostDaySeed, so cross-config deltas are paired on
     * common random numbers (the workload intensity knobs, agent
     * offsets, and device fault draws are identical across configs;
     * only the controller differs). One aggregate is returned per
     * config, in sweep order; each is byte-identical for any
     * jobs/shards combination, and identical to a K = 1 sweep of
     * that config alone.
     *
     * Fleet host-days are closed feedback loops (the agents' issue
     * times depend on their completions), so unlike the single-host
     * sweep the configs cannot share one device stream — pairing by
     * seed is the CRN mechanism here.
     *
     * Migration stages are ignored: each config applies fleet-wide
     * for all days. A config's samples land under its mechanism's
     * summary slot ("iocost" for iocost entries, "iolatency" for
     * everything else). Telemetry capture is not supported.
     *
     * @throws std::invalid_argument on an empty sweep list, a
     *         malformed entry, or sc.telemetry set.
     */
    static std::vector<FleetAggregate>
    runScenarioSweep(const FleetScenario &sc,
                     const RunOptions &opts = {});

    /**
     * Run the full migration study (legacy entry point; wraps
     * runScenario over scenarioFromConfig). Byte-identical to the
     * pre-sharding implementation for any jobs value.
     *
     * @param jobs Worker threads; 1 = sequential in the calling
     *             thread, 0 = one per hardware thread.
     */
    static std::vector<FleetDayResult> run(const FleetConfig &cfg,
                                           unsigned jobs = 1);

    /**
     * As run(), additionally exposing every host-day outcome
     * (indexed day * cfg.hosts + host) so callers can serialize
     * per-slice telemetry. The outcome grid, like the day results,
     * is byte-identical for any jobs value.
     */
    static std::vector<FleetDayResult>
    run(const FleetConfig &cfg, unsigned jobs,
        std::vector<HostDayOutcome> *outcomes_out);

    /** Day a given host migrates (staggered across the window). */
    static unsigned migrationDay(unsigned host,
                                 const FleetConfig &cfg);
};

} // namespace iocost::fleet

#endif // IOCOST_FLEET_FLEET_SIM_HH
