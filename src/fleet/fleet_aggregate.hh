/**
 * @file
 * Constant-memory streaming aggregation for the fleet engine.
 *
 * The sharded fleet runner never retains per-host state: each worker
 * folds every finished host-day into its shard's ShardAccumulator
 * (a fixed-size arena of day counters, latency histograms, and
 * per-day failure series), and the shards are merged in a
 * deterministic tree order when the run completes. Memory is
 * O(shards * days), independent of host count, and because every
 * folded quantity is held in exact integer arithmetic the merged
 * FleetAggregate is byte-identical for any shard/worker layout.
 */

#ifndef IOCOST_FLEET_FLEET_AGGREGATE_HH
#define IOCOST_FLEET_FLEET_AGGREGATE_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hh"
#include "stat/histogram.hh"
#include "stat/telemetry.hh"
#include "stat/time_series.hh"

namespace iocost::fleet {

/** Controller index in the split aggregates. */
enum : unsigned
{
    kCtlIoLatency = 0,
    kCtlIoCost = 1,
};

/** One day's aggregate outcome. */
struct FleetDayResult
{
    unsigned day = 0;
    double fractionOnIoCost = 0.0;
    unsigned fetchAttempts = 0;
    unsigned fetchFailures = 0;
    unsigned cleanupAttempts = 0;
    unsigned cleanupFailures = 0;
};

/** Outcome of a single host-day slice. */
struct HostDayOutcome
{
    bool fetchFailed = false;
    bool cleanupFailed = false;
    sim::Time fetchTime = 0;
    sim::Time cleanupTime = 0;
    /** Telemetry captured when the scenario requests it. */
    std::vector<stat::Record> records;
};

/**
 * Fleet-level result of a sharded run: per-day counters plus the
 * merged streaming aggregates.
 */
struct FleetAggregate
{
    /** Per-day counters, index == day. */
    std::vector<FleetDayResult> days;

    /** Completed agent times (ns), split by controller
     *  ([kCtlIoLatency] / [kCtlIoCost]). Agents that never finished
     *  inside the slice are counted as failures, not recorded. */
    stat::Histogram fetchTime[2];
    stat::Histogram cleanupTime[2];

    /** Per-day failure counts (time axis = day index). */
    stat::TimeSeries fetchFailures{"fetch_failures"};
    stat::TimeSeries cleanupFailures{"cleanup_failures"};

    uint64_t hostDays = 0;
    unsigned hosts = 0;
    /** Execution layout of the producing run (informational; does
     *  not affect any aggregated byte). */
    unsigned shards = 0;
    unsigned jobs = 0;
};

/**
 * Per-shard arena. One lives on each shard; the owning worker folds
 * host-day outcomes into it with no locks and no shared state, and
 * all storage is sized up front in the constructor so the
 * steady-state fold and merge paths perform zero heap allocations
 * (gated by `perf_fleet --check-allocs`).
 */
class ShardAccumulator
{
  public:
    explicit ShardAccumulator(unsigned days);

    /** Fold one finished host-day into the arena. */
    void fold(unsigned day, bool on_iocost,
              const HostDayOutcome &outcome);

    /**
     * Emit the per-day failure series (one point per day). Must be
     * called exactly once, after the shard's last fold and before
     * the shard is merged.
     */
    void finalizeSeries();

    /**
     * Merge another (finalized) shard into this one. Exact: every
     * merged quantity is integer-valued, so any merge tree over the
     * same folds produces bit-identical state.
     */
    void mergeFrom(const ShardAccumulator &other);

    /** Assemble the fleet-level result (after all merges). */
    FleetAggregate finish(unsigned hosts, unsigned shards,
                          unsigned jobs) const;

  private:
    struct DayCounters
    {
        uint32_t migrated = 0;
        uint32_t fetchAttempts = 0;
        uint32_t fetchFailures = 0;
        uint32_t cleanupAttempts = 0;
        uint32_t cleanupFailures = 0;
    };

    std::vector<DayCounters> days_;
    stat::Histogram fetchTime_[2];
    stat::Histogram cleanupTime_[2];
    stat::TimeSeries fetchFailSeries_{"fetch_failures"};
    stat::TimeSeries cleanupFailSeries_{"cleanup_failures"};
    /** Swap space for TimeSeries::mergeSum (reserved up front). */
    std::vector<stat::SeriesPoint> scratch_;
    bool finalized_ = false;
};

/**
 * Rendered view of an aggregate — what the JSON carries and what
 * iocost_mon prints. Derived from a FleetAggregate or parsed back
 * from a file.
 */
struct AggregateView
{
    struct CtlSummary
    {
        uint64_t fetchCount = 0;
        double fetchP50Ms = 0, fetchP99Ms = 0, fetchMeanMs = 0;
        uint64_t cleanupCount = 0;
        double cleanupP50Ms = 0, cleanupP99Ms = 0,
               cleanupMeanMs = 0;
    };

    unsigned hosts = 0;
    unsigned days = 0;
    uint64_t hostDays = 0;
    unsigned shards = 0;
    unsigned jobs = 0;
    CtlSummary ctl[2]; // [kCtlIoLatency], [kCtlIoCost]
    std::vector<FleetDayResult> perDay;

    static AggregateView from(const FleetAggregate &agg);
};

/** Write the streaming-aggregate JSON document. */
void writeAggregateJson(const AggregateView &view, FILE *out);

/**
 * Read an aggregate JSON document produced by writeAggregateJson.
 * @return nullopt when the buffer is not an aggregate document
 *         (e.g. legacy per-host JSONL).
 */
std::optional<AggregateView>
readAggregateJson(const std::string &text);

/**
 * A sweep document: one labeled aggregate per config, in sweep
 * order. Labels are the controller spec lines the configs ran.
 */
struct SweepView
{
    std::vector<std::string> labels;
    std::vector<AggregateView> entries;
};

/** Write the multi-config sweep JSON document (a "fleet_sweep"
 *  wrapper embedding one aggregate document per config). */
void writeSweepJson(const SweepView &view, FILE *out);

/**
 * Read a sweep JSON document produced by writeSweepJson.
 * @return nullopt when the buffer is not a sweep document (callers
 *         sniff this before trying readAggregateJson).
 */
std::optional<SweepView> readSweepJson(const std::string &text);

} // namespace iocost::fleet

#endif // IOCOST_FLEET_FLEET_AGGREGATE_HH
