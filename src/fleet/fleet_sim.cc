#include "fleet/fleet_sim.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "controllers/factory.hh"
#include "controllers/io_latency.hh"
#include "core/config_parse.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "sim/rng.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

namespace iocost::fleet {

namespace {

/**
 * Package fetch: per chunk, a metadata/verification read followed by
 * a sequential payload write (dependent pair), a couple of chunk
 * streams in flight; flags its completion time.
 */
struct FetchAgent
{
    blk::BlockLayer &layer;
    cgroup::CgroupId cg;
    uint64_t left;
    uint64_t cursor = 0;
    sim::Time doneAt = sim::kTimeNever;
    unsigned inFlight = 0;
    sim::Rng rng;

    static constexpr uint32_t kChunk = 256 * 1024;
    static constexpr uint32_t kReadChunk = 64 * 1024;
    static constexpr unsigned kDepth = 2;

    FetchAgent(blk::BlockLayer &l, cgroup::CgroupId c,
               uint64_t bytes, uint64_t seed)
        : layer(l), cg(c), left(bytes), rng(seed)
    {}

    void
    start()
    {
        for (unsigned i = 0; i < kDepth; ++i)
            issue();
    }

    void
    issue()
    {
        if (left == 0) {
            if (inFlight == 0 && doneAt == sim::kTimeNever)
                doneAt = layer.sim().now();
            return;
        }
        const uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(kChunk, left));
        left -= chunk;
        ++inFlight;
        // Verification/metadata read, then the payload write.
        layer.submit(blk::Bio::make(
            blk::Op::Read, (6ull << 40) + rng.below(8ull << 30),
            kReadChunk, cg, [this, chunk](const blk::Bio &) {
                layer.submit(blk::Bio::make(
                    blk::Op::Write, (6ull << 41) + cursor, chunk,
                    cg, [this](const blk::Bio &) {
                        --inFlight;
                        issue();
                    }));
                cursor += chunk;
            }));
    }
};

/**
 * Serialized chain of small alternating metadata reads/writes (the
 * btrfs container-cleanup walk).
 */
struct CleanupAgent
{
    blk::BlockLayer &layer;
    cgroup::CgroupId cg;
    unsigned opsLeft;
    uint32_t ioBytes;
    sim::Rng rng;
    sim::Time doneAt = sim::kTimeNever;

    CleanupAgent(blk::BlockLayer &l, cgroup::CgroupId c,
                 unsigned ops, uint32_t bytes, uint64_t seed)
        : layer(l), cg(c), opsLeft(ops), ioBytes(bytes), rng(seed)
    {}

    void
    step()
    {
        if (opsLeft == 0) {
            doneAt = layer.sim().now();
            return;
        }
        --opsLeft;
        const bool read = opsLeft % 2 == 0;
        const uint64_t offset =
            (7ull << 40) + rng.below(64ull << 30);
        auto bio = blk::Bio::make(
            read ? blk::Op::Read : blk::Op::Write, offset, ioBytes,
            cg, [this](const blk::Bio &) { step(); });
        // Cleanup touches shared filesystem metadata.
        bio->meta = true;
        layer.submit(std::move(bio));
    }
};

/**
 * Main-workload shape for one host. Every kind runs a read job and
 * a write job; the kind decides their arrival processes and depths.
 * The `knobs` draws vary intensity per host-day; the Mixed branch
 * must consume the stream exactly as the pre-sharding code did so
 * legacy replays stay byte-identical.
 */
void
shapeWorkloads(WorkloadKind kind, sim::Rng &knobs,
               workload::FioConfig &reads,
               workload::FioConfig &writes)
{
    reads.arrival = workload::Arrival::Saturating;
    writes.arrival = workload::Arrival::Saturating;
    writes.readFraction = 0.0;
    switch (kind) {
    case WorkloadKind::Mixed:
        // Saturating random reads + a large-write stream that
        // drains the device's burst buffer into its GC regime.
        reads.iodepth = 32 + static_cast<unsigned>(knobs.below(64));
        writes.blockSize = 1 << 20;
        writes.iodepth = 2 + static_cast<unsigned>(knobs.below(8));
        break;
    case WorkloadKind::ReadHeavy:
        // Deep random reads; only a trickle of medium writes.
        reads.iodepth = 48 + static_cast<unsigned>(knobs.below(64));
        writes.blockSize = 256 * 1024;
        writes.iodepth = 1 + static_cast<unsigned>(knobs.below(2));
        break;
    case WorkloadKind::WriteHeavy:
        // Deep large-write streams over shallow reads.
        reads.iodepth = 4 + static_cast<unsigned>(knobs.below(8));
        writes.blockSize = 1 << 20;
        writes.iodepth = 8 + static_cast<unsigned>(knobs.below(16));
        break;
    case WorkloadKind::Bursty:
        // Open-loop read bursts over a shallow write stream.
        reads.arrival = workload::Arrival::Rate;
        reads.ratePerSec =
            2000.0 + static_cast<double>(knobs.below(6000));
        writes.blockSize = 1 << 20;
        writes.iodepth = 1 + static_cast<unsigned>(knobs.below(2));
        break;
    case WorkloadKind::Buffered:
        // Cache-friendly direct reader alongside the buffered
        // streams (built by the caller); the direct write trickle
        // stands in for unbuffered logging.
        reads.iodepth = 4 + static_cast<unsigned>(knobs.below(8));
        writes.blockSize = 256 * 1024;
        writes.iodepth = 1;
        break;
    }
}

} // namespace

FleetScenario
scenarioFromConfig(const FleetConfig &cfg)
{
    FleetScenario sc;
    sc.hosts = cfg.hosts;
    sc.days = cfg.days;
    sc.seed = cfg.seed;
    sc.stages.clear();
    sc.stages.push_back(MigrationStage{cfg.migrationStartDay,
                                       cfg.migrationEndDay, 1.0});
    sc.devices.clear();
    sc.devices.push_back(
        FleetScenario::DeviceShare{device::oldGenSsd(), 1.0});
    sc.devices.push_back(
        FleetScenario::DeviceShare{device::newGenSsd(), 1.0});
    sc.workloads.clear();
    sc.workloads.push_back(
        FleetScenario::WorkloadShare{WorkloadKind::Mixed, 1.0});
    sc.faults = cfg.faults;
    sc.telemetry = cfg.telemetry;
    sc.slice = cfg.slice;
    sc.warmup = cfg.warmup;
    sc.fetchBytes = cfg.fetchBytes;
    sc.fetchDeadline = cfg.fetchDeadline;
    sc.cleanupOps = cfg.cleanupOps;
    sc.cleanupIoBytes = cfg.cleanupIoBytes;
    sc.cleanupDeadline = cfg.cleanupDeadline;
    // Byte-compat with the pre-scenario implementation: host%2
    // device split and the historical polynomial slice seed.
    sc.seedMode = FleetScenario::SeedMode::Legacy;
    sc.deviceAssign = FleetScenario::DeviceAssign::LegacyParity;
    return sc;
}

unsigned
FleetSim::migrationDay(unsigned host, const FleetConfig &cfg)
{
    const unsigned span =
        cfg.migrationEndDay - cfg.migrationStartDay;
    if (span == 0 || cfg.hosts == 0)
        return cfg.migrationStartDay;
    return cfg.migrationStartDay + host * span / cfg.hosts;
}

HostDayOutcome
FleetSim::runHostDay(const FleetScenario &sc,
                     const device::SsdSpec &spec,
                     WorkloadKind kind,
                     const std::string &controller, uint64_t seed)
{
    sim::Simulator sim(seed);

    // Accept a full spec line, not just a mechanism name, so sweep
    // configs can carry settings ("iocost min=25 max=100"). A bare
    // "iocost"/"iolatency" parses to the same config the historical
    // string path produced, preserving byte-compatibility.
    std::optional<controllers::ControllerSpec> parsed =
        controllers::parseControllerSpec(controller);
    if (!parsed) {
        throw std::invalid_argument(
            "fleet: bad controller spec: " + controller);
    }

    host::HostOptions opts;
    opts.controller = *parsed;
    // Device degradation, identical schedule on every host; the
    // slice seed decorrelates the per-request error draws.
    opts.faults = sc.faults;
    opts.faultSeedMix = seed;
    // pagecache= gives every host-day a page cache; the flusher
    // only issues IO when something dirties pages, so non-buffered
    // kinds are unaffected.
    if (sc.pagecacheBytes != 0) {
        opts.enablePageCache = true;
        opts.pageCacheConfig.cacheBytes = sc.pagecacheBytes;
        if (sc.dirtyRatioPct > 0.0) {
            opts.pageCacheConfig.dirtyRatio =
                sc.dirtyRatioPct / 100.0;
            opts.pageCacheConfig.dirtyBackgroundRatio =
                sc.dirtyRatioPct / 200.0;
        }
    }
    // Slice-private ring: drained into the outcome after the run.
    stat::RingSink ring;
    if (sc.telemetry)
        opts.telemetrySink = &ring;
    if (parsed->name == "iocost") {
        // Fleet defaults fill in whatever the spec line left out:
        // the device-profile cost model unless the line carried
        // model keys, the migration-study qos unless it carried qos
        // keys (kernel io.cost.qos semantics — an explicit qos
        // replaces the whole block, it is not merged key-by-key).
        const std::string payload =
            controllers::iocostPayload(controller);
        if (!core::parseModelLine(payload)) {
            const auto &prof =
                profile::DeviceProfiler::profileSsd(spec);
            opts.controller.iocost.model =
                core::CostModel::fromConfig(prof.model);
        }
        if (!core::parseQosLine(payload)) {
            opts.controller.iocost.qos.readLatTarget =
                2 * sim::kMsec;
            opts.controller.iocost.qos.writeLatTarget =
                4 * sim::kMsec;
            opts.controller.iocost.qos.period = 10 * sim::kMsec;
            opts.controller.iocost.qos.vrateMin = 0.5;
            opts.controller.iocost.qos.vrateMax = 2.0;
        }
    }
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);

    const auto main_cg = host.addWorkload("main", 100);
    const auto fetch_cg = host.addSystemService("package-fetcher");
    const auto cleanup_cg = host.tree().create(
        host.hostCritical(), "container-agent", 100);

    if (parsed->name == "iolatency") {
        // Production IOLatency setups protect the workload with a
        // tight latency target; system services run unprotected.
        auto *iolat = dynamic_cast<controllers::IoLatency *>(
            host.layer().controller());
        iolat->setTarget(main_cg, 400 * sim::kUsec);
    }

    // Main workload: shape per WorkloadKind, intensity varied per
    // host-day through the knobs stream.
    sim::Rng knobs(seed ^ 0x5bd1e995);
    workload::FioConfig reads;
    workload::FioConfig writes;
    shapeWorkloads(kind, knobs, reads, writes);
    workload::FioWorkload read_job(sim, host.layer(), main_cg,
                                   reads);
    workload::FioWorkload write_job(sim, host.layer(), main_cg,
                                    writes);

    // The buffered kind adds a dirtier stream and an fsync storm
    // through the page cache on top of the direct reader above.
    std::unique_ptr<workload::BufferedWorkload> dirtier;
    std::unique_ptr<workload::BufferedWorkload> fsyncer;
    if (kind == WorkloadKind::Buffered) {
        if (!host.hasPageCache()) {
            throw std::invalid_argument(
                "fleet: buffered workload requires pagecache=");
        }
        workload::BufferedConfig dc;
        dc.name = "dirtier";
        dc.blockSize = 1 << 20;
        dc.spanBytes = 2ull << 30;
        dc.offsetBase = 8ull << 40;
        dc.thinkTime = 200 * sim::kUsec;
        dc.depth = 2 + static_cast<unsigned>(knobs.below(4));
        dirtier = std::make_unique<workload::BufferedWorkload>(
            sim, host.pageCache(), main_cg, dc);
        workload::BufferedConfig fc;
        fc.name = "fsync-storm";
        fc.blockSize = 16 * 1024;
        fc.spanBytes = 256ull << 20;
        fc.offsetBase = 9ull << 40;
        fc.randomFraction = 1.0;
        fc.fsyncEvery = 8;
        fsyncer = std::make_unique<workload::BufferedWorkload>(
            sim, host.pageCache(), main_cg, fc);
    }

    FetchAgent fetch(host.layer(), fetch_cg, sc.fetchBytes,
                     seed ^ 0xabcdef12);
    CleanupAgent cleanup(host.layer(), cleanup_cg, sc.cleanupOps,
                         sc.cleanupIoBytes, seed ^ 0x9e3779b9);

    read_job.start();
    write_job.start();
    if (dirtier) {
        dirtier->start();
        fsyncer->start();
    }
    // Agents start once the workload has pushed the device into its
    // sustained (buffer-drained) regime.
    const sim::Time agent_start = sc.warmup;
    sim.after(agent_start, [&] {
        fetch.start();
        cleanup.step();
    });

    sim.runUntil(agent_start + sc.slice);
    read_job.stop();
    write_job.stop();
    if (dirtier) {
        dirtier->stop();
        fsyncer->stop();
    }

    HostDayOutcome out;
    out.fetchTime = fetch.doneAt == sim::kTimeNever
                        ? sim::kTimeNever
                        : fetch.doneAt - agent_start;
    out.cleanupTime = cleanup.doneAt == sim::kTimeNever
                          ? sim::kTimeNever
                          : cleanup.doneAt - agent_start;
    out.fetchFailed = out.fetchTime > sc.fetchDeadline;
    out.cleanupFailed = out.cleanupTime > sc.cleanupDeadline;
    if (sc.telemetry)
        out.records = ring.drain();
    return out;
}

HostDayOutcome
FleetSim::runHostDay(const std::string &controller, int host_kind,
                     uint64_t seed, const FleetConfig &cfg)
{
    const device::SsdSpec spec =
        host_kind == 0 ? device::oldGenSsd() : device::newGenSsd();
    return runHostDay(scenarioFromConfig(cfg), spec,
                      WorkloadKind::Mixed, controller, seed);
}

FleetAggregate
FleetSim::runScenario(const FleetScenario &sc,
                      const RunOptions &opts)
{
    return runScenario(sc, opts, nullptr);
}

FleetAggregate
FleetSim::runScenario(const FleetScenario &sc,
                      const RunOptions &opts,
                      std::vector<HostDayOutcome> *outcomes_out)
{
    // Resolve the execution layout. None of it affects any
    // aggregated byte — only scheduling granularity.
    unsigned jobs = opts.jobs == 0
                        ? std::max(
                              1u,
                              std::thread::hardware_concurrency())
                        : opts.jobs;
    unsigned shards = opts.shards != 0 ? opts.shards : sc.shards;
    if (shards == 0)
        shards = jobs * 8;
    shards = std::max(1u, std::min(shards, std::max(1u, sc.hosts)));
    jobs = std::min(jobs, shards);

    // Warm the shared device-profile cache up front so workers do
    // not all serialize on its mutex for the first iocost slice.
    // Profiles are cached and deterministic, so this never changes
    // results.
    bool any_migration = false;
    for (const MigrationStage &st : sc.stages)
        any_migration = any_migration || st.startDay < sc.days;
    if (any_migration) {
        for (const FleetScenario::DeviceShare &d : sc.devices)
            profile::DeviceProfiler::profileSsd(d.spec);
    }

    if (outcomes_out != nullptr) {
        outcomes_out->clear();
        outcomes_out->resize(static_cast<size_t>(sc.days) *
                             sc.hosts);
    }

    // Per-shard arenas, constructed up front: the fold path inside
    // the workers performs no heap allocation.
    std::vector<ShardAccumulator> accs;
    accs.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        accs.emplace_back(sc.days);

    // Shard s owns the contiguous host range [lo(s), lo(s+1)).
    auto shard_lo = [&](unsigned s) {
        return static_cast<unsigned>(
            static_cast<uint64_t>(s) * sc.hosts / shards);
    };

    auto run_shard = [&](unsigned s) {
        ShardAccumulator &acc = accs[s];
        const unsigned lo = shard_lo(s);
        const unsigned hi = shard_lo(s + 1);
        for (unsigned h = lo; h < hi; ++h) {
            const unsigned mig = sc.migrationDay(h);
            const device::SsdSpec &spec =
                sc.devices[sc.deviceIndexFor(h) %
                           sc.devices.size()]
                    .spec;
            const WorkloadKind kind = sc.workloadFor(h);
            for (unsigned day = 0; day < sc.days; ++day) {
                if (day == sc.throwAtDay && h == sc.throwAtHost) {
                    throw std::runtime_error(
                        "fleet: injected slice failure at day " +
                        std::to_string(day) + " host " +
                        std::to_string(h));
                }
                const bool on_iocost = day >= mig;
                HostDayOutcome out = runHostDay(
                    sc, spec, kind,
                    on_iocost ? "iocost" : "iolatency",
                    sc.hostDaySeed(day, h));
                acc.fold(day, on_iocost, out);
                if (outcomes_out != nullptr) {
                    (*outcomes_out)[static_cast<size_t>(day) *
                                        sc.hosts +
                                    h] = std::move(out);
                }
            }
        }
        acc.finalizeSeries();
    };

    // Workers steal whole shards from a shared counter. Exception
    // boundary: a throwing slice poisons only its shard — the
    // shard's first exception is captured, the worker moves on, and
    // remaining shards still drain. After a clean join the
    // exception from the lowest-indexed failed shard is rethrown,
    // which is deterministic regardless of worker scheduling.
    std::vector<std::exception_ptr> errors(shards);
    std::atomic<unsigned> next{0};
    auto worker = [&] {
        for (;;) {
            const unsigned s =
                next.fetch_add(1, std::memory_order_relaxed);
            if (s >= shards)
                return;
            try {
                run_shard(s);
            } catch (...) {
                errors[s] = std::current_exception();
            }
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs - 1);
        for (unsigned t = 0; t + 1 < jobs; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &t : pool)
            t.join();
    }
    for (unsigned s = 0; s < shards; ++s) {
        if (errors[s])
            std::rethrow_exception(errors[s]);
    }

    // Deterministic binary-tree merge by shard index. Every merged
    // quantity is exact, so this yields bit-identical state no
    // matter how the tree is shaped — the fixed shape just makes
    // the reduction O(log shards) deep.
    for (unsigned stride = 1; stride < shards; stride *= 2) {
        for (unsigned i = 0; i + stride < shards; i += 2 * stride)
            accs[i].mergeFrom(accs[i + stride]);
    }
    return accs[0].finish(sc.hosts, shards, jobs);
}

std::vector<FleetAggregate>
FleetSim::runScenarioSweep(const FleetScenario &sc,
                           const RunOptions &opts)
{
    const size_t K = sc.sweep.size();
    if (K == 0) {
        throw std::invalid_argument(
            "fleet sweep: scenario has no sweep entries");
    }
    if (sc.telemetry) {
        throw std::invalid_argument(
            "fleet sweep: telemetry capture not supported");
    }
    // Validate every entry before any worker runs, and cache which
    // mechanism each one is (decides the summary slot below).
    std::vector<bool> is_iocost(K);
    bool any_iocost = false;
    for (size_t c = 0; c < K; ++c) {
        std::optional<controllers::ControllerSpec> parsed =
            controllers::parseControllerSpec(sc.sweep[c]);
        if (!parsed) {
            throw std::invalid_argument(
                "fleet sweep: bad controller spec: " + sc.sweep[c]);
        }
        is_iocost[c] = parsed->name == "iocost";
        any_iocost = any_iocost || is_iocost[c];
    }

    // Same layout resolution as runScenario; a host-day here is K
    // slices, but shard granularity stays per-host.
    unsigned jobs = opts.jobs == 0
                        ? std::max(
                              1u,
                              std::thread::hardware_concurrency())
                        : opts.jobs;
    unsigned shards = opts.shards != 0 ? opts.shards : sc.shards;
    if (shards == 0)
        shards = jobs * 8;
    shards = std::max(1u, std::min(shards, std::max(1u, sc.hosts)));
    jobs = std::min(jobs, shards);

    if (any_iocost) {
        for (const FleetScenario::DeviceShare &d : sc.devices)
            profile::DeviceProfiler::profileSsd(d.spec);
    }

    // Per-config accumulators fold side by side: shard s, config c
    // lives at accs[s*K + c]. The arena block per shard is
    // contiguous, so a worker's K folds for one host-day touch
    // adjacent accumulators.
    std::vector<ShardAccumulator> accs;
    accs.reserve(static_cast<size_t>(shards) * K);
    for (size_t i = 0; i < static_cast<size_t>(shards) * K; ++i)
        accs.emplace_back(sc.days);

    auto shard_lo = [&](unsigned s) {
        return static_cast<unsigned>(
            static_cast<uint64_t>(s) * sc.hosts / shards);
    };

    auto run_shard = [&](unsigned s) {
        const unsigned lo = shard_lo(s);
        const unsigned hi = shard_lo(s + 1);
        for (unsigned h = lo; h < hi; ++h) {
            const device::SsdSpec &spec =
                sc.devices[sc.deviceIndexFor(h) %
                           sc.devices.size()]
                    .spec;
            const WorkloadKind kind = sc.workloadFor(h);
            for (unsigned day = 0; day < sc.days; ++day) {
                if (day == sc.throwAtDay && h == sc.throwAtHost) {
                    throw std::runtime_error(
                        "fleet: injected slice failure at day " +
                        std::to_string(day) + " host " +
                        std::to_string(h));
                }
                // One seed for all K configs: the paired-run CRN.
                const uint64_t seed = sc.hostDaySeed(day, h);
                for (size_t c = 0; c < K; ++c) {
                    const HostDayOutcome out = runHostDay(
                        sc, spec, kind, sc.sweep[c], seed);
                    accs[static_cast<size_t>(s) * K + c].fold(
                        day, is_iocost[c], out);
                }
            }
        }
        for (size_t c = 0; c < K; ++c)
            accs[static_cast<size_t>(s) * K + c].finalizeSeries();
    };

    // Same worker pool and exception discipline as runScenario.
    std::vector<std::exception_ptr> errors(shards);
    std::atomic<unsigned> next{0};
    auto worker = [&] {
        for (;;) {
            const unsigned s =
                next.fetch_add(1, std::memory_order_relaxed);
            if (s >= shards)
                return;
            try {
                run_shard(s);
            } catch (...) {
                errors[s] = std::current_exception();
            }
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs - 1);
        for (unsigned t = 0; t + 1 < jobs; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &t : pool)
            t.join();
    }
    for (unsigned s = 0; s < shards; ++s) {
        if (errors[s])
            std::rethrow_exception(errors[s]);
    }

    // Per-config deterministic binary-tree merge over shards.
    for (unsigned stride = 1; stride < shards; stride *= 2) {
        for (unsigned i = 0; i + stride < shards; i += 2 * stride) {
            for (size_t c = 0; c < K; ++c) {
                accs[static_cast<size_t>(i) * K + c].mergeFrom(
                    accs[(static_cast<size_t>(i) + stride) * K +
                         c]);
            }
        }
    }
    std::vector<FleetAggregate> out;
    out.reserve(K);
    for (size_t c = 0; c < K; ++c)
        out.push_back(accs[c].finish(sc.hosts, shards, jobs));
    return out;
}

std::vector<FleetDayResult>
FleetSim::run(const FleetConfig &cfg, unsigned jobs)
{
    return run(cfg, jobs, nullptr);
}

std::vector<FleetDayResult>
FleetSim::run(const FleetConfig &cfg, unsigned jobs,
              std::vector<HostDayOutcome> *outcomes_out)
{
    RunOptions opts;
    opts.jobs = jobs;
    return runScenario(scenarioFromConfig(cfg), opts, outcomes_out)
        .days;
}

} // namespace iocost::fleet
