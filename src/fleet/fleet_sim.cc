#include "fleet/fleet_sim.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "controllers/io_latency.hh"
#include "core/iocost.hh"
#include "device/device_profiles.hh"
#include "device/ssd_model.hh"
#include "host/host.hh"
#include "profile/device_profiler.hh"
#include "sim/rng.hh"
#include "workload/fio_workload.hh"

namespace iocost::fleet {

namespace {

/**
 * Package fetch: per chunk, a metadata/verification read followed by
 * a sequential payload write (dependent pair), a couple of chunk
 * streams in flight; flags its completion time.
 */
struct FetchAgent
{
    blk::BlockLayer &layer;
    cgroup::CgroupId cg;
    uint64_t left;
    uint64_t cursor = 0;
    sim::Time doneAt = sim::kTimeNever;
    unsigned inFlight = 0;
    sim::Rng rng;

    static constexpr uint32_t kChunk = 256 * 1024;
    static constexpr uint32_t kReadChunk = 64 * 1024;
    static constexpr unsigned kDepth = 2;

    FetchAgent(blk::BlockLayer &l, cgroup::CgroupId c,
               uint64_t bytes, uint64_t seed)
        : layer(l), cg(c), left(bytes), rng(seed)
    {}

    void
    start()
    {
        for (unsigned i = 0; i < kDepth; ++i)
            issue();
    }

    void
    issue()
    {
        if (left == 0) {
            if (inFlight == 0 && doneAt == sim::kTimeNever)
                doneAt = layer.sim().now();
            return;
        }
        const uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(kChunk, left));
        left -= chunk;
        ++inFlight;
        // Verification/metadata read, then the payload write.
        layer.submit(blk::Bio::make(
            blk::Op::Read, (6ull << 40) + rng.below(8ull << 30),
            kReadChunk, cg, [this, chunk](const blk::Bio &) {
                layer.submit(blk::Bio::make(
                    blk::Op::Write, (6ull << 41) + cursor, chunk,
                    cg, [this](const blk::Bio &) {
                        --inFlight;
                        issue();
                    }));
                cursor += chunk;
            }));
    }
};

/**
 * Serialized chain of small alternating metadata reads/writes (the
 * btrfs container-cleanup walk).
 */
struct CleanupAgent
{
    blk::BlockLayer &layer;
    cgroup::CgroupId cg;
    unsigned opsLeft;
    uint32_t ioBytes;
    sim::Rng rng;
    sim::Time doneAt = sim::kTimeNever;

    CleanupAgent(blk::BlockLayer &l, cgroup::CgroupId c,
                 unsigned ops, uint32_t bytes, uint64_t seed)
        : layer(l), cg(c), opsLeft(ops), ioBytes(bytes), rng(seed)
    {}

    void
    step()
    {
        if (opsLeft == 0) {
            doneAt = layer.sim().now();
            return;
        }
        --opsLeft;
        const bool read = opsLeft % 2 == 0;
        const uint64_t offset =
            (7ull << 40) + rng.below(64ull << 30);
        auto bio = blk::Bio::make(
            read ? blk::Op::Read : blk::Op::Write, offset, ioBytes,
            cg, [this](const blk::Bio &) { step(); });
        // Cleanup touches shared filesystem metadata.
        bio->meta = true;
        layer.submit(std::move(bio));
    }
};

} // namespace

unsigned
FleetSim::migrationDay(unsigned host, const FleetConfig &cfg)
{
    const unsigned span =
        cfg.migrationEndDay - cfg.migrationStartDay;
    if (span == 0 || cfg.hosts == 0)
        return cfg.migrationStartDay;
    return cfg.migrationStartDay + host * span / cfg.hosts;
}

HostDayOutcome
FleetSim::runHostDay(const std::string &controller, int host_kind,
                     uint64_t seed, const FleetConfig &cfg)
{
    sim::Simulator sim(seed);
    const device::SsdSpec spec =
        host_kind == 0 ? device::oldGenSsd() : device::newGenSsd();

    host::HostOptions opts;
    opts.controller = controller;
    // Device degradation, identical schedule on every host; the
    // slice seed decorrelates the per-request error draws.
    opts.faults = cfg.faults;
    opts.faultSeedMix = seed;
    // Slice-private ring: drained into the outcome after the run.
    stat::RingSink ring;
    if (cfg.telemetry)
        opts.telemetrySink = &ring;
    if (controller == "iocost") {
        const auto &prof =
            profile::DeviceProfiler::profileSsd(spec);
        opts.controller.iocost.model =
            core::CostModel::fromConfig(prof.model);
        opts.controller.iocost.qos.readLatTarget = 2 * sim::kMsec;
        opts.controller.iocost.qos.writeLatTarget = 4 * sim::kMsec;
        opts.controller.iocost.qos.period = 10 * sim::kMsec;
        opts.controller.iocost.qos.vrateMin = 0.5;
        opts.controller.iocost.qos.vrateMax = 2.0;
    }
    host::Host host(sim,
                    std::make_unique<device::SsdModel>(sim, spec),
                    opts);

    const auto main_cg = host.addWorkload("main", 100);
    const auto fetch_cg = host.addSystemService("package-fetcher");
    const auto cleanup_cg = host.tree().create(
        host.hostCritical(), "container-agent", 100);

    if (controller == "iolatency") {
        // Production IOLatency setups protect the workload with a
        // tight latency target; system services run unprotected.
        auto *iolat = dynamic_cast<controllers::IoLatency *>(
            host.layer().controller());
        iolat->setTarget(main_cg, 400 * sim::kUsec);
    }

    // Main workload: a saturating mix — deep random reads plus a
    // stream of large writes that drains the device's burst buffer
    // into its GC regime. Intensity varies per host-day.
    sim::Rng knobs(seed ^ 0x5bd1e995);
    workload::FioConfig reads;
    reads.arrival = workload::Arrival::Saturating;
    reads.iodepth = 32 + static_cast<unsigned>(knobs.below(64));
    workload::FioWorkload read_job(sim, host.layer(), main_cg,
                                   reads);

    workload::FioConfig writes;
    writes.arrival = workload::Arrival::Saturating;
    writes.readFraction = 0.0;
    writes.blockSize = 1 << 20;
    writes.iodepth = 2 + static_cast<unsigned>(knobs.below(8));
    workload::FioWorkload write_job(sim, host.layer(), main_cg,
                                    writes);

    FetchAgent fetch(host.layer(), fetch_cg, cfg.fetchBytes,
                     seed ^ 0xabcdef12);
    CleanupAgent cleanup(host.layer(), cleanup_cg, cfg.cleanupOps,
                         cfg.cleanupIoBytes, seed ^ 0x9e3779b9);

    read_job.start();
    write_job.start();
    // Agents start once the workload has pushed the device into its
    // sustained (buffer-drained) regime.
    const sim::Time agent_start = cfg.warmup;
    sim.after(agent_start, [&] {
        fetch.start();
        cleanup.step();
    });

    sim.runUntil(agent_start + cfg.slice);
    read_job.stop();
    write_job.stop();

    HostDayOutcome out;
    out.fetchTime = fetch.doneAt == sim::kTimeNever
                        ? sim::kTimeNever
                        : fetch.doneAt - agent_start;
    out.cleanupTime = cleanup.doneAt == sim::kTimeNever
                          ? sim::kTimeNever
                          : cleanup.doneAt - agent_start;
    out.fetchFailed = out.fetchTime > cfg.fetchDeadline;
    out.cleanupFailed = out.cleanupTime > cfg.cleanupDeadline;
    if (cfg.telemetry)
        out.records = ring.drain();
    return out;
}

std::vector<FleetDayResult>
FleetSim::run(const FleetConfig &cfg, unsigned jobs)
{
    return run(cfg, jobs, nullptr);
}

std::vector<FleetDayResult>
FleetSim::run(const FleetConfig &cfg, unsigned jobs,
              std::vector<HostDayOutcome> *outcomes_out)
{
    const uint64_t total =
        static_cast<uint64_t>(cfg.days) * cfg.hosts;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (total > 0 && jobs > total)
        jobs = static_cast<unsigned>(total);

    // Phase 1: every host-day slice runs against its own private
    // Simulator with a seed derived only from (cfg.seed, day, host),
    // so slices are order- and thread-independent.
    std::vector<HostDayOutcome> outcomes(total);
    auto slice = [&](uint64_t idx) {
        const unsigned day = static_cast<unsigned>(idx / cfg.hosts);
        const unsigned h = static_cast<unsigned>(idx % cfg.hosts);
        const bool on_iocost = day >= migrationDay(h, cfg);
        const uint64_t seed =
            cfg.seed * 1000003ull + day * 10007ull + h;
        outcomes[idx] = runHostDay(
            on_iocost ? "iocost" : "iolatency",
            static_cast<int>(h % 2), seed, cfg);
    };

    if (jobs <= 1) {
        for (uint64_t i = 0; i < total; ++i)
            slice(i);
    } else {
        // Warm the shared device-profile cache up front so workers
        // do not all serialize on its mutex for the first profile —
        // but only for host kinds that actually reach IOCost (the
        // IOLatency side never profiles).
        bool kind_on_iocost[2] = {false, false};
        for (unsigned h = 0; h < cfg.hosts; ++h) {
            if (cfg.days > migrationDay(h, cfg))
                kind_on_iocost[h % 2] = true;
        }
        if (kind_on_iocost[0])
            profile::DeviceProfiler::profileSsd(device::oldGenSsd());
        if (kind_on_iocost[1])
            profile::DeviceProfiler::profileSsd(device::newGenSsd());

        // Exception boundary: a throwing slice (bad per-host config,
        // malformed fault spec) must not std::terminate the process
        // from a worker thread. The first exception is captured,
        // every worker winds down, and the caller sees the rethrow
        // after a clean join — same observable behaviour as the
        // sequential path.
        std::atomic<uint64_t> next{0};
        std::atomic<bool> failed{false};
        std::mutex error_mutex;
        std::exception_ptr first_error;
        auto worker = [&] {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                const uint64_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= total)
                    return;
                try {
                    slice(i);
                } catch (...) {
                    {
                        const std::lock_guard<std::mutex> lock(
                            error_mutex);
                        if (!first_error) {
                            first_error =
                                std::current_exception();
                        }
                    }
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs - 1);
        for (unsigned t = 0; t + 1 < jobs; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &t : pool)
            t.join();
        if (first_error)
            std::rethrow_exception(first_error);
    }

    // Phase 2: reduce in (day, host) order. The reduction is the
    // only place results meet, so the output is byte-identical to
    // the sequential run regardless of jobs.
    std::vector<FleetDayResult> out;
    out.reserve(cfg.days);
    for (unsigned day = 0; day < cfg.days; ++day) {
        FleetDayResult r;
        r.day = day;
        unsigned migrated = 0;
        for (unsigned h = 0; h < cfg.hosts; ++h) {
            migrated += day >= migrationDay(h, cfg) ? 1 : 0;
            const HostDayOutcome &o =
                outcomes[static_cast<uint64_t>(day) * cfg.hosts + h];
            ++r.fetchAttempts;
            ++r.cleanupAttempts;
            r.fetchFailures += o.fetchFailed ? 1 : 0;
            r.cleanupFailures += o.cleanupFailed ? 1 : 0;
        }
        r.fractionOnIoCost =
            static_cast<double>(migrated) / cfg.hosts;
        out.push_back(r);
    }
    if (outcomes_out != nullptr)
        *outcomes_out = std::move(outcomes);
    return out;
}

} // namespace iocost::fleet
